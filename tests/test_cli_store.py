"""The ``profile --store`` / ``diff REF REF`` / ``ci`` CLI surface.

Exit-code contract: 0 = gate passes (ok or optimization), 1 =
degradation, 2 = usage or store error (unknown ref, missing
``--store``).  The legacy two-input spectrum diff keeps its original
form — ``diff`` only routes to the store when a candidate ref is
given (see ``tests/test_cli.py::TestDiff``).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SOURCE = """
fn work(n) {
    var i = 0; var sum = 0;
    while (i < n) { sum = sum + i * 3; i = i + 1; }
    return sum;
}
fn main(n) {
    var j = 0; var out = 0;
    while (j < 4) { out = out + work(n + j); j = j + 1; }
    return out;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "program.pl"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "store")


def _profile(source_file, store_dir, arg):
    return main(
        [
            "profile", source_file, arg,
            "--mode", "combined",
            "--store", store_dir,
            "--workload", "bench",
        ]
    )


class TestProfileStoreSink:
    def test_profile_reports_the_stored_id(self, source_file, store_dir, capsys):
        assert _profile(source_file, store_dir, "10") == 0
        assert "stored as " in capsys.readouterr().out

    def test_identical_profiles_dedup_to_one_entry(
        self, source_file, store_dir, capsys
    ):
        from repro.store import ProfileStore

        assert _profile(source_file, store_dir, "10") == 0
        assert _profile(source_file, store_dir, "10") == 0
        assert len(ProfileStore(store_dir).entries()) == 1


class TestCi:
    def test_single_run_passes_trivially(self, source_file, store_dir, capsys):
        assert _profile(source_file, store_dir, "10") == 0
        assert main(["ci", "--store", store_dir]) == 0
        assert "trivially" in capsys.readouterr().out

    def test_degradation_fails_the_gate(self, source_file, store_dir, capsys):
        # Run arguments are not part of the spec digest, so the same
        # program driven much harder is a spec-compatible regression.
        assert _profile(source_file, store_dir, "10") == 0
        assert _profile(source_file, store_dir, "100") == 0
        assert main(["ci", "--store", store_dir]) == 1
        out = capsys.readouterr().out
        assert "ci: FAIL (degradation)" in out

    def test_improvement_passes_the_gate(self, source_file, store_dir, capsys):
        assert _profile(source_file, store_dir, "100") == 0
        assert _profile(source_file, store_dir, "10") == 0
        capsys.readouterr()
        assert main(["ci", "--store", store_dir]) == 0
        assert "ci: OK (optimization)" in capsys.readouterr().out

    def test_missing_store_flag_is_usage_error(self, capsys):
        assert main(["ci"]) == 2
        assert "requires --store" in capsys.readouterr().err

    def test_unknown_ref_is_exit_2(self, source_file, store_dir, capsys):
        assert _profile(source_file, store_dir, "10") == 0
        assert main(["ci", "deadbeef", "--store", store_dir]) == 2
        assert "error:" in capsys.readouterr().err


class TestStoreDiff:
    def test_diff_of_a_ref_with_itself_is_ok(self, source_file, store_dir, capsys):
        assert _profile(source_file, store_dir, "10") == 0
        assert main(["diff", "latest", "latest", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out
        for detector in ("counters", "contexts", "hot_paths"):
            assert detector in out

    def test_degrading_diff_is_exit_1_with_findings(
        self, source_file, store_dir, capsys
    ):
        assert _profile(source_file, store_dir, "10") == 0
        assert _profile(source_file, store_dir, "100") == 0
        assert main(["diff", "latest~1", "latest", "--store", store_dir]) == 1
        out = capsys.readouterr().out
        assert "verdict: degradation" in out
        assert "INSTRS" in out
        # The mirror direction is an improvement, and improvements pass.
        assert main(["diff", "latest", "latest~1", "--store", store_dir]) == 0

    def test_json_report_schema(self, source_file, store_dir, capsys):
        assert _profile(source_file, store_dir, "10") == 0
        assert _profile(source_file, store_dir, "100") == 0
        capsys.readouterr()
        assert (
            main(["diff", "latest~1", "latest", "--store", store_dir, "--json"]) == 1
        )
        report = json.loads(capsys.readouterr().out)
        assert report["format"] == "repro-diff-report-v1"
        assert report["verdict"] == "degradation"
        assert set(report["thresholds"]) == {"ratio", "min_count", "top_k", "events"}
        assert [d["detector"] for d in report["detectors"]] == [
            "counters", "contexts", "hot_paths",
        ]
        findings = [f for d in report["detectors"] for f in d["findings"]]
        assert all(
            set(f) == {"detector", "subject", "baseline", "candidate",
                       "delta", "verdict"}
            for f in findings
        )

    def test_thresholds_are_configurable(self, source_file, store_dir, capsys):
        assert _profile(source_file, store_dir, "10") == 0
        assert _profile(source_file, store_dir, "100") == 0
        # An absurdly permissive ratio waves the regression through.
        assert (
            main(
                [
                    "diff", "latest~1", "latest",
                    "--store", store_dir,
                    "--ratio", "0.9999", "--min-count", "1000000000",
                ]
            )
            == 0
        )

    def test_missing_store_flag_is_usage_error(self, capsys):
        assert main(["diff", "latest~1", "latest"]) == 2
        assert "requires --store" in capsys.readouterr().err

    def test_unknown_ref_is_exit_2(self, source_file, store_dir, capsys):
        assert _profile(source_file, store_dir, "10") == 0
        assert main(["diff", "latest", "deadbeef", "--store", store_dir]) == 2
        assert "error:" in capsys.readouterr().err
