"""ASCII and DOT renderers."""

import pytest

from repro.cfg.graph import build_cfg
from repro.lang import compile_source
from repro.pathprof.numbering import number_paths
from repro.render import render_cct_ascii, render_cct_dot, render_cfg_dot
from repro.tools.pp import PP

from tests.conftest import compile_corpus

RECURSIVE = """
fn walk(n) {
    if (n <= 0) { return 0; }
    return walk(n - 1) + helper(n);
}
fn helper(n) { return n * 2; }
fn main() { return walk(4); }
"""


@pytest.fixture
def cct_root():
    program = compile_source(RECURSIVE)
    run = PP().context_hw(program)
    return run.cct.root


class TestAscii:
    def test_tree_structure(self, cct_root):
        text = render_cct_ascii(cct_root)
        assert "<root>" in text
        assert "main" in text
        assert "walk" in text
        # Recursion annotated, not expanded infinitely.
        assert "(recursion ^)" in text

    def test_metric_annotation(self, cct_root):
        text = render_cct_ascii(cct_root, metric=0)
        assert "[1]" in text  # main called once

    def test_no_metric(self, cct_root):
        text = render_cct_ascii(cct_root, metric=None)
        assert "[" not in text.replace("[", "", 0) or "(" in text

    def test_depth_cap(self, cct_root):
        shallow = render_cct_ascii(cct_root, max_depth=1)
        deep = render_cct_ascii(cct_root, max_depth=32)
        assert len(shallow.splitlines()) <= len(deep.splitlines())


class TestCfgDot:
    def test_plain(self):
        program = compile_corpus("loop")
        cfg = build_cfg(program.functions["main"])
        dot = render_cfg_dot(cfg)
        assert dot.startswith("digraph")
        assert '"__EXIT__"' in dot
        assert dot.endswith("}")

    def test_with_numbering(self):
        program = compile_corpus("loop")
        cfg = build_cfg(program.functions["main"])
        numbering = number_paths(cfg)
        dot = render_cfg_dot(cfg, numbering)
        assert "style=dashed color=red" in dot  # the backedge
        # Any nonzero Val shows as an increment label.
        if any(v for v in numbering.val.values()):
            assert 'label="+' in dot

    def test_every_edge_present(self):
        program = compile_corpus("diamond")
        cfg = build_cfg(program.functions["main"])
        dot = render_cfg_dot(cfg)
        assert dot.count("->") == len(cfg.edges)


class TestCctDot:
    def test_nodes_and_edges(self, cct_root):
        dot = render_cct_dot(cct_root)
        assert "digraph CCT" in dot
        assert "walk" in dot and "helper" in dot
        assert "style=dashed color=red" in dot  # the recursion backedge

    def test_renders_for_corpus(self, corpus_name):
        program = compile_corpus(corpus_name)
        run = PP().context_hw(program)
        dot = render_cct_dot(run.cct.root)
        assert dot.startswith("digraph") and dot.endswith("}")
