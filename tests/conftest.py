"""Shared fixtures: a corpus of small programs exercised by many tests.

``CORPUS`` maps a name to mini-language source whose ``main`` takes no
arguments and returns a deterministic checksum.  Tests run these
uninstrumented and under every profiling configuration and compare
counts against the tracing oracle and the DCT projection.
"""

from __future__ import annotations

import pytest

from repro.lang import compile_source

CORPUS = {
    "straightline": """
        fn main() { var a = 3; var b = 4; return a * b + 5; }
    """,
    "diamond": """
        fn main() {
            var x = 7; var r = 0;
            if (x % 2 == 1) { r = x * 3; } else { r = x * 5; }
            return r;
        }
    """,
    "loop": """
        fn main() {
            var i = 0; var sum = 0;
            while (i < 37) { sum = sum + i; i = i + 1; }
            return sum;
        }
    """,
    "nested_loops": """
        fn main() {
            var i = 0; var sum = 0;
            while (i < 9) {
                var j = 0;
                while (j < 7) {
                    if ((i + j) % 3 == 0) { sum = sum + 2; } else { sum = sum + 1; }
                    j = j + 1;
                }
                i = i + 1;
            }
            return sum;
        }
    """,
    "break_continue": """
        fn main() {
            var i = 0; var sum = 0;
            while (i < 100) {
                i = i + 1;
                if (i % 4 == 0) { continue; }
                if (i > 50) { break; }
                sum = sum + i;
            }
            return sum;
        }
    """,
    "calls": """
        fn double(x) { return x * 2; }
        fn addsq(a, b) { return double(a) + b * b; }
        fn main() {
            var i = 0; var sum = 0;
            while (i < 12) { sum = sum + addsq(i, i + 1); i = i + 1; }
            return sum;
        }
    """,
    "fib": """
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { return fib(11); }
    """,
    "mutual_recursion": """
        fn even(n) { if (n == 0) { return 1; } return odd(n - 1); }
        fn odd(n) { if (n == 0) { return 0; } return even(n - 1); }
        fn main() {
            var i = 0; var count = 0;
            while (i < 25) { count = count + even(i); i = i + 1; }
            return count;
        }
    """,
    "arrays": """
        global data[512];
        fn main() {
            var i = 0;
            while (i < 512) { data[i] = i * 7 % 97; i = i + 1; }
            var sum = 0;
            i = 0;
            while (i < 512) {
                if (data[i] > 48) { sum = sum + data[i]; }
                i = i + 1;
            }
            return sum;
        }
    """,
    "hash_table": """
        global table[256];
        fn probe(key) {
            var h = (key * 31) & 255;
            if (table[h] == 0) { table[h] = key; return 0; }
            if (table[h] == key) { return 1; }
            table[(h + 1) & 255] = key;
            return 2;
        }
        fn main() {
            var i = 0; var sum = 0;
            while (i < 300) { sum = sum + probe(i % 90 + 1); i = i + 1; }
            return sum;
        }
    """,
    "logic": """
        fn check(a, b) {
            if (a > 2 && b < 10 || a == 0) { return 1; }
            return 0;
        }
        fn main() {
            var i = 0; var n = 0;
            while (i < 20) { n = n + check(i % 5, i); i = i + 1; }
            return n;
        }
    """,
    "deep_calls": """
        fn l4(x) { return x + 1; }
        fn l3(x) { if (x % 2 == 0) { return l4(x) * 2; } return l4(x + 1); }
        fn l2(x) { return l3(x) + l3(x + 1); }
        fn l1(x) { return l2(x) + 1; }
        fn main() {
            var i = 0; var sum = 0;
            while (i < 15) { sum = sum + l1(i); i = i + 1; }
            return sum;
        }
    """,
    "many_paths": """
        fn classify(v) {
            var r = 0;
            if (v & 1) { r = r + 1; } else { r = r + 10; }
            if (v & 2) { r = r + 100; } else { r = r + 1000; }
            if (v & 4) { r = r * 2; } else { r = r * 3; }
            if (v & 8) { r = r - 5; } else { r = r + 5; }
            return r;
        }
        fn main() {
            var i = 0; var sum = 0;
            while (i < 64) { sum = sum + classify(i * 13 % 16); i = i + 1; }
            return sum;
        }
    """,
    "float_mix": """
        fn main() {
            var i = 0;
            var sum = 0;
            while (i < 30) {
                var x = fadd(1.5, fmul(0.25, i));
                if (i % 3 == 0) { x = fdiv(x, 2.0); }
                sum = sum + i;
                i = i + 1;
            }
            return sum;
        }
    """,
}


@pytest.fixture(scope="session")
def corpus_programs():
    """name -> freshly compiled Program factory (compile once per test use)."""
    return {name: source for name, source in CORPUS.items()}


def compile_corpus(name: str):
    return compile_source(CORPUS[name])


def pytest_generate_tests(metafunc):
    if "corpus_name" in metafunc.fixturenames:
        metafunc.parametrize("corpus_name", sorted(CORPUS))
