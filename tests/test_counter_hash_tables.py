"""CounterTable hash-path behaviour (§2's fallback for path-rich functions).

Functions with more potential paths than ``ARRAY_PATH_LIMIT`` get a
hash table: counters live in ``HASH_BUCKETS`` buckets of
``1 + slot_words`` words (key word first), every update pays a
key-compare load plus three charged instructions (hash multiply, mask,
compare), and distinct indices can collide into one bucket's simulated
slot.  The fast engine never fuses hash-table hooks — they keep the
closure fallback — so both engines must drive the exact same traffic.
"""

from repro.instrument.pathinstr import instrument_paths
from repro.instrument.tables import (
    ARRAY_PATH_LIMIT,
    HASH_BUCKETS,
    ProfilingRuntime,
    TableKind,
)
from repro.ir.asm import parse_program
from repro.ir.instructions import Kind
from repro.machine.counters import Event
from repro.machine.memory import WORD, MemoryMap
from repro.machine.vm import Machine

_TRIVIAL = """
func main(0) regs=1 {
entry:
    const r0, 0
    ret r0
}
"""


def _machine():
    return Machine(parse_program(_TRIVIAL))


def _runtime():
    return ProfilingRuntime(MemoryMap().profiling.base)


def _hash_table(runtime, metric_slots=0):
    return runtime.new_table(
        "many", HASH_BUCKETS + 64, metric_slots=metric_slots, kind=TableKind.HASH
    )


def _many_path_source():
    """14 sequential diamonds: 2**14 paths, beyond the array limit."""
    lines = ["func main(1) regs=8 {", "entry:", "    const r1, 0", "    br d0"]
    for d in range(14):
        nxt = f"d{d + 1}" if d < 13 else "out"
        lines += [
            f"d{d}:",
            f"    and r2, r0, {1 << d}",
            f"    cbr r2, t{d}, f{d}",
            f"t{d}:",
            "    add r1, r1, 1",
            f"    br {nxt}",
            f"f{d}:",
            f"    br {nxt}",
        ]
    lines += ["out:", "    ret r1", "}"]
    return "\n".join(lines)


def test_colliding_indices_share_a_bucket_slot():
    """Indices 0 and HASH_BUCKETS hash to the same bucket: the logical
    counts stay separate (keyed by index), but both RMW the same
    simulated slot — the aliasing a real open hash table exhibits."""
    table = _hash_table(_runtime())
    assert table._slot_addr(0) == table._slot_addr(HASH_BUCKETS)
    machine = _machine()
    table.bump(machine, 0)
    table.bump(machine, HASH_BUCKETS)
    assert table.counts == {0: 1, HASH_BUCKETS: 1}
    # The shared counter word (key word first) saw both writes.
    assert machine.memory.read(table._slot_addr(0) + WORD) == 1


def test_hash_update_pays_key_compare_traffic():
    """One hash bump = one extra load (key compare) and three charged
    instructions over the identical array-table bump."""
    array_machine, hash_machine = _machine(), _machine()
    runtime = _runtime()
    array = runtime.new_table("arr", 64, kind=TableKind.ARRAY)
    hashed = _hash_table(_runtime())
    array.bump(array_machine, 3)
    hashed.bump(hash_machine, 3)
    arr, hsh = array_machine.counters.snapshot(), hash_machine.counters.snapshot()
    assert hsh[Event.LOADS] == arr[Event.LOADS] + 1
    assert hsh[Event.DC_READ] == arr[Event.DC_READ] + 1
    assert hsh[Event.INSTRS] == arr[Event.INSTRS] + 3
    assert hsh[Event.STORES] == arr[Event.STORES]
    assert array.counts == hashed.counts == {3: 1}


def test_out_of_range_updates_are_quarantined():
    """Bad indices (longjmp-interrupted paths) count into
    ``out_of_range`` and issue no memory traffic at all."""
    table = _hash_table(_runtime(), metric_slots=2)
    machine = _machine()
    before = machine.counters.snapshot()
    table.bump(machine, -1)
    table.bump(machine, table.capacity)
    table.accumulate(machine, table.capacity + 7, (5, 9))
    assert table.out_of_range == 3
    assert not table.counts and not table.metrics
    assert machine.counters.snapshot() == before


def test_fast_engine_keeps_hash_tables_on_the_closure_path():
    """_fuse_plan must refuse every hook that targets a hash table."""
    from repro.machine.engine import _TABLE_KINDS, _fuse_plan

    program = parse_program(_many_path_source())
    runtime = _runtime()
    flow = instrument_paths(program, mode="hw", placement="simple", runtime=runtime)
    table = flow.functions["main"].table
    assert table.kind is TableKind.HASH
    machine = Machine(program, engine="fast")
    machine.path_runtime = runtime
    hooks = [
        instr
        for function in program.functions.values()
        for block in function.blocks
        for instr in block.instrs
        if instr.kind in _TABLE_KINDS
    ]
    assert hooks
    assert all(_fuse_plan(machine, instr) is None for instr in hooks)


def test_hash_table_profiles_identical_across_engines():
    """Hash-table instrumented runs (hw mode: accumulate with metrics)
    are bit-identical between the simple and fast engines."""
    source = _many_path_source()
    results = {}
    for engine in ("simple", "fast"):
        program = parse_program(source)
        runtime = ProfilingRuntime(MemoryMap().profiling.base)
        flow = instrument_paths(program, mode="hw", placement="simple", runtime=runtime)
        assert flow.functions["main"].table.kind is TableKind.HASH
        machine = Machine(program, engine=engine)
        machine.path_runtime = runtime
        result = machine.run(0b10101010101010)
        results[engine] = (
            result.counters,
            result.return_value,
            dict(result.region_misses),
            flow.path_counts("main"),
            flow.functions["main"].table.metric_totals(),
        )
    assert results["simple"] == results["fast"]
    assert results["simple"][1] == 7  # seven taken diamonds


def test_array_limit_is_the_hash_cutover():
    runtime = _runtime()
    assert runtime.new_table("a", ARRAY_PATH_LIMIT).kind is TableKind.ARRAY
    assert runtime.new_table("b", ARRAY_PATH_LIMIT + 1).kind is TableKind.HASH
