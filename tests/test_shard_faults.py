"""Fault tolerance of the sharded driver: crash, corrupt, hang, resume.

The guarantee under test: whatever a fault does to a worker — SIGKILL
mid-shard, a dump truncated after the atomic rename, a hang that
trips the timeout — the run (after in-run retries or an explicit
``resume_run``) converges to a CCT and flat profiles **byte-identical
to the serial reference** (:func:`strict_form` on the CCT, exact
count/metric maps on the paths), for shard counts 2 and 4.  The JSONL
run log must also tell the story: retries, corruption reasons, and
timeouts are all observable post mortem.
"""

import json
import os

import pytest

from repro.cct.merge import strict_form
from repro.cct.serialize import CCTLoadError, load_cct
from repro.machine.counters import Event
from repro.tools.faults import FaultPlan
from repro.tools.runlog import read_run_log
from repro.tools.shard_runner import (
    LOG_NAME,
    ShardCheckpointError,
    ShardRunError,
    ShardSpec,
    load_manifest,
    resume_run,
    serial_run,
    shard_run,
)

SOURCE = """
fn helper(x) { if (x % 2 == 0) { return x * 3; } return x + 7; }
fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
fn main(a) {
    var i = 0; var sum = 0;
    while (i < a) { sum = sum + helper(i) + fib(i % 6); i = i + 1; }
    return sum;
}
"""

INPUTS = ((4,), (7,), (2,), (9,), (5,), (3,))


def _spec(**overrides):
    base = dict(
        source=SOURCE, inputs=INPUTS, mode="context_flow", retries=1, backoff=0.01
    )
    base.update(overrides)
    return ShardSpec(**base)


def _profile_facts(profile):
    return {
        name: (dict(fpp.counts), {k: list(v) for k, v in fpp.metrics.items()})
        for name, fpp in profile.functions.items()
    }


def _assert_matches_serial(outcome, reference):
    assert outcome.return_values == reference.return_values
    assert outcome.counters == reference.counters
    for event in Event:
        assert outcome.counters[event] == reference.counters[event], event.name
    if reference.cct is not None:
        assert strict_form(outcome.cct) == strict_form(reference.cct)
    if reference.path_profile is not None:
        assert _profile_facts(outcome.path_profile) == _profile_facts(
            reference.path_profile
        )


def _events(workdir, kind):
    return [
        event
        for event in read_run_log(os.path.join(str(workdir), LOG_NAME))
        if event["event"] == kind
    ]


class TestSigkillMidShard:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_kill_is_retried_transparently(self, tmp_path, shards):
        spec = _spec()
        reference = serial_run(spec)
        outcome = shard_run(
            spec, shards, workdir=str(tmp_path), fault_plan=FaultPlan("kill", 1)
        )
        _assert_matches_serial(outcome, reference)
        retried = _events(tmp_path, "shard_retry")
        assert [event["shard"] for event in retried] == [1]
        exits = [e for e in _events(tmp_path, "shard_exit") if e["shard"] == 1]
        assert exits[0]["exitcode"] != 0 and exits[-1]["exitcode"] == 0

    @pytest.mark.parametrize("shards", [2, 4])
    def test_kill_then_resume_matches_serial(self, tmp_path, shards):
        """The acceptance case: crash with no retry budget, then resume."""
        spec = _spec(retries=0)
        reference = serial_run(spec)
        with pytest.raises(ShardRunError) as info:
            shard_run(
                spec, shards, workdir=str(tmp_path), fault_plan=FaultPlan("kill", 0)
            )
        assert info.value.shard == 0
        assert info.value.manifest == str(tmp_path / "manifest.json")
        # The surviving shards' checkpoints are still on disk and valid.
        assert (tmp_path / "shard1.result.json").exists()
        outcome = resume_run(info.value.manifest)
        _assert_matches_serial(outcome, reference)
        # Resume re-executed only the killed shard.
        starts = _events(tmp_path, "run_start")
        assert starts[-1]["resume"] is True and starts[-1]["pending"] == [0]


class TestTruncatedDump:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_truncated_dump_detected_and_retried(self, tmp_path, shards):
        spec = _spec()
        reference = serial_run(spec)
        outcome = shard_run(
            spec, shards, workdir=str(tmp_path), fault_plan=FaultPlan("truncate", 0)
        )
        _assert_matches_serial(outcome, reference)
        corrupt = _events(tmp_path, "shard_corrupt")
        assert corrupt and corrupt[0]["shard"] == 0
        assert "digest mismatch" in corrupt[0]["reason"]

    def test_truncated_dump_then_resume(self, tmp_path):
        spec = _spec(retries=0)
        reference = serial_run(spec)
        with pytest.raises(ShardRunError):
            shard_run(
                spec, 2, workdir=str(tmp_path), fault_plan=FaultPlan("truncate", 1)
            )
        outcome = resume_run(str(tmp_path / "manifest.json"))
        _assert_matches_serial(outcome, reference)

    def test_truncate_in_flow_mode_hits_result_checkpoint(self, tmp_path):
        """flow_hw has no CCT dump; the torn write hits the result file
        and is caught by the result digest instead."""
        spec = _spec(mode="flow_hw")
        reference = serial_run(spec)
        outcome = shard_run(
            spec, 2, workdir=str(tmp_path), fault_plan=FaultPlan("truncate", 0)
        )
        _assert_matches_serial(outcome, reference)
        assert _events(tmp_path, "shard_corrupt")


class TestHungWorker:
    def test_hang_hits_timeout_and_is_retried(self, tmp_path):
        spec = _spec(timeout=2.0)
        reference = serial_run(spec)
        outcome = shard_run(
            spec, 2, workdir=str(tmp_path), fault_plan=FaultPlan("hang", 1)
        )
        _assert_matches_serial(outcome, reference)
        exits = [e for e in _events(tmp_path, "shard_exit") if e["shard"] == 1]
        assert exits[0]["timed_out"] is True
        assert exits[-1]["timed_out"] is False

    def test_hang_then_resume(self, tmp_path):
        spec = _spec(retries=0, timeout=2.0)
        reference = serial_run(spec)
        with pytest.raises(ShardRunError):
            shard_run(
                spec, 2, workdir=str(tmp_path), fault_plan=FaultPlan("hang", 0)
            )
        outcome = resume_run(str(tmp_path / "manifest.json"))
        _assert_matches_serial(outcome, reference)


class TestCorruptCheckpointErrors:
    def test_load_cct_names_the_corrupt_path(self, tmp_path):
        path = tmp_path / "broken.cct.json"
        path.write_text('{"format": "repro-cct-v1", "records": [')
        with pytest.raises(CCTLoadError) as info:
            load_cct(str(path))
        assert str(path) in str(info.value)
        assert info.value.path == str(path)

    def test_load_cct_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(CCTLoadError, match="not a repro CCT file"):
            load_cct(str(path))

    def test_load_cct_missing_file(self, tmp_path):
        with pytest.raises(CCTLoadError, match="cannot read"):
            load_cct(str(tmp_path / "absent.cct.json"))

    def test_load_cct_structurally_broken_dump(self, tmp_path):
        path = tmp_path / "mangled.cct.json"
        path.write_text(json.dumps({"format": "repro-cct-v1", "records": []}))
        with pytest.raises(CCTLoadError, match="malformed"):
            load_cct(str(path))

    def test_hand_corrupted_checkpoint_is_rebuilt_on_resume(self, tmp_path):
        spec = _spec()
        reference = serial_run(spec)
        shard_run(spec, 2, workdir=str(tmp_path), jobs=1)
        dump = tmp_path / "shard0.cct.json"
        dump.write_bytes(dump.read_bytes()[: dump.stat().st_size // 2])
        outcome = resume_run(str(tmp_path / "manifest.json"))
        _assert_matches_serial(outcome, reference)
        starts = _events(tmp_path, "run_start")
        assert starts[-1]["pending"] == [0]

    def test_manifest_errors_are_typed(self, tmp_path):
        missing = tmp_path / "nope" / "manifest.json"
        with pytest.raises(ShardCheckpointError, match="missing run manifest"):
            load_manifest(str(missing))
        bad = tmp_path / "manifest.json"
        bad.write_text("{not json")
        with pytest.raises(ShardCheckpointError, match="corrupt run manifest"):
            load_manifest(str(bad))


class TestRunLogShape:
    def test_happy_path_log_is_complete(self, tmp_path):
        spec = _spec()
        shard_run(spec, 2, workdir=str(tmp_path), jobs=1)
        events = read_run_log(os.path.join(str(tmp_path), LOG_NAME))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_complete"
        assert kinds.count("shard_start") == 2 == kinds.count("shard_done")
        merge = next(e for e in events if e["event"] == "merge")
        assert merge["shards_merged"] == 2 and merge["cct_digest"]
        # Workers append their own phase events, so the log interleaves
        # several writers; seq is contiguous per writer (the coordinator
        # carries no writer field, each worker stamps a unique one).
        by_writer = {}
        for event in events:
            by_writer.setdefault(event.get("writer"), []).append(event["seq"])
        for writer, seqs in by_writer.items():
            assert seqs == list(range(len(seqs))), f"writer {writer}"
        phases = [e for e in events if e["event"] == "phase"]
        assert phases and all(e["seconds"] >= 0 for e in phases)

    def test_resume_appends_to_the_same_log(self, tmp_path):
        spec = _spec(retries=0)
        with pytest.raises(ShardRunError):
            shard_run(
                spec, 2, workdir=str(tmp_path), fault_plan=FaultPlan("kill", 0)
            )
        resume_run(str(tmp_path / "manifest.json"))
        kinds = [e["event"] for e in read_run_log(os.path.join(str(tmp_path), LOG_NAME))]
        assert kinds.count("run_start") == 2
        assert kinds.count("run_failed") == 1
        assert kinds[-1] == "run_complete"
