"""Hypothesis strategies that generate *valid* CCT structures.

"Valid" means the invariants the on-line runtime maintains hold:

* every non-root record sits in exactly one callee slot of its parent;
* a slot's callees have pairwise-distinct procedure identifiers;
* a procedure already on the ancestor chain is always referenced as a
  recursion backedge to that ancestor, never as a fresh child (the
  ancestor-search rule of paper §4.2);
* per-record path tables follow a fixed per-procedure geometry, the
  way one instrumented program produces identically-shaped tables in
  every run.

The fixed geometry makes any two generated trees merge-compatible, so
the merge-algebra property tests never trip :class:`MergeError` on
structurally inconsistent operands.
"""

from __future__ import annotations

from typing import List, Optional

from hypothesis import strategies as st

from repro.cct.records import ROOT_ID, CalleeList, CallRecord, ListNode
from repro.instrument.tables import CounterTable, TableKind
from repro.machine.counters import Event
from repro.machine.memory import WORD, MemoryMap
from repro.store.encode import StoredFunctionPaths

PROCS = ["alpha", "beta", "gamma", "delta", "epsilon"]

#: slot count per procedure (fixed: one program shape for all trees).
PROC_NSLOTS = {proc: 1 + (index % 3) for index, proc in enumerate(PROCS)}

#: path-table geometry per procedure: (capacity, metric_slots, kind, buckets).
TABLE_SPECS = {
    "alpha": (6, 0, TableKind.ARRAY, 8),
    "beta": (4, 2, TableKind.ARRAY, 8),
    "gamma": (9000, 0, TableKind.HASH, 16),
    "delta": (8, 2, TableKind.ARRAY, 8),
    "epsilon": (5000, 2, TableKind.HASH, 8),
}

METRIC_SLOTS = 3
MAX_DEPTH = 3


class FakeCCT:
    """Duck-typed CCT holder (root/records/heap_bytes protocol)."""

    def __init__(self, root: CallRecord, records: List[CallRecord], heap: int):
        self.root = root
        self.records = records
        self._heap = heap

    def heap_bytes(self) -> int:
        return self._heap


@st.composite
def cct_trees(draw) -> FakeCCT:
    base = MemoryMap().cct.base
    cursor = [base]
    records: List[CallRecord] = []

    def alloc(size: int) -> int:
        addr = cursor[0]
        cursor[0] += size
        return addr

    def new_record(proc: str, parent: Optional[CallRecord], nslots: int) -> CallRecord:
        size = (2 + METRIC_SLOTS + nslots) * WORD
        record = CallRecord(proc, parent, nslots, METRIC_SLOTS, alloc(size))
        record.metrics = [
            draw(st.integers(min_value=0, max_value=50)) for _ in range(METRIC_SLOTS)
        ]
        records.append(record)
        return record

    def add_tables(record: CallRecord) -> None:
        for proc in draw(
            st.lists(st.sampled_from(PROCS), unique=True, max_size=2)
        ):
            capacity, metric_slots, kind, buckets = TABLE_SPECS[proc]
            table = CounterTable(
                f"{proc}@{record.addr:#x}", -1, 0, capacity, metric_slots, kind,
                buckets=buckets,
            )
            table.base = alloc(table.size_bytes())
            keys = draw(
                st.lists(
                    st.integers(min_value=0, max_value=min(capacity - 1, 31)),
                    unique=True,
                    max_size=4,
                )
            )
            for key in keys:
                table.counts[key] = draw(st.integers(min_value=1, max_value=40))
                if metric_slots and draw(st.booleans()):
                    table.metrics[key] = [
                        draw(st.integers(min_value=0, max_value=99))
                        for _ in range(metric_slots)
                    ]
            record.path_tables[proc] = table

    def populate(record: CallRecord, ancestors: dict, depth: int) -> None:
        add_tables(record)
        for slot_index in range(record.nslots):
            shape = draw(st.sampled_from(["empty", "single", "single", "list"]))
            if shape == "empty":
                continue
            count = 1 if shape == "single" else draw(st.integers(1, 3))
            procs = draw(
                st.lists(
                    st.sampled_from(PROCS), unique=True, min_size=count, max_size=count
                )
            )
            callees: List[CallRecord] = []
            for proc in procs:
                if proc in ancestors:
                    # the ancestor-search rule: recursion reuses the
                    # ancestor record via a backedge
                    callees.append(ancestors[proc])
                elif depth < MAX_DEPTH:
                    child = new_record(proc, record, PROC_NSLOTS[proc])
                    populate(child, {**ancestors, proc: child}, depth + 1)
                    callees.append(child)
            if not callees:
                continue
            if shape == "single" and len(callees) == 1:
                record.slots[slot_index] = callees[0]
            else:
                lst = CalleeList()
                lst.nodes = [
                    ListNode(callee, alloc(2 * WORD)) for callee in callees
                ]
                record.slots[slot_index] = lst

    root = new_record(ROOT_ID, None, 1)
    populate(root, {}, 0)
    return FakeCCT(root, records, cursor[0] - base)


@st.composite
def counter_banks(draw) -> dict:
    """A hardware-counter bank: a sparse ``{Event: count}`` map.

    The events the store's drift detector gates on are always present
    (so perturbing one of them is always observable); the rest of the
    bank is a random sparse sample.
    """
    bank = {
        event: draw(st.integers(min_value=0, max_value=1_000_000))
        for event in (
            Event.INSTRS, Event.CYCLES, Event.DC_MISS, Event.IC_MISS,
            Event.BR_MISPRED,
        )
    }
    for event in draw(st.lists(st.sampled_from(list(Event)), unique=True, max_size=4)):
        bank.setdefault(event, draw(st.integers(min_value=0, max_value=1_000_000)))
    return bank


@st.composite
def stored_path_profiles(draw) -> dict:
    """A flat path profile: ``{function: StoredFunctionPaths}``.

    The shape a live :class:`~repro.profiles.pathprofile.PathProfile`
    reduces to in the store — sparse path-sum counts plus optional
    two-slot metric vectors on a subset of the counted paths.
    """
    functions = {}
    for name in draw(st.lists(st.sampled_from(PROCS), unique=True, max_size=3)):
        potential = draw(st.integers(min_value=1, max_value=64))
        sums = draw(
            st.lists(
                st.integers(min_value=0, max_value=potential - 1),
                unique=True,
                max_size=5,
            )
        )
        counts = {
            path_sum: draw(st.integers(min_value=1, max_value=10_000))
            for path_sum in sums
        }
        metrics = {
            path_sum: [
                draw(st.integers(min_value=0, max_value=10_000)) for _ in range(2)
            ]
            for path_sum in sums
            if draw(st.booleans())
        }
        functions[name] = StoredFunctionPaths(potential, counts, metrics)
    return functions
