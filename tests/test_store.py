"""Property tests for the content-addressed profile store.

The store's contract, over generated profiles rather than hand-rolled
fixtures:

* a save/load cycle is bit-identical — counters, path profiles, and
  the CCT (by :func:`~repro.cct.merge.strict_form`) all round-trip;
* re-saving identical content is a no-op returning the same run id
  (content addressing makes saves idempotent);
* a truncated or tampered blob is a typed :class:`StoreError` naming
  the damaged path, never a silently wrong profile;
* refs (``latest``, ``latest~N``, ``workload:latest``, id prefixes)
  resolve as documented and fail as typed errors.
"""

from __future__ import annotations

import json
import os
import tempfile

import pytest
from hypothesis import given, settings

from repro.cct.merge import strict_form
from repro.session import ProfileSpec
from repro.store import ProfileStore, StoreError
from repro.store.encode import counters_to_json

from tests.cct_strategies import cct_trees, counter_banks, stored_path_profiles

FEW = settings(max_examples=25, deadline=None)

SPEC = ProfileSpec(mode="context_flow")


def _record(counters, workload="bench", fingerprint="f" * 64, spec=SPEC):
    return {
        "spec": spec.to_json(),
        "spec_digest": spec.digest(),
        "workload": workload,
        "code_fingerprint": fingerprint,
        "counters": counters_to_json(counters),
        "return_values": [0],
    }


class TestRoundTrip:
    @FEW
    @given(counter_banks(), stored_path_profiles(), cct_trees())
    def test_save_load_is_bit_identical(self, counters, paths, cct):
        with tempfile.TemporaryDirectory() as root:
            store = ProfileStore(root)
            run_id = store.save_record(_record(counters), cct=cct, paths=paths)
            loaded = store.load(run_id)
        assert loaded.counters == counters
        assert loaded.paths == paths
        assert strict_form(loaded.cct) == strict_form(cct)
        assert loaded.spec == SPEC
        assert loaded.spec_digest == SPEC.digest()
        assert loaded.workload == "bench"
        assert loaded.return_values == [0]

    @FEW
    @given(counter_banks(), stored_path_profiles(), cct_trees())
    def test_resave_is_a_noop(self, counters, paths, cct):
        with tempfile.TemporaryDirectory() as root:
            store = ProfileStore(root)
            first = store.save_record(_record(counters), cct=cct, paths=paths)
            files_before = sorted(
                os.path.join(dirpath, name)
                for dirpath, _, names in os.walk(root)
                for name in names
            )
            index_before = open(store.index_path).read()
            second = store.save_record(_record(counters), cct=cct, paths=paths)
            files_after = sorted(
                os.path.join(dirpath, name)
                for dirpath, _, names in os.walk(root)
                for name in names
            )
            assert second == first
            assert files_after == files_before
            assert open(store.index_path).read() == index_before
            assert len(store.entries()) == 1

    def test_different_content_different_ids(self, tmp_path):
        from repro.machine.counters import Event

        store = ProfileStore(str(tmp_path))
        a = store.save_record(_record({Event.INSTRS: 100}))
        b = store.save_record(_record({Event.INSTRS: 101}))
        assert a != b
        assert len(store.entries()) == 2


class TestCorruption:
    def _stored(self, root, cct=None, paths=None):
        from repro.machine.counters import Event

        store = ProfileStore(root)
        run_id = store.save_record(
            _record({Event.INSTRS: 500, Event.CYCLES: 900}), cct=cct, paths=paths
        )
        return store, run_id

    def test_truncated_record_blob_is_typed_error(self, tmp_path):
        store, run_id = self._stored(str(tmp_path))
        path = store._object_path(run_id)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        with pytest.raises(StoreError) as info:
            store.load(run_id)
        assert info.value.path == path
        assert "does not match its digest" in info.value.reason

    @FEW
    @given(cct_trees())
    def test_truncated_cct_blob_names_the_path(self, cct):
        with tempfile.TemporaryDirectory() as root:
            store, run_id = self._stored(root, cct=cct)
            digest = store.load(run_id).record["blobs"]["cct"]
            path = store._object_path(digest)
            with open(path, "r+b") as handle:
                handle.truncate(os.path.getsize(path) // 2)
            with pytest.raises(StoreError) as info:
                store.load(run_id)
            assert info.value.path == path

    def test_missing_blob_is_typed_error(self, tmp_path):
        from tests.cct_strategies import FakeCCT  # noqa: F401  (doc anchor)

        store, run_id = self._stored(str(tmp_path))
        os.unlink(store._object_path(run_id))
        with pytest.raises(StoreError) as info:
            store.load(run_id)
        assert "missing" in info.value.reason

    def test_corrupt_index_is_typed_error(self, tmp_path):
        store, _ = self._stored(str(tmp_path))
        with open(store.index_path, "w") as handle:
            handle.write('{"truncated')
        with pytest.raises(StoreError) as info:
            store.entries()
        assert info.value.path == store.index_path

    def test_malformed_record_is_typed_error(self, tmp_path):
        store, run_id = self._stored(str(tmp_path))
        record = json.load(open(store._object_path(run_id)))
        record["counters"] = {"NO_SUCH_EVENT": 1}
        data = json.dumps(record, sort_keys=True).encode()
        bad_id = store._put_bytes(data)
        index = store._load_index()
        index["runs"].append(
            {
                "run": bad_id,
                "seq": 99,
                "spec_digest": record["spec_digest"],
                "workload": record["workload"],
                "code_fingerprint": record["code_fingerprint"],
                "mode": record["spec"]["mode"],
            }
        )
        from repro.store.iojson import write_json_atomic

        write_json_atomic(store.index_path, index)
        with pytest.raises(StoreError) as info:
            store.load(bad_id)
        assert "malformed run record" in info.value.reason


class TestRefs:
    def _three(self, root):
        from repro.machine.counters import Event

        store = ProfileStore(root)
        ids = [
            store.save_record(
                _record({Event.INSTRS: count}, workload=workload)
            )
            for count, workload in ((1, "a"), (2, "b"), (3, "a"))
        ]
        return store, ids

    def test_latest_and_history(self, tmp_path):
        store, ids = self._three(str(tmp_path))
        assert store.resolve("latest") == ids[2]
        assert store.resolve("latest~1") == ids[1]
        assert store.resolve("latest~2") == ids[0]

    def test_workload_scoped_refs(self, tmp_path):
        store, ids = self._three(str(tmp_path))
        assert store.resolve("a:latest") == ids[2]
        assert store.resolve("a:latest~1") == ids[0]
        assert store.resolve("b:latest") == ids[1]

    def test_prefix_refs(self, tmp_path):
        store, ids = self._three(str(tmp_path))
        assert store.resolve(ids[0][:12]) == ids[0]
        assert store.resolve(ids[0]) == ids[0]

    @pytest.mark.parametrize(
        "ref", ["", "latest~9", "zz:latest", "abc", "deadbeef", "x:y:latest~x"]
    )
    def test_bad_refs_are_typed_errors(self, tmp_path, ref):
        store, _ = self._three(str(tmp_path))
        with pytest.raises(StoreError):
            store.resolve(ref)

    def test_baseline_for_same_spec_and_workload(self, tmp_path):
        store, ids = self._three(str(tmp_path))
        latest_a = store.load("a:latest")
        baseline = store.baseline_for(latest_a)
        assert baseline is not None and baseline.run_id == ids[0]
        # the oldest run of each key has no baseline
        assert store.baseline_for(store.load(ids[0])) is None
        assert store.baseline_for(store.load(ids[1])) is None

    def test_baseline_for_same_code_walks_one_lineage(self, tmp_path):
        from repro.machine.counters import Event

        store = ProfileStore(str(tmp_path))
        ids = [
            store.save_record(
                _record({Event.INSTRS: count}, workload="a", fingerprint=fp)
            )
            for count, fp in ((1, "f" * 64), (2, "e" * 64), (3, "f" * 64))
        ]
        latest = store.load(ids[2])
        # Default: the gate compares across code versions — nearest
        # earlier run wins regardless of fingerprint.
        assert store.baseline_for(latest).run_id == ids[1]
        # same_code=True: the PGO lineage — skip the foreign-code run.
        assert store.baseline_for(latest, same_code=True).run_id == ids[0]
        middle = store.load(ids[1])
        assert store.baseline_for(middle, same_code=True) is None


class TestSessionSink:
    SOURCE = """
    fn main() {
        var i = 0; var sum = 0;
        while (i < 12) { sum = sum + i * i; i = i + 1; }
        return sum;
    }
    """

    def test_session_run_persists_and_logs_store_phase(self, tmp_path):
        from repro.lang import compile_source
        from repro.session import ProfileSession, ProfileSpec
        from repro.tools.runlog import RunLog

        log_path = str(tmp_path / "run.log.jsonl")
        store = ProfileStore(str(tmp_path / "store"))
        session = ProfileSession(log=RunLog(log_path))
        spec = ProfileSpec(mode="context_flow")
        run = session.run(
            spec, compile_source(self.SOURCE), store=store, workload="unit"
        )
        assert run.stored_as is not None
        loaded = store.load(run.stored_as)
        assert loaded.workload == "unit"
        assert loaded.counters == dict(run.result.counters)
        assert strict_form(loaded.cct) == strict_form(run.cct)
        phases = [
            json.loads(line)["phase"]
            for line in open(log_path)
            if json.loads(line).get("event") == "phase"
        ]
        assert phases == ["clone", "instrument", "decode", "run", "collect", "store"]

    def test_kflow_run_round_trips_with_stable_spec_digest(self, tmp_path):
        """A persisted kflow run reloads bit-identically, keyed under a
        spec digest that is deterministic and distinct per k."""
        from repro.lang import compile_source
        from repro.session import ProfileSession, ProfileSpec

        store = ProfileStore(str(tmp_path))
        program = compile_source(self.SOURCE)
        spec = ProfileSpec(mode="kflow", k=2)
        run = ProfileSession().run(
            spec, program, store=store, workload="unit"
        )
        loaded = store.load(run.stored_as)
        assert loaded.spec == spec
        assert loaded.spec_digest == spec.digest()
        assert loaded.counters == dict(run.result.counters)
        assert set(loaded.paths) == set(run.path_profile.functions)
        for name, stored in loaded.paths.items():
            fpp = run.path_profile.functions[name]
            assert stored.counts == dict(fpp.counts)
            assert stored.metrics == {
                k: list(v) for k, v in fpp.metrics.items()
            }
        # The digest is reproducible across processes (pure data) and
        # splits the store's compatibility key by k.
        assert ProfileSpec(mode="kflow", k=2).digest() == spec.digest()
        assert ProfileSpec(mode="kflow", k=3).digest() != spec.digest()
        rerun = ProfileSession().run(
            spec, program, store=store, workload="unit"
        )
        assert rerun.stored_as == run.stored_as  # content-addressed

    def test_identical_session_runs_share_one_run_id(self, tmp_path):
        from repro.lang import compile_source
        from repro.session import ProfileSession, ProfileSpec

        store = ProfileStore(str(tmp_path))
        program = compile_source(self.SOURCE)
        spec = ProfileSpec(mode="context_flow")
        first = ProfileSession().run(spec, program, store=store, workload="unit")
        second = ProfileSession().run(spec, program, store=store, workload="unit")
        assert first.stored_as == second.stored_as
        assert len(store.entries()) == 1
