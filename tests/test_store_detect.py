"""Differential tests for the store's regression-detector algebra.

The detector contract:

* ``diff(p, p)`` is all-``ok`` — identity produces no findings;
* ``diff(a, b)`` and ``diff(b, a)`` are exact mirrors at the judged-
  pair level — every finding maps through ``degradation <->
  optimization`` with ``ok`` fixed (the symmetric-denominator judge
  makes this exact, not approximate); detector and report verdicts
  are severity maxima over those mirrored pairs, so a mixed result is
  a degradation in *both* diff directions (a regression never nets
  out against an unrelated improvement) — the reverse report is
  therefore fully *derivable* from the forward one, which is what the
  mirror test checks;
* profiles with different spec digests refuse to diff (typed
  :class:`DetectError`);
* a counter perturbation injected with
  :func:`repro.profiles.perturbation.inject_counter_perturbation`
  flips the gate from ``ok`` to ``degradation``;
* a serial run and its sharded-then-merged twin store identically and
  diff with no spurious deltas.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.machine.counters import Event
from repro.profiles.perturbation import inject_counter_perturbation
from repro.session import ProfileSpec
from repro.store import (
    DetectError,
    ProfileStore,
    StoredProfile,
    Thresholds,
    Verdict,
    diff_profiles,
)
from repro.store.detect import MIRROR, worst

from tests.cct_strategies import cct_trees, counter_banks, stored_path_profiles

FEW = settings(max_examples=25, deadline=None)

SPEC = ProfileSpec(mode="context_flow")
DIGEST = SPEC.digest()


def _profile(counters, cct=None, paths=None, run_id="a" * 64, seq=1):
    return StoredProfile(
        run_id=run_id,
        spec=SPEC,
        spec_digest=DIGEST,
        workload="bench",
        code_fingerprint="f" * 64,
        counters=counters,
        return_values=[0],
        seq=seq,
        cct=cct,
        paths=paths,
    )


class TestIdentity:
    @FEW
    @given(counter_banks(), stored_path_profiles(), cct_trees())
    def test_diff_of_a_profile_with_itself_is_all_ok(self, counters, paths, cct):
        profile = _profile(counters, cct=cct, paths=paths)
        report = diff_profiles(profile, profile)
        assert report.verdict is Verdict.OK
        assert [d.name for d in report.detectors] == [
            "counters", "contexts", "hot_paths",
        ]
        for detector in report.detectors:
            assert detector.verdict is Verdict.OK
        assert report.findings == []


def _normalized(finding, swap: bool):
    """A finding modulo diff direction: hot-path churn labels swap
    entered<->exited and every verdict mirrors when the operands do."""
    subject = finding.subject.replace(" entered ", " # ").replace(" exited ", " # ")
    if swap:
        return (
            finding.detector,
            subject,
            finding.candidate,
            finding.baseline,
            MIRROR[finding.verdict],
        )
    return (
        finding.detector,
        subject,
        finding.baseline,
        finding.candidate,
        finding.verdict,
    )


class TestMirror:
    @FEW
    @given(
        counter_banks(), counter_banks(),
        stored_path_profiles(), stored_path_profiles(),
        cct_trees(), cct_trees(),
    )
    def test_swapping_operands_mirrors_every_verdict(
        self, bank_a, bank_b, paths_a, paths_b, cct_a, cct_b
    ):
        a = _profile(bank_a, cct=cct_a, paths=paths_a, run_id="a" * 64, seq=1)
        b = _profile(bank_b, cct=cct_b, paths=paths_b, run_id="b" * 64, seq=2)
        forward = diff_profiles(a, b)
        reverse = diff_profiles(b, a)

        # Every level of the reverse report is derivable from the
        # forward one.  Counters/contexts verdicts are severity maxes
        # over their judged pairs, so the expected reverse verdict is
        # the max of the mirrored pair verdicts — NOT blindly
        # MIRROR[verdict]: an event that degraded next to one that
        # improved leaves the detector degraded in both directions.
        # Hot-path churn is one antisymmetric judgement, so it mirrors
        # exactly.
        def expected_reverse(detector):
            if detector.name == "hot_paths":
                return MIRROR[detector.verdict]
            return worst(MIRROR[f.verdict] for f in detector.findings)

        expected = [expected_reverse(d) for d in forward.detectors]
        assert reverse.verdict is worst(expected)
        assert len(forward.detectors) == len(reverse.detectors)
        for fwd, rev, exp in zip(forward.detectors, reverse.detectors, expected):
            assert fwd.name == rev.name
            assert rev.verdict is exp
            assert rev.checked == fwd.checked
            assert sorted(_normalized(f, swap=True) for f in fwd.findings) == sorted(
                _normalized(f, swap=False) for f in rev.findings
            )


class TestCompatibility:
    def test_different_spec_digests_refuse_to_diff(self):
        other = ProfileSpec(mode="context_hw")
        a = _profile({Event.INSTRS: 1000})
        b = StoredProfile(
            run_id="b" * 64,
            spec=other,
            spec_digest=other.digest(),
            workload="bench",
            code_fingerprint="f" * 64,
            counters={Event.INSTRS: 1000},
            return_values=[0],
            seq=2,
        )
        with pytest.raises(DetectError) as info:
            diff_profiles(a, b)
        assert "not spec-compatible" in str(info.value)

    def test_cct_root_mismatch_is_detect_error(self):
        from repro.cct.records import CallRecord

        left = CallRecord("<root>", None, 1, 3, 0)
        right = CallRecord("other", None, 1, 3, 0)
        a = _profile({Event.INSTRS: 1000})
        b = _profile({Event.INSTRS: 1000}, run_id="b" * 64, seq=2)
        a.cct, b.cct = left, right
        with pytest.raises(DetectError):
            diff_profiles(a, b)


class TestThresholds:
    def test_pairs_below_the_count_floor_are_noise(self):
        t = Thresholds(min_count=32)
        assert t.judge(0, 31) is Verdict.OK
        assert t.judge(31, 0) is Verdict.OK
        assert t.judge(0, 32) is Verdict.DEGRADATION
        assert t.judge(32, 0) is Verdict.OPTIMIZATION

    def test_ratio_boundary_is_exclusive(self):
        t = Thresholds(ratio=0.05, min_count=0)
        assert t.judge(100, 105) is Verdict.OK  # exactly 5% of max(100,105)? no:
        # (105-100)/105 ≈ 0.0476 <= 0.05 -> ok
        assert t.judge(100, 112) is Verdict.DEGRADATION
        assert t.judge(112, 100) is Verdict.OPTIMIZATION

    def test_worst_orders_degradation_over_optimization_over_ok(self):
        assert worst([]) is Verdict.OK
        assert worst([Verdict.OK, Verdict.OPTIMIZATION]) is Verdict.OPTIMIZATION
        assert (
            worst([Verdict.OPTIMIZATION, Verdict.DEGRADATION, Verdict.OK])
            is Verdict.DEGRADATION
        )


SOURCE = """
fn work(n) {
    var i = 0; var sum = 0;
    while (i < n) { sum = sum + i * 3; i = i + 1; }
    return sum;
}
fn main(n) {
    var j = 0; var out = 0;
    while (j < 4) { out = out + work(n + j); j = j + 1; }
    return out;
}
"""


class TestPerturbationGate:
    def test_injected_counter_perturbation_flips_the_gate(self, tmp_path):
        """The acceptance experiment: store one real run, store a twin
        whose counter bank carries an injected perturbation, and the
        gate must flip from trivially-ok to degradation."""
        from repro.lang import compile_source
        from repro.session import ProfileSession
        from repro.store.encode import counters_to_json

        store = ProfileStore(str(tmp_path))
        session = ProfileSession()
        run = session.run(
            SPEC, compile_source(SOURCE), (25,), store=store, workload="gate"
        )
        baseline = store.load(run.stored_as)

        perturbed = inject_counter_perturbation(
            dict(run.result.counters), Event.INSTRS, 1.5
        )
        record = dict(baseline.record)
        record.pop("blobs", None)
        record["counters"] = counters_to_json(perturbed)
        slow_id = store.save_record(record, cct=run.cct, paths=None)
        slow = store.load(slow_id)

        assert store.baseline_for(slow).run_id == baseline.run_id
        report = diff_profiles(baseline, slow)
        assert report.verdict is Verdict.DEGRADATION
        counters_report = next(d for d in report.detectors if d.name == "counters")
        assert any(
            f.subject == "INSTRS" and f.verdict is Verdict.DEGRADATION
            for f in counters_report.findings
        )
        # ...and the mirror direction reports an optimization.
        assert diff_profiles(slow, baseline).verdict is Verdict.OPTIMIZATION

    def test_unperturbed_twin_passes(self, tmp_path):
        from repro.lang import compile_source
        from repro.session import ProfileSession

        store = ProfileStore(str(tmp_path))
        program = compile_source(SOURCE)
        first = ProfileSession().run(SPEC, program, (25,), store=store, workload="g")
        second = ProfileSession().run(SPEC, program, (25,), store=store, workload="g")
        a, b = store.load(first.stored_as), store.load(second.stored_as)
        report = diff_profiles(a, b)
        assert report.verdict is Verdict.OK
        assert report.findings == []


class TestSerialShardedTwin:
    def test_serial_and_sharded_store_identically_and_diff_clean(self, tmp_path):
        """The merge algebra's bit-identity, witnessed end to end
        through the store: a serial run and its sharded-then-merged
        twin content-address to the *same* run id, and diff all-ok."""
        from repro.tools.shard_runner import ShardSpec, serial_run, shard_run

        spec = ShardSpec(
            source=SOURCE,
            inputs=[(10,), (17,), (23,), (31,)],
            mode="context_flow",
        )
        serial = serial_run(spec)
        sharded = shard_run(spec, shards=2, jobs=1)

        store = ProfileStore(str(tmp_path))
        serial_id = store.save_outcome(serial, workload="twin")
        sharded_id = store.save_outcome(sharded, workload="twin")
        assert serial_id == sharded_id
        assert len(store.entries()) == 1

        report = diff_profiles(store.load(serial_id), store.load(sharded_id))
        assert report.verdict is Verdict.OK
        assert report.findings == []
        assert [d.name for d in report.detectors] == [
            "counters", "contexts", "hot_paths",
        ]
