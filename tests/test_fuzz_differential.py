"""Differential fuzzing: both engines, random programs, every mode.

The hand-built workload suite exercises the engines on *realistic*
control flow; this suite exercises them on *adversarial* control flow
— randomly composed branches, counted loops, call DAGs, and scratch
loads/stores from ``tests/ir_strategies.py`` — and requires the
predecoded engine to match the reference interpreter bit for bit on
every run fact: all sixteen hardware counters, the return value,
per-region miss attribution, path profiles (counts and per-path
metric vectors), and exact CCT state (:func:`strict_form`).

The examples are derandomized (fixed seed), so a CI failure is
reproducible locally with the same example count.  The bound comes
from ``REPRO_FUZZ_EXAMPLES`` (default 15; CI's smoke job raises it).
"""

import os

from hypothesis import HealthCheck, given, settings

from repro.cct.merge import strict_form
from repro.machine.counters import Event
from repro.tools.pp import PP

from tests.ir_strategies import ir_programs

EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "15"))

#: Every instrumented profiling configuration of Table 1.
MODES = ("flow_hw", "context_hw", "context_flow")

FUZZ_SETTINGS = settings(
    max_examples=EXAMPLES,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _facts(run):
    return (
        dict(run.result.counters),
        run.result.return_value,
        run.result.region_misses,
    )


def _path_facts(run):
    if run.path_profile is None:
        return None
    return {
        name: (dict(fpp.counts), {k: list(v) for k, v in fpp.metrics.items()})
        for name, fpp in run.path_profile.functions.items()
    }


def _assert_engines_identical(config, simple_run, fast_run):
    simple_counters, simple_rv, simple_rm = _facts(simple_run)
    fast_counters, fast_rv, fast_rm = _facts(fast_run)
    diverging = {
        event.name: (simple_counters.get(event), fast_counters.get(event))
        for event in Event
        if simple_counters.get(event) != fast_counters.get(event)
    }
    assert not diverging, f"{config}: counter divergence {diverging}"
    assert simple_rv == fast_rv, f"{config}: return value"
    assert simple_rm == fast_rm, f"{config}: region misses"
    assert _path_facts(simple_run) == _path_facts(fast_run), (
        f"{config}: path profiles diverge"
    )
    if simple_run.cct is not None or fast_run.cct is not None:
        assert strict_form(simple_run.cct) == strict_form(fast_run.cct), (
            f"{config}: CCT state diverges"
        )


@FUZZ_SETTINGS
@given(program=ir_programs())
def test_fuzz_engines_agree_uninstrumented(program):
    simple = PP(engine="simple").baseline(program)
    fast = PP(engine="fast").baseline(program)
    _assert_engines_identical("base", simple, fast)


@FUZZ_SETTINGS
@given(program=ir_programs())
def test_fuzz_engines_agree_flow(program):
    simple = PP(engine="simple").flow_hw(program)
    fast = PP(engine="fast").flow_hw(program)
    _assert_engines_identical("flow_hw", simple, fast)


@FUZZ_SETTINGS
@given(program=ir_programs())
def test_fuzz_engines_agree_context(program):
    simple = PP(engine="simple").context_hw(program)
    fast = PP(engine="fast").context_hw(program)
    _assert_engines_identical("context_hw", simple, fast)


@FUZZ_SETTINGS
@given(program=ir_programs())
def test_fuzz_engines_agree_combined(program):
    simple = PP(engine="simple").context_flow(program)
    fast = PP(engine="fast").context_flow(program)
    _assert_engines_identical("context_flow", simple, fast)


@FUZZ_SETTINGS
@given(program=ir_programs())
def test_fuzz_reference_interpreter_agrees(program):
    """The generated programs also satisfy the pure-Python reference
    semantics: both engines return what the instruction-set reference
    interpreter computes (a semantics check, not just engine parity)."""
    from repro.machine.reference import ReferenceInterpreter

    expected = ReferenceInterpreter(program).run()
    for engine in ("simple", "fast"):
        run = PP(engine=engine).baseline(program)
        assert run.result.return_value == expected, engine
