"""Differential fuzzing: every engine tier, random programs, every mode.

The hand-built workload suite exercises the engines on *realistic*
control flow; this suite exercises them on *adversarial* control flow
— randomly composed branches, counted loops, call DAGs, and scratch
loads/stores from ``tests/ir_strategies.py`` — and requires the
predecoded engine and the superblock trace tier to match the reference
interpreter bit for bit on every run fact: all sixteen hardware
counters, the return value, per-region miss attribution, path profiles
(counts and per-path metric vectors), and exact CCT state
(:func:`strict_form`).

The trace tier's heat threshold is pinned low (``REPRO_TRACE_THRESHOLD
= 2``) for every test here: generated loops run only a handful of
iterations, and the whole point is to force traces to compile, run,
and deoptimize on tiny adversarial programs.  A dedicated hot-loop
test additionally draws programs with 8–32-iteration loops so compiled
superblocks take their back-edge many times before deopting.

The examples are derandomized (fixed seed), so a CI failure is
reproducible locally with the same example count.  The bound comes
from ``REPRO_FUZZ_EXAMPLES`` (default 15; CI's smoke job raises it).
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings

from repro.cct.merge import strict_form
from repro.machine.counters import Event
from repro.tools.pp import PP

from tests.ir_strategies import ir_hot_programs, ir_programs

EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "15"))

#: Every instrumented profiling configuration of Table 1.
MODES = ("flow_hw", "context_hw", "context_flow")

#: Compiled engine tiers checked against the reference interpreter.
TIERS = ("fast", "trace")

FUZZ_SETTINGS = settings(
    max_examples=EXAMPLES,
    derandomize=True,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        # The autouse threshold fixture is per-test, not per-example,
        # which is exactly what we want (it only sets an env var).
        HealthCheck.function_scoped_fixture,
    ],
)


@pytest.fixture(autouse=True)
def _hot_traces(monkeypatch):
    # Fuzzed loops run 1–5 iterations; drop the heat threshold so the
    # trace tier actually compiles (and deopts) on these tiny programs.
    monkeypatch.setenv("REPRO_TRACE_THRESHOLD", "2")


def _facts(run):
    return (
        dict(run.result.counters),
        run.result.return_value,
        run.result.region_misses,
    )


def _path_facts(run):
    if run.path_profile is None:
        return None
    return {
        name: (dict(fpp.counts), {k: list(v) for k, v in fpp.metrics.items()})
        for name, fpp in run.path_profile.functions.items()
    }


def _assert_engines_identical(config, simple_run, tier_run):
    simple_counters, simple_rv, simple_rm = _facts(simple_run)
    tier_counters, tier_rv, tier_rm = _facts(tier_run)
    diverging = {
        event.name: (simple_counters.get(event), tier_counters.get(event))
        for event in Event
        if simple_counters.get(event) != tier_counters.get(event)
    }
    assert not diverging, f"{config}: counter divergence {diverging}"
    assert simple_rv == tier_rv, f"{config}: return value"
    assert simple_rm == tier_rm, f"{config}: region misses"
    assert _path_facts(simple_run) == _path_facts(tier_run), (
        f"{config}: path profiles diverge"
    )
    if simple_run.cct is not None or tier_run.cct is not None:
        assert strict_form(simple_run.cct) == strict_form(tier_run.cct), (
            f"{config}: CCT state diverges"
        )


def _check_all_tiers(config, mode, program):
    simple = getattr(PP(engine="simple"), mode)(program)
    for engine in TIERS:
        tier = getattr(PP(engine=engine), mode)(program)
        _assert_engines_identical(f"{config}/{engine}", simple, tier)


@FUZZ_SETTINGS
@given(program=ir_programs())
def test_fuzz_engines_agree_uninstrumented(program):
    _check_all_tiers("base", "baseline", program)


@FUZZ_SETTINGS
@given(program=ir_programs())
def test_fuzz_engines_agree_flow(program):
    _check_all_tiers("flow_hw", "flow_hw", program)


@FUZZ_SETTINGS
@given(program=ir_programs())
def test_fuzz_engines_agree_context(program):
    _check_all_tiers("context_hw", "context_hw", program)


@FUZZ_SETTINGS
@given(program=ir_programs())
def test_fuzz_engines_agree_combined(program):
    _check_all_tiers("context_flow", "context_flow", program)


#: Iteration spans the multi-iteration path mode is fuzzed at.  k=1 is
#: the flow_hw-equivalent degenerate case; 2 and 4 force the packed
#: register through cross-layer bumps and cycle commits.
KFLOW_SPANS = (1, 2, 4)


@FUZZ_SETTINGS
@given(program=ir_programs())
def test_fuzz_engines_agree_kflow(program):
    """Multi-iteration path probes (KPathAdd/KHwcCycle/KHwcExit) fuse
    into the compiled tiers bit-identically for every iteration span:
    same counters, same k-path counts, same per-path metric vectors."""
    for k in KFLOW_SPANS:
        simple = PP(engine="simple").kflow(program, k=k)
        for engine in TIERS:
            tier = PP(engine=engine).kflow(program, k=k)
            _assert_engines_identical(f"kflow[k={k}]/{engine}", simple, tier)


@FUZZ_SETTINGS
@given(program=ir_hot_programs())
def test_fuzz_trace_agrees_on_hot_kflow_loops(program):
    """Hot loops under k=2: compiled superblocks carry the packed
    path+layer register across many back-edges — every cycle commit
    and the deopt handoff must preserve it exactly."""
    simple = PP(engine="simple").kflow(program, k=2)
    for engine in TIERS:
        tier = PP(engine=engine).kflow(program, k=2)
        _assert_engines_identical(f"hot/kflow[k=2]/{engine}", simple, tier)


@FUZZ_SETTINGS
@given(program=ir_hot_programs())
def test_fuzz_trace_agrees_on_hot_loops(program):
    """Hot counted loops: compiled superblocks take their back-edge
    many times, then deoptimize at the loop exit — under the mode
    where every flow probe is fused into the trace body."""
    _check_all_tiers("hot/base", "baseline", program)
    _check_all_tiers("hot/flow_hw", "flow_hw", program)


@FUZZ_SETTINGS
@given(program=ir_programs())
def test_fuzz_reference_interpreter_agrees(program):
    """The generated programs also satisfy the pure-Python reference
    semantics: every engine returns what the instruction-set reference
    interpreter computes (a semantics check, not just engine parity)."""
    from repro.machine.reference import ReferenceInterpreter

    expected = ReferenceInterpreter(program).run()
    for engine in ("simple", *TIERS):
        run = PP(engine=engine).baseline(program)
        assert run.result.return_value == expected, engine
