"""On-line CCT construction vs. the defining DCT projection (§4)."""

import pytest

from repro.cct.dct import (
    DynamicCallGraph,
    DynamicCallRecorder,
    canonical_projected,
    canonical_record,
    project_cct,
)
from repro.cct.runtime import CCTRuntime
from repro.instrument.cctinstr import instrument_context
from repro.machine.memory import MemoryMap
from repro.machine.vm import Machine

from tests.conftest import compile_corpus


def _dct(corpus_name: str):
    program = compile_corpus(corpus_name)
    machine = Machine(program)
    recorder = DynamicCallRecorder()
    machine.tracer = recorder
    result = machine.run()
    return recorder.tree, result


def _cct(corpus_name: str, **kwargs):
    program = compile_corpus(corpus_name)
    instrument_context(program, **kwargs)
    runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=True)
    machine = Machine(program)
    machine.cct_runtime = runtime
    result = machine.run()
    return runtime, result


class TestOnlineEqualsProjection:
    """The runtime must build exactly the projected CCT (Figures 4/5)."""

    def test_structures_match(self, corpus_name):
        dct, clean = _dct(corpus_name)
        runtime, instrumented = _cct(corpus_name)
        assert instrumented.return_value == clean.return_value
        assert canonical_record(runtime.root) == canonical_projected(project_cct(dct))

    def test_frequency_equals_activations(self, corpus_name):
        dct, _ = _dct(corpus_name)
        runtime, _ = _cct(corpus_name)
        activations = dct.size()
        total_freq = sum(
            record.metrics[0] for record in runtime.records
            if record is not runtime.root
        )
        assert total_freq == activations


class TestRecursion:
    def test_recursive_calls_share_one_record(self):
        runtime, _ = _cct("fib")
        fib_records = [r for r in runtime.records if r.id == "fib"]
        assert len(fib_records) == 1
        assert runtime.stats.backedges_created > 0

    def test_mutual_recursion_bounded_depth(self):
        runtime, _ = _cct("mutual_recursion")
        names = {r.id for r in runtime.records if r is not runtime.root}
        # even/odd each appear at most twice: under main, and under the
        # other (before the ancestor rule kicks in).
        for record in runtime.records:
            chain = record.context()
            assert len(chain) == len(set(chain)), chain

    def test_depth_bounded_by_procedure_count(self, corpus_name):
        """CCT depth never exceeds the number of procedures (§4.1)."""
        runtime, _ = _cct(corpus_name)
        program = compile_corpus(corpus_name)
        nprocs = len(program.functions)
        for record in runtime.records:
            assert len(record.context()) <= nprocs + 1  # + root


class TestContexts:
    def test_deep_calls_distinguish_contexts(self):
        runtime, _ = _cct("deep_calls")
        l4_contexts = {
            " -> ".join(r.context())
            for r in runtime.records
            if r.id == "l4"
        }
        # l4 is reachable via l3 from two call sites of l2.
        assert len(l4_contexts) >= 1
        l3_records = [r for r in runtime.records if r.id == "l3"]
        assert len(l3_records) == 2  # two call sites in l2

    def test_dcg_loses_what_cct_keeps(self):
        dct, _ = _dct("deep_calls")
        dcg = DynamicCallGraph.from_dct(dct)
        # DCG has one l3 vertex; the CCT kept two contexts.
        assert dcg.procs["l3"] >= 2
        runtime, _ = _cct("deep_calls")
        assert len([r for r in runtime.records if r.id == "l3"]) == 2


class TestPartialInstrumentation:
    """The gCSP save/restore property (§4.2): callees of uninstrumented
    intermediaries attach to the nearest instrumented ancestor."""

    SOURCE_NAME = "deep_calls"

    def test_skipping_middle_function(self):
        program = compile_corpus(self.SOURCE_NAME)
        everything = set(program.functions)
        instrument_context(program, functions=everything - {"l2"})
        runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=False)
        machine = Machine(program)
        machine.cct_runtime = runtime
        machine.run()
        # l3's records now hang off l1 (the nearest instrumented caller).
        l3_records = [r for r in runtime.records if r.id == "l3"]
        assert l3_records
        for record in l3_records:
            assert record.parent.id == "l1"
        # No record for the uninstrumented function exists.
        assert not [r for r in runtime.records if r.id == "l2"]

    def test_slot_upgrade_on_multiple_callees(self):
        """An uninstrumented middle makes one direct slot see several
        callees; the runtime upgrades it to a list."""
        from repro.lang import compile_source

        program = compile_source(
            """
            fn middle(x) {
                if (x % 2 == 0) { return alpha(x); }
                return beta(x);
            }
            fn alpha(x) { return x + 1; }
            fn beta(x) { return x + 2; }
            fn main() {
                var i = 0; var sum = 0;
                while (i < 6) { sum = sum + middle(i); i = i + 1; }
                return sum;
            }
            """
        )
        instrument_context(program, functions={"main", "alpha", "beta"})
        runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=False)
        machine = Machine(program)
        machine.cct_runtime = runtime
        machine.run()
        assert runtime.stats.slot_upgrades == 1
        main_record = next(r for r in runtime.records if r.id == "main")
        children = {c.id for c in main_record.children()}
        assert children == {"alpha", "beta"}


class TestMoveToFront:
    def test_indirect_dispatch_builds_lists(self):
        from repro.workloads import make_interpreter_program

        program = make_interpreter_program("t", seed=7, iterations=120, handlers=6)
        instrument_context(program)
        runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=False)
        machine = Machine(program)
        machine.cct_runtime = runtime
        machine.run()
        assert runtime.stats.list_hits > 0
        main_record = next(r for r in runtime.records if r.id == "main")
        from repro.cct.records import CalleeList

        lists = [s for s in main_record.slots if isinstance(s, CalleeList)]
        assert lists and len(lists[0].nodes) >= 3


class TestNonLocalExit:
    ASM = """
    func main(0) regs=8 {
    entry:
        setjmp r0, r1
        cbr r0, caught, try
    try:
        call r2, walker(r1)
        ret 0
    caught:
        ret r0
    }
    func walker(1) regs=4 {
    entry:
        call r1, thrower(r0)
        ret r1
    }
    func thrower(1) regs=4 {
    entry:
        longjmp r0, 9
    }
    """

    def test_longjmp_unwinds_cct_shadow(self):
        from repro.ir.asm import parse_program

        program = parse_program(self.ASM)
        instrument_context(program)
        runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=True)
        machine = Machine(program)
        machine.cct_runtime = runtime
        result = machine.run()
        assert result.return_value == 9
        # main's shadow entry survived and was popped by its CctExit.
        assert runtime.shadow == []
        contexts = {" -> ".join(r.context()) for r in runtime.records}
        assert "<root> -> main -> walker -> thrower" in contexts


class TestHwMetrics:
    def test_inclusive_metric_accumulation(self):
        runtime, result = _cct("calls")
        main_record = next(r for r in runtime.records if r.id == "main")
        # main's inclusive instruction count approaches the whole run.
        assert main_record.metrics[1] > 0
        for record in runtime.records:
            if record is runtime.root:
                assert record.metrics[1] == 0
                continue
            assert record.metrics[1] >= 0

    def test_children_cost_within_parent(self):
        runtime, _ = _cct("deep_calls")
        by_id = {r.id: r for r in runtime.records if r is not runtime.root}
        # Inclusive: parent's metric >= each child's (same subtree).
        l1 = by_id["l1"]
        for child in l1.children():
            assert l1.metrics[1] >= child.metrics[1]


class TestProbes:
    def test_backedge_probes_accumulate_incrementally(self):
        runtime_plain, _ = _cct("loop")
        runtime_probed, _ = _cct("loop", read_at_backedges=True)
        main_plain = next(r for r in runtime_plain.records if r.id == "main")
        main_probed = next(r for r in runtime_probed.records if r.id == "main")
        # Both measure the same activity modulo the probes' own cost.
        assert main_probed.metrics[1] >= main_plain.metrics[1]


class TestErrors:
    def test_exit_without_enter(self):
        from repro.ir.asm import parse_program
        from repro.ir.instructions import CctExit

        program = parse_program("func main(0) regs=2 {\nentry:\n ret\n}")
        program.functions["main"].entry.instrs.insert(0, CctExit())
        machine = Machine(program)
        machine.cct_runtime = CCTRuntime(MemoryMap().cct.base)
        with pytest.raises(RuntimeError, match="empty shadow"):
            machine.run()
