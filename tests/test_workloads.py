"""The synthetic workload suite: determinism, validity, published shapes."""

import pytest

from repro.ir.function import validate_program
from repro.machine.vm import Machine
from repro.tools.pp import PP
from repro.workloads.suite import CFP95, CINT95, SPEC95, build_workload, workload_names

SMALL = 0.25


@pytest.fixture(scope="module")
def checksums():
    return {}


def test_suite_has_18_benchmarks():
    assert len(SPEC95) == 18
    assert len(CINT95) == 8
    assert len(CFP95) == 10


def test_workload_names_filters():
    assert set(workload_names("CINT95")) == set(CINT95)
    assert set(workload_names("CFP95")) == set(CFP95)
    assert set(workload_names()) == set(SPEC95)
    with pytest.raises(ValueError):
        workload_names("SPEC2000")


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        build_workload("999.nothing")


@pytest.mark.parametrize("name", sorted(SPEC95))
def test_workload_is_valid_ir(name):
    program = build_workload(name, SMALL)
    validate_program(program)


@pytest.mark.parametrize("name", sorted(SPEC95))
def test_workload_deterministic(name):
    first = Machine(build_workload(name, SMALL)).run()
    second = Machine(build_workload(name, SMALL)).run()
    assert first.return_value == second.return_value
    assert first.counters == second.counters


@pytest.mark.parametrize("name", sorted(SPEC95))
def test_workload_survives_all_profiling_configs(name):
    program = build_workload(name, SMALL)
    pp = PP()
    base = pp.baseline(program)
    for run in (
        pp.flow_hw(program),
        pp.context_hw(program),
        pp.context_flow(program),
        pp.edge_profile(program, placement="spanning_tree"),
    ):
        assert run.return_value == base.return_value, (name, run.label)
        assert run.cycles >= base.cycles


def test_scale_changes_work():
    small = Machine(build_workload("129.compress", 0.25)).run()
    large = Machine(build_workload("129.compress", 0.75)).run()
    assert large.instructions > small.instructions


class TestPublishedShapes:
    """The qualitative results the generators are tuned to reproduce."""

    def test_branchy_realizes_many_more_paths(self):
        pp = PP()
        go = pp.flow_hw(build_workload("099.go", 0.5))
        tomcatv = pp.flow_hw(build_workload("101.tomcatv", 0.5))
        assert go.path_profile.executed_paths() > 5 * tomcatv.path_profile.executed_paths()

    def test_loop_kernel_concentrates_misses(self):
        from repro.profiles.hotpaths import classify_paths

        pp = PP()
        run = pp.flow_hw(build_workload("101.tomcatv", 0.5))
        report = classify_paths(run.path_profile, 0.01)
        assert report.hot.miss_share(report.total_misses) > 0.8
        assert report.hot.num <= 30

    def test_branchy_needs_lower_threshold(self):
        from repro.profiles.hotpaths import classify_paths

        pp = PP()
        run = pp.flow_hw(build_workload("099.go", 0.5))
        at_1pct = classify_paths(run.path_profile, 0.01)
        at_01pct = classify_paths(run.path_profile, 0.001)
        share_1 = at_1pct.hot.miss_share(at_1pct.total_misses)
        share_01 = at_01pct.hot.miss_share(at_01pct.total_misses)
        assert share_1 < 0.75  # 1% threshold misses a lot
        assert share_01 > share_1  # lowering it recovers coverage

    def test_interpreter_builds_callee_lists(self):
        pp = PP()
        run = pp.context_flow(build_workload("130.li", 0.25))
        assert run.cct.stats.list_hits > 0

    def test_vortex_has_largest_cct(self):
        pp = PP()
        vortex = pp.context_flow(build_workload("147.vortex", 0.25))
        compress = pp.context_flow(build_workload("129.compress", 0.25))
        assert len(vortex.cct.records) > 3 * len(compress.cct.records)

    def test_recursive_workload_creates_backedges(self):
        pp = PP()
        run = pp.context_flow(build_workload("145.fpppp", 0.25))
        assert run.cct.stats.backedges_created > 0
