"""Unit tests for the instruction set."""

import pytest

from repro.ir.instructions import (
    BINARY_OPS,
    Binop,
    Br,
    Call,
    Cbr,
    Const,
    FBinop,
    HwcAccum,
    ICall,
    Imm,
    Kind,
    Load,
    Longjmp,
    Move,
    PathCommit,
    Ret,
    Store,
    is_terminator,
)


class TestBinaryOps:
    def test_add_sub_mul(self):
        assert BINARY_OPS["add"](3, 4) == 7
        assert BINARY_OPS["sub"](3, 4) == -1
        assert BINARY_OPS["mul"](3, 4) == 12

    def test_div_truncates_toward_zero(self):
        assert BINARY_OPS["div"](7, 2) == 3
        assert BINARY_OPS["div"](-7, 2) == -3
        assert BINARY_OPS["div"](7, -2) == -3
        assert BINARY_OPS["div"](-7, -2) == 3

    def test_div_by_zero_is_zero(self):
        assert BINARY_OPS["div"](5, 0) == 0
        assert BINARY_OPS["mod"](5, 0) == 0

    def test_mod_matches_c_semantics(self):
        assert BINARY_OPS["mod"](7, 3) == 1
        assert BINARY_OPS["mod"](-7, 3) == -1
        assert BINARY_OPS["mod"](7, -3) == 1

    def test_comparisons_produce_flags(self):
        assert BINARY_OPS["lt"](1, 2) == 1
        assert BINARY_OPS["lt"](2, 1) == 0
        assert BINARY_OPS["eq"](5, 5) == 1
        assert BINARY_OPS["ge"](5, 5) == 1
        assert BINARY_OPS["ne"](5, 5) == 0

    def test_bitwise(self):
        assert BINARY_OPS["and"](0b1100, 0b1010) == 0b1000
        assert BINARY_OPS["or"](0b1100, 0b1010) == 0b1110
        assert BINARY_OPS["xor"](0b1100, 0b1010) == 0b0110
        assert BINARY_OPS["shl"](1, 4) == 16
        assert BINARY_OPS["shr"](16, 4) == 1


class TestOperandTracking:
    def test_binop_reg_operands(self):
        instr = Binop("add", 2, 0, 1)
        assert instr.operands() == (0, 1)
        assert instr.defined() == (2,)

    def test_binop_imm_operand_excluded(self):
        instr = Binop("add", 2, 0, Imm(5))
        assert instr.operands() == (0,)

    def test_load_store(self):
        assert Load(1, 0, 8).operands() == (0,)
        assert Load(1, 0, 8).defined() == (1,)
        assert Store(2, 0, 8).operands() == (2, 0)
        assert Store(Imm(7), 0).operands() == (0,)

    def test_call_args(self):
        call = Call("f", [0, Imm(3), 2], dst=5)
        assert call.operands() == (0, 2)
        assert call.defined() == (5,)
        assert Call("f", [], dst=None).defined() == ()

    def test_icall_includes_function_register(self):
        icall = ICall(4, [0], dst=1)
        assert icall.operands() == (4, 0)

    def test_const_and_move(self):
        assert Const(3, 42).defined() == (3,)
        assert Move(1, 0).operands() == (0,)


class TestTerminators:
    def test_terminator_kinds(self):
        assert is_terminator(Br("x"))
        assert is_terminator(Cbr(0, "a", "b"))
        assert is_terminator(Ret(None))
        assert is_terminator(Longjmp(0, Imm(1)))

    def test_non_terminators(self):
        assert not is_terminator(Const(0, 1))
        assert not is_terminator(Call("f", []))
        assert not is_terminator(PathCommit(0, 0, 0))


class TestValidationOfOps:
    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            Binop("frobnicate", 0, 1, 2)

    def test_unknown_fbinop_rejected(self):
        with pytest.raises(ValueError):
            FBinop("add", 0, 1, 2)  # integer op on the FP unit


class TestInstrumentationCosts:
    """The paper's stated costs (e.g. 13+ instructions for HwcAccum §3.1)."""

    def test_hwc_accum_matches_paper(self):
        assert HwcAccum(0, 0, 0).icost >= 13

    def test_ordinary_instructions_cost_one(self):
        assert Const(0, 1).icost == 1
        assert Binop("add", 0, 1, 2).icost == 1

    def test_commit_costs_more_than_increment(self):
        from repro.ir.instructions import PathAdd

        assert PathCommit(0, 0, 0).icost > PathAdd(0, 1).icost
