"""End-to-end property tests over randomly generated programs.

A hypothesis strategy generates terminating mini-language programs
(bounded loops, acyclic call graphs, global-array traffic), and for
every generated program we assert the reproduction's central
invariants:

* every profiling configuration computes the same program result as
  the uninstrumented run;
* instrumented path counts equal the tracing oracle's, under both
  placements;
* the on-line CCT equals the DCT projection;
* simple and optimized edge profiles agree after reconstruction.
"""

from hypothesis import given, settings, strategies as st

from repro.cct.dct import DynamicCallRecorder, canonical_projected, canonical_record, project_cct
from repro.cct.runtime import CCTRuntime
from repro.instrument.cctinstr import instrument_context
from repro.instrument.edgeinstr import instrument_edges
from repro.instrument.pathinstr import instrument_paths
from repro.instrument.tables import ProfilingRuntime
from repro.lang import compile_source
from repro.machine.memory import MemoryMap
from repro.machine.vm import Machine
from repro.profiles.oracle import PathOracle


@st.composite
def expressions(draw, variables, functions, depth=0):
    choices = ["const", "var"]
    if depth < 2:
        choices += ["binop", "binop", "index"]
        if functions:
            choices.append("call")
    kind = draw(st.sampled_from(choices))
    if kind == "const" or (kind == "var" and not variables):
        return str(draw(st.integers(min_value=0, max_value=90)))
    if kind == "var":
        return draw(st.sampled_from(variables))
    if kind == "index":
        inner = draw(expressions(variables, functions, depth + 1))
        return f"data[({inner}) & 255]"
    if kind == "call":
        callee = draw(st.sampled_from(functions))
        arg = draw(expressions(variables, functions, depth + 1))
        return f"{callee}({arg})"
    op = draw(st.sampled_from(["+", "-", "*", "%", "&", "|", "^"]))
    left = draw(expressions(variables, functions, depth + 1))
    right = draw(expressions(variables, functions, depth + 1))
    if op == "%":
        # Keep divisors positive so semantics match everywhere.
        return f"(({left}) % {draw(st.integers(min_value=1, max_value=13))})"
    return f"(({left}) {op} ({right}))"


@st.composite
def statements(draw, variables, functions, loop_depth, stmt_depth=0):
    kinds = ["assign", "assign", "store"]
    if stmt_depth < 2:
        kinds += ["if", "loop"]
    kind = draw(st.sampled_from(kinds))
    if kind == "assign":
        target = draw(st.sampled_from(variables))
        value = draw(expressions(variables, functions))
        return [f"{target} = {value};"]
    if kind == "store":
        index = draw(expressions(variables, functions))
        value = draw(expressions(variables, functions))
        return [f"data[({index}) & 255] = {value};"]
    if kind == "if":
        cond = draw(expressions(variables, functions))
        then_body = draw(statements(variables, functions, loop_depth, stmt_depth + 1))
        if draw(st.booleans()):
            else_body = draw(
                statements(variables, functions, loop_depth, stmt_depth + 1)
            )
            return (
                [f"if (({cond}) % 2 == 0) {{"]
                + ["    " + s for s in then_body]
                + ["} else {"]
                + ["    " + s for s in else_body]
                + ["}"]
            )
        return (
            [f"if (({cond}) % 2 == 0) {{"]
            + ["    " + s for s in then_body]
            + ["}"]
        )
    # Bounded loop with a dedicated counter no body statement touches.
    counter = f"loop{loop_depth}_{stmt_depth}"
    trip = draw(st.integers(min_value=1, max_value=6))
    body = draw(statements(variables, functions, loop_depth + 1, stmt_depth + 1))
    return (
        [f"var {counter} = 0;", f"while ({counter} < {trip}) {{"]
        + ["    " + s for s in body]
        + [f"    {counter} = {counter} + 1;", "}"]
    )


@st.composite
def programs(draw):
    nfuncs = draw(st.integers(min_value=0, max_value=3))
    functions = [f"f{i}" for i in range(nfuncs)]
    lines = ["global data[256];"]
    for index, name in enumerate(functions):
        callable_below = functions[:index]  # acyclic: only call earlier
        variables = ["a", "x"]
        body = ["var x = a + 1;"]
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            body += draw(statements(variables, callable_below, 0))
        body.append(f"return x & 65535;")
        lines.append(f"fn {name}(a) {{")
        lines += ["    " + s for s in body]
        lines.append("}")
    variables = ["x"]
    body = ["var x = 1;"]
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        body += draw(statements(variables, functions, 0))
    body.append("return x & 65535;")
    lines.append("fn main() {")
    lines += ["    " + s for s in body]
    lines.append("}")
    return "\n".join(lines)


def _fresh(source):
    return compile_source(source)


@given(programs())
@settings(max_examples=60, deadline=None)
def test_property_all_configs_agree(source):
    from repro.tools.pp import PP

    program = _fresh(source)
    pp = PP()
    base = pp.baseline(program)
    for run in (
        pp.flow_hw(program),
        pp.flow_freq(program, placement="simple"),
        pp.context_hw(program),
        pp.context_flow(program),
        pp.edge_profile(program, placement="spanning_tree"),
    ):
        assert run.return_value == base.return_value, (run.label, source)


@given(programs(), st.sampled_from(["simple", "spanning_tree"]))
@settings(max_examples=60, deadline=None)
def test_property_path_counts_equal_oracle(source, placement):
    probe = instrument_paths(_fresh(source), mode="freq", placement=placement)
    numberings = {n: i.numbering for n, i in probe.functions.items()}
    oracle = PathOracle(numberings)
    clean = Machine(_fresh(source))
    clean.tracer = oracle
    clean.run()

    program = _fresh(source)
    runtime = ProfilingRuntime(MemoryMap().profiling.base)
    flow = instrument_paths(program, mode="freq", placement=placement, runtime=runtime)
    machine = Machine(program)
    machine.path_runtime = runtime
    machine.run()
    for name in flow.functions:
        assert flow.path_counts(name) == oracle.function_counts(name), (
            name,
            source,
        )


@given(programs())
@settings(max_examples=40, deadline=None)
def test_property_cct_equals_projection(source):
    clean = Machine(_fresh(source))
    recorder = DynamicCallRecorder()
    clean.tracer = recorder
    clean.run()

    program = _fresh(source)
    instrument_context(program)
    runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=False)
    machine = Machine(program)
    machine.cct_runtime = runtime
    machine.run()
    assert canonical_record(runtime.root) == canonical_projected(
        project_cct(recorder.tree)
    ), source


@given(programs())
@settings(max_examples=30, deadline=None)
def test_property_edge_reconstruction(source):
    entries = {}

    class Counter:
        def on_enter(self, name, site):
            entries[name] = entries.get(name, 0) + 1

        def on_exit(self, name, value):
            pass

        def on_block(self, name, block):
            pass

    def run(placement):
        program = _fresh(source)
        runtime = ProfilingRuntime(MemoryMap().profiling.base)
        edges = instrument_edges(program, placement=placement, runtime=runtime)
        machine = Machine(program)
        machine.path_runtime = runtime
        if placement == "simple":
            machine.tracer = Counter()
        machine.run()
        return edges

    simple = run("simple")
    optimized = run("spanning_tree")
    for name in simple.functions:
        expected = simple.edge_counts(name)
        actual = optimized.edge_counts(name, entries=entries.get(name, 0))
        assert actual == expected, (name, source)
