"""Ball–Larus numbering: uniqueness, compactness, regeneration (§2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg.graph import EXIT, CFG, build_cfg
from repro.ir.asm import parse_program
from repro.pathprof.numbering import PathProfilingError, number_paths
from repro.pathprof.transform import build_transformed

FIG1 = """
func main(1) regs=8 {
A:
    cbr r0, B, C
B:
    cbr r0, C, D
C:
    br D
D:
    cbr r0, E, F
E:
    br F
F:
    ret r0
}
"""


def _numbering(asm: str, name: str = "main"):
    program = parse_program(asm)
    return number_paths(build_cfg(program.functions[name]))


class TestFigure1:
    """The paper's running example: six unique, compact path sums."""

    def test_six_paths(self):
        assert _numbering(FIG1).num_paths == 6

    def test_paths_are_the_papers_six(self):
        numbering = _numbering(FIG1)
        paths = {"".join(p.blocks) for p in numbering.enumerate_paths()}
        assert paths == {"ACDF", "ACDEF", "ABCDF", "ABCDEF", "ABDF", "ABDEF"}

    def test_sums_are_compact_and_unique(self):
        numbering = _numbering(FIG1)
        sums = [p.path_sum for p in numbering.enumerate_paths()]
        assert sums == list(range(6))

    def test_np_values(self):
        numbering = _numbering(FIG1)
        # NP(F)=1, NP(E)=1, NP(D)=2, NP(C)=2, NP(B)=4, NP(A)=6
        assert numbering.np["F"] == 1
        assert numbering.np["D"] == 2
        assert numbering.np["C"] == 2
        assert numbering.np["B"] == 4
        assert numbering.np["A"] == 6

    def test_regenerate_inverts_encoding(self):
        numbering = _numbering(FIG1)
        for path in numbering.enumerate_paths():
            assert numbering.path_sum(path.tedges) == path.path_sum

    def test_out_of_range_sum_rejected(self):
        numbering = _numbering(FIG1)
        with pytest.raises(PathProfilingError):
            numbering.regenerate(6)
        with pytest.raises(PathProfilingError):
            numbering.regenerate(-1)


class TestCyclic:
    LOOP = """
    func main(1) regs=8 {
    entry:
        const r1, 0
        br head
    head:
        lt r2, r1, r0
        cbr r2, body, out
    body:
        add r1, r1, 1
        br head
    out:
        ret r1
    }
    """

    def test_loop_path_categories(self):
        numbering = _numbering(self.LOOP)
        paths = list(numbering.enumerate_paths())
        starts_with_backedge = [p for p in paths if p.entry_backedge is not None]
        ends_with_backedge = [p for p in paths if p.exit_backedge is not None]
        plain = [
            p for p in paths
            if p.entry_backedge is None and p.exit_backedge is None
        ]
        assert starts_with_backedge and ends_with_backedge and plain

    def test_loop_paths_are_backedge_free(self):
        numbering = _numbering(self.LOOP)
        back = {(b.src, b.dst) for b in numbering.graph.backedges}
        for path in numbering.enumerate_paths():
            for a, b in zip(path.blocks, path.blocks[1:]):
                assert (a, b) not in back

    def test_self_loop(self):
        numbering = _numbering(
            """
            func main(1) regs=8 {
            entry:
                br spin
            spin:
                sub r0, r0, 1
                cbr r0, spin, done
            done:
                ret r0
            }
            """
        )
        # entry->spin->done, entry->spin->(back), (back)->spin->done,
        # (back)->spin->(back)
        assert numbering.num_paths == 4

    def test_describe_marks_backedges(self):
        numbering = _numbering(self.LOOP)
        descriptions = [p.describe() for p in numbering.enumerate_paths()]
        assert any(d.startswith("(backedge)") for d in descriptions)
        assert any(d.endswith("(backedge)") for d in descriptions)


class TestIrregularGraphs:
    def test_infinite_loop_is_numberable(self):
        # The pseudo edges give even a never-returning loop paths.
        numbering = _numbering(
            """
            func main(0) regs=4 {
            entry:
                const r0, 0
                br spin
            spin:
                add r0, r0, 1
                br spin
            }
            """
        )
        assert numbering.num_paths >= 2

    def test_unreachable_code_ignored(self):
        numbering = _numbering(
            """
            func main(0) regs=4 {
            entry:
                const r0, 1
                ret r0
            dead:
                br dead2
            dead2:
                ret r0
            }
            """
        )
        assert numbering.num_paths == 1
        assert "dead" not in numbering.np

    def test_irreducible(self):
        numbering = _numbering(
            """
            func main(1) regs=8 {
            entry:
                cbr r0, a, b
            a:
                cbr r0, b, out
            b:
                cbr r0, a, out
            out:
                ret r0
            }
            """
        )
        sums = [p.path_sum for p in numbering.enumerate_paths()]
        assert sums == list(range(numbering.num_paths))


# ---------------------------------------------------------------------------
# Property-based tests over random CFGs
# ---------------------------------------------------------------------------


@st.composite
def random_cfgs(draw):
    """A random CFG: n blocks, each ending in ret/br/cbr.

    Mirrors :func:`repro.cfg.graph.build_cfg`'s normalization: when the
    first block has predecessors, a synthetic no-predecessor entry is
    prepended (the Ball–Larus precondition).
    """
    from repro.cfg.graph import ENTRY

    n = draw(st.integers(min_value=1, max_value=8))
    cfg = CFG("random", "b0")
    names = [f"b{i}" for i in range(n)]
    for name in names:
        cfg.add_vertex(name)
    cfg.add_vertex(EXIT)
    for i, name in enumerate(names):
        kind = draw(st.sampled_from(["ret", "br", "cbr"]) if n > 1 else st.just("ret"))
        if kind == "ret":
            cfg.add_edge(name, EXIT, "exit")
        elif kind == "br":
            target = draw(st.sampled_from(names))
            cfg.add_edge(name, target, "branch")
        else:
            first = draw(st.sampled_from(names))
            rest = [t for t in names if t != first] or [EXIT]
            second = draw(st.sampled_from(rest))
            cfg.add_edge(name, first, "then")
            cfg.add_edge(name, second, "else")
    if cfg.pred["b0"]:
        cfg.add_vertex(ENTRY)
        cfg.add_edge(ENTRY, "b0", "entry")
        cfg.entry = ENTRY
    return cfg


@given(random_cfgs())
@settings(max_examples=120, deadline=None)
def test_property_path_sums_unique_and_compact(cfg):
    """Every random CFG numbers uniquely and compactly (§2's theorem)."""
    numbering = number_paths(cfg)
    total = numbering.num_paths
    seen = set()
    limit = min(total, 3000)
    for path_sum in range(limit):
        path = numbering.regenerate(path_sum)
        assert numbering.path_sum(path.tedges) == path_sum
        # Identity includes the originating CFG edge: two backedges
        # leaving one block produce distinct pseudo end edges that a
        # (src, dst) pair alone cannot tell apart.
        key = tuple((e.src, e.dst, e.role, e.origin.index) for e in path.tedges)
        assert key not in seen
        seen.add(key)


@given(random_cfgs())
@settings(max_examples=120, deadline=None)
def test_property_np_consistency(cfg):
    """NP(v) equals the sum of successors' NP in the transformed graph."""
    numbering = number_paths(cfg)
    graph = numbering.graph
    for vertex, np_value in numbering.np.items():
        if vertex == graph.exit:
            assert np_value == 1
            continue
        assert np_value == sum(numbering.np[e.dst] for e in graph.succ[vertex])


@given(random_cfgs())
@settings(max_examples=100, deadline=None)
def test_property_val_formula(cfg):
    """Figure 2's labelling: Val(e_i) = NP(w_1) + ... + NP(w_{i-1})."""
    numbering = number_paths(cfg)
    graph = numbering.graph
    for vertex in numbering.np:
        if vertex == graph.exit:
            continue
        running = 0
        for edge in graph.succ[vertex]:
            assert numbering.val[edge.index] == running
            running += numbering.np[edge.dst]


@given(random_cfgs())
@settings(max_examples=80, deadline=None)
def test_property_transform_is_acyclic(cfg):
    """Removing DFS backedges and adding pseudo edges yields a DAG."""
    graph = build_transformed(cfg)
    # Kahn's algorithm must consume every vertex reachable from the
    # entry (cycles among unreachable vertices are never transformed —
    # no DFS from the entry sees them).
    reachable = set()
    stack = [graph.entry]
    while stack:
        vertex = stack.pop()
        if vertex in reachable:
            continue
        reachable.add(vertex)
        stack.extend(e.dst for e in graph.succ[vertex])
    indegree = {v: 0 for v in reachable}
    for edge in graph.edges:
        if edge.src in reachable and edge.dst in reachable:
            indegree[edge.dst] += 1
    queue = [v for v in reachable if indegree[v] == 0]
    visited = 0
    while queue:
        vertex = queue.pop()
        visited += 1
        for edge in graph.succ[vertex]:
            if edge.dst in reachable:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    queue.append(edge.dst)
    assert visited == len(reachable)
