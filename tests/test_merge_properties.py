"""Property-based tests for the CCT merge algebra.

On canonical-equality (:func:`repro.cct.merge.canonical_form`) the
merge must be a commutative monoid: commutative, associative, with
the empty CCT as identity.  Aggregate mass (metric vectors, path
table counts) must be conserved — merging never invents or drops
counts.  The generated operands share one "program shape" (see
``tests/cct_strategies.py``) so they are always merge-compatible.
"""

from hypothesis import given, settings

from repro.cct.merge import (
    MergeError,
    canonical_form,
    cct_equivalent,
    empty_cct,
    merge_ccts,
)
from repro.cct.records import ROOT_ID, CalleeList, CallRecord

from tests.cct_strategies import FakeCCT, cct_trees

FEW = settings(max_examples=40, deadline=None)


@FEW
@given(cct_trees(), cct_trees())
def test_merge_commutative(a, b):
    assert canonical_form(merge_ccts([a, b])) == canonical_form(merge_ccts([b, a]))


@FEW
@given(cct_trees(), cct_trees(), cct_trees())
def test_merge_associative(a, b, c):
    left = merge_ccts([merge_ccts([a, b]), c])
    right = merge_ccts([a, merge_ccts([b, c])])
    flat = merge_ccts([a, b, c])
    assert canonical_form(left) == canonical_form(right) == canonical_form(flat)


@FEW
@given(cct_trees())
def test_merge_identity(x):
    assert cct_equivalent(merge_ccts([x, empty_cct()]), x)
    assert cct_equivalent(merge_ccts([empty_cct(), x]), x)
    assert cct_equivalent(merge_ccts([x]), x)


@FEW
@given(cct_trees())
def test_merge_idempotent_canonicalization(x):
    """Re-merging a merge result is a no-op, bit for bit."""
    once = merge_ccts([x])
    twice = merge_ccts([once])
    from repro.cct.merge import strict_form

    assert strict_form(once) == strict_form(twice)


def _mass(cct):
    metrics = [0, 0, 0]
    table_counts = 0
    table_metrics = 0
    for record in cct.records:
        for offset, value in enumerate(record.metrics):
            metrics[offset] += value
        for table in record.path_tables.values():
            table_counts += sum(table.counts.values())
            table_metrics += sum(sum(v) for v in table.metrics.values())
    return metrics, table_counts, table_metrics


@FEW
@given(cct_trees(), cct_trees())
def test_merge_conserves_mass(a, b):
    merged = _mass(merge_ccts([a, b]))
    separate = [_mass(a), _mass(b)]
    assert merged[0] == [x + y for x, y in zip(separate[0][0], separate[1][0])]
    assert merged[1] == separate[0][1] + separate[1][1]
    assert merged[2] == separate[0][2] + separate[1][2]


def test_merge_rejects_child_vs_backedge_conflict():
    """One operand recursed where the other allocated: different programs."""

    def chain(recursive: bool) -> FakeCCT:
        root = CallRecord(ROOT_ID, None, 1, 3, 0)
        outer = CallRecord("f", root, 1, 3, 0)
        root.slots[0] = outer
        if recursive:
            outer.slots[0] = outer  # self-recursion backedge
            return FakeCCT(root, [root, outer], 0)
        inner = CallRecord("f", outer, 1, 3, 0)
        inner.parent = outer
        outer.slots[0] = inner
        return FakeCCT(root, [root, outer, inner], 0)

    import pytest

    with pytest.raises(MergeError):
        merge_ccts([chain(True), chain(False)])


def test_merge_rejects_incompatible_tables():
    from repro.instrument.tables import CounterTable, TableKind

    def one(capacity: int) -> FakeCCT:
        root = CallRecord(ROOT_ID, None, 1, 3, 0)
        table = CounterTable("t", -1, 0, capacity, 0, TableKind.ARRAY, buckets=8)
        table.counts[0] = 1
        root.path_tables["f"] = table
        return FakeCCT(root, [root], 0)

    import pytest

    with pytest.raises(MergeError):
        merge_ccts([one(4), one(8)])


def test_merge_preserves_callee_list_tag():
    """A one-element callee list stays a list through a merge (the tag
    distinguishes an indirect-call slot from a plain direct site)."""
    root = CallRecord(ROOT_ID, None, 1, 3, 0)
    child = CallRecord("f", root, 1, 3, 0)
    lst = CalleeList()
    from repro.cct.records import ListNode

    lst.nodes = [ListNode(child, 0)]
    root.slots[0] = lst
    x = FakeCCT(root, [root, child], 0)
    merged = merge_ccts([x, empty_cct()])
    assert isinstance(merged.root.slots[0], CalleeList)
    assert cct_equivalent(merged, x)
