"""The interpreter: semantics and the cost model."""

import pytest

from repro.ir.asm import parse_program
from repro.machine.config import MachineConfig
from repro.machine.counters import Event
from repro.machine.vm import Machine, MachineError


def run(asm: str, *args, config=None):
    program = parse_program(asm)
    machine = Machine(program, config)
    return machine.run(*args), machine


class TestArithmetic:
    def test_simple_expression(self):
        result, _ = run(
            """
            func main(0) regs=4 {
            entry:
                const r0, 6
                mul r1, r0, 7
                ret r1
            }
            """
        )
        assert result.return_value == 42

    def test_immediates(self):
        result, _ = run(
            """
            func main(1) regs=4 {
            entry:
                add r1, r0, 100
                ret r1
            }
            """,
            5,
        )
        assert result.return_value == 105

    def test_float_ops(self):
        result, _ = run(
            """
            func main(0) regs=4 {
            entry:
                const r0, 1.5
                const r1, 2.0
                fmul r2, r0, r1
                ret r2
            }
            """
        )
        assert result.return_value == 3.0

    def test_division_by_zero_yields_zero(self):
        result, _ = run(
            """
            func main(0) regs=4 {
            entry:
                const r0, 9
                const r1, 0
                div r2, r0, r1
                ret r2
            }
            """
        )
        assert result.return_value == 0


class TestControlFlow:
    def test_branching(self):
        asm = """
        func main(1) regs=4 {
        entry:
            gt r1, r0, 10
            cbr r1, big, small
        big:
            ret 1
        small:
            ret 0
        }
        """
        assert run(asm, 20)[0].return_value == 1
        assert run(asm, 5)[0].return_value == 0

    def test_loop_sums(self):
        result, _ = run(
            """
            func main(1) regs=8 {
            entry:
                const r1, 0
                const r2, 0
                br head
            head:
                lt r3, r2, r0
                cbr r3, body, done
            body:
                add r1, r1, r2
                add r2, r2, 1
                br head
            done:
                ret r1
            }
            """,
            10,
        )
        assert result.return_value == 45


class TestCalls:
    def test_direct_call(self):
        result, _ = run(
            """
            func main(0) regs=4 {
            entry:
                call r0, sq(9)
                ret r0
            }
            func sq(1) regs=4 {
            entry:
                mul r1, r0, r0
                ret r1
            }
            """
        )
        assert result.return_value == 81

    def test_recursion(self):
        result, _ = run(
            """
            func main(0) regs=4 {
            entry:
                call r0, fact(6)
                ret r0
            }
            func fact(1) regs=4 {
            entry:
                le r1, r0, 1
                cbr r1, base, rec
            base:
                ret 1
            rec:
                sub r2, r0, 1
                call r3, fact(r2)
                mul r3, r3, r0
                ret r3
            }
            """
        )
        assert result.return_value == 720

    def test_registers_are_per_frame(self):
        result, _ = run(
            """
            func main(0) regs=4 {
            entry:
                const r1, 77
                call r0, clobber(1)
                ret r1
            }
            func clobber(1) regs=4 {
            entry:
                const r1, 0
                ret r1
            }
            """
        )
        assert result.return_value == 77

    def test_indirect_call(self):
        program = parse_program(
            """
            func main(0) regs=4 {
            entry:
                const r0, 1
                icall r1, *r0(5)
                ret r1
            }
            func inc(1) regs=4 {
            entry:
                add r1, r0, 1
                ret r1
            }
            func dec(1) regs=4 {
            entry:
                sub r1, r0, 1
                ret r1
            }
            """
        )
        assert program.function_index("inc") == 0
        assert program.function_index("dec") == 1
        machine = Machine(program)
        assert machine.run().return_value == 4  # dec(5)

    def test_bad_indirect_index(self):
        program = parse_program(
            """
            func main(0) regs=4 {
            entry:
                const r0, 9
                icall r1, *r0(5)
                ret r1
            }
            """
        )
        with pytest.raises(MachineError, match="indirect"):
            Machine(program).run()

    def test_stack_overflow(self):
        config = MachineConfig(max_call_depth=32)
        program = parse_program(
            """
            func main(0) regs=4 {
            entry:
                call r0, main()
                ret r0
            }
            """
        )
        with pytest.raises(MachineError, match="overflow"):
            Machine(program, config).run()

    def test_wrong_arity_to_entry(self):
        program = parse_program("func main(1) regs=2 {\nentry:\n ret r0\n}")
        with pytest.raises(MachineError, match="takes"):
            Machine(program).run()


class TestSetjmpLongjmp:
    ASM = """
    func main(0) regs=8 {
    entry:
        setjmp r0, r1
        cbr r0, caught, try
    try:
        call r2, thrower(r1)
        ret 0
    caught:
        ret r0
    }
    func thrower(1) regs=4 {
    entry:
        call r1, deeper(r0)
        ret r1
    }
    func deeper(1) regs=4 {
    entry:
        longjmp r0, 42
    }
    """

    def test_unwinds_to_setjmp(self):
        result, _ = run(self.ASM)
        assert result.return_value == 42

    def test_zero_value_becomes_one(self):
        asm = self.ASM.replace("longjmp r0, 42", "longjmp r0, 0")
        result, _ = run(asm)
        assert result.return_value == 1

    def test_dead_jmpbuf_rejected(self):
        result, machine = run(self.ASM)  # plant a live machine
        program = parse_program(
            """
            func main(0) regs=4 {
            entry:
                const r0, 5
                longjmp r0, 1
            }
            """
        )
        with pytest.raises(MachineError, match="handle"):
            Machine(program).run()


class TestCostModel:
    def test_instructions_counted(self):
        result, _ = run(
            """
            func main(0) regs=4 {
            entry:
                const r0, 1
                add r0, r0, 1
                ret r0
            }
            """
        )
        assert result[Event.INSTRS] == 3
        assert result[Event.CYCLES] >= 3

    def test_load_miss_penalty(self):
        config = MachineConfig()
        result, machine = run(
            """
            func main(0) regs=4 {
            entry:
                const r0, 65536
                load r1, [r0]
                load r2, [r0]
                ret r1
            }
            """,
            config=config,
        )
        assert result[Event.DC_READ] == 2
        assert result[Event.DC_READ_MISS] == 1  # second hits
        assert result[Event.LOADS] == 2

    def test_conflict_misses(self):
        # Two addresses one dcache-size apart, alternating.
        result, _ = run(
            """
            func main(0) regs=8 {
            entry:
                const r0, 65536
                const r1, 81920
                const r2, 0
                br head
            head:
                lt r3, r2, 8
                cbr r3, body, done
            body:
                load r4, [r0]
                load r5, [r1]
                add r2, r2, 1
                br head
            done:
                ret r2
            }
            """
        )
        assert result[Event.DC_READ_MISS] == 16  # every access misses

    def test_write_no_allocate(self):
        result, _ = run(
            """
            func main(0) regs=4 {
            entry:
                const r0, 65536
                store 7, [r0]
                load r1, [r0]
                ret r1
            }
            """
        )
        assert result[Event.DC_WRITE_MISS] == 1
        assert result[Event.DC_READ_MISS] == 1  # write did not allocate
        assert result.return_value == 7

    def test_store_buffer_stalls_on_burst(self):
        body = "\n".join(f"    store {i}, [r0+{8 * i}]" for i in range(32))
        result, _ = run(
            f"""
            func main(0) regs=4 {{
            entry:
                const r0, 65536
            {body}
                ret r0
            }}
            """
        )
        assert result[Event.SB_STALL] > 0
        assert result[Event.STORES] == 32

    def test_branch_events(self):
        result, _ = run(
            """
            func main(0) regs=4 {
            entry:
                const r0, 1
                cbr r0, yes, no
            yes:
                ret r0
            no:
                ret r0
            }
            """
        )
        assert result[Event.BRANCHES] == 1
        assert result[Event.BR_TAKEN] == 1

    def test_fp_stalls(self):
        result, _ = run(
            """
            func main(0) regs=4 {
            entry:
                const r0, 1.0
                fadd r1, r0, r0
                fdiv r2, r1, r0
                ret 0
            }
            """
        )
        config = MachineConfig()
        expected = (config.fp_latencies["fadd"] - 1) + (config.fp_latencies["fdiv"] - 1)
        assert result[Event.FP_STALL] == expected

    def test_icache_warm_after_first_iteration(self):
        result, _ = run(
            """
            func main(0) regs=8 {
            entry:
                const r0, 0
                br head
            head:
                lt r1, r0, 50
                cbr r1, body, done
            body:
                add r0, r0, 1
                br head
            done:
                ret r0
            }
            """
        )
        assert result[Event.IC_REF] > 100
        assert result[Event.IC_MISS] <= 4  # one cold miss per line

    def test_instruction_budget(self):
        config = MachineConfig(max_instructions=100)
        program = parse_program(
            """
            func main(0) regs=4 {
            entry:
                const r0, 0
                br spin
            spin:
                add r0, r0, 1
                br spin
            }
            """
        )
        with pytest.raises(MachineError, match="budget"):
            Machine(program, config).run()

    @pytest.mark.parametrize("engine", ["simple", "fast", "trace"])
    def test_budget_overshoot_bounded_in_huge_block(self, engine):
        # A single straight-line block far larger than the budget: the
        # run must still fail, and the overshoot past the budget must
        # stay bounded (per-instruction for the simple engine, at most
        # one codegen segment for the fast engine) rather than letting
        # the whole block retire before the check fires.
        from repro.machine.engine import SEGMENT_CAP

        body = "\n".join("add r0, r0, 1" for _ in range(2000))
        program = parse_program(
            f"func main(0) regs=4 {{\nentry:\n const r0, 0\n{body}\n ret r0\n}}"
        )
        config = MachineConfig(max_instructions=100)
        machine = Machine(program, config, engine=engine)
        with pytest.raises(MachineError, match="budget"):
            machine.run()
        overshoot = machine.counters[Event.INSTRS] - config.max_instructions
        assert 0 <= overshoot <= SEGMENT_CAP

    def test_alloc(self):
        result, _ = run(
            """
            func main(0) regs=4 {
            entry:
                alloc r0, 8
                store 5, [r0+16]
                load r1, [r0+16]
                ret r1
            }
            """
        )
        assert result.return_value == 5

    def test_missing_runtime_raises(self):
        program = parse_program("func main(0) regs=4 {\nentry:\n ret\n}")
        from repro.ir.instructions import PathCommit

        program.functions["main"].entry.instrs.insert(0, PathCommit(0, 0, 0))
        with pytest.raises(MachineError, match="runtime"):
            Machine(program).run()


class TestDeterminism:
    def test_same_program_same_counters(self, corpus_name):
        from tests.conftest import compile_corpus

        first = Machine(compile_corpus(corpus_name)).run()
        second = Machine(compile_corpus(corpus_name)).run()
        assert first.counters == second.counters
        assert first.return_value == second.return_value


class TestEngineDispatch:
    ASM = """
        func main(0) regs=4 {
        entry:
            const r0, 0
            const r1, 10
            br spin
        spin:
            add r0, r0, 1
            sub r1, r1, 1
            cbr r1, spin, done
        done:
            ret r0
        }
        """

    def test_engines_match_on_small_program(self):
        simple = Machine(parse_program(self.ASM), engine="simple").run()
        fast = Machine(parse_program(self.ASM), engine="fast").run()
        assert simple.counters == fast.counters
        assert simple.return_value == fast.return_value == 10

    def test_unknown_engine_rejected(self):
        with pytest.raises(MachineError, match="unknown engine"):
            Machine(parse_program(self.ASM), engine="turbo").run()

    def test_run_survives_block_splicing(self):
        # Editing a block between runs must evict its cached decoding:
        # the second run has to see the spliced instructions, not the
        # stale predecoded segments from the first run.
        program = parse_program(self.ASM)
        machine = Machine(program, engine="fast")
        first = machine.run()
        assert first.return_value == 10

        from repro.ir.instructions import Const

        done = program.functions["main"].block("done")
        done.instrs.insert(0, Const(0, 99))
        machine.invalidate_decoded()
        second = machine.run()
        assert second.return_value == 99
