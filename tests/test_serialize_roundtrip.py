"""Round-trip fidelity of ``save_cct``/``load_cct``.

A save/load cycle must reproduce the *entire* structure — records,
parents, metrics, recursion backedges, callee lists including their
cell addresses, hash- and array-kind path tables including base
addresses and quarantined-commit counts, and the heap-bytes
bookkeeping.  :func:`repro.cct.merge.strict_form` captures exactly
that, so round-tripping is ``strict_form(loaded) ==
strict_form(original)`` over randomly generated runtimes and over
CCTs built by real instrumented runs.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings

from repro.cct.merge import strict_form
from repro.cct.records import ROOT_ID, CalleeList, CallRecord, ListNode
from repro.cct.runtime import CCTRuntime
from repro.cct.serialize import load_cct, save_cct
from repro.lang import compile_source
from repro.machine.memory import MemoryMap
from repro.tools.pp import PP

from tests.cct_strategies import FakeCCT, cct_trees


def _roundtrip(cct):
    with tempfile.TemporaryDirectory() as workdir:
        path = os.path.join(workdir, "cct.json")
        save_cct(cct, path)
        return load_cct(path)


@settings(max_examples=60, deadline=None)
@given(cct_trees())
def test_random_runtime_roundtrips_exactly(cct):
    loaded = _roundtrip(cct)
    assert strict_form(loaded) == strict_form(cct)


@settings(max_examples=25, deadline=None)
@given(cct_trees())
def test_double_roundtrip_is_stable(cct):
    once = _roundtrip(cct)
    twice = _roundtrip(once)
    assert strict_form(once) == strict_form(twice)


def test_callee_list_cell_addresses_survive():
    """Regression: loading used ``ListNode(record, 0)``, zeroing every
    list cell's heap address on a round trip."""
    base = MemoryMap().cct.base
    root = CallRecord(ROOT_ID, None, 1, 3, base)
    first = CallRecord("f", root, 1, 3, base + 100)
    second = CallRecord("g", root, 1, 3, base + 200)
    lst = CalleeList()
    lst.nodes = [ListNode(first, base + 300), ListNode(second, base + 316)]
    root.slots[0] = lst
    cct = FakeCCT(root, [root, first, second], 400)

    loaded = _roundtrip(cct)
    slot = loaded.root.slots[0]
    assert isinstance(slot, CalleeList)
    assert [node.addr for node in slot.nodes] == [base + 300, base + 316]
    assert [node.record.id for node in slot.nodes] == ["f", "g"]


def test_table_base_and_out_of_range_survive():
    from repro.instrument.tables import CounterTable, TableKind

    base = MemoryMap().cct.base
    root = CallRecord(ROOT_ID, None, 1, 3, base)
    table = CounterTable("f@0x0", -1, base + 64, 9000, 2, TableKind.HASH, buckets=16)
    table.counts = {7: 3, 8123: 1}
    table.metrics = {7: [10, 2]}
    table.out_of_range = 5
    root.path_tables["f"] = table
    cct = FakeCCT(root, [root], 4096)

    loaded = _roundtrip(cct)
    restored = loaded.root.path_tables["f"]
    assert restored.base == base + 64
    assert restored.out_of_range == 5
    assert restored.kind is TableKind.HASH
    assert restored.buckets == 16
    assert strict_form(loaded) == strict_form(cct)


def test_legacy_payload_without_new_fields_loads():
    """Dumps written before cell addresses/bases were persisted load
    with those fields zeroed rather than failing."""
    import json

    payload = {
        "format": "repro-cct-v1",
        "heap_bytes": 128,
        "root": 0,
        "records": [
            {
                "id": ROOT_ID,
                "parent": None,
                "metrics": [0, 0, 0],
                "addr": 0,
                "slots": [{"list": [1]}],
                "path_tables": {},
            },
            {
                "id": "f",
                "parent": 0,
                "metrics": [1, 2, 3],
                "addr": 64,
                "slots": [],
                "path_tables": {
                    "f": {
                        "name": "f@0x40",
                        "capacity": 4,
                        "metric_slots": 0,
                        "kind": "array",
                        "buckets": 16384,
                        "counts": {"1": 9},
                        "metrics": {},
                    }
                },
            },
        ],
    }
    with tempfile.TemporaryDirectory() as workdir:
        path = os.path.join(workdir, "legacy.json")
        with open(path, "w") as handle:
            json.dump(payload, handle)
        loaded = load_cct(path)
    slot = loaded.root.slots[0]
    assert isinstance(slot, CalleeList)
    assert slot.nodes[0].addr == 0
    table = loaded.records[1].path_tables["f"]
    assert table.base == 0 and table.out_of_range == 0
    assert table.counts == {1: 9}


MULTI_CALLEE = """
fn helper(x) { if (x % 2 == 0) { return x * 3; } return x + 7; }
fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
fn main() {
    var i = 0; var sum = 0;
    while (i < 9) { sum = sum + helper(i) + fib(i % 5); i = i + 1; }
    return sum;
}
"""


@pytest.mark.parametrize("by_site", [True, False], ids=["by_site", "merged_sites"])
def test_live_runtime_roundtrips_exactly(by_site):
    """An executed CCT — recursion backedge, and with merged call
    sites a real move-to-front callee list — survives save/load."""
    program = compile_source(MULTI_CALLEE)
    run = PP().context_hw(program, by_site=by_site)
    assert isinstance(run.cct, CCTRuntime)
    if not by_site:
        assert any(
            isinstance(slot, CalleeList)
            for record in run.cct.records
            for slot in record.slots
        )
    loaded = _roundtrip(run.cct)
    assert strict_form(loaded) == strict_form(run.cct)


def test_combined_mode_roundtrips_exactly():
    program = compile_source(MULTI_CALLEE)
    run = PP().context_flow(program)
    assert any(record.path_tables for record in run.cct.records)
    loaded = _roundtrip(run.cct)
    assert strict_form(loaded) == strict_form(run.cct)


def _tiny_cct():
    base = MemoryMap().cct.base
    root = CallRecord(ROOT_ID, None, 1, 3, base)
    child = CallRecord("f", root, 1, 3, base + 100)
    root.slots[0] = child
    return FakeCCT(root, [root, child], 200)


class TestAtomicityAndIntegrity:
    """The checkpointing contract the shard runner builds on."""

    def _tiny_cct(self):
        return _tiny_cct()

    def test_failed_save_preserves_previous_dump(self, tmp_path):
        """A crash mid-serialization must leave the prior checkpoint
        readable — the write lands in a temp file until the rename."""
        path = str(tmp_path / "cct.json")
        good = self._tiny_cct()
        save_cct(good, path)
        before = open(path).read()

        bad = self._tiny_cct()
        bad.records[1].metrics = [object(), 0, 0]  # not JSON-serializable
        with pytest.raises(TypeError):
            save_cct(bad, path)

        assert open(path).read() == before
        assert strict_form(load_cct(path)) == strict_form(good)
        assert not [n for n in os.listdir(str(tmp_path)) if ".tmp." in n]

    def test_save_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "cct.json")
        save_cct(self._tiny_cct(), path)
        assert os.listdir(str(tmp_path)) == ["cct.json"]

    def test_file_digest_tracks_content(self, tmp_path):
        from repro.cct.serialize import file_digest

        path = str(tmp_path / "cct.json")
        save_cct(self._tiny_cct(), path)
        digest = file_digest(path)
        assert digest == file_digest(path)  # deterministic
        with open(path, "ab") as handle:
            handle.write(b" ")
        assert file_digest(path) != digest

    def test_truncated_dump_raises_typed_error(self, tmp_path):
        from repro.cct.serialize import CCTLoadError

        path = str(tmp_path / "cct.json")
        save_cct(self._tiny_cct(), path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(CCTLoadError) as info:
            load_cct(path)
        assert info.value.path == path
        assert "truncated or corrupt" in info.value.reason


class TestLoadIsAllOrNothing:
    """Regression tests for eager load-time validation.

    Before the fix, :func:`load_cct` accepted any JSON value in
    numeric fields and the error surfaced lazily — a ``TypeError``
    deep inside a later merge, *after* the merge target had already
    been half-mutated (or worse, a string ``"12"`` reconstructed
    metrics as a list of characters and produced a silently wrong
    profile).  Now every numeric field is validated during
    reconstruction, so a corrupt dump is a typed
    :class:`CCTLoadError` at load time and nothing downstream ever
    sees a partially valid tree.
    """

    def _dump(self, tmp_path, mutate):
        import json

        path = str(tmp_path / "cct.json")
        save_cct(_tiny_cct(), path)
        payload = json.load(open(path))
        mutate(payload)
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return path

    def _assert_rejected(self, path, fragment):
        from repro.cct.serialize import CCTLoadError

        with pytest.raises(CCTLoadError) as info:
            load_cct(path)
        assert info.value.path == path
        assert "malformed CCT dump" in info.value.reason
        assert fragment in info.value.reason

    def test_string_metrics_fail_at_load_not_lazily(self, tmp_path):
        # The headline regression: "12" is iterable, so without eager
        # validation it reconstructed as metrics ["1", "2"] and loaded
        # "successfully".
        path = self._dump(
            tmp_path, lambda p: p["records"][1].update(metrics="12")
        )
        self._assert_rejected(path, "record metrics")

    def test_bool_is_not_an_integer(self, tmp_path):
        path = self._dump(
            tmp_path, lambda p: p["records"][1].update(addr=True)
        )
        self._assert_rejected(path, "addr")

    def test_string_table_count_fails_at_load(self, tmp_path):
        def mutate(payload):
            payload["records"][1]["path_tables"] = {
                "f": {
                    "name": "f@0x40",
                    "capacity": 4,
                    "metric_slots": 0,
                    "kind": "array",
                    "buckets": 16384,
                    "counts": {"1": "9"},
                    "metrics": {},
                }
            }

        path = self._dump(tmp_path, mutate)
        self._assert_rejected(path, "count")

    def test_corrupt_checkpoint_fails_before_any_merge_runs(self, tmp_path):
        """The motivating scenario: merging a corrupt shard checkpoint
        with an accumulator fails as a typed load error — never a raw
        ``TypeError`` from inside the merge — and the accumulator is
        untouched."""
        from repro.cct.merge import merge_ccts
        from repro.cct.serialize import CCTLoadError

        target = _tiny_cct()
        before = strict_form(target)
        path = self._dump(
            tmp_path, lambda p: p["records"][1].update(metrics="12")
        )
        with pytest.raises(CCTLoadError):
            merge_ccts([target, load_cct(path)])
        assert strict_form(target) == before
