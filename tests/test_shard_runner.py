"""Sharded profiling must be invisible in the merged results.

For a deterministic workload, splitting the input set across N forked
workers and merging the per-shard CCT dumps must reproduce the serial
run exactly: identical CCT structure byte for byte (strict form),
identical Table-3 statistics, identical hot-path classification, and
identical totals across all sixteen hardware event counters.
"""

import os

import pytest

from repro.cct.merge import canonical_form, strict_form
from repro.cct.stats import cct_statistics
from repro.machine.counters import NUM_EVENTS, Event
from repro.profiles.hotpaths import classify_paths
from repro.tools.shard_runner import (
    ShardSpec,
    flow_template,
    load_manifest,
    resume_run,
    serial_run,
    shard_run,
    spec_for_workload,
    spec_from_json,
    spec_to_json,
)

SOURCE = """
fn helper(x) { if (x % 2 == 0) { return x * 3; } return x + 7; }
fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
fn main(a) {
    var i = 0; var sum = 0;
    while (i < a) { sum = sum + helper(i) + fib(i % 6); i = i + 1; }
    return sum;
}
"""

INPUTS = ((4,), (7,), (2,), (9,), (5,), (3,))


def _profile_facts(profile):
    return {
        name: (dict(fpp.counts), {k: list(v) for k, v in fpp.metrics.items()})
        for name, fpp in profile.functions.items()
    }


class TestShardEqualsSerial:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_combined_mode(self, shards):
        spec = ShardSpec(source=SOURCE, inputs=INPUTS, mode="context_flow")
        reference = serial_run(spec)
        outcome = shard_run(spec, shards, jobs=1)
        assert outcome.return_values == reference.return_values
        assert strict_form(outcome.cct) == strict_form(reference.cct)
        assert cct_statistics(outcome.cct).row() == cct_statistics(reference.cct).row()
        assert _profile_facts(outcome.path_profile) == _profile_facts(
            reference.path_profile
        )

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_flow_hw_hot_paths(self, shards):
        spec = ShardSpec(source=SOURCE, inputs=INPUTS, mode="flow_hw")
        reference = serial_run(spec)
        outcome = shard_run(spec, shards, jobs=1)
        assert outcome.cct is None
        assert _profile_facts(outcome.path_profile) == _profile_facts(
            reference.path_profile
        )
        ours = classify_paths(outcome.path_profile)
        theirs = classify_paths(reference.path_profile)
        assert ours.row() == theirs.row()
        assert [
            (c.entry.function, c.entry.path_sum, c.klass) for c in ours.classified
        ] == [
            (c.entry.function, c.entry.path_sum, c.klass) for c in theirs.classified
        ]

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_all_sixteen_counters(self, shards):
        """Counter totals are partition-invariant, event by event."""
        spec = ShardSpec(source=SOURCE, inputs=INPUTS, mode="context_hw")
        reference = serial_run(spec)
        outcome = shard_run(spec, shards, jobs=1)
        assert len(Event) == NUM_EVENTS == 16
        for event in Event:
            assert outcome.counters[event] == reference.counters[event], event.name
        assert strict_form(outcome.cct) == strict_form(reference.cct)

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_kflow_mode(self, shards, k):
        """Multi-iteration path profiles merge exactly like flow_hw:
        pointwise sums over k-path ids, byte-identical to serial."""
        from repro.session import ProfileSpec

        spec = ShardSpec(
            source=SOURCE,
            profile=ProfileSpec(mode="kflow", k=k, inputs=INPUTS),
        )
        reference = serial_run(spec)
        outcome = shard_run(spec, shards, jobs=1)
        assert outcome.cct is None
        assert outcome.return_values == reference.return_values
        assert outcome.counters == reference.counters
        assert _profile_facts(outcome.path_profile) == _profile_facts(
            reference.path_profile
        )

    def test_kflow_k1_merge_matches_flow_hw(self):
        """The k=1 degenerate case is flow_hw under another name, all
        the way through the sharded merge."""
        from repro.session import ProfileSpec

        kflow = shard_run(
            ShardSpec(
                source=SOURCE,
                profile=ProfileSpec(mode="kflow", k=1, inputs=INPUTS),
            ),
            2,
            jobs=1,
        )
        flow = shard_run(
            ShardSpec(source=SOURCE, inputs=INPUTS, mode="flow_hw"), 2, jobs=1
        )
        assert _profile_facts(kflow.path_profile) == _profile_facts(
            flow.path_profile
        )
        assert kflow.counters == flow.counters

    def test_forked_workers_match(self, tmp_path):
        """The real multiprocess path (fork + dump + reload)."""
        spec = ShardSpec(source=SOURCE, inputs=INPUTS, mode="context_flow")
        reference = serial_run(spec)
        outcome = shard_run(spec, 3, workdir=str(tmp_path))
        assert strict_form(outcome.cct) == strict_form(reference.cct)
        assert outcome.counters == reference.counters
        assert len(outcome.shard_files) == 3
        for shard_file in outcome.shard_files:
            assert os.path.exists(shard_file)

    def test_more_shards_than_inputs(self):
        """Workers with empty chunks contribute the merge identity."""
        spec = ShardSpec(source=SOURCE, inputs=INPUTS[:2], mode="context_flow")
        reference = serial_run(spec)
        outcome = shard_run(spec, 4, jobs=1)
        assert strict_form(outcome.cct) == strict_form(reference.cct)
        assert outcome.counters == reference.counters


class TestSpecValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            ShardSpec(source=SOURCE, mode="edge")

    def test_unknown_mode_is_a_typed_error_naming_the_mode(self):
        from repro.session import ProfileSpecError

        with pytest.raises(ProfileSpecError, match="unknown mode 'bogus'"):
            ShardSpec(source=SOURCE, mode="bogus")

    def test_embedded_profile_spec_drives_the_run(self):
        from repro.session import ProfileSpec

        profile = ProfileSpec(mode="flow_hw", inputs=INPUTS)
        spec = ShardSpec(source=SOURCE, profile=profile)
        assert spec.mode == "flow_hw"
        assert spec.inputs == INPUTS
        # Legacy keywords override fields of an explicit profile.
        overridden = ShardSpec(source=SOURCE, profile=profile, mode="context_hw")
        assert overridden.profile.mode == "context_hw"
        assert overridden.inputs == INPUTS

    def test_exactly_one_program_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            ShardSpec(source=SOURCE, workload="129.compress")
        with pytest.raises(ValueError, match="exactly one"):
            ShardSpec()

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            shard_run(ShardSpec(source=SOURCE), 0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ShardSpec(source=SOURCE, retries=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            ShardSpec(source=SOURCE, timeout=0)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError, match="backoff"):
            ShardSpec(source=SOURCE, backoff=-0.5)


class TestManifestAndResume:
    def test_spec_json_round_trip(self):
        spec = ShardSpec(
            source=SOURCE,
            inputs=INPUTS,
            mode="flow_hw",
            retries=3,
            timeout=7.5,
            backoff=0.25,
        )
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_spec_from_json_ignores_unknown_keys(self):
        raw = spec_to_json(ShardSpec(source=SOURCE, inputs=INPUTS))
        raw["future_knob"] = "whatever"
        assert spec_from_json(raw) == ShardSpec(source=SOURCE, inputs=INPUTS)

    def test_manifest_embeds_the_profile_spec(self):
        spec = ShardSpec(
            source=SOURCE, inputs=INPUTS, mode="flow_hw", placement="simple"
        )
        raw = spec_to_json(spec)
        assert raw["profile"]["mode"] == "flow_hw"
        assert raw["profile"]["placement"] == "simple"
        assert raw["profile"]["inputs"] == [list(args) for args in INPUTS]
        for legacy_key in ("mode", "placement", "by_site", "inputs", "engine"):
            assert legacy_key not in raw

    def test_kflow_spec_json_round_trip_keeps_k(self):
        from repro.session import ProfileSpec

        spec = ShardSpec(
            source=SOURCE,
            profile=ProfileSpec(mode="kflow", k=3, inputs=INPUTS),
        )
        raw = spec_to_json(spec)
        assert raw["profile"]["mode"] == "kflow"
        assert raw["profile"]["k"] == 3
        revived = spec_from_json(raw)
        assert revived == spec
        assert revived.profile.k == 3
        assert revived.profile.digest() == spec.profile.digest()

    def test_legacy_manifest_without_k_still_loads(self):
        # Manifests written before the ``k`` field existed carry no
        # such key; they must load with identical semantics (and, for
        # non-kflow modes, identical spec digests).
        spec = ShardSpec(source=SOURCE, inputs=INPUTS, mode="flow_hw")
        raw = spec_to_json(spec)
        assert "k" not in raw["profile"]
        revived = spec_from_json(raw)
        assert revived == spec
        assert revived.profile.digest() == spec.profile.digest()

    def test_legacy_manifest_spec_still_loads(self):
        # Manifests written before the embedded ProfileSpec carried the
        # profiling knobs at top level; they must keep resuming.
        raw = {
            "workload": None,
            "scale": 1.0,
            "source": SOURCE,
            "asm": None,
            "inputs": [[4], [7]],
            "mode": "context_hw",
            "engine": "simple",
            "retries": 3,
            "timeout": 7.5,
            "backoff": 0.25,
        }
        spec = spec_from_json(raw)
        assert spec == ShardSpec(
            source=SOURCE,
            inputs=((4,), (7,)),
            mode="context_hw",
            engine="simple",
            retries=3,
            timeout=7.5,
            backoff=0.25,
        )
        assert spec.profile.mode == "context_hw"

    def test_manifest_describes_the_split(self, tmp_path):
        spec = ShardSpec(source=SOURCE, inputs=INPUTS)
        outcome = shard_run(spec, 3, workdir=str(tmp_path), jobs=1)
        payload = load_manifest(outcome.manifest_path)
        assert payload["shards"] == 3
        assert spec_from_json(payload["spec"]) == spec
        chunks = [entry["inputs"] for entry in payload["entries"]]
        assert sorted(index for chunk in chunks for index in chunk) == list(
            range(len(INPUTS))
        )
        assert chunks == [[0, 3], [1, 4], [2, 5]]  # round-robin

    def test_resume_of_complete_run_reruns_nothing(self, tmp_path):
        spec = ShardSpec(source=SOURCE, inputs=INPUTS)
        outcome = shard_run(spec, 2, workdir=str(tmp_path), jobs=1)
        before = {
            name: os.path.getmtime(os.path.join(str(tmp_path), name))
            for name in os.listdir(str(tmp_path))
            if name.endswith(".json")
        }
        resumed = resume_run(outcome.manifest_path)
        after = {
            name: os.path.getmtime(os.path.join(str(tmp_path), name))
            for name in before
        }
        assert before == after  # checkpoints untouched: pure re-merge
        assert strict_form(resumed.cct) == strict_form(outcome.cct)
        assert resumed.counters == outcome.counters
        assert resumed.return_values == outcome.return_values

    def test_temp_workdir_forfeits_resume(self):
        spec = ShardSpec(source=SOURCE, inputs=INPUTS[:2])
        outcome = shard_run(spec, 2, jobs=1)
        assert outcome.manifest_path is None
        assert outcome.shard_files == []

    def test_rerun_in_same_workdir_clears_stale_checkpoints(self, tmp_path):
        spec = ShardSpec(source=SOURCE, inputs=INPUTS)
        shard_run(spec, 4, workdir=str(tmp_path), jobs=1)
        # Fewer shards second time: shard 2/3 checkpoints must not
        # survive to poison a later resume of the 2-shard manifest.
        outcome = shard_run(spec, 2, workdir=str(tmp_path), jobs=1)
        reference = serial_run(spec)
        assert strict_form(outcome.cct) == strict_form(reference.cct)
        assert not os.path.exists(str(tmp_path / "shard2.result.json"))
        assert not os.path.exists(str(tmp_path / "shard3.result.json"))


class TestWorkloadSharding:
    def test_workload_spec_repetitions(self):
        spec = spec_for_workload("129.compress", scale=0.2, runs=3)
        assert spec.inputs == ((), (), ())

    def test_sharded_workload_matches_serial(self):
        spec = spec_for_workload("129.compress", scale=0.2, runs=2)
        reference = serial_run(spec)
        outcome = shard_run(spec, 2, jobs=1)
        assert strict_form(outcome.cct) == strict_form(reference.cct)
        assert outcome.counters == reference.counters

    def test_table3_sharded_is_shard_count_invariant(self):
        from repro.experiments.table3 import cct_stats_experiment

        rows = {
            shards: cct_stats_experiment(
                ["129.compress"], scale=0.2, shards=shards, runs=2
            )
            for shards in (1, 2)
        }
        assert rows[1] == rows[2]
        assert rows[1][0]["Benchmark"] == "129.compress"
        # two runs double the aggregate call frequency vs one
        single = cct_stats_experiment(["129.compress"], scale=0.2, shards=1, runs=1)
        assert rows[1][0]["Nodes"] == single[0]["Nodes"]

    def test_one_path_column_present_under_sharding(self):
        spec = spec_for_workload("145.fpppp", scale=0.2, runs=1)
        outcome = shard_run(spec, 2, jobs=1)
        template = flow_template(spec)
        stats = cct_statistics(
            outcome.cct, program=template.program, flow_functions=template.functions
        )
        assert stats.call_sites_one_path is not None


class TestMergedProfileSemantics:
    def test_metrics_scale_with_repeated_inputs(self):
        one = serial_run(ShardSpec(source=SOURCE, inputs=((6,),)))
        three = serial_run(ShardSpec(source=SOURCE, inputs=((6,), (6,), (6,))))
        assert canonical_form(one.cct) != canonical_form(three.cct)
        freq_one = sum(
            r.metrics[0] for r in one.cct.records if r is not one.cct.root
        )
        freq_three = sum(
            r.metrics[0] for r in three.cct.records if r is not three.cct.root
        )
        assert freq_three == 3 * freq_one

    def test_disjoint_inputs_union_paths(self):
        """Inputs driving different paths union in the aggregate."""
        even = serial_run(ShardSpec(source=SOURCE, inputs=((2,),), mode="flow_hw"))
        merged = serial_run(
            ShardSpec(source=SOURCE, inputs=((2,), (9,)), mode="flow_hw")
        )
        helper_even = even.path_profile.functions["helper"]
        helper_merged = merged.path_profile.functions["helper"]
        assert set(helper_even.counts) <= set(helper_merged.counts)
        assert helper_merged.total_freq() > helper_even.total_freq()
