"""Asynchronous signals: handlers as additional entry points (§4.2).

The paper notes its tool would need multiple CCT roots to support
signal handlers; this reproduction implements that: each handler gets
its own slot on the distinguished root, so handler contexts hang off
the root rather than polluting whichever procedure happened to be
interrupted.
"""

import pytest

from repro.cct.runtime import CCTRuntime
from repro.instrument.cctinstr import instrument_context
from repro.instrument.pathinstr import instrument_paths
from repro.instrument.tables import ProfilingRuntime
from repro.lang import compile_source
from repro.machine.memory import MemoryMap
from repro.machine.vm import Machine, MachineError

SOURCE = """
global ticks[1];
global work_done[1];

fn on_tick(n) {
    ticks[0] = ticks[0] + 1;
    return helper(n);
}

fn helper(n) {
    return n * 2;
}

fn compute(x) {
    var i = 0; var sum = 0;
    while (i < 40) { sum = sum + (x ^ i); i = i + 1; }
    return sum;
}

fn main() {
    var i = 0; var out = 0;
    while (i < 50) {
        out = out + compute(i);
        i = i + 1;
    }
    work_done[0] = 1;
    return out & 65535;
}
"""


def _machine(source=SOURCE, **signal):
    program = compile_source(source)
    machine = Machine(program)
    if signal:
        machine.install_signal(**signal)
    return program, machine


class TestDelivery:
    def test_signals_fire_periodically(self):
        _, machine = _machine(handler="on_tick", period=500)
        machine.run()
        assert machine.signals_delivered >= 5
        # The handler really ran: it bumped the tick counter.
        assert machine.memory.read(machine.memory.global_addr(0)) == (
            machine.signals_delivered
        )

    def test_result_unchanged_by_signals(self):
        _, plain = _machine()
        _, signaled = _machine(handler="on_tick", period=300)
        assert plain.run().return_value == signaled.run().return_value

    def test_handler_return_value_discarded(self):
        # The interrupted code's registers must be untouched even
        # though the handler returns a value.
        _, machine = _machine(handler="on_tick", period=100)
        result = machine.run()
        _, plain = _machine()
        assert result.return_value == plain.run().return_value

    def test_signals_masked_inside_handler(self):
        # A tiny period cannot re-enter the handler while it runs.
        _, machine = _machine(handler="on_tick", period=1)
        machine.config.max_instructions = 2_000_000
        result = machine.run()
        assert result is not None

    def test_unknown_handler_rejected(self):
        program = compile_source(SOURCE)
        machine = Machine(program)
        with pytest.raises(MachineError, match="unknown"):
            machine.install_signal(handler="ghost", period=100)

    def test_bad_period_rejected(self):
        program = compile_source(SOURCE)
        machine = Machine(program)
        with pytest.raises(MachineError, match="period"):
            machine.install_signal(handler="on_tick", period=0)


class TestSignalsAndCCT:
    def _run(self, period=400):
        program = compile_source(SOURCE)
        instrument_context(program)
        runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=True)
        machine = Machine(program)
        machine.cct_runtime = runtime
        machine.install_signal(handler="on_tick", period=period)
        machine.run()
        return machine, runtime

    def test_handler_contexts_hang_off_root(self):
        machine, runtime = self._run()
        handler_records = [r for r in runtime.records if r.id == "on_tick"]
        assert len(handler_records) == 1
        assert handler_records[0].parent is runtime.root
        # The handler's own callees nest under it.
        helper_contexts = {
            tuple(r.context()) for r in runtime.records if r.id == "helper"
        }
        assert ("<root>", "on_tick", "helper") in helper_contexts

    def test_interrupted_contexts_unpolluted(self):
        machine, runtime = self._run()
        compute_records = [r for r in runtime.records if r.id == "compute"]
        assert len(compute_records) == 1
        assert compute_records[0].parent.id == "main"
        # No record claims the handler called compute or vice versa.
        for record in runtime.records:
            chain = record.context()
            if "on_tick" in chain:
                assert "compute" not in chain
                assert "main" not in chain

    def test_handler_frequency_matches_deliveries(self):
        machine, runtime = self._run()
        handler = next(r for r in runtime.records if r.id == "on_tick")
        assert handler.metrics[0] == machine.signals_delivered

    def test_shadow_stack_balanced(self):
        machine, runtime = self._run()
        assert runtime.shadow == []
        assert runtime._interrupted_gcsp == []


class TestSignalsAndPathProfiling:
    def test_path_counts_still_exact(self):
        """Signals interrupt at block boundaries, so the interrupted
        path resumes and commits normally; handler paths count too."""
        program = compile_source(SOURCE)
        runtime = ProfilingRuntime(MemoryMap().profiling.base)
        flow = instrument_paths(program, mode="freq", placement="simple",
                                runtime=runtime)
        machine = Machine(program)
        machine.path_runtime = runtime
        machine.install_signal(handler="on_tick", period=400)
        machine.run()
        handler_counts = flow.path_counts("on_tick")
        assert sum(handler_counts.values()) == machine.signals_delivered
        # compute's loop paths: 40 iterations x 50 calls all accounted.
        compute_total = sum(flow.path_counts("compute").values())
        assert compute_total == 50 * 41  # 40 backedges + exit per call
