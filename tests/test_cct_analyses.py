"""CCT statistics (Table 3), serialization, and attribution baselines."""

import pytest

from repro.cct.dct import canonical_record
from repro.cct.gprof import cct_truth, gprof_attribution, gprof_error, pair_attribution
from repro.cct.runtime import CCTRuntime
from repro.cct.serialize import load_cct, save_cct
from repro.cct.stats import cct_statistics
from repro.instrument.cctinstr import instrument_context
from repro.instrument.pathinstr import instrument_paths
from repro.instrument.tables import ProfilingRuntime
from repro.lang import compile_source
from repro.machine.memory import MemoryMap
from repro.machine.vm import Machine

from tests.conftest import compile_corpus


def _combined(corpus_name: str):
    program = compile_corpus(corpus_name)
    profiling = ProfilingRuntime(MemoryMap().profiling.base)
    flow = instrument_paths(
        program, mode="freq", placement="spanning_tree",
        runtime=profiling, per_context=True,
    )
    instrument_context(program)
    runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=False, profiling=profiling)
    machine = Machine(program)
    machine.path_runtime = profiling
    machine.cct_runtime = runtime
    result = machine.run()
    return program, runtime, flow, result


class TestStatistics:
    def test_basic_counts(self):
        program, runtime, flow, _ = _combined("deep_calls")
        stats = cct_statistics(runtime, program=program, flow_functions=flow.functions)
        # main, l1, l2, two l3 contexts, two l4 contexts under each l3.
        assert stats.nodes == 9
        assert stats.max_replication == 4  # l4 appears in 4 contexts
        assert stats.height_max <= len(program.functions)
        assert stats.call_sites_used <= stats.call_sites
        assert stats.size_bytes > 0

    def test_one_path_column(self):
        """A call site reached by exactly one executed path counts."""
        program, runtime, flow, _ = _combined("calls")
        stats = cct_statistics(runtime, program=program, flow_functions=flow.functions)
        assert stats.call_sites_one_path is not None
        assert 0 <= stats.call_sites_one_path <= stats.call_sites_used

    def test_one_path_requires_flow_data(self):
        program, runtime, flow, _ = _combined("calls")
        stats = cct_statistics(runtime)
        assert stats.call_sites_one_path is None

    def test_bushy_not_tall(self):
        """The paper's observation: height << node count for wide trees."""
        from repro.workloads import make_layered_calls_program
        from repro.tools.pp import PP

        program = make_layered_calls_program("t", seed=9, iterations=40, layers=5, width=4)
        run = PP().context_flow(program)
        stats = cct_statistics(run.cct, run.program, run.flow.functions)
        assert stats.nodes > 4 * stats.height_max

    def test_empty_cct(self):
        runtime = CCTRuntime(MemoryMap().cct.base)
        stats = cct_statistics(runtime)
        assert stats.nodes == 0


class TestSerialization:
    def test_round_trip_structure(self, corpus_name, tmp_path):
        program, runtime, flow, _ = _combined(corpus_name)
        path = str(tmp_path / "profile.cct")
        save_cct(runtime, path)
        loaded = load_cct(path)
        assert canonical_record(loaded.root) == canonical_record(runtime.root)
        assert loaded.heap_bytes() == runtime.heap_bytes()

    def test_round_trip_path_tables(self, tmp_path):
        program, runtime, flow, _ = _combined("calls")
        path = str(tmp_path / "profile.cct")
        save_cct(runtime, path)
        loaded = load_cct(path)
        originals = {
            (tuple(r.context()), name): table.counts
            for r in runtime.records
            for name, table in r.path_tables.items()
        }
        reloaded = {
            (tuple(r.context()), name): table.counts
            for r in loaded.records
            for name, table in r.path_tables.items()
        }
        assert reloaded == originals

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a repro CCT"):
            load_cct(str(path))


class TestGprofProblem:
    """The paper's motivating example: a callee whose cost depends on
    its caller.  gprof splits by call counts and gets it wrong; the CCT
    (and even one-level pairs) keep it right."""

    SOURCE = """
    fn work(n) {
        var i = 0; var sum = 0;
        while (i < n) { sum = sum + i; i = i + 1; }
        return sum;
    }
    fn cheap() { return work(2); }
    fn expensive() { return work(200); }
    fn main() {
        var i = 0; var sum = 0;
        while (i < 10) {
            sum = sum + cheap();
            if (i == 0) { sum = sum + expensive(); }
            i = i + 1;
        }
        return sum;
    }
    """

    def _runtime(self):
        program = compile_source(self.SOURCE)
        instrument_context(program)
        runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=True)
        machine = Machine(program)
        machine.cct_runtime = runtime
        machine.run()
        return runtime

    def test_cct_separates_contexts(self):
        runtime = self._runtime()
        truth = cct_truth(runtime, metric=1)
        cheap_ctx = truth[("main", "cheap", "work")]
        expensive_ctx = truth[("main", "expensive", "work")]
        # One expensive call outweighs ten cheap calls put together...
        assert expensive_ctx > 5 * cheap_ctx
        # ...and per call the gap is the full 100x loop-length ratio.
        assert expensive_ctx / 1 > 20 * (cheap_ctx / 10)

    def test_gprof_blurs_them(self):
        runtime = self._runtime()
        profile = gprof_attribution(runtime, metric=1)
        # gprof splits work's total by call counts: 10 cheap calls vs 1
        # expensive call, so it attributes ~10/11 of the cost to cheap.
        attributed_cheap = profile.attributed[("cheap", "work")]
        attributed_expensive = profile.attributed[("expensive", "work")]
        assert attributed_cheap > attributed_expensive

    def test_pairs_fix_one_level(self):
        runtime = self._runtime()
        pairs = pair_attribution(runtime, metric=1)
        assert pairs.measured[("expensive", "work")] > pairs.measured[("cheap", "work")]

    def test_error_metric_nonzero_for_gprof(self):
        runtime = self._runtime()
        errors = gprof_error(runtime, metric=1)
        assert errors[("cheap", "work")] > 0
        assert errors[("expensive", "work")] > 0

    def test_gprof_conserves_totals(self):
        runtime = self._runtime()
        profile = gprof_attribution(runtime, metric=1)
        for callee in ("work",):
            attributed = sum(
                v for (caller, c), v in profile.attributed.items() if c == callee
            )
            assert attributed == pytest.approx(profile.totals[callee])
