"""Caches, branch predictor, counters, memory map."""

import pytest

from repro.machine.branch import TwoBitPredictor
from repro.machine.caches import DirectMappedCache, SetAssociativeCache
from repro.machine.counters import CounterBank, Event, PicRegisters
from repro.machine.memory import WORD, MemoryMap


class TestDirectMappedCache:
    def test_cold_miss_then_hit(self):
        cache = DirectMappedCache(1024, 32)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(31)  # same line
        assert not cache.access(32)  # next line

    def test_conflict_eviction(self):
        cache = DirectMappedCache(1024, 32)
        # Addresses one cache-size apart map to the same set.
        assert not cache.access(0)
        assert not cache.access(1024)
        assert not cache.access(0)  # evicted by the conflicting line

    def test_set_index(self):
        cache = DirectMappedCache(1024, 32)
        assert cache.set_index(0) == cache.set_index(1024)
        assert cache.set_index(0) != cache.set_index(32)

    def test_no_allocate_write(self):
        cache = DirectMappedCache(1024, 32)
        cache.access(64, allocate=False)
        assert not cache.contains(64)

    def test_statistics(self):
        cache = DirectMappedCache(1024, 32)
        for address in (0, 0, 32, 0):
            cache.access(address)
        assert cache.accesses == 4
        assert cache.misses == 2

    def test_paper_geometry(self):
        """16KB direct mapped with 32B lines: 512 sets (§6.4.1)."""
        cache = DirectMappedCache(16 * 1024, 32)
        assert cache.sets == 512

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            DirectMappedCache(1000, 32)
        with pytest.raises(ValueError):
            DirectMappedCache(1024, 24)


class TestSetAssociativeCache:
    def test_lru_within_set(self):
        cache = SetAssociativeCache(2 * 32, 32, 2)  # 1 set, 2 ways
        cache.access(0)
        cache.access(32)
        cache.access(0)        # 0 becomes MRU
        cache.access(64)       # evicts 32 (LRU)
        assert cache.contains(0)
        assert not cache.contains(32)

    def test_assoc_avoids_direct_conflict(self):
        cache = SetAssociativeCache(1024, 32, 2)
        cache.access(0)
        cache.access(1024 // 2)  # same set, other way
        assert cache.contains(0)


class TestTwoBitPredictor:
    def test_warms_up_on_taken_loop(self):
        predictor = TwoBitPredictor(64)
        results = [predictor.predict_and_update(0x100, True) for _ in range(5)]
        assert all(results)  # initialized weakly-taken

    def test_flips_after_one_not_taken_from_weak_state(self):
        predictor = TwoBitPredictor(64)
        assert not predictor.predict_and_update(0x100, False)  # weak-taken says taken
        assert predictor.predict_and_update(0x100, False)  # now predicts not-taken

    def test_strongly_taken_needs_two_to_flip(self):
        predictor = TwoBitPredictor(64)
        predictor.predict_and_update(0x100, True)  # weak -> strong taken
        assert not predictor.predict_and_update(0x100, False)  # strong: still taken
        assert not predictor.predict_and_update(0x100, False)  # weak: still taken
        assert predictor.predict_and_update(0x100, False)

    def test_alternating_pattern_mispredicts(self):
        predictor = TwoBitPredictor(64)
        outcomes = [bool(i % 2) for i in range(50)]
        correct = sum(predictor.predict_and_update(0x200, t) for t in outcomes)
        assert correct < 40  # alternation defeats a 2-bit counter

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            TwoBitPredictor(100)


class TestPicRegisters:
    def test_read_after_zero(self):
        bank = CounterBank()
        pic = PicRegisters(bank, Event.INSTRS, Event.DC_MISS)
        bank.counts[Event.INSTRS] = 100
        pic.write_zero()
        pic.read()
        bank.counts[Event.INSTRS] += 7
        assert pic.read()[0] == 7

    def test_32bit_wrap(self):
        bank = CounterBank()
        pic = PicRegisters(bank, Event.INSTRS, Event.DC_MISS)
        pic.write_zero()
        pic.read()
        bank.counts[Event.INSTRS] = (1 << 32) + 5
        assert pic.read()[0] == 5  # wrapped

    def test_write_requires_confirming_read(self):
        bank = CounterBank()
        pic = PicRegisters(bank, Event.INSTRS, Event.DC_MISS)
        pic.write_zero()
        assert pic.pending_read
        pic.read()
        assert not pic.pending_read

    def test_save_restore_round_trip(self):
        bank = CounterBank()
        pic = PicRegisters(bank, Event.INSTRS, Event.DC_MISS)
        bank.counts[Event.INSTRS] = 40
        pic.write_zero(); pic.read()
        bank.counts[Event.INSTRS] += 10
        saved = pic.read()
        bank.counts[Event.INSTRS] += 999  # a callee runs
        pic.write_values(*saved)
        pic.read()
        bank.counts[Event.INSTRS] += 3
        assert pic.read()[0] == saved[0] + 3

    def test_configure_switches_events(self):
        bank = CounterBank()
        pic = PicRegisters(bank, Event.INSTRS, Event.DC_MISS)
        bank.counts[Event.CYCLES] = 55
        pic.configure(Event.CYCLES, Event.IC_MISS)
        bank.counts[Event.CYCLES] += 5
        assert pic.read()[0] == 5


class TestCounterBank:
    def test_snapshot_and_diff(self):
        bank = CounterBank()
        before = bank.snapshot()
        bank.counts[Event.LOADS] = 12
        diff = bank.diff(before)
        assert diff[Event.LOADS] == 12
        assert diff[Event.STORES] == 0


class TestMemoryMap:
    def test_regions_are_disjoint(self):
        memory = MemoryMap(16)
        regions = [memory.globals, memory.heap, memory.stack,
                   memory.profiling, memory.cct]
        for i, a in enumerate(regions):
            for b in regions[i + 1:]:
                assert a.limit <= b.base or b.limit <= a.base

    def test_uninitialized_reads_zero(self):
        memory = MemoryMap(16)
        assert memory.read(memory.global_addr(3)) == 0

    def test_write_read(self):
        memory = MemoryMap(16)
        address = memory.global_addr(2)
        memory.write(address, 123)
        assert memory.read(address) == 123

    def test_heap_alloc_bumps(self):
        memory = MemoryMap(16)
        a = memory.heap_alloc(4)
        b = memory.heap_alloc(4)
        assert b == a + 4 * WORD
        assert memory.heap_used() == 8 * WORD

    def test_heap_exhaustion(self):
        memory = MemoryMap(16)
        with pytest.raises(MemoryError):
            memory.heap_alloc(memory.heap.size)

    def test_frame_base_progression(self):
        memory = MemoryMap(16)
        assert memory.frame_base(1, 32) - memory.frame_base(0, 32) == 32 * WORD

    def test_region_of(self):
        memory = MemoryMap(16)
        assert memory.region_of(memory.global_addr(0)) == "globals"
        assert memory.region_of(memory.heap.base) == "heap"
        assert memory.region_of(memory.cct.base + 8) == "cct"
        assert memory.region_of(0) == "unmapped"
