"""DAG compaction ([JSB97], §7.3) and region-attributed cache misses."""

import pytest

from repro.cct.dag import compact_dag, dag_statistics
from repro.cct.dct import DynamicCallRecorder, project_cct
from repro.lang import compile_source
from repro.machine.vm import Machine
from repro.tools.pp import PP

from tests.conftest import compile_corpus


def _dct(source=None, corpus_name=None):
    program = compile_source(source) if source else compile_corpus(corpus_name)
    machine = Machine(program)
    recorder = DynamicCallRecorder()
    machine.tracer = recorder
    machine.run()
    return recorder.tree


def _count_projected(root):
    seen = set()
    stack = [root]
    while stack:
        node = stack.pop()
        for child in node.children.values():
            if id(child) not in seen and child.parent is node:
                seen.add(id(child))
                stack.append(child)
    return len(seen)


class TestDagCompaction:
    def test_never_larger_than_tree(self, corpus_name):
        dct = _dct(corpus_name=corpus_name)
        dag = compact_dag(dct)
        assert dag.unique_nodes <= max(dag.tree_size, 1)

    def test_identical_subtrees_shared(self):
        # Two calls with identical futures share one DAG subtree.
        dct = _dct(source="""
            fn leaf() { return 1; }
            fn main() { return leaf() + leaf() + leaf(); }
        """)
        dag = compact_dag(dct)
        assert dag.tree_size == 4  # main + three leaf activations
        assert dag.unique_nodes == 2  # main + ONE shared leaf node
        assert dag.compression == pytest.approx(2.0)
        leaf = _collect(dag.root, "leaf")
        assert len(leaf) == 1 and leaf[0].count == 3

    def test_same_context_different_futures_split(self):
        """The paper's §7.3 point: DAG equivalence looks at the subtree
        below, so activations with IDENTICAL contexts can land in
        different DAG nodes — which never happens in a CCT."""
        dct = _dct(source="""
            fn helper() { return 2; }
            fn work(n) {
                if (n == 0) { return helper(); }  // future: calls helper
                return n;                           // future: leaf
            }
            fn main() { return work(0) + work(1); }
        """)
        dag = compact_dag(dct)
        work_nodes = _collect(dag.root, "work")
        assert len(work_nodes) == 2  # split by future
        cct = project_cct(dct)
        main_node = next(iter(cct.children.values()))
        cct_work = {
            child
            for child in main_node.children.values()
            if child.proc == "work"
        }
        # ...but context keys them differently: two SITES, so the
        # site-sensitive CCT also has two; merged-site CCT has one.
        merged = project_cct(dct, by_site=False)
        merged_main = next(iter(merged.children.values()))
        merged_work = {
            child
            for child in merged_main.children.values()
            if child.proc == "work"
        }
        assert len(merged_work) == 1

    def test_different_contexts_shared_future(self):
        """And vice versa: different contexts share one DAG node."""
        dct = _dct(source="""
            fn leaf() { return 1; }
            fn a() { return leaf(); }
            fn b() { return leaf(); }
            fn main() { return a() + b(); }
        """)
        dag = compact_dag(dct)
        leaf_nodes = _collect(dag.root, "leaf")
        assert len(leaf_nodes) == 1  # shared despite two contexts
        cct = project_cct(dct)
        contexts = set()

        def walk(node, trail):
            for child in node.children.values():
                if child.parent is node:
                    if child.proc == "leaf":
                        contexts.add(tuple(trail + ["leaf"]))
                    walk(child, trail + [child.proc])

        walk(cct, [])
        assert len(contexts) == 2  # the CCT keeps both

    def test_statistics(self):
        dct = _dct(corpus_name="fib")
        stats = dag_statistics(compact_dag(dct))
        assert stats["Compression"] >= 1.0
        assert stats["DCT activations"] > stats["DAG unique nodes"]

    def test_fib_compresses_well(self):
        # fib's call tree repeats subtrees massively.
        dct = _dct(corpus_name="fib")
        dag = compact_dag(dct)
        assert dag.compression > 5.0


def _collect(root, proc):
    seen = {}
    stack = [root]
    visited = set()
    while stack:
        node = stack.pop()
        if id(node) in visited:
            continue
        visited.add(id(node))
        if node.proc == proc:
            seen[id(node)] = node
        stack.extend(node.children)
    return list(seen.values())


class TestRegionMisses:
    def test_uninstrumented_misses_are_program_only(self):
        program = compile_corpus("arrays")
        machine = Machine(program)
        machine.run()
        regions = set(machine.region_misses)
        assert regions <= {"globals", "stack", "heap"}
        assert machine.region_misses.get("profiling", 0) == 0
        assert machine.region_misses.get("cct", 0) == 0

    def test_instrumentation_misses_attributed(self):
        program = compile_corpus("hash_table")
        run = PP().context_flow(program)
        regions = run.machine.region_misses
        # The CCT heap and/or profiling tables took some misses.
        assert regions.get("cct", 0) + regions.get("profiling", 0) > 0

    def test_totals_match_counter(self):
        from repro.machine.counters import Event

        program = compile_corpus("hash_table")
        run = PP().flow_hw(program)
        total = sum(run.machine.region_misses.values())
        assert total == run.result[Event.DC_MISS]
