"""Hypothesis strategies that generate small, *terminating* IR programs.

The differential fuzz suite (``tests/test_fuzz_differential.py``) runs
the same random program under both execution engines and every
profiling configuration; for that to be decidable the generated
programs must halt.  Two structural rules guarantee it:

* the call graph is a DAG — a helper may only call strictly
  later-numbered helpers, so there is no recursion;
* every loop is a counted countdown with a constant trip count drawn
  at generation time.

Within those rules the generator exercises the control-flow and
memory shapes the engines compile differently: conditional branches
(data-dependent on the accumulator), counted loops (backedge path
commits, CCT probes), direct calls (CCT enter/exit, PIC save/restore),
and loads/stores through a per-function scratch buffer (D-cache
traffic).  Every arithmetic step masks the accumulator to 16 bits so
values stay engine-representable and paths stay data-dependent.

All programs share one fixed shape convention — ``main()`` takes no
arguments and returns the masked accumulator — so test harnesses can
run any generated program identically.  The strategy is fully
shrinkable: hypothesis minimizes failing programs segment by segment.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.function import Program
from repro.ir.instructions import Imm

#: Accumulator mask: keeps values bounded and branch conditions varied.
MASK = 0xFFFF

#: Closed integer ops (no div/mod blowups, no unbounded shifts).
ARITH_OPS = ("add", "sub", "mul", "xor", "or", "min", "max")

#: Per-function scratch buffer size, in words.
BUFFER_WORDS = 8

_WORD = 8  # matches repro.machine.memory.WORD


def _arith(draw, fb: FunctionBuilder, acc: int) -> None:
    """One masked accumulator update: ``acc = (acc op k) & MASK``."""
    op = draw(st.sampled_from(ARITH_OPS))
    operand = draw(st.integers(min_value=1, max_value=997))
    fb.binop(op, acc, Imm(operand), dst=acc)
    fb.binop("and", acc, Imm(MASK), dst=acc)


def _call_segment(draw, fb: FunctionBuilder, acc: int, callees) -> None:
    callee = draw(st.sampled_from(callees))
    result = fb.call(callee, [acc])
    fb.binop("add", acc, result, dst=acc)
    fb.binop("and", acc, Imm(MASK), dst=acc)


def _mem_segment(draw, fb: FunctionBuilder, acc: int, buf: int) -> None:
    offset = draw(st.integers(min_value=0, max_value=BUFFER_WORDS - 1)) * _WORD
    fb.store(acc, buf, offset)
    loaded = fb.load(buf, draw(st.integers(min_value=0, max_value=BUFFER_WORDS - 1)) * _WORD)
    fb.binop("add", acc, loaded, dst=acc)
    fb.binop("and", acc, Imm(MASK), dst=acc)


def _branch_segment(draw, fb: FunctionBuilder, acc: int, labels, callees) -> None:
    then_l, else_l, join_l = labels(), labels(), labels()
    cond = fb.binop("and", acc, Imm(draw(st.sampled_from([1, 2, 3, 7]))))
    fb.cbr(cond, then_l, else_l)
    fb.block(then_l)
    _arith(draw, fb, acc)
    if callees and draw(st.booleans()):
        _call_segment(draw, fb, acc, callees)
    fb.br(join_l)
    fb.block(else_l)
    _arith(draw, fb, acc)
    fb.br(join_l)
    fb.block(join_l)


def _loop_segment(
    draw, fb: FunctionBuilder, acc: int, buf: int, labels, callees, max_trip: int = 5
) -> None:
    trip = draw(st.integers(min_value=1, max_value=max_trip))
    head_l, body_l, exit_l = labels(), labels(), labels()
    counter = fb.const(trip)
    fb.br(head_l)
    fb.block(head_l)
    cond = fb.binop("gt", counter, Imm(0))
    fb.cbr(cond, body_l, exit_l)
    fb.block(body_l)
    _arith(draw, fb, acc)
    if draw(st.booleans()):
        _mem_segment(draw, fb, acc, buf)
    if callees and draw(st.booleans()):
        _call_segment(draw, fb, acc, callees)
    fb.binop("sub", counter, Imm(1), dst=counter)
    fb.br(head_l)
    fb.block(exit_l)


def _build_helper(draw, name: str, callees, max_trip: int = 5) -> FunctionBuilder:
    """One helper ``f(x)``: entry masking, 1–3 random segments, return."""
    fb = FunctionBuilder(name, num_params=1, num_regs=64)
    counter = [0]

    def labels() -> str:
        counter[0] += 1
        return f"b{counter[0]}"

    fb.block("entry")
    acc = fb.binop("and", 0, Imm(MASK))
    buf = fb.alloc(Imm(BUFFER_WORDS))
    fb.store(acc, buf, 0)
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        segment = draw(
            st.sampled_from(
                ["arith", "branch", "loop", "mem", "call"]
                if callees
                else ["arith", "branch", "loop", "mem"]
            )
        )
        if segment == "arith":
            _arith(draw, fb, acc)
        elif segment == "branch":
            _branch_segment(draw, fb, acc, labels, callees)
        elif segment == "loop":
            _loop_segment(draw, fb, acc, buf, labels, callees, max_trip)
        elif segment == "mem":
            _mem_segment(draw, fb, acc, buf)
        else:
            _call_segment(draw, fb, acc, callees)
    tail = fb.load(buf, 0)
    fb.binop("add", acc, tail, dst=acc)
    fb.binop("and", acc, Imm(MASK), dst=acc)
    fb.ret(acc)
    return fb


@st.composite
def ir_programs(draw, max_trip: int = 5) -> Program:
    """A random valid program: DAG of 1–3 helpers plus ``main()``.

    ``max_trip`` bounds loop trip counts.  The default keeps runs
    short; ``ir_hot_programs`` raises it so counted loops cross the
    trace tier's default heat threshold and compiled superblocks both
    loop and deoptimize at their exits.
    """
    helper_count = draw(st.integers(min_value=1, max_value=3))
    names = [f"f{index}" for index in range(helper_count)]
    builder = ProgramBuilder(entry="main")
    for index, name in enumerate(names):
        builder.add(_build_helper(draw, name, names[index + 1 :], max_trip))

    fb = FunctionBuilder("main", num_params=0, num_regs=64)
    fb.block("entry")
    acc = fb.const(draw(st.integers(min_value=0, max_value=MASK)))
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        callee = draw(st.sampled_from(names))
        result = fb.call(callee, [acc])
        fb.binop("add", acc, result, dst=acc)
        fb.binop("and", acc, Imm(MASK), dst=acc)
    fb.ret(acc)
    builder.add(fb)
    return builder.finish()


def ir_hot_programs():
    """Programs whose loops run 8–32 iterations: trace-tier fodder."""
    return ir_programs(max_trip=32)


@st.composite
def ir_program_asm(draw) -> str:
    """A random valid program as IR assembly text.

    The fork-safe form :class:`~repro.tools.shard_runner.ShardSpec`
    ships to workers (``asm=``) — and, because
    :func:`~repro.ir.disasm.format_program` round-trips, the same
    program the in-process strategies build.
    """
    from repro.ir.disasm import format_program

    return format_program(draw(ir_programs()))
