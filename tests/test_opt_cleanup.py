"""The IR cleanup passes: folding, propagation, dead-block removal."""

import pytest
from hypothesis import given, settings

from repro.ir.asm import parse_program
from repro.ir.instructions import Kind
from repro.machine.counters import Event
from repro.machine.vm import Machine
from repro.opt.cleanup import (
    cleanup_function,
    cleanup_program,
    fold_constants,
    merge_blocks,
    remove_unreachable_blocks,
)
from repro.tools.pp import clone_program

from tests.conftest import compile_corpus
from tests.test_property_endtoend import programs


def _kinds(function):
    return [i.kind for i in function.instructions()]


class TestConstantFolding:
    def test_arith_chain_folds(self):
        program = parse_program(
            """
            func main(0) regs=8 {
            entry:
                const r0, 6
                const r1, 7
                mul r2, r0, r1
                add r3, r2, 8
                ret r3
            }
            """
        )
        main = program.functions["main"]
        fold_constants(main)
        assert Kind.BINOP not in _kinds(main)
        assert Machine(program).run().return_value == 50

    def test_copy_propagation(self):
        program = parse_program(
            """
            func main(0) regs=8 {
            entry:
                const r0, 9
                mov r1, r0
                add r2, r1, 1
                ret r2
            }
            """
        )
        main = program.functions["main"]
        fold_constants(main)
        assert Kind.BINOP not in _kinds(main)
        assert Machine(program).run().return_value == 10

    def test_known_branch_becomes_jump(self):
        program = parse_program(
            """
            func main(0) regs=8 {
            entry:
                const r0, 1
                cbr r0, yes, no
            yes:
                ret 1
            no:
                ret 0
            }
            """
        )
        main = program.functions["main"]
        cleanup_function(main)
        assert Kind.CBR not in _kinds(main)
        assert not any(b.name == "no" for b in main.blocks)
        assert Machine(program).run().return_value == 1

    def test_redefinition_blocks_folding(self):
        program = parse_program(
            """
            func main(1) regs=8 {
            entry:
                const r1, 5
                mov r1, r0
                add r2, r1, 1
                ret r2
            }
            """
        )
        main = program.functions["main"]
        fold_constants(main)
        assert Machine(program).run(10).return_value == 11

    def test_copy_source_redefinition(self):
        program = parse_program(
            """
            func main(0) regs=8 {
            entry:
                const r0, 3
                mov r1, r0
                const r0, 99
                add r2, r1, 0
                ret r2
            }
            """
        )
        fold_constants(program.functions["main"])
        assert Machine(program).run().return_value == 3

    def test_float_values_not_folded_through_int_ops(self):
        program = parse_program(
            """
            func main(0) regs=8 {
            entry:
                const r0, 1.5
                fadd r1, r0, r0
                ret r1
            }
            """
        )
        fold_constants(program.functions["main"])
        assert Machine(program).run().return_value == 3.0

    def test_calls_invalidate_destinations(self):
        program = parse_program(
            """
            func main(0) regs=8 {
            entry:
                const r0, 1
                call r0, seven()
                add r1, r0, 1
                ret r1
            }
            func seven(0) regs=2 {
            entry:
                ret 7
            }
            """
        )
        cleanup_program(program)
        assert Machine(program).run().return_value == 8


class TestUnreachableRemoval:
    def test_orphans_dropped(self):
        program = parse_program(
            """
            func main(0) regs=4 {
            entry:
                ret 1
            island:
                br island2
            island2:
                ret 2
            }
            """
        )
        removed = remove_unreachable_blocks(program.functions["main"])
        assert removed == 2
        assert len(program.functions["main"].blocks) == 1

    def test_superblock_orphans_cleaned(self):
        """After superblock formation, unreachable originals go away."""
        from repro.opt.superblock import form_superblock
        from repro.tools.pp import PP

        program = compile_corpus("loop")
        run = PP().flow_freq(program)
        result = form_superblock(
            program.functions["main"], run.path_profile.functions["main"]
        )
        assert result is not None
        before = len(program.functions["main"].blocks)
        removed = remove_unreachable_blocks(program.functions["main"])
        after = len(program.functions["main"].blocks)
        assert after == before - removed
        assert Machine(program).run().return_value == 666  # sum(0..36)


class TestCleanupPreservesSemantics:
    def test_corpus(self, corpus_name):
        program = compile_corpus(corpus_name)
        reference = Machine(clone_program(program)).run()
        cleanup_program(program)
        optimized = Machine(program).run()
        assert optimized.return_value == reference.return_value
        assert optimized[Event.INSTRS] <= reference[Event.INSTRS]

    @given(programs())
    @settings(max_examples=50, deadline=None)
    def test_property_random_programs(self, source):
        from repro.lang import compile_source

        program = compile_source(source)
        reference = Machine(clone_program(program)).run()
        cleanup_program(program)
        optimized = Machine(program).run()
        assert optimized.return_value == reference.return_value
        assert optimized[Event.INSTRS] <= reference[Event.INSTRS]


class TestMergeBlocks:
    def test_chain_of_jumps_collapses(self):
        program = parse_program(
            """
            func main(0) regs=4 {
            entry:
                const r0, 1
                br mid
            mid:
                add r0, r0, 2
                br tail
            tail:
                ret r0
            }
            """
        )
        main = program.functions["main"]
        assert merge_blocks(main) == 2
        assert len(main.blocks) == 1
        assert Kind.BR not in _kinds(main)
        assert Machine(program).run().return_value == 3

    def test_multi_predecessor_target_kept(self):
        program = parse_program(
            """
            func main(1) regs=4 {
            entry:
                cbr r0, yes, no
            yes:
                br join
            no:
                br join
            join:
                ret 5
            }
            """
        )
        main = program.functions["main"]
        assert merge_blocks(main) == 0
        assert len(main.blocks) == 4

    def test_entry_and_self_loops_never_merged_away(self):
        program = parse_program(
            """
            func main(0) regs=4 {
            entry:
                br back
            back:
                br entry
            }
            """
        )
        main = program.functions["main"]
        # back may fold into entry, but entry (the function's front
        # door) and the resulting self-loop must both survive.
        merge_blocks(main)
        assert main.entry.name == "entry"
        assert any(
            i.kind == Kind.BR for i in main.instructions()
        )  # the loop edge is still there

    def test_probe_blocks_never_merged(self):
        """Instrumentation pseudo-instructions pin their blocks: the
        measured path counts must still equal the oracle's after a
        merge pass over the instrumented body."""
        from repro.instrument.pathinstr import instrument_paths
        from repro.instrument.tables import ProfilingRuntime
        from repro.machine.memory import MemoryMap
        from repro.profiles.oracle import PathOracle

        source = compile_corpus("nested_loops")
        probe = instrument_paths(clone_program(source), mode="freq")
        numberings = {n: i.numbering for n, i in probe.functions.items()}
        oracle = PathOracle(numberings)
        clean = Machine(clone_program(source))
        clean.tracer = oracle
        clean.run()

        program = clone_program(source)
        runtime = ProfilingRuntime(MemoryMap().profiling.base)
        flow = instrument_paths(program, mode="freq", runtime=runtime)
        merged = sum(merge_blocks(f) for f in program.functions.values())
        machine = Machine(program)
        machine.path_runtime = runtime
        machine.run()
        for name in flow.functions:
            assert flow.path_counts(name) == oracle.function_counts(name), (
                name,
                merged,
            )

    def test_merge_stamps_only_touched_blocks(self):
        program = parse_program(
            """
            func main(1) regs=8 {
            entry:
                cbr r0, left, right
            left:
                const r1, 1
                br tail
            tail:
                add r1, r1, 2
                ret r1
            right:
                ret 9
            }
            """
        )
        main = program.functions["main"]
        before = {b.name: b.edit_gen for b in main.blocks}
        assert merge_blocks(main) == 1
        assert not any(b.name == "tail" for b in main.blocks)
        left = main.block("left")
        assert left.edit_gen != before["left"]
        # No calls anywhere: the untouched blocks keep their stamps.
        assert main.block("entry").edit_gen == before["entry"]
        assert main.block("right").edit_gen == before["right"]
        assert Machine(clone_program(program)).run(1).return_value == 3
        assert Machine(clone_program(program)).run(0).return_value == 9

    def test_merge_restamps_surviving_call_blocks(self):
        program = parse_program(
            """
            func main(0) regs=8 {
            entry:
                call r0, seven()
                br tail
            tail:
                call r1, seven()
                add r2, r0, r1
                ret r2
            }
            func seven(0) regs=2 {
            entry:
                ret 7
            }
            """
        )
        main = program.functions["main"]
        before = main.block("entry").edit_gen
        assert merge_blocks(main) == 1
        # The merged block holds renumbered call sites: compiled code
        # baking the old Call.site numbering must be evicted.
        assert main.block("entry").edit_gen != before
        sites = [c.site for c in main.call_sites()]
        assert sites == [0, 1]
        assert Machine(program).run().return_value == 14

    def test_cleanup_fixpoint_includes_merging(self):
        program = parse_program(
            """
            func main(0) regs=8 {
            entry:
                const r0, 1
                cbr r0, hot, cold
            hot:
                const r1, 20
                br tail
            tail:
                add r2, r1, 1
                ret r2
            cold:
                ret 0
            }
            """
        )
        main = program.functions["main"]
        cleanup_function(main)
        # Folding kills the branch, unreachable removal drops cold,
        # merging splices the straightline chain: one block remains.
        assert len(main.blocks) == 1
        assert Kind.BR not in _kinds(main)
        assert Machine(program).run().return_value == 21
