"""Unit tests for functions, blocks, programs, and validation."""

import pytest

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.function import (
    Block,
    Function,
    IRValidationError,
    Program,
    validate_function,
    validate_program,
)
from repro.ir.instructions import Br, Call, Cbr, Const, Imm, Ret


def _simple_function(name="f"):
    fb = FunctionBuilder(name, num_params=1, num_regs=8)
    fb.block("entry")
    fb.ret(0)
    return fb.finish()


class TestFunctionStructure:
    def test_entry_is_first_block(self):
        fb = FunctionBuilder("f")
        fb.block("start")
        fb.br("other")
        fb.block("other")
        fb.ret()
        function = fb.finish()
        assert function.entry.name == "start"

    def test_block_lookup(self):
        function = _simple_function()
        assert function.block("entry").name == "entry"
        with pytest.raises(KeyError):
            function.block("missing")

    def test_duplicate_block_rejected(self):
        function = Function("f")
        function.add_block(Block("a", [Ret(None)]))
        with pytest.raises(IRValidationError):
            function.add_block(Block("a", [Ret(None)]))

    def test_params_exceed_registers(self):
        with pytest.raises(IRValidationError):
            Function("f", num_params=9, num_regs=8)

    def test_max_register_used(self):
        fb = FunctionBuilder("f", num_params=2, num_regs=16)
        fb.block("entry")
        fb.emit(Const(7, 1))
        fb.ret(7)
        assert fb.finish().max_register_used() == 7

    def test_call_site_numbering_in_block_order(self):
        fb = FunctionBuilder("f", num_regs=8)
        fb.block("entry")
        fb.call("g", want_result=False)
        fb.call("h", want_result=False)
        fb.br("next")
        fb.block("next")
        fb.call("g", want_result=False)
        fb.ret()
        function = fb.finish()
        assert [c.site for c in function.call_sites()] == [0, 1, 2]

    def test_size_weights_icost(self):
        from repro.ir.instructions import HwcAccum

        function = Function("f")
        function.add_block(Block("entry", [HwcAccum(0, 0, 0), Ret(None)]))
        assert function.size_in_instructions() == HwcAccum(0, 0, 0).icost + 1


class TestValidation:
    def test_empty_function_rejected(self):
        with pytest.raises(IRValidationError):
            validate_function(Function("f"))

    def test_empty_block_rejected(self):
        function = Function("f")
        function.add_block(Block("entry", []))
        with pytest.raises(IRValidationError, match="empty"):
            validate_function(function)

    def test_missing_terminator_rejected(self):
        function = Function("f")
        function.add_block(Block("entry", [Const(0, 1)]))
        with pytest.raises(IRValidationError, match="terminator"):
            validate_function(function)

    def test_terminator_mid_block_rejected(self):
        function = Function("f")
        function.add_block(Block("entry", [Ret(None), Const(0, 1), Ret(None)]))
        with pytest.raises(IRValidationError, match="not last"):
            validate_function(function)

    def test_register_out_of_range_rejected(self):
        function = Function("f", num_regs=4)
        function.add_block(Block("entry", [Const(4, 1), Ret(None)]))
        with pytest.raises(IRValidationError, match="out of"):
            validate_function(function)

    def test_unknown_branch_target_rejected(self):
        function = Function("f")
        function.add_block(Block("entry", [Br("nowhere")]))
        with pytest.raises(IRValidationError, match="unknown block"):
            validate_function(function)

    def test_cbr_with_identical_arms_rejected(self):
        function = Function("f")
        function.add_block(Block("entry", [Cbr(0, "entry", "entry")]))
        with pytest.raises(IRValidationError, match="identical"):
            validate_function(function)

    def test_call_to_unknown_function_rejected(self):
        program = Program()
        function = Function("f")
        function.add_block(Block("entry", [Call("ghost", []), Ret(None)]))
        program.add_function(function)
        with pytest.raises(IRValidationError, match="unknown function"):
            validate_function(function, program)

    def test_program_entry_must_exist(self):
        program = Program(entry="main")
        program.add_function(_simple_function("f"))
        with pytest.raises(IRValidationError, match="entry"):
            validate_program(program)

    def test_function_table_entries_must_exist(self):
        program = Program(entry="f")
        program.add_function(_simple_function("f"))
        program.function_table.append("ghost")
        with pytest.raises(IRValidationError, match="function table"):
            validate_program(program)


class TestProgram:
    def test_duplicate_function_rejected(self):
        program = Program()
        program.add_function(_simple_function("f"))
        with pytest.raises(IRValidationError):
            program.add_function(_simple_function("f"))

    def test_function_index_registers_once(self):
        program = Program()
        assert program.function_index("a") == 0
        assert program.function_index("b") == 1
        assert program.function_index("a") == 0
        assert program.function_table == ["a", "b"]


class TestBuilderDiscipline:
    def test_emit_without_block_fails(self):
        fb = FunctionBuilder("f")
        with pytest.raises(IRValidationError):
            fb.emit(Const(0, 1))

    def test_emit_after_terminator_fails(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.ret()
        with pytest.raises(IRValidationError, match="terminated"):
            fb.emit(Const(0, 1))

    def test_new_block_requires_terminated_previous(self):
        fb = FunctionBuilder("f")
        fb.block("a")
        with pytest.raises(IRValidationError, match="not terminated"):
            fb.block("b")

    def test_finish_requires_termination(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.emit(Const(0, 1))
        with pytest.raises(IRValidationError):
            fb.finish()

    def test_register_exhaustion(self):
        fb = FunctionBuilder("f", num_regs=2)
        fb.block("entry")
        fb.const(1)
        fb.const(2)
        with pytest.raises(IRValidationError, match="out of registers"):
            fb.const(3)

    def test_program_builder_validates(self):
        pb = ProgramBuilder(entry="main")
        fb = pb.function("main")
        fb.block("entry")
        fb.call("ghost", want_result=False)
        fb.ret(Imm(0))
        pb.add(fb)
        with pytest.raises(IRValidationError):
            pb.finish()
