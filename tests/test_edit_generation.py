"""Decode-cache invalidation through block edit generations.

The fast engine validates cached decodings against
``Block.edit_gen`` — a monotonic counter bumped by every splice site —
instead of ``id(block.instrs)``: a rebound list can reuse the id of a
garbage-collected predecessor and validate a stale decoding, and an
in-place mutation never changes the id at all.  These tests pin the
cases the id scheme got wrong, plus the bulk bump of
``Machine.invalidate_decoded`` and the runtime-identity eviction that
fused probes rely on.
"""

import copy

from repro.instrument.pathinstr import instrument_paths
from repro.instrument.tables import ProfilingRuntime
from repro.ir.asm import parse_program
from repro.ir.function import Block
from repro.ir.instructions import Const
from repro.machine.memory import MemoryMap
from repro.machine.vm import Machine

_LOOP = """
func main(0) regs=4 {
entry:
    const r0, 0
    const r1, 10
    br spin
spin:
    add r0, r0, 1
    sub r1, r1, 1
    cbr r1, spin, done
done:
    ret r0
}
"""


def test_note_edit_is_monotonic_across_blocks():
    a, b = Block("a", []), Block("b", [])
    assert a.edit_gen == 0 and b.edit_gen == 0
    a.note_edit()
    first = a.edit_gen
    b.note_edit()
    a.note_edit()
    assert 0 < first < b.edit_gen < a.edit_gen


def test_in_place_mutation_with_note_edit_is_picked_up():
    """Same list object, same length — only the generation changes.

    Under the old ``id(instrs) + len`` validation the second run would
    execute the stale decoding and still return 10."""
    program = parse_program(_LOOP)
    machine = Machine(program, engine="fast")
    assert machine.run().return_value == 10

    entry = program.functions["main"].block("entry")
    original_list = entry.instrs
    entry.instrs[1] = Const(entry.instrs[1].dst, 3)  # r1 = 3 iterations
    entry.note_edit()
    assert entry.instrs is original_list
    assert len(entry.instrs) == 3
    assert machine.run().return_value == 3


def test_instrumentation_splices_bump_generations():
    program = parse_program(_LOOP)
    main = program.functions["main"]
    before = {block.name: block.edit_gen for block in main.blocks}
    runtime = ProfilingRuntime(MemoryMap().profiling.base)
    instrument_paths(program, mode="freq", placement="simple", runtime=runtime)
    changed = [
        block.name
        for block in main.blocks
        if block.name in before and block.edit_gen != before[block.name]
    ]
    assert "entry" in changed and "done" in changed


def test_invalidate_decoded_bumps_every_generation():
    program = parse_program(_LOOP)
    machine = Machine(program, engine="fast")
    machine.run()
    main = program.functions["main"]
    before = {block.name: block.edit_gen for block in main.blocks}
    machine.invalidate_decoded()
    for block in main.blocks:
        assert block.edit_gen != before[block.name]
        assert block._decode_cache is None
    assert machine.run().return_value == 10


def test_runtime_swap_evicts_fused_probe_bindings():
    """Fused probes bind table objects at decode time; attaching a
    fresh runtime (the benchmark's per-pass reset) must re-bind, not
    keep counting into the old runtime's tables."""
    program = parse_program(_LOOP)
    pristine = ProfilingRuntime(MemoryMap().profiling.base)
    flow = instrument_paths(
        program, mode="freq", placement="simple", runtime=pristine
    )
    table_index = flow.functions["main"].table.table_id

    machine = Machine(program, engine="fast")
    first = copy.deepcopy(pristine)
    machine.path_runtime = first
    machine.run()
    first_counts = dict(first.tables[table_index].counts)
    assert first_counts

    second = copy.deepcopy(pristine)
    machine.path_runtime = second
    machine.run()
    assert dict(second.tables[table_index].counts) == first_counts
    assert dict(first.tables[table_index].counts) == first_counts
