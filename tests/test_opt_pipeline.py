"""The measured-profile view and the optimization pipeline.

The contracts under test:

* :class:`MeasuredProfile` reports the same paths and call edges
  whether built live from a run or rebuilt from a stored one, and
  refuses to decode against code it did not measure;
* the inliner preserves architectural results — including the frame
  zeroing corner (a callee register read before written must still
  read 0 inside the clone) — and respects its budgets;
* the pipeline skips stale functions (restructured by an earlier
  pass) instead of mis-decoding their measured numbering;
* an optimized program runs bit-identically under all three execution
  engines, on the corpus and on hypothesis-generated IR.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.ir.asm import parse_program
from repro.ir.disasm import format_program
from repro.ir.instructions import Kind
from repro.lang import compile_source
from repro.opt import (
    MeasuredProfile,
    MeasuredProfileError,
    OptError,
    OptPlan,
    inline_call,
    inline_hot_calls,
    run_pipeline,
)
from repro.store import ProfileStore
from repro.tools.pp import PP, clone_program

from tests.conftest import compile_corpus
from tests.ir_strategies import ir_hot_programs

#: A hot call edge (main -> work, 60 invocations) plus a hot loop in
#: the callee: every pipeline pass has something measurable to do.
CALLING = """
global data[256];

fn work(base, n) {
    var i = 0; var acc = 0;
    while (i < n) {
        acc = acc + data[(base + i) & 255] + i;
        i = i + 1;
    }
    return acc;
}

fn main() {
    var total = 0; var j = 0;
    while (j < 60) {
        total = total + work(j, 8);
        j = j + 1;
    }
    return total;
}
"""

FUZZ = settings(
    max_examples=12,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ENGINES = ("simple", "fast", "trace")


def _profiled(source_or_program):
    program = (
        compile_source(source_or_program)
        if isinstance(source_or_program, str)
        else source_or_program
    )
    run = PP().context_flow(program)
    return program, run, MeasuredProfile.from_run(run, program)


class TestMeasuredProfileLive:
    def test_sees_paths_and_edges(self):
        _, _, profile = _profiled(CALLING)
        assert set(profile.functions) == {"main", "work"}
        edges = profile.hot_call_edges()
        assert edges[0].caller == "main"
        assert edges[0].callee == "work"
        assert edges[0].calls == 60
        assert profile.source == "live"

    def test_hot_loop_paths_are_loop_iterations(self):
        _, _, profile = _profiled(CALLING)
        loops = {c.function for c in profile.hot_loop_paths(min_freq=2)}
        assert "work" in loops
        top = profile.hot_loop_paths(min_freq=2)[0]
        assert top.path.entry_backedge.dst == top.path.exit_backedge.dst

    def test_block_heat_sums_decoded_paths(self):
        _, run, profile = _profiled(CALLING)
        heat = profile.block_heat("work")
        counts = run.path_profile.functions["work"].counts
        assert sum(heat.values()) >= sum(counts.values())
        # The loop body runs 8x per call; it must out-heat the entry.
        body = max(heat.values())
        entry = heat[compile_source(CALLING).functions["work"].entry.name]
        assert body > entry

    def test_unknown_ranking_rejected(self):
        _, _, profile = _profiled(CALLING)
        with pytest.raises(MeasuredProfileError, match="ranking"):
            profile.hot_paths(by="vibes")


class TestMeasuredProfileStored:
    def _stored(self, tmp_path, source=CALLING, mode="context_flow", k=None):
        program = compile_source(source)
        store = ProfileStore(tmp_path / "store")
        pp = PP()
        spec = pp.spec(mode, k=k) if k else pp.spec(mode)
        run = pp.session.run(spec, program, (), store=store, workload="w")
        return program, store.load(run.stored_as), run

    def test_matches_live_view(self, tmp_path):
        program, stored, run = self._stored(tmp_path)
        live = MeasuredProfile.from_run(run, program)
        rebuilt = MeasuredProfile.from_stored(stored, program)
        assert rebuilt.source == stored.run_id
        assert set(rebuilt.functions) == set(live.functions)
        for name, mfp in live.functions.items():
            other = rebuilt.functions[name]
            assert other.counts == mfp.counts
            assert other.num_potential_paths == mfp.num_potential_paths
        assert rebuilt.hot_call_edges() == live.hot_call_edges()
        assert rebuilt.counters == live.counters

    def test_rejects_restructured_code(self, tmp_path):
        _, stored, _ = self._stored(tmp_path)
        # Same function names, different CFG: extra branch in work.
        mutated = compile_source(
            CALLING.replace(
                "acc = acc + data[(base + i) & 255] + i;",
                "if (i % 2 == 0) { acc = acc + i; } else { acc = acc - 1; }",
            )
        )
        with pytest.raises(MeasuredProfileError, match="different code"):
            MeasuredProfile.from_stored(stored, mutated)

    def test_rejects_missing_function(self, tmp_path):
        _, stored, _ = self._stored(tmp_path)
        shrunk = compile_source(CALLING)
        del shrunk.functions["work"]
        with pytest.raises(MeasuredProfileError, match="does not define"):
            MeasuredProfile.from_stored(stored, shrunk)

    def test_kflow_counts_project_onto_base_paths(self, tmp_path):
        program, stored, _ = self._stored(tmp_path, mode="kflow", k=2)
        flow = MeasuredProfile.from_run(PP().flow_freq(program), program)
        projected = MeasuredProfile.from_stored(stored, program)
        for name, mfp in flow.functions.items():
            other = projected.functions[name]
            assert other.counts == mfp.counts, name
            assert other.metrics == {}  # k-path metrics do not project


class TestInline:
    def test_preserves_result_and_removes_call(self):
        program, run, profile = _profiled(CALLING)
        optimized = clone_program(program)
        results = inline_hot_calls(
            optimized, profile, min_calls=2, growth_budget=1.0
        )
        assert [(r.caller, r.callee) for r in results] == [("main", "work")]
        assert results[0].calls == 60
        kinds = [i.kind for i in optimized.functions["main"].instructions()]
        assert Kind.CALL not in kinds
        rerun = PP().baseline(optimized)
        assert rerun.return_value == run.return_value

    def test_zeroes_registers_read_before_written(self):
        # leaky reads r1 (never a param, never written) and r3: a fresh
        # frame reads them as 0, so the clone must zero them too.
        program = parse_program(
            """
            program entry=main globals=0

            func main(0) regs=8 {
            entry:
                const r0, 7
                call r1, leaky(r0)
                ret r1
            }

            func leaky(1) regs=4 {
            entry:
                add r2, r1, 5
                add r2, r2, r0
                add r2, r2, r3
                ret r2
            }
            """
        )
        expected = PP().baseline(clone_program(program)).return_value
        assert expected == 12
        result = inline_call(
            program, program.functions["main"], program.functions["leaky"]
        )
        assert result is not None
        assert PP().baseline(program).return_value == expected

    def test_initialised_callee_needs_no_zero_glue(self):
        program, _, profile = _profiled(CALLING)
        optimized = clone_program(program)
        inline_hot_calls(optimized, profile, growth_budget=1.0)
        # work initialises i and acc: the only consts written into the
        # split head are the two immediate arguments, no zero glue.
        head = optimized.functions["main"].blocks
        glue = [
            i
            for b in head
            for i in b.instrs
            if i.kind == Kind.CONST and ".inl" not in b.name
        ]
        zero_glue = [i for i in glue if i.value == 0]
        original = [
            i
            for i in program.functions["main"].instructions()
            if i.kind == Kind.CONST and i.value == 0
        ]
        assert len(zero_glue) == len(original)

    def test_refuses_recursion(self):
        program = compile_source(
            """
            fn fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); }
            fn main() { return fact(6); }
            """
        )
        fact = program.functions["fact"]
        assert inline_call(program, fact, fact) is None

    def test_respects_callee_size_cap(self):
        program, _, profile = _profiled(CALLING)
        optimized = clone_program(program)
        assert inline_hot_calls(optimized, profile, max_callee_size=1) == []

    def test_respects_growth_budget(self):
        program, _, profile = _profiled(CALLING)
        optimized = clone_program(program)
        assert (
            inline_hot_calls(
                optimized, profile, growth_budget=0.0, growth_floor=0
            )
            == []
        )
        assert format_program(optimized) == format_program(program)


class TestOptPlan:
    def test_unknown_pass_rejected(self):
        with pytest.raises(OptError, match="unknown pass"):
            OptPlan(passes=("zorp",))

    def test_negative_budget_rejected(self):
        with pytest.raises(OptError):
            OptPlan(growth_budget=-0.5)
        with pytest.raises(OptError):
            OptPlan(growth_floor=-1)

    def test_json_round_trips_the_knobs(self):
        plan = OptPlan(passes=("layout",), min_freq=5, growth_floor=7)
        blob = plan.to_json()
        assert blob["passes"] == ["layout"]
        assert blob["min_freq"] == 5
        assert blob["growth_floor"] == 7


class TestPipeline:
    def test_zero_budget_changes_nothing(self):
        program, _, profile = _profiled(CALLING)
        optimized = clone_program(program)
        plan = OptPlan(
            passes=("inline", "superblock"),
            growth_budget=0.0,
            growth_floor=0,
        )
        result = run_pipeline(optimized, profile, plan)
        assert not result.changed
        assert format_program(optimized) == format_program(program)

    def test_stale_function_skipped_after_inline(self):
        # Inlining restructures main, so its measured numbering is no
        # longer decodable; the superblock pass must skip it rather
        # than straighten paths that no longer exist.
        program, _, profile = _profiled(CALLING)
        optimized = clone_program(program)
        plan = OptPlan(growth_budget=1.0)
        result = run_pipeline(optimized, profile, plan)
        superblocks = result.passes[1]
        assert superblocks.name == "superblock"
        formed = {s["function"] for s in superblocks.details["superblocks"]}
        assert "main" not in formed

    def test_reports_every_pass(self):
        program, _, profile = _profiled(CALLING)
        result = run_pipeline(clone_program(program), profile)
        assert [p.name for p in result.passes] == list(OptPlan().passes)
        assert result.icost_before == program.total_instructions()
        blob = result.to_json()
        assert [p["pass"] for p in blob["passes"]] == list(OptPlan().passes)


class TestPipelineDifferential:
    """Satellite: optimized programs agree across all three engines."""

    def _optimize(self, program):
        program, run, profile = _profiled(program)
        optimized = clone_program(program)
        run_pipeline(optimized, profile, OptPlan(growth_budget=1.0))
        return run, optimized

    def _assert_tiers_agree(self, label, baseline, optimized):
        runs = {
            engine: PP(engine=engine).baseline(optimized)
            for engine in ENGINES
        }
        for engine, run in runs.items():
            assert run.return_value == baseline.return_value, (label, engine)
            assert dict(run.result.counters) == dict(
                runs["simple"].result.counters
            ), (label, engine)

    def test_corpus_optimized_identical_across_tiers(self, corpus_name):
        baseline, optimized = self._optimize(compile_corpus(corpus_name))
        self._assert_tiers_agree(corpus_name, baseline, optimized)

    @FUZZ
    @given(program=ir_hot_programs())
    def test_generated_hot_programs_survive_pipeline(self, program):
        baseline, optimized = self._optimize(program)
        self._assert_tiers_agree("generated", baseline, optimized)
