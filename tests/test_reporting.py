"""Text-table rendering and summary statistics."""

import pytest

from repro.reporting import arithmetic_mean, format_table, geometric_mean


class TestFormatTable:
    def test_alignment(self):
        rows = [
            {"Name": "a", "Value": 1},
            {"Name": "longer", "Value": 123456},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert len({len(line) for line in lines[:1] + lines[2:]}) == 1

    def test_title(self):
        text = format_table([{"A": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_selection_and_order(self):
        rows = [{"A": 1, "B": 2, "C": 3}]
        text = format_table(rows, columns=["C", "A"])
        header = text.splitlines()[0]
        assert "C" in header and "A" in header and "B" not in header
        assert header.index("C") < header.index("A")

    def test_missing_cells_and_none(self):
        text = format_table([{"A": None}, {"B": 2}], columns=["A", "B"])
        assert "-" in text

    def test_float_formatting(self):
        text = format_table([{"x": 1.23456}])
        assert "1.23" in text

    def test_big_numbers_compact(self):
        text = format_table([{"x": 210_000_000}])
        assert "e+" in text or "2.1" in text

    def test_empty(self):
        assert "(no rows)" in format_table([])


class TestMeans:
    def test_geometric(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 2.0]) == pytest.approx(2.0)  # zeros skipped

    def test_arithmetic(self):
        assert arithmetic_mean([1, 2, 3]) == 2
        assert arithmetic_mean([]) == 0.0
