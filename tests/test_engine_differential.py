"""Differential check: the compiled engine tiers vs the reference loop.

For every SPEC95-like workload, run the simulator under
``engine="simple"`` (the reference if/elif interpreter),
``engine="fast"`` (the predecoded block engine), and ``engine="trace"``
(the superblock trace tier) in four configurations — uninstrumented, path-instrumented ("Flow and HW"),
CCT-instrumented ("Context and HW"), and combined flow+context — and
require bit-identical counter snapshots, return values, per-region
miss attribution, path profiles (counts *and* per-path metrics), and
exact CCT state (:func:`~repro.cct.merge.strict_form`: every record,
slot, address, and serialized byte).

This is the acceptance gate for the engine's fused instrumentation
probes and the trace tier's deoptimization protocol: any divergence in
any of the sixteen counters, any path count, or any CCT record on any
workload is a bug in the compiled tier.
"""

import dataclasses

import pytest

from repro.cct.merge import strict_form
from repro.machine.counters import Event
from repro.tools.pp import PP
from repro.tools.shard_runner import spec_for_workload, shard_run
from repro.workloads.suite import SPEC95, build_workload

SCALE = 0.25


def _facts(run):
    return (
        dict(run.result.counters),
        run.result.return_value,
        run.result.region_misses,
    )


def _profile_facts(run):
    """Everything a profiling run collected, in comparable form."""
    facts = {}
    if run.path_profile is not None:
        facts["paths"] = {
            fname: (dict(fpp.counts), {k: list(v) for k, v in fpp.metrics.items()})
            for fname, fpp in run.path_profile.functions.items()
        }
    if run.cct is not None:
        facts["cct"] = strict_form(run.cct)
    return facts


def _assert_identical(name, config, simple_run, fast_run):
    simple_counters, simple_rv, simple_rm = _facts(simple_run)
    fast_counters, fast_rv, fast_rm = _facts(fast_run)
    diverging = {
        event: (simple_counters[event], fast_counters[event])
        for event in Event
        if simple_counters.get(event) != fast_counters.get(event)
    }
    assert not diverging, f"{name}/{config}: counter divergence {diverging}"
    assert simple_rv == fast_rv, f"{name}/{config}: return value"
    assert simple_rm == fast_rm, f"{name}/{config}: region misses"
    simple_profiles = _profile_facts(simple_run)
    fast_profiles = _profile_facts(fast_run)
    assert simple_profiles.get("paths") == fast_profiles.get("paths"), (
        f"{name}/{config}: path profiles diverge"
    )
    assert simple_profiles.get("cct") == fast_profiles.get("cct"), (
        f"{name}/{config}: CCT state diverges"
    )


#: Every instrumented profiling configuration of Table 1.
MODES = ("flow_hw", "context_hw", "context_flow")


#: Engine tiers checked against the reference interpreter.
TIERS = ("fast", "trace")


@pytest.mark.parametrize("name", SPEC95)
def test_engines_agree(name):
    program = build_workload(name, SCALE)
    simple = PP(engine="simple")
    reference = {"base": simple.baseline(program)}
    for mode in MODES:
        reference[mode] = getattr(simple, mode)(program)

    for engine in TIERS:
        tier = PP(engine=engine)
        _assert_identical(
            name, f"base/{engine}", reference["base"], tier.baseline(program)
        )
        for mode in MODES:
            _assert_identical(
                name, f"{mode}/{engine}", reference[mode], getattr(tier, mode)(program)
            )


@pytest.mark.parametrize("name", SPEC95)
def test_engines_agree_kflow(name):
    """Multi-iteration path profiling across every tier and span: the
    k-iteration probes (packed path+layer register, cycle commits at
    back-edges, layer-indexed exit commits) must survive fusion into
    the fast engine's segments and the trace tier's deopt protocol
    with bit-identical counters and k-path tables."""
    program = build_workload(name, SCALE)
    simple = PP(engine="simple")
    for k in (1, 2, 4):
        reference = simple.kflow(program, k=k)
        for engine in TIERS:
            tier = PP(engine=engine)
            _assert_identical(
                name, f"kflow[k={k}]/{engine}", reference, tier.kflow(program, k=k)
            )


@pytest.mark.parametrize("name", SPEC95)
def test_engines_agree_under_sharding(name):
    """The sharded driver is engine-transparent: splitting two runs of
    a workload across two shards yields identical merged CCTs and
    counter totals regardless of which execution engine the workers
    use."""
    base = spec_for_workload(name, scale=SCALE, runs=2, mode="context_hw")
    outcomes = {
        engine: shard_run(dataclasses.replace(base, engine=engine), 2, jobs=1)
        for engine in ("simple", *TIERS)
    }
    simple = outcomes["simple"]
    for engine in TIERS:
        tier = outcomes[engine]
        diverging = {
            event: (simple.counters[event], tier.counters[event])
            for event in Event
            if simple.counters[event] != tier.counters[event]
        }
        assert not diverging, f"{name}/sharded/{engine}: counter divergence {diverging}"
        assert simple.return_values == tier.return_values, (
            f"{name}/sharded/{engine}: returns"
        )
        assert strict_form(simple.cct) == strict_form(tier.cct), (
            f"{name}/sharded/{engine}: cct"
        )
