"""Differential check: the predecoded engine vs the reference loop.

For every SPEC95-like workload, run the simulator under both
``engine="simple"`` (the reference if/elif interpreter) and
``engine="fast"`` (the predecoded block engine) in three
configurations — uninstrumented, path-instrumented ("Flow and HW"),
and CCT-instrumented ("Context and HW") — and require bit-identical
counter snapshots, return values, and per-region miss attribution.

This is the acceptance gate for the engine: any divergence in any of
the sixteen counters on any workload is a bug in the fast engine.
"""

import dataclasses

import pytest

from repro.cct.merge import strict_form
from repro.machine.counters import Event
from repro.tools.pp import PP
from repro.tools.shard_runner import spec_for_workload, shard_run
from repro.workloads.suite import SPEC95, build_workload

SCALE = 0.25


def _facts(run):
    return (
        dict(run.result.counters),
        run.result.return_value,
        run.result.region_misses,
    )


def _assert_identical(name, config, simple_run, fast_run):
    simple_counters, simple_rv, simple_rm = _facts(simple_run)
    fast_counters, fast_rv, fast_rm = _facts(fast_run)
    diverging = {
        event: (simple_counters[event], fast_counters[event])
        for event in Event
        if simple_counters.get(event) != fast_counters.get(event)
    }
    assert not diverging, f"{name}/{config}: counter divergence {diverging}"
    assert simple_rv == fast_rv, f"{name}/{config}: return value"
    assert simple_rm == fast_rm, f"{name}/{config}: region misses"


@pytest.mark.parametrize("name", SPEC95)
def test_engines_agree(name):
    program = build_workload(name, SCALE)
    simple = PP(engine="simple")
    fast = PP(engine="fast")

    _assert_identical(name, "base", simple.baseline(program), fast.baseline(program))
    _assert_identical(name, "flow_hw", simple.flow_hw(program), fast.flow_hw(program))
    _assert_identical(
        name, "context_hw", simple.context_hw(program), fast.context_hw(program)
    )


@pytest.mark.parametrize("name", SPEC95)
def test_engines_agree_under_sharding(name):
    """The sharded driver is engine-transparent: splitting two runs of
    a workload across two shards yields identical merged CCTs and
    counter totals regardless of which execution engine the workers
    use."""
    base = spec_for_workload(name, scale=SCALE, runs=2, mode="context_hw")
    outcomes = {
        engine: shard_run(dataclasses.replace(base, engine=engine), 2, jobs=1)
        for engine in ("simple", "fast")
    }
    simple, fast = outcomes["simple"], outcomes["fast"]
    diverging = {
        event: (simple.counters[event], fast.counters[event])
        for event in Event
        if simple.counters[event] != fast.counters[event]
    }
    assert not diverging, f"{name}/sharded: counter divergence {diverging}"
    assert simple.return_values == fast.return_values, f"{name}/sharded: returns"
    assert strict_form(simple.cct) == strict_form(fast.cct), f"{name}/sharded: cct"
