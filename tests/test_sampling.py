"""The Goldberg–Hall sampling baseline vs. the CCT (§7.2)."""

import pytest

from repro.cct.gprof import cct_truth
from repro.cct.runtime import CCTRuntime
from repro.instrument.cctinstr import instrument_context
from repro.lang import compile_source
from repro.machine.memory import MemoryMap
from repro.machine.vm import Machine
from repro.profiles.sampling import StackSampler

SOURCE = """
fn spin(n) {
    var i = 0; var sum = 0;
    while (i < n) { sum = sum + i; i = i + 1; }
    return sum;
}
fn heavy() { return spin(400); }
fn light() { return spin(4); }
fn main() {
    var i = 0; var out = 0;
    while (i < 30) {
        out = out + light();
        if (i % 10 == 0) { out = out + heavy(); }
        i = i + 1;
    }
    return out;
}
"""


def _sampled(period=32, source=SOURCE):
    program = compile_source(source)
    machine = Machine(program)
    sampler = StackSampler(period=period)
    machine.tracer = sampler
    result = machine.run()
    return sampler, result


def _cct(source=SOURCE):
    program = compile_source(source)
    instrument_context(program)
    runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=True)
    machine = Machine(program)
    machine.cct_runtime = runtime
    machine.run()
    return runtime


class TestSampler:
    def test_samples_collected(self):
        sampler, _ = _sampled()
        assert len(sampler.samples) > 10
        assert all(sample[0] == "main" for sample in sampler.samples)

    def test_shares_sum_to_one(self):
        sampler, _ = _sampled()
        shares = sampler.context_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_hot_context_dominates_samples(self):
        sampler, _ = _sampled()
        shares = sampler.context_shares()
        heavy = shares.get(("main", "heavy", "spin"), 0.0)
        light = shares.get(("main", "light", "spin"), 0.0)
        # heavy's spin runs ~10x the instructions of light's in total.
        assert heavy > light

    def test_estimate_tracks_cct_truth_roughly(self):
        sampler, result = _sampled(period=8)
        runtime = _cct()
        truth = cct_truth(runtime, metric=1)
        estimates = sampler.inclusive_estimate(result.instructions)
        root_truth = {k: v for k, v in truth.items()}
        heavy_truth = root_truth[("main", "heavy", "spin")]
        heavy_estimate = estimates.get(("main", "heavy", "spin"), 0.0)
        # Within a factor of two: sampling error, the paper's point.
        assert heavy_truth / 2 <= heavy_estimate <= heavy_truth * 2

    def test_storage_grows_with_run_length(self):
        """The paper's criticism: sample storage is unbounded."""
        short = compile_source(SOURCE.replace("i < 30", "i < 10"))
        long = compile_source(SOURCE.replace("i < 30", "i < 60"))
        cells = []
        for program in (short, long):
            machine = Machine(program)
            sampler = StackSampler(period=32)
            machine.tracer = sampler
            machine.run()
            cells.append(sampler.storage_cells())
        assert cells[1] > 2 * cells[0]

        # The CCT for both runs has the SAME number of records.
        sizes = []
        for text in ("i < 10", "i < 60"):
            program = compile_source(SOURCE.replace("i < 30", text))
            instrument_context(program)
            runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=False)
            machine = Machine(program)
            machine.cct_runtime = runtime
            machine.run()
            sizes.append(len(runtime.records))
        assert sizes[0] == sizes[1]

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            StackSampler(period=0)

    def test_exclusive_vs_inclusive(self):
        sampler, result = _sampled(period=8)
        exclusive = sampler.estimate(result.instructions)
        inclusive = sampler.inclusive_estimate(result.instructions)
        # main's inclusive share covers everything; its exclusive share
        # is only the samples taken while main itself ran.
        assert inclusive[("main",)] == pytest.approx(result.instructions)
        assert exclusive.get(("main",), 0.0) < inclusive[("main",)]
