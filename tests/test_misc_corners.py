"""Corner coverage: kernels, layout effects, serialization with signals,
oracle tainting under longjmp, disassembly of instrumented code."""

import pytest

from repro.lang import compile_source
from repro.machine.counters import Event
from repro.machine.memory import MemoryMap
from repro.machine.vm import Machine
from repro.tools.pp import PP, clone_program


class TestWorkloadKernels:
    def test_conflict_pair_is_cache_aligned(self):
        from repro.workloads.kernels import GlobalPlanner

        planner = GlobalPlanner()
        planner.array("padding", 37)
        first, second = planner.conflict_pair("cp", 512, 2048)
        assert (second.offset_words - first.offset_words) % 2048 == 0

    def test_dispatch_width_must_be_power_of_two(self):
        from repro.ir.builder import FunctionBuilder
        from repro.workloads.kernels import emit_dispatch_tree

        fb = FunctionBuilder("f", num_params=1, num_regs=8)
        fb.block("entry")
        fb.br("d_0_8")
        with pytest.raises(ValueError, match="power of two"):
            emit_dispatch_tree(fb, 0, 6, "d", "out", 1, lambda f, i: None)

    def test_dispatch_tree_reaches_every_leaf(self):
        from repro.ir.builder import FunctionBuilder
        from repro.ir.function import Program
        from repro.ir.instructions import Imm
        from repro.workloads.kernels import emit_dispatch_tree

        fb = FunctionBuilder("main", num_params=1, num_regs=8)
        fb.block("entry")
        fb.br("d_0_8")

        def leaf(f, index):
            f.const(100 + index, dst=2)

        emit_dispatch_tree(fb, 0, 8, "d", "out", 1, leaf)
        fb.block("out")
        fb.ret(2)
        program = Program(entry="main")
        program.add_function(fb.finish())
        for selector in range(8):
            result = Machine(program).run(selector)
            assert result.return_value == 100 + selector

    def test_lcg_is_deterministic_and_bounded(self):
        from repro.ir.builder import FunctionBuilder
        from repro.ir.function import Program
        from repro.workloads.kernels import LCG_MASK, emit_lcg_step

        fb = FunctionBuilder("main", num_params=1, num_regs=4)
        fb.block("entry")
        emit_lcg_step(fb, 0, 1)
        fb.ret(0)
        program = Program(entry="main")
        program.add_function(fb.finish())
        first = Machine(program).run(12345).return_value
        second = Machine(program).run(12345).return_value
        assert first == second
        assert 0 <= first <= LCG_MASK


class TestLayoutEffects:
    def test_layout_changes_icache_behaviour_not_semantics(self):
        from repro.opt.layout import profile_guided_layout

        source = """
        fn main() {
            var i = 0; var sum = 0;
            while (i < 800) {
                if (i % 97 == 0) { sum = sum + 3; }
                else { sum = sum + 1; }
                i = i + 1;
            }
            return sum;
        }
        """
        program = compile_source(source)
        profiled = PP().flow_freq(program)
        baseline = Machine(clone_program(program)).run()
        profile_guided_layout(program, profiled.path_profile)
        relaid = Machine(program).run()
        assert relaid.return_value == baseline.return_value
        # Same dynamic instruction stream; only fetch addresses moved.
        assert relaid[Event.INSTRS] == baseline[Event.INSTRS]


class TestSerializationWithSignals:
    def test_signal_roots_survive_round_trip(self, tmp_path):
        from repro.cct.dct import canonical_record
        from repro.cct.runtime import CCTRuntime
        from repro.cct.serialize import load_cct, save_cct
        from repro.instrument.cctinstr import instrument_context

        program = compile_source(
            """
            fn tick(n) { return n; }
            fn main() {
                var i = 0; var s = 0;
                while (i < 200) { s = s + i; i = i + 1; }
                return s;
            }
            """
        )
        instrument_context(program)
        runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=False)
        machine = Machine(program)
        machine.cct_runtime = runtime
        machine.install_signal(handler="tick", period=150)
        machine.run()
        assert machine.signals_delivered > 0
        path = str(tmp_path / "signals.cct")
        save_cct(runtime, path)
        loaded = load_cct(path)
        assert canonical_record(loaded.root) == canonical_record(runtime.root)
        assert any(r.id == "tick" and r.parent is loaded.root
                   for r in loaded.records)


class TestOracleUnderLongjmp:
    ASM = """
    program entry=main
    func main(0) regs=8 {
    entry:
        setjmp r0, r1
        cbr r0, after, work
    work:
        call r2, jumper(r1)
        ret 0
    after:
        const r3, 0
        br head
    head:
        lt r4, r3, 5
        cbr r4, body, done
    body:
        add r3, r3, 1
        br head
    done:
        ret r3
    }
    func jumper(1) regs=4 {
    entry:
        longjmp r0, 7
    }
    """

    def test_oracle_survives_and_flags_drops(self):
        from repro.instrument.pathinstr import instrument_paths
        from repro.ir.asm import parse_program
        from repro.profiles.oracle import PathOracle

        probe = instrument_paths(parse_program(self.ASM), mode="freq")
        numberings = {n: i.numbering for n, i in probe.functions.items()}
        oracle = PathOracle(numberings)
        machine = Machine(parse_program(self.ASM))
        machine.tracer = oracle
        result = machine.run()
        assert result.return_value == 5
        # jumper never returned normally; its in-flight path dropped.
        assert oracle.dropped_paths >= 1
        # The resumed loop's backedge paths were still counted.
        assert sum(oracle.function_counts("main").values()) >= 4

    def test_instrumented_run_does_not_crash(self):
        from repro.instrument.pathinstr import instrument_paths
        from repro.instrument.tables import ProfilingRuntime
        from repro.ir.asm import parse_program

        program = parse_program(self.ASM)
        runtime = ProfilingRuntime(MemoryMap().profiling.base)
        instrument_paths(program, mode="freq", runtime=runtime)
        machine = Machine(program)
        machine.path_runtime = runtime
        assert machine.run().return_value == 5


class TestDisassemblyOfInstrumentedCode:
    def test_pseudo_ops_render(self):
        from repro.instrument.pathinstr import instrument_paths
        from repro.ir.disasm import format_program

        program = compile_source(
            "fn main() { var i = 0; while (i < 5) { i = i + 1; } return i; }"
        )
        instrument_paths(program, mode="hw")
        text = format_program(program)
        assert "!path.reset" in text
        assert "!hwc.zero" in text
        assert "!hwc.accum" in text

    def test_cct_ops_render(self):
        from repro.instrument.cctinstr import instrument_context
        from repro.ir.disasm import format_program

        program = compile_source(
            """
            fn f(x) { return x; }
            fn main() { var i = 0; while (i < 3) { i = i + f(i); i = i + 1; } return i; }
            """
        )
        instrument_context(program, read_at_backedges=True)
        text = format_program(program)
        assert "!cct.enter" in text
        assert "!cct.call" in text
        assert "!cct.exit" in text
        assert "!cct.probe" in text
