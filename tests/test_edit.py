"""Executable editing: layout, insertion, splitting, scavenging."""

import pytest

from repro.cfg.graph import build_cfg
from repro.edit.editor import EditError, FunctionEditor
from repro.edit.layout import CODE_BASE, assign_layout
from repro.ir.asm import parse_program
from repro.ir.instructions import Const, FrameLoad, FrameStore, Kind, PathAdd
from repro.machine.vm import Machine

DIAMOND = """
func main(1) regs=8 {
entry:
    const r1, 1
    cbr r1, left, right
left:
    add r0, r0, 10
    br join
right:
    add r0, r0, 20
    br join
join:
    ret r0
}
"""


def _editor(asm=DIAMOND, name="main"):
    program = parse_program(asm)
    function = program.functions[name]
    return program, function, FunctionEditor(function, build_cfg(function))


class TestLayout:
    def test_addresses_start_at_code_base(self):
        program = parse_program(DIAMOND)
        layout = assign_layout(program)
        assert layout.block_addrs[("main", "entry")][0] == CODE_BASE

    def test_addresses_monotonic_and_disjoint(self):
        program = parse_program(DIAMOND + DIAMOND.replace("main", "other"))
        layout = assign_layout(program)
        all_addrs = [a for addrs in layout.block_addrs.values() for a in addrs]
        assert len(set(all_addrs)) == len(all_addrs)

    def test_icost_scales_size(self):
        program = parse_program(DIAMOND)
        from repro.ir.instructions import HwcAccum

        program.functions["main"].entry.instrs.insert(0, HwcAccum(1, 0, 0))
        layout = assign_layout(program)
        addrs = layout.block_addrs[("main", "entry")]
        assert addrs[1] - addrs[0] == 4 * HwcAccum(1, 0, 0).icost

    def test_function_alignment(self):
        program = parse_program(DIAMOND + DIAMOND.replace("main", "other"))
        layout = assign_layout(program)
        assert layout.function_base["other"] % 32 == 0


class TestInsertion:
    def test_insert_at_entry(self):
        program, function, editor = _editor()
        marker = Const(2, 999)
        editor.insert_at_entry([marker])
        editor.apply()
        assert function.entry.instrs[0] is marker

    def test_insert_before_terminator(self):
        program, function, editor = _editor()
        marker = Const(2, 999)
        editor.insert_before_terminator("join", [marker])
        editor.apply()
        join = function.block("join")
        assert join.instrs[-2] is marker
        assert join.instrs[-1].kind == Kind.RET

    def test_edge_on_unconditional_branch_goes_in_source(self):
        program, function, editor = _editor()
        cfg = editor.cfg
        edge = cfg.find_edge("left", "join")
        marker = Const(2, 999)
        editor.insert_on_edge(edge, [marker])
        editor.apply()
        left = function.block("left")
        assert marker in left.instrs
        assert len(function.blocks) == 4  # no split

    def test_edge_with_single_pred_dst_goes_at_top(self):
        asm = DIAMOND.replace("cbr r1, left, right", "cbr r1, left, join")
        # now: entry->left (then), entry->join (else); left->join; join 2 preds
        program = parse_program(asm.replace("right:\n    add r0, r0, 20\n    br join\n", ""))
        function = program.functions["main"]
        editor = FunctionEditor(function, build_cfg(function))
        edge = editor.cfg.find_edge("entry", "left")
        marker = Const(2, 999)
        editor.insert_on_edge(edge, [marker])
        editor.apply()
        assert function.block("left").instrs[0] is marker

    def test_critical_edge_is_split(self):
        program, function, editor = _editor()
        edge = editor.cfg.find_edge("entry", "left")
        # join has two preds; make the edge critical by pointing at join
        critical = editor.cfg.find_edge("left", "join")
        # left->join is a br edge (not critical). Use a genuinely
        # critical one: build a cbr whose target has 2 preds.
        asm = """
        func main(1) regs=8 {
        entry:
            cbr r0, join, other
        other:
            br join
        join:
            ret r0
        }
        """
        program = parse_program(asm)
        function = program.functions["main"]
        editor = FunctionEditor(function, build_cfg(function))
        edge = editor.cfg.find_edge("entry", "join")
        marker = Const(2, 999)
        editor.insert_on_edge(edge, [marker])
        editor.apply()
        assert len(function.blocks) == 4  # split block added
        split = function.blocks[-1]
        assert marker in split.instrs
        assert function.entry.terminator.then == split.name
        # Execution still reaches join.
        machine = Machine(program)
        assert machine.run(1).return_value == 1

    def test_edge_into_entry_block_is_split(self):
        asm = """
        func main(1) regs=8 {
        top:
            sub r0, r0, 1
            cbr r0, top, out
        out:
            ret r0
        }
        """
        program = parse_program(asm)
        function = program.functions["main"]
        editor = FunctionEditor(function, build_cfg(function))
        edge = editor.cfg.find_edge("top", "top")
        marker = Const(2, 999)
        editor.insert_on_edge(edge, [marker])
        editor.apply()
        # Must NOT have been hoisted to the top of the entry block.
        assert function.entry.instrs[0] is not marker
        machine = Machine(program)
        assert machine.run(3).return_value == 0

    def test_apply_twice_rejected(self):
        program, function, editor = _editor()
        editor.apply()
        with pytest.raises(EditError):
            editor.apply()

    def test_call_sites_renumbered_after_apply(self):
        asm = """
        func main(0) regs=8 {
        entry:
            call r0, main()
            ret r0
        }
        """
        program = parse_program(asm)
        function = program.functions["main"]
        editor = FunctionEditor(function, build_cfg(function))
        editor.insert_at_entry([Const(1, 0)])
        editor.apply()
        assert [c.site for c in function.call_sites()] == [0]


class TestScavenging:
    def test_free_register_found(self):
        program, function, editor = _editor()
        result = editor.scavenge_register()
        assert not result.spilled
        assert result.register == 2  # r0, r1 used

    def test_spill_when_file_full(self):
        asm = """
        func main(0) regs=4 {
        entry:
            const r0, 0
            const r1, 1
            const r2, 2
            const r3, 3
            ret r0
        }
        """
        program = parse_program(asm)
        function = program.functions["main"]
        editor = FunctionEditor(function, build_cfg(function))
        result = editor.scavenge_register()
        assert result.spilled
        assert result.register == 3

    def test_wrap_spilled_brackets_sequence(self):
        program, function, editor = _editor()
        scavenge = editor.scavenge_register()
        scavenge.spilled = True
        body = [PathAdd(scavenge.register, 5)]
        wrapped = editor.wrap_spilled(scavenge, body)
        kinds = [i.kind for i in wrapped]
        assert kinds == [
            Kind.FRAME_STORE, Kind.FRAME_LOAD, Kind.PATH_ADD,
            Kind.FRAME_STORE, Kind.FRAME_LOAD,
        ]

    def test_wrap_not_spilled_is_identity(self):
        program, function, editor = _editor()
        scavenge = editor.scavenge_register()
        body = [PathAdd(scavenge.register, 5)]
        assert editor.wrap_spilled(scavenge, body) == body
