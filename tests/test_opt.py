"""Path-profile consumers: layout and superblock formation."""

import pytest

from repro.ir.function import validate_program
from repro.machine.counters import Event
from repro.machine.vm import Machine
from repro.opt.layout import profile_guided_layout
from repro.opt.superblock import form_superblock
from repro.tools.pp import PP, clone_program

from tests.conftest import compile_corpus

#: A loop whose body crosses several jump-linked blocks: straightening
#: has something to remove.
LOOPY_SOURCE = """
global data[1024];

fn main() {
    var i = 0; var sum = 0;
    while (i < 500) {
        if (i % 16 == 0) {
            sum = sum + data[i & 1023];
        } else {
            sum = sum + i;
        }
        if (sum > 100000) { sum = sum - 100000; }
        i = i + 1;
    }
    return sum;
}
"""


def _profiled(source_name=None, source=None):
    from repro.lang import compile_source

    program = compile_source(source) if source else compile_corpus(source_name)
    pp = PP()
    run = pp.flow_freq(program)
    return program, run


class TestLayout:
    def test_semantics_preserved(self, corpus_name):
        program, run = _profiled(source_name=corpus_name)
        before = Machine(clone_program(program)).run()
        profile_guided_layout(program, run.path_profile)
        validate_program(program)
        after = Machine(program).run()
        assert after.return_value == before.return_value

    def test_entry_block_stays_first(self):
        program, run = _profiled(source="fn main() { var i = 0; while (i < 9) { i = i + 1; } return i; }")
        entry_before = program.functions["main"].entry.name
        profile_guided_layout(program, run.path_profile)
        assert program.functions["main"].entry.name == entry_before

    def test_hot_blocks_move_forward(self):
        program, run = _profiled(source=LOOPY_SOURCE)
        orders = profile_guided_layout(program, run.path_profile)
        order = orders["main"]
        function = program.functions["main"]
        # The hottest path's blocks occupy a contiguous prefix.
        hottest = max(
            run.path_profile.functions["main"].counts.items(),
            key=lambda item: item[1],
        )[0]
        decoded = run.path_profile.functions["main"].decode(hottest)
        positions = [order.index(b) for b in decoded.blocks]
        assert max(positions) - min(positions) == len(positions) - 1


class TestSuperblock:
    def test_semantics_preserved(self):
        program, run = _profiled(source=LOOPY_SOURCE)
        before = Machine(clone_program(program)).run()
        result = form_superblock(
            program.functions["main"], run.path_profile.functions["main"]
        )
        assert result is not None
        validate_program(program)
        after = Machine(program).run()
        assert after.return_value == before.return_value

    def test_straightening_reduces_hot_instructions(self):
        program, run = _profiled(source=LOOPY_SOURCE)
        before = Machine(clone_program(program)).run()
        result = form_superblock(
            program.functions["main"], run.path_profile.functions["main"]
        )
        assert result.jumps_straightened >= 1
        after = Machine(program).run()
        assert after[Event.INSTRS] < before[Event.INSTRS]

    def test_code_growth_reported(self):
        program, run = _profiled(source=LOOPY_SOURCE)
        result = form_superblock(
            program.functions["main"], run.path_profile.functions["main"]
        )
        assert result.code_growth > 0
        assert result.blocks_added >= 1
        assert result.trace_freq > 100

    def test_no_loop_no_superblock(self):
        program, run = _profiled(source="fn main() { return 42; }")
        result = form_superblock(
            program.functions["main"], run.path_profile.functions["main"]
        )
        assert result is None

    def test_idempotence_guard(self):
        program, run = _profiled(source=LOOPY_SOURCE)
        main = program.functions["main"]
        profile = run.path_profile.functions["main"]
        assert form_superblock(main, profile) is not None
        assert form_superblock(main, profile) is None  # names exist

    def test_corpus_functions_survive(self, corpus_name):
        program, run = _profiled(source_name=corpus_name)
        before = Machine(clone_program(program)).run()
        for name, function in program.functions.items():
            fpp = run.path_profile.functions.get(name)
            if fpp is not None:
                form_superblock(function, fpp)
        validate_program(program)
        after = Machine(program).run()
        assert after.return_value == before.return_value

    def test_reprofile_after_optimization(self):
        """The optimized program can itself be path-profiled."""
        program, run = _profiled(source=LOOPY_SOURCE)
        form_superblock(
            program.functions["main"], run.path_profile.functions["main"]
        )
        reprofiled = PP().flow_freq(program)
        assert reprofiled.return_value == run.return_value
        # The trace clone's blocks now appear in executed paths.
        decoded_blocks = set()
        fpp = reprofiled.path_profile.functions["main"]
        for path_sum, count in fpp.counts.items():
            if count > 0:
                decoded_blocks.update(fpp.decode(path_sum).blocks)
        assert any(name.endswith(".sb") for name in decoded_blocks)
