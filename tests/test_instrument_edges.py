"""Edge profiling: simple counts and spanning-tree reconstruction."""

import pytest

from repro.instrument.edgeinstr import instrument_edges, reconstruct_edge_counts
from repro.instrument.tables import ProfilingRuntime
from repro.machine.memory import MemoryMap
from repro.machine.vm import Machine

from tests.conftest import compile_corpus


def _edge_run(corpus_name: str, placement: str):
    program = compile_corpus(corpus_name)
    runtime = ProfilingRuntime(MemoryMap().profiling.base)
    edges = instrument_edges(program, placement=placement, runtime=runtime)
    machine = Machine(program)
    machine.path_runtime = runtime
    result = machine.run()
    return result, edges


def _entries(corpus_name: str) -> dict:
    """How many times each function was entered (via a tracer)."""
    program = compile_corpus(corpus_name)
    machine = Machine(program)

    class Counter:
        def __init__(self):
            self.entries = {}

        def on_enter(self, name, site):
            self.entries[name] = self.entries.get(name, 0) + 1

        def on_exit(self, name, value):
            pass

        def on_block(self, name, block):
            pass

    tracer = Counter()
    machine.tracer = tracer
    machine.run()
    return tracer.entries


def test_simple_counts_conserve_flow(corpus_name):
    result, edges = _edge_run(corpus_name, "simple")
    entries = _entries(corpus_name)
    for name, info in edges.functions.items():
        counts = edges.edge_counts(name)
        cfg = info.cfg
        invocations = entries.get(name, 0)
        for vertex in cfg.vertices:
            inflow = sum(counts[e.index] for e in cfg.pred[vertex])
            outflow = sum(counts[e.index] for e in cfg.succ[vertex])
            if vertex == cfg.entry:
                inflow += invocations
            if vertex == cfg.exit:
                outflow += invocations
            assert inflow == outflow, (name, vertex)


def test_reconstruction_matches_simple(corpus_name):
    _, simple = _edge_run(corpus_name, "simple")
    _, optimized = _edge_run(corpus_name, "spanning_tree")
    entries = _entries(corpus_name)
    for name in simple.functions:
        expected = simple.edge_counts(name)
        actual = optimized.edge_counts(name, entries=entries.get(name, 0))
        assert actual == expected, name


def test_optimized_instruments_fewer_edges(corpus_name):
    _, simple = _edge_run(corpus_name, "simple")
    _, optimized = _edge_run(corpus_name, "spanning_tree")
    for name in simple.functions:
        assert len(optimized.functions[name].instrumented) <= len(
            simple.functions[name].instrumented
        )


def test_optimized_needs_entry_count():
    _, optimized = _edge_run("loop", "spanning_tree")
    with pytest.raises(ValueError, match="entry count"):
        optimized.edge_counts("main")


def test_spanning_tree_placements_beat_simple():
    """The [BL94]/[BL96] optimizations pay off for both techniques.

    (The paper's "path ~= 2x edge" is a SPEC95 average, not a
    per-program invariant: on loop-dominated code optimized path
    profiling can even undercut edge profiling, since backedge commits
    subsume several edge counts.)
    """
    from repro.tools.pp import PP

    program = compile_corpus("nested_loops")
    pp = PP()
    base = pp.baseline(program)
    edge_simple = pp.edge_profile(program, placement="simple")
    edge_opt = pp.edge_profile(program, placement="spanning_tree")
    path_simple = pp.flow_freq(program, placement="simple")
    path_opt = pp.flow_freq(program, placement="spanning_tree")
    for run in (edge_simple, edge_opt, path_simple, path_opt):
        assert run.result.return_value == base.result.return_value
        assert run.cycles > base.cycles
    assert edge_opt.cycles < edge_simple.cycles
    assert path_opt.cycles <= path_simple.cycles


def test_reconstruct_rejects_unsolvable():
    from repro.cfg.graph import CFG, EXIT

    cfg = CFG("f", "a")
    for vertex in ("a", "b"):
        cfg.add_vertex(vertex)
    cfg.add_vertex(EXIT)
    e1 = cfg.add_edge("a", "b")
    e2 = cfg.add_edge("b", "b")  # self loop cannot be a tree edge
    e3 = cfg.add_edge("b", EXIT)
    with pytest.raises(ValueError):
        reconstruct_edge_counts(cfg, [e1.index, e2.index, e3.index], {}, 1)
