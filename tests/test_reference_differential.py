"""Differential testing: the cost-model VM vs the reference interpreter.

Two independent implementations of the IR semantics must agree on
every program either can run — the strongest guard against semantic
bugs hiding inside the performance modelling.
"""

import pytest
from hypothesis import given, settings

from repro.lang import compile_source
from repro.machine.memory import WORD
from repro.machine.reference import ReferenceError, ReferenceInterpreter
from repro.machine.vm import Machine

from tests.conftest import CORPUS, compile_corpus
from tests.test_property_endtoend import programs

#: Corpus programs the reference cannot run (setjmp/longjmp etc.) —
#: none currently, but kept explicit for future additions.
UNSUPPORTED = frozenset()


def test_corpus_agreement(corpus_name):
    if corpus_name in UNSUPPORTED:
        pytest.skip("reference does not support this corpus program")
    vm_result = Machine(compile_corpus(corpus_name)).run()
    reference = ReferenceInterpreter(compile_corpus(corpus_name))
    assert reference.run() == vm_result.return_value


def test_memory_effects_agree():
    program_vm = compile_corpus("arrays")
    machine = Machine(program_vm)
    machine.run()
    reference = ReferenceInterpreter(compile_corpus("arrays"))
    reference.run()
    base = machine.memory.globals.base
    for index in range(0, 512, 17):
        address = base + index * WORD
        assert machine.memory.read(address) == reference.memory.get(address, 0)


def test_args_passed_identically():
    source = """
    fn main(a, b) { return a * 100 + b; }
    """
    program = compile_source(source)
    vm_result = Machine(program).run(7, 3).return_value
    assert ReferenceInterpreter(compile_source(source)).run(7, 3) == vm_result


def test_indirect_calls_agree():
    from repro.ir.asm import parse_program

    asm = """
    program entry=main
    func main(0) regs=4 {
    entry:
        const r0, 1
        icall r1, *r0(20)
        ret r1
    }
    func double(1) regs=4 {
    entry:
        mul r1, r0, 2
        ret r1
    }
    func triple(1) regs=4 {
    entry:
        mul r1, r0, 3
        ret r1
    }
    """
    program = parse_program(asm)
    program.function_index("double")
    program.function_index("triple")
    vm_result = Machine(program).run().return_value
    program2 = parse_program(asm)
    program2.function_index("double")
    program2.function_index("triple")
    assert ReferenceInterpreter(program2).run() == vm_result == 60


def test_reference_refuses_instrumentation():
    from repro.instrument.pathinstr import instrument_paths

    program = compile_corpus("loop")
    instrument_paths(program, mode="freq")
    with pytest.raises(ReferenceError, match="support"):
        ReferenceInterpreter(program).run()


def test_reference_step_budget():
    source = "fn main() { while (1) { } return 0; }"
    reference = ReferenceInterpreter(compile_source(source), max_steps=1000)
    with pytest.raises(ReferenceError, match="budget"):
        reference.run()


@given(programs())
@settings(max_examples=80, deadline=None)
def test_property_vm_matches_reference(source):
    vm_result = Machine(compile_source(source)).run()
    reference = ReferenceInterpreter(compile_source(source))
    assert reference.run() == vm_result.return_value


class TestIrreducibleEndToEnd:
    """Irreducible control flow through the whole pipeline (§2: the
    algorithm handles reducible and irreducible CFGs)."""

    ASM = """
    program entry=main
    func main(1) regs=8 {
    entry:
        const r1, 0
        and r2, r0, 1
        cbr r2, a, b
    a:
        add r1, r1, 1
        sub r0, r0, 1
        gt r3, r0, 0
        cbr r3, b, out
    b:
        add r1, r1, 10
        sub r0, r0, 2
        gt r3, r0, 0
        cbr r3, a, out
    out:
        ret r1
    }
    """

    @pytest.mark.parametrize("arg", [0, 1, 5, 8, 13])
    def test_vm_matches_reference(self, arg):
        from repro.ir.asm import parse_program

        vm_result = Machine(parse_program(self.ASM)).run(arg).return_value
        ref_result = ReferenceInterpreter(parse_program(self.ASM)).run(arg)
        assert vm_result == ref_result

    @pytest.mark.parametrize("arg", [1, 8, 13])
    def test_path_profile_matches_oracle(self, arg):
        from repro.instrument.pathinstr import instrument_paths
        from repro.instrument.tables import ProfilingRuntime
        from repro.ir.asm import parse_program
        from repro.machine.memory import MemoryMap
        from repro.profiles.oracle import PathOracle

        probe = instrument_paths(parse_program(self.ASM), mode="freq")
        numberings = {n: i.numbering for n, i in probe.functions.items()}
        oracle = PathOracle(numberings)
        clean = Machine(parse_program(self.ASM))
        clean.tracer = oracle
        clean.run(arg)

        program = parse_program(self.ASM)
        runtime = ProfilingRuntime(MemoryMap().profiling.base)
        flow = instrument_paths(program, mode="freq", runtime=runtime)
        machine = Machine(program)
        machine.path_runtime = runtime
        machine.run(arg)
        assert flow.path_counts("main") == oracle.function_counts("main")
