"""Assembler and disassembler tests, including round trips."""

import pytest

from repro.ir.asm import AsmError, parse_program
from repro.ir.disasm import format_instruction, format_program
from repro.ir.instructions import Imm, Kind

FULL_PROGRAM = """
# every assembler form in one program
program entry=main globals=32

func main(0) regs=16 {
entry:
    const r0, 5
    const r1, 2.5
    mov r2, r0
    add r3, r0, 7
    sub r3, r3, r0
    fadd r4, r1, 0.5
    load r5, [r0+8]
    store r5, [r0]
    store 42, [r0+16]
    alloc r6, 10
    setjmp r7, r8
    cbr r7, thrown, normal
normal:
    call r9, helper(r0, 3)
    icall r10, *r0(r9)
    call noresult(r9)
    longjmp r8, 1
thrown:
    ret r9
}

func helper(2) regs=8 {
entry:
    ge r2, r0, r1
    cbr r2, big, small
big:
    ret r0
small:
    ret r1
}

func noresult(1) regs=4 {
entry:
    ret
}
"""


class TestParsing:
    def test_full_program_parses(self):
        program = parse_program(FULL_PROGRAM)
        assert program.entry == "main"
        assert program.globals_size == 32
        assert set(program.functions) == {"main", "helper", "noresult"}

    def test_instruction_kinds(self):
        program = parse_program(FULL_PROGRAM)
        kinds = [i.kind for i in program.functions["main"].instructions()]
        for expected in (
            Kind.CONST, Kind.MOVE, Kind.BINOP, Kind.FBINOP, Kind.LOAD,
            Kind.STORE, Kind.ALLOC, Kind.SETJMP, Kind.CBR, Kind.CALL,
            Kind.ICALL, Kind.LONGJMP, Kind.RET,
        ):
            assert expected in kinds

    def test_immediate_store(self):
        program = parse_program(FULL_PROGRAM)
        stores = [
            i for i in program.functions["main"].instructions()
            if i.kind == Kind.STORE
        ]
        assert isinstance(stores[1].src, Imm)
        assert stores[1].src.value == 42

    def test_call_forms(self):
        program = parse_program(FULL_PROGRAM)
        calls = [
            i for i in program.functions["main"].instructions()
            if i.kind in (Kind.CALL, Kind.ICALL)
        ]
        assert calls[0].dst == 9 and calls[0].callee == "helper"
        assert calls[1].dst == 10 and calls[1].func == 0
        assert calls[2].dst is None and calls[2].callee == "noresult"

    def test_call_sites_assigned(self):
        program = parse_program(FULL_PROGRAM)
        sites = [c.site for c in program.functions["main"].call_sites()]
        assert sites == [0, 1, 2]

    def test_negative_offsets_and_values(self):
        program = parse_program(
            """
            func main(0) regs=4 {
            entry:
                const r0, -17
                ret r0
            }
            """
        )
        const = next(program.functions["main"].instructions())
        assert const.value == -17

    def test_float_literal(self):
        program = parse_program(
            "func main(0) regs=2 {\nentry:\n const r0, 1.5e3\n ret r0\n}"
        )
        const = next(program.functions["main"].instructions())
        assert const.value == 1500.0


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            parse_program("func main(0) regs=2 {\nentry:\n zorp r0\n ret\n}")

    def test_error_carries_line_number(self):
        try:
            parse_program("func main(0) regs=2 {\nentry:\n zorp r0\n ret\n}")
        except AsmError as error:
            assert error.line == 3
        else:  # pragma: no cover
            pytest.fail("expected AsmError")

    def test_bad_register(self):
        with pytest.raises(AsmError, match="register"):
            parse_program("func main(0) regs=2 {\nentry:\n mov rX, r0\n ret\n}")

    def test_unexpected_character(self):
        with pytest.raises(AsmError):
            parse_program("func main(0) { entry: ret ~ }")

    def test_validation_runs_by_default(self):
        from repro.ir.function import IRValidationError

        with pytest.raises(IRValidationError):
            parse_program("func main(0) regs=2 {\nentry:\n br nowhere\n}")

    def test_validation_can_be_skipped(self):
        program = parse_program(
            "func main(0) regs=2 {\nentry:\n br nowhere\n}", validate=False
        )
        assert "main" in program.functions


class TestRoundTrip:
    def test_format_then_parse_is_identity(self, corpus_name):
        from tests.conftest import compile_corpus

        original = compile_corpus(corpus_name)
        text = format_program(original)
        reparsed = parse_program(text)
        assert format_program(reparsed) == text

    def test_full_program_round_trip(self):
        program = parse_program(FULL_PROGRAM)
        text = format_program(program)
        assert format_program(parse_program(text)) == text

    def test_pseudo_instructions_format(self):
        from repro.ir.instructions import (
            CctEnter, EdgeCount, HwcAccum, HwcZero, PathAdd, PathCommit,
        )

        assert format_instruction(PathAdd(3, 7)) == "!path.add r3, 7"
        assert "table2" in format_instruction(PathCommit(3, 1, 2))
        assert format_instruction(HwcZero()) == "!hwc.zero"
        assert "13" not in format_instruction(HwcAccum(1, 0, 0))
        assert "slots=4" in format_instruction(CctEnter("f", 4))
        assert "edge.count" in format_instruction(EdgeCount(5, 1))
