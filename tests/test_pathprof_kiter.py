"""Multi-iteration Ball–Larus numbering: the k-iteration product graph.

Three layers of properties, mirroring ``test_pathprof_numbering.py``:

* **Numbering** — over random CFGs and k ∈ {1, 2, 3}: k-path sums are
  dense and unique in ``[0, num_paths)``, decode∘encode is the
  identity, and k=1 is *index-identical* to the classic transform
  (same ``val`` array, same path count — the structural fact that
  makes k=1 kflow profiles byte-identical to flow_hw).
* **Placement** — ``plan_kflow``'s packed-register simulation
  (``check_path_sums``) reproduces every decoded path sum exactly.
* **Profiles** — end-to-end over the corpus and generated IR
  programs: a k=1 kflow run equals a flow_hw run fact for fact; and
  any k-path profile *projects* (splitting each k-path at its
  back-edge crossings) onto exactly the 1-path profile an independent
  k=1 run measures — the reconstruction law that makes the mode's
  extra precision free of information loss.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cfg.graph import build_cfg
from repro.ir.asm import parse_program
from repro.machine.counters import Event
from repro.pathprof import (
    build_ktransformed,
    number_kpaths,
    number_paths,
    plan_kflow,
    project_kpath_counts,
    split_kpath,
)
from repro.tools.pp import PP

from tests.conftest import CORPUS, compile_corpus
from tests.ir_strategies import ir_programs
from tests.test_pathprof_numbering import FIG1, random_cfgs

PROPERTY_SETTINGS = settings(max_examples=80, deadline=None)

PROFILE_SETTINGS = settings(
    max_examples=10,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

LOOP = """
func main(1) regs=8 {
entry:
    const r1, 0
    br head
head:
    lt r2, r1, r0
    cbr r2, body, out
body:
    add r1, r1, 1
    br head
out:
    ret r1
}
"""


def _cfg(asm: str, name: str = "main"):
    return build_cfg(parse_program(asm).functions[name])


class TestK1IsTheClassicNumbering:
    """k=1 must be the Ball–Larus numbering, index for index."""

    def test_fig1_val_and_count_identical(self):
        cfg = _cfg(FIG1)
        base = number_paths(cfg)
        kone = number_kpaths(cfg, 1)
        assert kone.num_paths == base.num_paths == 6
        assert kone.val == base.val

    @given(random_cfgs())
    @PROPERTY_SETTINGS
    def test_property_val_and_count_identical(self, cfg):
        base = number_paths(cfg)
        kone = number_kpaths(cfg, 1)
        assert kone.num_paths == base.num_paths
        assert kone.val == base.val

    def test_acyclic_graphs_ignore_k(self):
        # No back-edges: every layer beyond 0 is unreachable, so the
        # numbering (and table geometry) is k-independent.
        base = number_paths(_cfg(FIG1))
        for k in (2, 3, 5):
            assert number_kpaths(_cfg(FIG1), k).num_paths == base.num_paths

    def test_loops_grow_the_geometry(self):
        counts = [number_kpaths(_cfg(LOOP), k).num_paths for k in (1, 2, 3, 4)]
        assert counts == sorted(counts)
        assert counts[0] < counts[-1]


class TestKNumberingProperties:
    @given(cfg=random_cfgs(), k=st.integers(min_value=1, max_value=3))
    @PROPERTY_SETTINGS
    def test_property_sums_dense_unique_and_decodable(self, cfg, k):
        """Dense ids in [0, num_paths); decode∘encode == id; decoded
        t-edge sequences are pairwise distinct."""
        numbering = number_kpaths(cfg, k)
        total = numbering.num_paths
        assert total >= 1
        seen = set()
        for path_sum in range(min(total, 2000)):
            path = numbering.regenerate(path_sum)
            assert numbering.path_sum(path.tedges) == path_sum
            key = tuple(
                (e.src, e.dst, e.role, e.origin.index) for e in path.tedges
            )
            assert key not in seen
            seen.add(key)

    @given(cfg=random_cfgs(), k=st.integers(min_value=1, max_value=3))
    @PROPERTY_SETTINGS
    def test_property_np_consistency(self, cfg, k):
        """NP(v) sums successors' NP in the layered product graph."""
        numbering = number_kpaths(cfg, k)
        graph = numbering.graph
        for vertex, np_value in numbering.np.items():
            if vertex == graph.exit:
                assert np_value == 1
                continue
            assert np_value == sum(
                numbering.np[e.dst] for e in graph.succ[vertex]
            )

    @given(cfg=random_cfgs(), k=st.integers(min_value=1, max_value=3))
    @PROPERTY_SETTINGS
    def test_property_product_graph_is_acyclic(self, cfg, k):
        graph = build_ktransformed(cfg, k)
        reachable = set()
        stack = [graph.entry]
        while stack:
            vertex = stack.pop()
            if vertex in reachable:
                continue
            reachable.add(vertex)
            stack.extend(e.dst for e in graph.succ[vertex])
        indegree = {v: 0 for v in reachable}
        for edge in graph.edges:
            if edge.src in reachable and edge.dst in reachable:
                indegree[edge.dst] += 1
        queue = [v for v in reachable if indegree[v] == 0]
        visited = 0
        while queue:
            vertex = queue.pop()
            visited += 1
            for edge in graph.succ[vertex]:
                if edge.dst in reachable:
                    indegree[edge.dst] -= 1
                    if indegree[edge.dst] == 0:
                        queue.append(edge.dst)
        assert visited == len(reachable)

    @given(cfg=random_cfgs(), k=st.integers(min_value=1, max_value=3))
    @PROPERTY_SETTINGS
    def test_property_split_yields_valid_base_paths(self, cfg, k):
        """Every k-path splits into 1..k base paths with in-range sums."""
        knum = number_kpaths(cfg, k)
        base = number_paths(cfg)
        for path_sum in range(min(knum.num_paths, 500)):
            pieces = split_kpath(knum, base, path_sum)
            assert 1 <= len(pieces) <= k
            for piece in pieces:
                assert 0 <= piece < base.num_paths

    @pytest.mark.parametrize("bad_k", [0, -1, 1.5, True])
    def test_invalid_k_rejected(self, bad_k):
        with pytest.raises(ValueError, match="k"):
            number_kpaths(_cfg(LOOP), bad_k)


class TestPlacementPlan:
    @given(cfg=random_cfgs(), k=st.integers(min_value=1, max_value=3))
    @PROPERTY_SETTINGS
    def test_property_packed_register_reproduces_every_sum(self, cfg, k):
        """Simulating the packed ``path_sum * k + layer`` register over
        each decoded path's real edges lands on that path's id."""
        plan = plan_kflow(number_kpaths(cfg, k))
        plan.check_path_sums(limit=2000)

    def test_instrumenter_rejects_invalid_k(self):
        from repro.instrument.kflowinstr import instrument_kpaths

        with pytest.raises(ValueError, match="k"):
            instrument_kpaths(parse_program(FIG1), k=0)


def _run_facts(run):
    return (
        dict(run.result.counters),
        run.result.return_value,
        {
            name: (dict(fpp.counts), {k: list(v) for k, v in fpp.metrics.items()})
            for name, fpp in run.path_profile.functions.items()
        },
    )


def _project_all(krun, one_run, program):
    """Assert the projection law function by function."""
    for name, fpp in krun.path_profile.functions.items():
        base = number_paths(build_cfg(program.functions[name]))
        projected = project_kpath_counts(fpp.numbering, base, fpp.counts)
        measured = {
            p: c
            for p, c in one_run.path_profile.functions[name].counts.items()
            if c
        }
        assert projected == measured, name


class TestProfileEquivalence:
    """The headline laws, measured end to end through the pipeline."""

    def test_k1_equals_flow_hw_on_corpus(self, corpus_name):
        program = compile_corpus(corpus_name)
        pp = PP()
        assert _run_facts(pp.kflow(program, k=1)) == _run_facts(
            pp.flow_hw(program)
        ), corpus_name

    def test_k1_counts_equal_flow_freq_on_corpus(self, corpus_name):
        # flow_freq carries no HW metrics, but its path *frequencies*
        # must agree with the k=1 kflow table entry for entry.
        program = compile_corpus(corpus_name)
        pp = PP()
        kone = pp.kflow(program, k=1)
        freq = pp.flow_freq(program)
        assert {
            name: dict(fpp.counts)
            for name, fpp in kone.path_profile.functions.items()
        } == {
            name: dict(fpp.counts)
            for name, fpp in freq.path_profile.functions.items()
        }

    @pytest.mark.parametrize("k", [2, 4])
    def test_kpath_profile_projects_onto_measured_k1_on_corpus(
        self, corpus_name, k
    ):
        """Prefix-splitting every counted k-path at its back-edge
        crossings reproduces an independently measured k=1 profile
        exactly — frequencies only, since probe overhead (not program
        behaviour) differs between the two instrumentations."""
        program = compile_corpus(corpus_name)
        pp = PP()
        _project_all(pp.kflow(program, k=k), pp.kflow(program, k=1), program)

    @PROFILE_SETTINGS
    @given(program=ir_programs())
    def test_fuzz_k1_equals_flow_hw(self, program):
        pp = PP()
        assert _run_facts(pp.kflow(program, k=1)) == _run_facts(
            pp.flow_hw(program)
        )

    @PROFILE_SETTINGS
    @given(program=ir_programs(), k=st.sampled_from([2, 3, 4]))
    def test_fuzz_kpath_profile_projects_onto_measured_k1(self, program, k):
        pp = PP()
        _project_all(pp.kflow(program, k=k), pp.kflow(program, k=1), program)

    def test_total_frequency_is_k_invariant(self):
        """Summed path frequency = number of committed path segments
        shrinks as k grows (longer paths, fewer commits), but the
        *projected* total matches the k=1 total exactly."""
        program = compile_corpus("nested_loops")
        pp = PP()
        one = pp.kflow(program, k=1)
        for k in (2, 4):
            krun = pp.kflow(program, k=k)
            for name, fpp in krun.path_profile.functions.items():
                base = number_paths(build_cfg(program.functions[name]))
                projected = project_kpath_counts(fpp.numbering, base, fpp.counts)
                assert sum(projected.values()) == sum(
                    one.path_profile.functions[name].counts.values()
                )

    def test_corpus_k_runs_preserve_semantics(self, corpus_name):
        """Instrumentation at any k never perturbs program results."""
        program = compile_corpus(corpus_name)
        pp = PP()
        expected = pp.baseline(program).return_value
        for k in (1, 2, 4):
            run = pp.kflow(program, k=k)
            assert run.return_value == expected
            assert run.result.counters[Event.CYCLES] > 0
