"""Interprocedural path stitching (§6.3) and the optional L2 cache."""

import pytest

from repro.lang import compile_source
from repro.machine.config import MachineConfig
from repro.machine.counters import Event
from repro.machine.vm import Machine
from repro.profiles.interproc import stitch_hot_path
from repro.tools.pp import PP

STITCHABLE = """
global buf[512];

fn inner(i) {
    var j = 0; var sum = 0;
    while (j < 8) { sum = sum + buf[(i + j) & 511]; j = j + 1; }
    return sum;
}

fn middle(i) {
    var x = inner(i);
    if (x > 1000000) { return x - 1; }
    return x + 1;
}

fn main() {
    var i = 0; var out = 0;
    while (i < 60) { out = out + middle(i); i = i + 1; }
    return out;
}
"""


class TestStitching:
    def test_stitches_across_procedures(self):
        program = compile_source(STITCHABLE)
        run = PP().context_flow(program)
        stitched = stitch_hot_path(run)
        functions = [step.function for step in stitched.steps]
        assert functions[0] == "main"
        assert "middle" in functions
        assert "inner" in functions

    def test_exactness_flags(self):
        program = compile_source(STITCHABLE)
        run = PP().context_flow(program)
        stitched = stitch_hot_path(run)
        by_function = {s.function: s for s in stitched.steps}
        # middle's call to inner sits on its only block: every executed
        # path through middle reaches it -> ambiguous only if several
        # paths executed; exact if one reaches it.
        assert isinstance(by_function["middle"].exact, bool)
        assert stitched.describe()  # renders

    def test_requires_combined_run(self):
        program = compile_source(STITCHABLE)
        run = PP().flow_hw(program)
        with pytest.raises(ValueError, match="combined"):
            stitch_hot_path(run)

    def test_depth_bounded_on_recursion(self):
        program = compile_source(
            """
            fn rec(n) {
                if (n <= 0) { return 0; }
                return rec(n - 1) + 1;
            }
            fn main() { return rec(30); }
            """
        )
        run = PP().context_flow(program)
        stitched = stitch_hot_path(run, max_depth=5)
        assert len(stitched.steps) <= 5


class TestL2Cache:
    PROGRAM = """
    global big[32768];
    fn main() {
        var r = 0; var sum = 0;
        while (r < 3) {
            var i = 0;
            while (i < 4096) { sum = sum + big[i * 4]; i = i + 1; }
            r = r + 1;
        }
        return sum;
    }
    """

    def test_l2_reduces_cycles_not_l1_misses(self):
        # Fair baseline: memory is 30 cycles away either way; the L2
        # interposes a 6-cycle level that captures the reuse.
        program = compile_source(self.PROGRAM)
        without = Machine(
            program,
            MachineConfig(l2_enabled=False, dcache_read_miss_penalty=30),
        ).run()
        program2 = compile_source(self.PROGRAM)
        with_l2 = Machine(
            program2,
            MachineConfig(
                l2_enabled=True, dcache_read_miss_penalty=6, l2_miss_penalty=30
            ),
        ).run()
        # L1 behaviour identical; the fills just come from a closer level.
        assert with_l2[Event.DC_READ_MISS] == without[Event.DC_READ_MISS]
        # The second and third sweeps hit L2, so total cycles drop.
        assert with_l2.cycles < without.cycles

    def test_l2_useless_without_reuse(self):
        single = """
        global big[32768];
        fn main() {
            var i = 0; var sum = 0;
            while (i < 4096) { sum = sum + big[i * 4]; i = i + 1; }
            return sum;
        }
        """
        program = compile_source(single)
        without = Machine(
            program,
            MachineConfig(l2_enabled=False, dcache_read_miss_penalty=30),
        ).run()
        program2 = compile_source(single)
        with_l2 = Machine(
            program2,
            MachineConfig(
                l2_enabled=True,
                dcache_read_miss_penalty=6,
                l2_miss_penalty=30,
                # Same line size, so the L2 gives no spatial prefetch:
                # a single cold sweep gains nothing from it.
                l2_line=32,
            ),
        ).run()
        assert with_l2.cycles == without.cycles

    def test_bad_l2_geometry_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(l2_enabled=True, l2_size=1000).validate()

    def test_l2_statistics_exposed(self):
        program = compile_source(self.PROGRAM)
        machine = Machine(program, MachineConfig(l2_enabled=True))
        machine.run()
        assert machine.l2 is not None
        assert machine.l2.accesses > 0
        assert 0 < machine.l2.misses <= machine.l2.accesses
