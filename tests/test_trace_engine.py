"""Trace-tier unit tests: deoptimization, invalidation, and the code cache.

The suite-wide differential tests (``test_engine_differential``,
``test_fuzz_differential``) already require the trace tier to match the
reference interpreter bit for bit; this file tests the tier's
*machinery* on purpose-built programs: off-trace branches deoptimize
with exact state handoff, edit-generation bumps evict compiled traces
(never stale reuse), runs with observers that the tier cannot serve
(tracers, signal handlers) fall back wholesale, and the persistent
on-disk code cache round-trips compiled traces across machines, evicts
by LRU within its bounds, and degrades to a miss on corruption.
"""

import json

import pytest

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.instructions import Imm
from repro.machine.codecache import CodeCache, default_cache_dir
from repro.machine.config import MachineConfig
from repro.machine.counters import Event
from repro.machine.trace import MAX_TRACE_BLOCKS
from repro.machine.vm import Machine, MachineError
from repro.session import ProfileSpec, ProfileSpecError
from repro.tools.pp import PP


@pytest.fixture(autouse=True)
def _trace_env(monkeypatch):
    # Low heat threshold so small test loops trace quickly; disk cache
    # off by default so tests never touch the user's real cache
    # directory (cache tests point REPRO_CODE_CACHE at tmp_path).
    monkeypatch.setenv("REPRO_TRACE_THRESHOLD", "2")
    monkeypatch.setenv("REPRO_CODE_CACHE", "off")


def hot_loop(trips: int = 64, addend: int = 3) -> "Program":
    """A counted loop with a biased conditional: the canonical trace.

    ``head -> body -> cont -> head`` is the hot chain; ``body`` takes
    its rare arm (``rare``) whenever the accumulator hits a multiple of
    eight, forcing a mid-trace deoptimization.  ``body`` carries a
    ``const`` whose value tests mutate in place to exercise
    edit-generation eviction.
    """
    fb = FunctionBuilder("main", num_params=0, num_regs=32)
    fb.block("entry")
    acc = fb.const(0)
    counter = fb.const(trips)
    fb.br("head")
    fb.block("head")
    cond = fb.binop("gt", counter, Imm(0))
    fb.cbr(cond, "body", "exit")
    fb.block("body")
    step = fb.const(addend)
    fb.binop("add", acc, step, dst=acc)
    mix = fb.binop("and", acc, Imm(7))
    fb.cbr(mix, "cont", "rare")
    fb.block("rare")
    fb.binop("add", acc, Imm(11), dst=acc)
    fb.br("cont")
    fb.block("cont")
    fb.binop("sub", counter, Imm(1), dst=counter)
    fb.br("head")
    fb.block("exit")
    fb.ret(acc)
    builder = ProgramBuilder(entry="main")
    builder.add(fb)
    return builder.finish()


def _facts(result):
    return (dict(result.counters), result.return_value, dict(result.region_misses))


def _run_pair(program, **machine_kwargs):
    """One fresh simple run and one fresh trace run of ``program``."""
    simple = Machine(program, engine="simple", **machine_kwargs)
    trace = Machine(program, engine="trace", **machine_kwargs)
    return simple, simple.run(), trace, trace.run()


class TestDeoptimization:
    def test_off_trace_branch_deoptimizes_exactly(self):
        program = hot_loop()
        _, simple_result, trace_machine, trace_result = _run_pair(program)
        assert _facts(simple_result) == _facts(trace_result)
        stats = trace_machine.trace_stats
        assert stats["traces_compiled"] > 0
        assert stats["trace_entries"] > 0

    def test_trace_threshold_env_disables_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_THRESHOLD", str(10**9))
        program = hot_loop()
        _, simple_result, trace_machine, trace_result = _run_pair(program)
        assert _facts(simple_result) == _facts(trace_result)
        assert trace_machine.trace_stats["traces_compiled"] == 0

    def test_bad_threshold_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_THRESHOLD", "not-a-number")
        _, simple_result, _, trace_result = _run_pair(hot_loop())
        assert _facts(simple_result) == _facts(trace_result)

    def test_budget_overshoot_bounded_by_one_trace_iteration(self):
        from repro.machine.engine import SEGMENT_CAP

        program = hot_loop(trips=10_000)
        config = MachineConfig(max_instructions=200)
        machine = Machine(program, config, engine="trace")
        with pytest.raises(MachineError, match="budget"):
            machine.run()
        overshoot = machine.counters[Event.INSTRS] - config.max_instructions
        assert 0 <= overshoot <= MAX_TRACE_BLOCKS * SEGMENT_CAP

    def test_flow_probes_run_inside_traces(self):
        program = hot_loop()
        simple = PP(engine="simple").flow_hw(program)
        traced = PP(engine="trace").flow_hw(program)
        assert dict(simple.result.counters) == dict(traced.result.counters)
        assert {
            f: dict(p.counts) for f, p in simple.path_profile.functions.items()
        } == {f: dict(p.counts) for f, p in traced.path_profile.functions.items()}
        assert traced.machine.trace_stats["traces_compiled"] > 0


class TestInvalidation:
    def test_edit_gen_bump_evicts_traces_between_runs(self):
        program = hot_loop()
        simple = Machine(program, engine="simple")
        trace = Machine(program, engine="trace")
        first = trace.run()
        assert _facts(simple.run()) == _facts(first)
        generated = trace.trace_stats["traces_generated"]
        assert generated > 0

        # Mutate the const inside the traced ``body`` block in place —
        # the exact shape the edit-generation protocol exists for.
        body = program.functions["main"].block("body")
        const = body.instrs[0]
        assert const.kind.name == "CONST"
        const.value = 5
        body.note_edit()

        second = trace.run()
        assert _facts(simple.run()) == _facts(second)
        assert second.return_value != first.return_value
        # The stale trace was evicted and the chain recompiled.
        assert trace.trace_stats["traces_generated"] > generated

    def test_invalidate_decoded_drops_trace_state(self):
        import copy

        program = hot_loop()
        simple = Machine(program, engine="simple")
        trace = Machine(program, engine="trace")
        first = trace.run()
        assert _facts(simple.run()) == _facts(first)

        body = program.functions["main"].block("body")
        body.instrs.insert(1, copy.deepcopy(body.instrs[1]))
        body.note_edit()
        simple.invalidate_decoded()
        trace.invalidate_decoded()
        assert trace._trace_state.dispatch == {}

        second = trace.run()
        assert _facts(simple.run()) == _facts(second)
        assert second.return_value != first.return_value


class TestWholesaleFallback:
    def test_signal_handler_runs_delegate_to_block_engine(self):
        def with_handler():
            program = hot_loop()
            fb = FunctionBuilder("h", num_params=1, num_regs=4)
            fb.block("entry")
            fb.ret(0)
            program.add_function(fb.function)
            return program

        results = {}
        for engine in ("simple", "trace"):
            machine = Machine(with_handler(), engine=engine)
            machine.install_signal("h", 50)
            results[engine] = machine.run()
            if engine == "trace":
                assert machine.trace_stats["traces_compiled"] == 0
        assert _facts(results["simple"]) == _facts(results["trace"])

    def test_tracer_runs_delegate_to_block_engine(self):
        class Recorder:
            def __init__(self):
                self.blocks = []

            def on_enter(self, fname, site):
                pass

            def on_exit(self, fname, value):
                pass

            def on_block(self, fname, bname):
                self.blocks.append((fname, bname))

        program = hot_loop()
        machine = Machine(program, engine="trace")
        machine.tracer = Recorder()
        result = machine.run()
        assert machine.trace_stats["traces_compiled"] == 0
        assert machine.tracer.blocks
        plain = Machine(hot_loop(), engine="simple").run()
        assert _facts(plain) == _facts(result)


class TestDiskCache:
    def test_cold_start_hits_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_CACHE", str(tmp_path))
        # Two independent program instances: the second machine's block
        # caches are cold, so every compile must come from disk.
        first = Machine(hot_loop(), engine="trace")
        first_result = first.run()
        assert first.trace_stats["traces_generated"] > 0
        assert first.trace_stats["disk_cache_misses"] > 0

        second = Machine(hot_loop(), engine="trace")
        second_result = second.run()
        assert _facts(first_result) == _facts(second_result)
        assert second.trace_stats["disk_cache_hits"] > 0
        assert second.trace_stats["traces_generated"] == 0

    def test_disabled_cache_still_traces(self):
        machine = Machine(hot_loop(), engine="trace")
        machine.run()
        assert machine.trace_stats["traces_compiled"] > 0
        assert machine.trace_stats["disk_cache_hits"] == 0
        assert machine.trace_stats["disk_cache_misses"] == 0

    def test_default_dir_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_CACHE", "off")
        assert default_cache_dir() is None
        monkeypatch.setenv("REPRO_CODE_CACHE", "/some/where")
        assert default_cache_dir() == "/some/where"
        monkeypatch.delenv("REPRO_CODE_CACHE")
        monkeypatch.setenv("XDG_CACHE_HOME", "/xdg")
        assert default_cache_dir() == "/xdg/repro/codecache"


class TestCodeCacheBounds:
    def _code(self, i):
        return compile(f"x = {i}", "<cache-test>", "exec")

    def test_lru_eviction_by_entry_cap(self, tmp_path):
        cache = CodeCache(str(tmp_path), max_entries=2, max_bytes=10**9)
        for i in range(3):
            cache.put(f"k{i}", f"# source {i}", self._code(i))
        assert cache.get("k0") is None  # least recently used: evicted
        assert cache.get("k1") is not None
        assert cache.get("k2") is not None
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["max_entries"] == 2

    def test_get_refreshes_lru_order(self, tmp_path):
        cache = CodeCache(str(tmp_path), max_entries=2, max_bytes=10**9)
        cache.put("k0", "# 0", self._code(0))
        cache.put("k1", "# 1", self._code(1))
        assert cache.get("k0") is not None  # touch k0: k1 becomes LRU
        cache.put("k2", "# 2", self._code(2))
        assert cache.get("k0") is not None
        assert cache.get("k1") is None

    def test_byte_cap_evicts(self, tmp_path):
        cache = CodeCache(str(tmp_path), max_entries=100, max_bytes=1)
        cache.put("k0", "# source", self._code(0))
        assert cache.stats()["entries"] == 0

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = CodeCache(str(tmp_path))
        cache.put("k0", "# source", self._code(0))
        (tmp_path / "k0.bin").write_bytes(b"garbage")
        assert cache.get("k0") is None

    def test_corrupt_index_degrades_to_empty(self, tmp_path):
        cache = CodeCache(str(tmp_path))
        cache.put("k0", "# source", self._code(0))
        (tmp_path / "index.json").write_text("{not json")
        assert cache.stats()["entries"] == 0
        assert cache.get("k0") is not None  # the entry itself survives

    def test_clear_removes_everything(self, tmp_path):
        cache = CodeCache(str(tmp_path))
        for i in range(3):
            cache.put(f"k{i}", f"# {i}", self._code(i))
        assert cache.clear() == 3
        assert cache.stats()["entries"] == 0
        assert cache.get("k0") is None


class TestCliCacheVerb:
    def test_stats_and_clear(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CODE_CACHE", str(tmp_path))
        machine = Machine(hot_loop(), engine="trace")
        machine.run()
        assert machine.trace_stats["traces_generated"] > 0

        assert main(["cache", "--stats"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out

        assert main(["cache", "--clear"]) == 0
        out = capsys.readouterr().out
        assert "cleared" in out
        assert CodeCache(str(tmp_path)).stats()["entries"] == 0

    def test_disabled_cache_reports(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CODE_CACHE", "off")
        assert main(["cache"]) == 0
        assert "disabled" in capsys.readouterr().out

    def test_explicit_dir_flag(self, tmp_path, capsys):
        from repro.cli import main

        CodeCache(str(tmp_path)).put("k0", "# s", compile("1", "<t>", "eval"))
        assert main(["cache", "--dir", str(tmp_path)]) == 0
        assert "1/" in capsys.readouterr().out


class TestSpecAndSession:
    def test_spec_accepts_trace_engine(self):
        spec = ProfileSpec(engine="trace")
        assert ProfileSpec.from_json(spec.to_json()).engine == "trace"

    def test_spec_rejects_unknown_engine(self):
        with pytest.raises(ProfileSpecError, match="unknown engine"):
            ProfileSpec(engine="warp")

    def test_session_emits_trace_phase_events(self, tmp_path, monkeypatch):
        from repro.session import ProfileSession
        from repro.tools.runlog import RunLog

        monkeypatch.setenv("REPRO_CODE_CACHE", str(tmp_path / "cache"))
        log_path = tmp_path / "run.log.jsonl"
        session = ProfileSession(log=RunLog(str(log_path)))
        session.run(ProfileSpec(mode="baseline", engine="trace"), hot_loop())
        events = [json.loads(line) for line in log_path.read_text().splitlines()]
        compiles = [e for e in events if e.get("phase") == "trace_compile"]
        assert compiles and compiles[0]["traces_compiled"] > 0
        # First run generates: no cache_hit event yet.
        assert not any(e.get("phase") == "cache_hit" for e in events)

        # A second session over a fresh program instance compiles from
        # the now-populated disk cache and says so in the log.
        log2 = tmp_path / "run2.log.jsonl"
        session2 = ProfileSession(log=RunLog(str(log2)))
        session2.run(ProfileSpec(mode="baseline", engine="trace"), hot_loop())
        events2 = [json.loads(line) for line in log2.read_text().splitlines()]
        hits = [e for e in events2 if e.get("phase") == "cache_hit"]
        assert hits and hits[0]["disk_cache_hits"] > 0
