"""Path coverage and spectrum diffs ([WHH80], [RBDL97])."""

import pytest

from repro.lang import compile_source
from repro.profiles.spectra import path_coverage, spectrum_diff, untested_paths
from repro.tools.pp import PP

from tests.conftest import compile_corpus

#: main(mode): mode flips which branch of handle() executes — the
#: classic input-dependent behaviour a spectrum diff localizes.
MODED = """
fn handle(v, mode) {
    if (mode == 99) {
        return v * 2;     // the "special date" path
    }
    return v + 1;
}
fn main(mode) {
    var i = 0; var out = 0;
    while (i < 20) { out = out + handle(i, mode); i = i + 1; }
    return out;
}
"""


class TestCoverage:
    def test_counts(self):
        program = compile_corpus("diamond")
        run = PP().flow_freq(program)
        report = path_coverage(run.path_profile)
        main = report.functions["main"]
        assert main.executed == 1  # one input drives one path
        assert main.potential == 2
        assert main.fraction == pytest.approx(0.5)

    def test_full_coverage_possible(self):
        program = compile_corpus("many_paths")
        run = PP().flow_freq(program)
        report = path_coverage(run.path_profile)
        classify = report.functions["classify"]
        assert classify.executed == classify.potential == 16

    def test_untested_paths_are_concrete(self):
        program = compile_corpus("diamond")
        run = PP().flow_freq(program)
        missing = untested_paths(run.path_profile, "main")
        assert len(missing) == 1
        assert missing[0].blocks  # a decodable block sequence

    def test_untested_respects_limit(self):
        program = compile_corpus("many_paths")
        run = PP().flow_freq(program)
        # classify is fully covered; main's loop paths partially.
        missing = untested_paths(run.path_profile, "classify", limit=5)
        assert missing == []

    def test_rows_render(self):
        from repro.reporting import format_table

        program = compile_corpus("calls")
        run = PP().flow_freq(program)
        report = path_coverage(run.path_profile)
        text = format_table(report.rows())
        assert "Coverage %" in text


class TestSpectrumDiff:
    def _profiles(self, first_mode, second_mode):
        program = compile_source(MODED)
        pp = PP()
        return (
            pp.flow_freq(program, args=(first_mode,)).path_profile,
            pp.flow_freq(program, args=(second_mode,)).path_profile,
        )

    def test_same_input_empty_diff(self):
        first, second = self._profiles(1, 1)
        assert spectrum_diff(first, second).is_empty()

    def test_different_behaviour_localized(self):
        normal, special = self._profiles(1, 99)
        diff = spectrum_diff(normal, special)
        assert not diff.is_empty()
        assert "handle" in diff.distinguishing_functions()
        # The special path appears only in the second run.
        assert diff.only_second["handle"]
        assert diff.only_first["handle"]

    def test_equivalent_inputs_same_spectrum(self):
        # Modes 1 and 2 drive the same paths (both != 99).
        first, second = self._profiles(1, 2)
        assert spectrum_diff(first, second).is_empty()


class TestBySiteAblation:
    """§4.1's trade-off: call-site discrimination costs space."""

    SOURCE = """
    fn leaf(x) { return x + 1; }
    fn mid(x) {
        // two sites calling the same procedure
        return leaf(x) + leaf(x * 2);
    }
    fn main() {
        var i = 0; var out = 0;
        while (i < 10) { out = out + mid(i); i = i + 1; }
        return out;
    }
    """

    def test_insensitive_merges_sites(self):
        pp = PP()
        program = compile_source(self.SOURCE)
        sensitive = pp.context_hw(program, by_site=True)
        insensitive = pp.context_hw(program, by_site=False)
        assert sensitive.return_value == insensitive.return_value
        leaf_sensitive = [r for r in sensitive.cct.records if r.id == "leaf"]
        leaf_insensitive = [r for r in insensitive.cct.records if r.id == "leaf"]
        assert len(leaf_sensitive) == 2    # one per call site
        assert len(leaf_insensitive) == 1  # merged
        # Frequencies are conserved either way.
        assert sum(r.metrics[0] for r in leaf_sensitive) == sum(
            r.metrics[0] for r in leaf_insensitive
        )

    def test_insensitive_is_smaller(self):
        from repro.workloads import build_workload

        pp = PP()
        program = build_workload("147.vortex", 0.25)
        sensitive = pp.context_hw(program, by_site=True)
        insensitive = pp.context_hw(program, by_site=False)
        assert insensitive.cct.heap_bytes() < sensitive.cct.heap_bytes()

    def test_insensitive_matches_projection(self):
        from repro.cct.dct import (
            DynamicCallRecorder,
            canonical_projected,
            canonical_record,
            project_cct,
        )
        from repro.machine.vm import Machine

        program = compile_source(self.SOURCE)
        machine = Machine(program)
        recorder = DynamicCallRecorder()
        machine.tracer = recorder
        machine.run()
        run = PP().context_hw(program, by_site=False)
        assert canonical_record(run.cct.root) == canonical_projected(
            project_cct(recorder.tree, by_site=False)
        )
