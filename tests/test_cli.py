"""The command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
global data[256];
fn work(n) {
    var i = 0; var sum = 0;
    while (i < n) { sum = sum + data[i & 255]; i = i + 1; }
    return sum;
}
fn main(mode) {
    var i = 0; var out = 0;
    while (i < 15) {
        if (mode == 1) { out = out + work(i); } else { out = out + 1; }
        i = i + 1;
    }
    return out;
}
"""

ASM = """
program entry=main
func main(0) regs=8 {
entry:
    const r0, 0
    const r1, 7
    br head
head:
    lt r2, r0, r1
    cbr r2, body, done
body:
    add r0, r0, 1
    br head
done:
    ret r0
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "program.pl"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "program.asm"
    path.write_text(ASM)
    return str(path)


class TestRun:
    def test_mini_language(self, source_file, capsys):
        assert main(["run", source_file, "1"]) == 0
        out = capsys.readouterr().out
        assert "result:" in out
        assert "INSTRS" in out

    def test_assembly(self, asm_file, capsys):
        assert main(["run", asm_file]) == 0
        out = capsys.readouterr().out
        assert "result: 7" in out


class TestFlow:
    def test_hot_paths_printed(self, source_file, capsys):
        assert main(["flow", source_file, "1"]) == 0
        out = capsys.readouterr().out
        assert "paths by L1D misses" in out
        assert "hot paths carry" in out
        assert "overhead:" in out

    def test_threshold_flag(self, source_file, capsys):
        assert main(["flow", source_file, "1", "--threshold", "0.5"]) == 0
        assert "hot paths" in capsys.readouterr().out


class TestContext:
    def test_cct_printed(self, source_file, capsys):
        assert main(["context", source_file, "1"]) == 0
        out = capsys.readouterr().out
        assert "calling context tree" in out
        assert "main -> work" in out
        assert "records" in out

    def test_merge_sites_flag(self, source_file, capsys):
        assert main(["context", source_file, "1", "--merge-sites"]) == 0
        assert "calling context tree" in capsys.readouterr().out


class TestCombined:
    def test_per_context_paths(self, source_file, capsys):
        assert main(["combined", source_file, "1"]) == 0
        out = capsys.readouterr().out
        assert "per-context path profile" in out
        assert "one-path call sites" in out

    def test_save_cct(self, source_file, tmp_path, capsys):
        target = str(tmp_path / "out.cct")
        assert main(["combined", source_file, "1", "--save", target]) == 0
        from repro.cct.serialize import load_cct

        loaded = load_cct(target)
        assert any(r.id == "work" for r in loaded.records)


class TestCoverage:
    def test_report_and_untested(self, source_file, capsys):
        assert main(["coverage", source_file, "2"]) == 0
        out = capsys.readouterr().out
        assert "path coverage" in out
        assert "untested:" in out  # mode==1 branch was never driven


class TestTable:
    def test_table_subset(self, capsys):
        assert main(
            ["table", "4", "--scale", "0.25", "--workloads", "130.li"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "130.li" in out


class TestBench:
    def test_instrumented_bench_writes_gate_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_instrumented_speed.json"
        assert (
            main(
                [
                    "bench",
                    "--instrumented",
                    "--scale",
                    "0.1",
                    "--workloads",
                    "129.compress",
                    "--check-only",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "instrumented suite throughput" in printed
        payload = json.loads(out.read_text())
        assert set(payload["modes"]) == {"flow_hw", "context_hw", "context_flow"}
        assert payload["check_only"] is True
        for data in payload["modes"].values():
            assert data["simple"]["seconds"] > 0
            assert data["fast_warm"]["seconds"] > 0

    def test_uninstrumented_bench_writes_gate_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_vm_speed.json"
        assert (
            main(
                [
                    "bench",
                    "--scale",
                    "0.1",
                    "--workloads",
                    "129.compress",
                    "--check-only",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert payload["workloads"] == 1
        assert payload["simulated_instructions"] > 0

    def test_unreachable_minimum_fails(self, tmp_path, capsys):
        assert (
            main(
                [
                    "bench",
                    "--scale",
                    "0.1",
                    "--workloads",
                    "129.compress",
                    "--min",
                    "1000",
                    "--out",
                    str(tmp_path / "out.json"),
                ]
            )
            == 1
        )
        assert "FAIL" in capsys.readouterr().out


class TestContextRenderFlags:
    def test_tree_output(self, source_file, capsys):
        assert main(["context", source_file, "1", "--tree"]) == 0
        out = capsys.readouterr().out
        assert "<root>" in out
        assert "|-" in out or "`-" in out

    def test_dot_output(self, source_file, capsys):
        assert main(["context", source_file, "1", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph CCT")


class TestDiff:
    def test_identical_inputs(self, source_file, capsys):
        assert main(["diff", source_file, "--first", "1", "--second", "1"]) == 0
        assert "identical" in capsys.readouterr().out

    def test_differing_inputs(self, source_file, capsys):
        assert main(["diff", source_file, "--first", "1", "--second", "2"]) == 0
        out = capsys.readouterr().out
        assert "differing path spectra" in out
        assert "only run" in out


class TestOptimize:
    LOOPY = """
    global data[64];
    fn main() {
        var i = 0; var sum = 0;
        while (i < 300) {
            if (i % 4 == 0) { sum = sum + data[i & 63]; }
            else { sum = sum + 1; }
            if (sum > 5000) { sum = sum - 5000; }
            i = i + 1;
        }
        return sum;
    }
    """

    def test_optimize_reports_speedup(self, tmp_path, capsys):
        path = tmp_path / "loopy.pl"
        path.write_text(self.LOOPY)
        assert main(["optimize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "superblock in main" in out
        assert "cycles:" in out
        assert "verdict:" in out

    def test_optimize_run_ref_requires_store(self, tmp_path):
        path = tmp_path / "loopy.pl"
        path.write_text(self.LOOPY)
        assert main(["optimize", str(path), "--run", "latest"]) == 2

    def test_optimize_unknown_pass_is_usage_error(self, tmp_path):
        path = tmp_path / "loopy.pl"
        path.write_text(self.LOOPY)
        assert main(["optimize", str(path), "--passes", "zorp"]) == 2

    def test_optimize_json_and_report_file_agree(self, tmp_path, capsys):
        import json

        path = tmp_path / "loopy.pl"
        path.write_text(self.LOOPY)
        report = tmp_path / "report.json"
        assert (
            main(["optimize", str(path), "--json", "--report", str(report)])
            == 0
        )
        blob = json.loads(capsys.readouterr().out)
        assert blob["format"] == "repro-pgo-report-v1"
        assert blob["architectural_match"] is True
        assert blob["profile_source"] == "live"
        assert json.loads(report.read_text()) == blob

    def test_optimize_from_stored_run(self, tmp_path, capsys):
        import json

        path = tmp_path / "loopy.pl"
        path.write_text(self.LOOPY)
        store = str(tmp_path / "store")
        assert (
            main(
                [
                    "profile", str(path),
                    "--mode", "combined",
                    "--store", store,
                    "--workload", "w",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "optimize", str(path),
                    "--store", store,
                    "--run", "latest",
                    "--json",
                ]
            )
            == 0
        )
        blob = json.loads(capsys.readouterr().out)
        assert blob["profile_source"] != "live"
        assert blob["workload"] == "w"
        # save-on-store: both verification runs were persisted
        assert blob["stored"]["baseline"] and blob["stored"]["optimized"]

    def test_optimize_rejects_foreign_stored_profile(self, tmp_path, capsys):
        path = tmp_path / "loopy.pl"
        path.write_text(self.LOOPY)
        store = str(tmp_path / "store")
        assert main(["profile", str(path), "--store", store]) == 0
        other = tmp_path / "other.pl"
        other.write_text("fn main() { return 4; }")
        assert (
            main(["optimize", str(other), "--store", store, "--run", "latest"])
            == 2
        )


class TestShardRun:
    def test_keep_then_resume(self, source_file, tmp_path, capsys):
        keep = str(tmp_path / "shards")
        import os

        os.mkdir(keep)
        assert (
            main(
                [
                    "shard-run",
                    source_file,
                    "--inputs",
                    "1;2;1;2",
                    "--shards",
                    "2",
                    "--keep",
                    keep,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4 inputs over 2 shards" in out
        assert "merged hardware events" in out
        assert f"manifest kept at {keep}" in out.replace("\n", " ") or keep in out
        manifest = os.path.join(keep, "manifest.json")
        assert os.path.exists(manifest)
        assert os.path.exists(os.path.join(keep, "run.log.jsonl"))

        # A completed run resumes as a pure re-merge of the checkpoints.
        assert main(["shard-run", "--resume", manifest]) == 0
        out = capsys.readouterr().out
        assert "resumed 4 inputs over 2 shards" in out

    def test_resume_reexecutes_missing_shard(self, source_file, tmp_path, capsys):
        import os

        keep = str(tmp_path / "shards")
        os.mkdir(keep)
        assert (
            main(
                [
                    "shard-run",
                    source_file,
                    "--inputs",
                    "1;2",
                    "--shards",
                    "2",
                    "--keep",
                    keep,
                ]
            )
            == 0
        )
        capsys.readouterr()
        os.unlink(os.path.join(keep, "shard1.result.json"))
        assert main(["shard-run", "--resume", os.path.join(keep, "manifest.json")]) == 0
        assert "resumed 2 inputs over 2 shards" in capsys.readouterr().out

    def test_resume_missing_manifest_is_one_line_error(self, tmp_path, capsys):
        assert main(["shard-run", "--resume", str(tmp_path / "manifest.json")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "missing run manifest" in err
        assert len(err.strip().splitlines()) == 1

    def test_resume_corrupt_manifest_is_one_line_error(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        manifest.write_text("{definitely not json")
        assert main(["shard-run", "--resume", str(manifest)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert str(manifest) in err

    def test_file_required_without_resume(self):
        with pytest.raises(SystemExit, match="FILE required"):
            main(["shard-run", "--shards", "2"])


class TestErrors:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            main(["run", "/nonexistent/program.pl"])


class TestProfile:
    """The unified ``profile`` verb and its per-mode delegates."""

    MODE_TITLES = {
        "baseline": "hardware events",
        "flow": "paths by L1D misses",
        "flow-freq": "path frequencies",
        "context": "calling context tree",
        "combined": "per-context path profile",
        "edge": "edge counters",
    }

    @pytest.mark.parametrize("mode", sorted(MODE_TITLES))
    def test_every_mode_reports(self, mode, source_file, capsys):
        assert main(["profile", source_file, "1", "--mode", mode]) == 0
        assert self.MODE_TITLES[mode] in capsys.readouterr().out

    def test_per_mode_verbs_delegate(self, source_file, capsys):
        """``flow``/``context``/``combined`` are spelled-out profile modes."""
        for verb, mode in (
            ("flow", "flow"),
            ("context", "context"),
            ("combined", "combined"),
        ):
            assert main([verb, source_file, "1"]) == 0
            legacy_out = capsys.readouterr().out
            assert main(["profile", source_file, "1", "--mode", mode]) == 0
            assert capsys.readouterr().out == legacy_out

    def test_log_records_every_phase(self, source_file, tmp_path, capsys):
        import json

        log = str(tmp_path / "run.log.jsonl")
        assert main(
            ["profile", source_file, "1", "--mode", "combined", "--log", log]
        ) == 0
        capsys.readouterr()
        events = [json.loads(line) for line in open(log)]
        assert [e["event"] for e in events] == ["phase"] * 5
        assert [e["phase"] for e in events] == [
            "clone", "instrument", "decode", "run", "collect",
        ]
        assert all(e["seconds"] >= 0 and e["command"] == "profile" for e in events)

    def test_custom_pic_events(self, source_file, capsys):
        assert main(
            ["profile", source_file, "1", "--pic0", "cycles", "--pic1", "branches"]
        ) == 0
        assert "paths by L1D misses" in capsys.readouterr().out

    def test_unknown_event_is_one_line_error(self, source_file, capsys):
        assert main(["profile", source_file, "1", "--pic1", "BOGUS"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: unknown pic1_event 'BOGUS'")
        assert len(err.strip().splitlines()) == 1

    def test_shard_run_logs_phases(self, source_file, tmp_path, capsys):
        import json
        import os

        keep = str(tmp_path)
        assert main(
            ["shard-run", source_file, "--inputs", "1;2", "--shards", "2",
             "--keep", keep]
        ) == 0
        capsys.readouterr()
        events = [
            json.loads(line)
            for line in open(os.path.join(keep, "run.log.jsonl"))
        ]
        phases = [e for e in events if e["event"] == "phase"]
        assert phases and all(e["seconds"] >= 0 for e in phases)
        assert {e["phase"] for e in phases} == {
            "clone", "instrument", "decode", "run", "collect",
        }
        assert all("shard" in e for e in phases)
