"""The mini-language front end: lexer, parser, sema, codegen."""

import pytest

from repro.lang import LangError, compile_source, parse_source, tokenize
from repro.lang import ast
from repro.machine.vm import Machine


def run_main(source: str):
    return Machine(compile_source(source)).run().return_value


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("fn main() { return 1 + 2.5; } // comment")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "fn"
        assert "float" in kinds and "int" in kinds
        assert kinds[-1] == "eof"

    def test_two_char_operators(self):
        tokens = tokenize("a <= b == c && d || e >> 2")
        texts = [t.text for t in tokens if t.kind == "op"]
        assert texts == ["<=", "==", "&&", "||", ">>"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_bad_character(self):
        with pytest.raises(LangError, match="unexpected"):
            tokenize("fn main() { $ }")

    def test_hash_comments(self):
        tokens = tokenize("# leading comment\nfn")
        assert tokens[0].kind == "fn"


class TestParser:
    def test_precedence(self):
        module = parse_source("fn main() { return 1 + 2 * 3; }")
        ret = module.functions[0].body[0]
        assert isinstance(ret.value, ast.BinOp)
        assert ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_comparison_binds_looser_than_arith(self):
        module = parse_source("fn main() { return 1 + 2 < 4; }")
        expr = module.functions[0].body[0].value
        assert expr.op == "<"

    def test_logical_binds_loosest(self):
        module = parse_source("fn main() { return 1 < 2 && 3 < 4; }")
        expr = module.functions[0].body[0].value
        assert isinstance(expr, ast.Logical)
        assert expr.op == "&&"

    def test_or_binds_looser_than_and(self):
        module = parse_source("fn main() { return 1 && 0 || 1; }")
        expr = module.functions[0].body[0].value
        assert expr.op == "||"

    def test_else_if_chain(self):
        module = parse_source(
            "fn main() { if (1) { return 1; } else if (2) { return 2; } else { return 3; } }"
        )
        outer = module.functions[0].body[0]
        assert isinstance(outer.else_body[0], ast.If)

    def test_parse_errors_report_lines(self):
        with pytest.raises(LangError, match="line 2"):
            parse_source("fn main() {\n return ; ; }")

    def test_assignment_target_checked(self):
        with pytest.raises(LangError, match="assignment"):
            parse_source("fn main() { 1 + 2 = 3; }")


class TestSema:
    def test_undefined_variable(self):
        with pytest.raises(LangError, match="undefined variable"):
            compile_source("fn main() { return ghost; }")

    def test_undefined_function(self):
        with pytest.raises(LangError, match="undefined function"):
            compile_source("fn main() { return ghost(); }")

    def test_arity_mismatch(self):
        with pytest.raises(LangError, match="takes"):
            compile_source("fn f(a, b) { return a; } fn main() { return f(1); }")

    def test_undefined_array(self):
        with pytest.raises(LangError, match="array"):
            compile_source("fn main() { return nope[0]; }")

    def test_break_outside_loop(self):
        with pytest.raises(LangError, match="break"):
            compile_source("fn main() { break; return 0; }")

    def test_main_required(self):
        with pytest.raises(LangError, match="main"):
            compile_source("fn helper() { return 0; }")

    def test_duplicate_function(self):
        with pytest.raises(LangError, match="duplicate function"):
            compile_source("fn main() { return 0; } fn main() { return 1; }")

    def test_duplicate_global(self):
        with pytest.raises(LangError, match="duplicate global"):
            compile_source("global a[4]; global a[4]; fn main() { return 0; }")

    def test_assignment_to_undeclared(self):
        with pytest.raises(LangError, match="undeclared"):
            compile_source("fn main() { x = 3; return x; }")

    def test_intrinsic_arity(self):
        with pytest.raises(LangError, match="intrinsic"):
            compile_source("fn main() { return fadd(1.0); }")


class TestCodegenSemantics:
    """Compiled programs must agree with a Python reference."""

    def test_gcd(self):
        source = """
        fn gcd(a, b) {
            while (b != 0) { var t = b; b = a % b; a = t; }
            return a;
        }
        fn main() { return gcd(1071, 462); }
        """
        assert run_main(source) == 21

    def test_sieve(self):
        source = """
        global flags[100];
        fn main() {
            var i = 2; var count = 0;
            while (i < 100) {
                if (flags[i] == 0) {
                    count = count + 1;
                    var j = i * i;
                    while (j < 100) { flags[j] = 1; j = j + i; }
                }
                i = i + 1;
            }
            return count;
        }
        """
        assert run_main(source) == 25  # primes below 100

    def test_short_circuit_and_skips_rhs(self):
        source = """
        global hits[1];
        fn touch() { hits[0] = hits[0] + 1; return 1; }
        fn main() {
            var a = 0;
            if (a != 0 && touch()) { return 99; }
            return hits[0];
        }
        """
        assert run_main(source) == 0  # touch() never ran

    def test_short_circuit_or_skips_rhs(self):
        source = """
        global hits[1];
        fn touch() { hits[0] = hits[0] + 1; return 1; }
        fn main() {
            var a = 1;
            if (a == 1 || touch()) { return hits[0]; }
            return 99;
        }
        """
        assert run_main(source) == 0

    def test_unary_ops(self):
        assert run_main("fn main() { return -5 + 8; }") == 3
        assert run_main("fn main() { return !0 + !7; }") == 1

    def test_nested_calls_and_expressions(self):
        source = """
        fn f(x) { return x * 2; }
        fn main() { return f(f(f(1))) + f(3); }
        """
        assert run_main(source) == 14

    def test_while_with_complex_condition(self):
        source = """
        fn main() {
            var i = 0; var j = 10;
            while (i < 5 && j > 0) { i = i + 1; j = j - 2; }
            return i * 100 + j;
        }
        """
        assert run_main(source) == 500

    def test_early_return_in_loop(self):
        source = """
        fn find(target) {
            var i = 0;
            while (i < 100) {
                if (i * i >= target) { return i; }
                i = i + 1;
            }
            return -1;
        }
        fn main() { return find(50); }
        """
        assert run_main(source) == 8

    def test_dead_code_after_return_dropped(self):
        source = """
        fn main() {
            return 1;
            return 2;
        }
        """
        assert run_main(source) == 1

    def test_implicit_return_zero(self):
        assert run_main("fn main() { var x = 5; x = x + 1; }") == 0

    def test_array_aliasing_through_calls(self):
        source = """
        global buf[8];
        fn set(i, v) { buf[i] = v; return 0; }
        fn get(i) { return buf[i]; }
        fn main() {
            set(3, 42);
            set(4, get(3) + 1);
            return buf[4];
        }
        """
        assert run_main(source) == 43

    def test_corpus_checksums_stable(self, corpus_name):
        """Golden values: corpus programs are deterministic."""
        from tests.conftest import compile_corpus

        first = Machine(compile_corpus(corpus_name)).run().return_value
        second = Machine(compile_corpus(corpus_name)).run().return_value
        assert first == second


class TestCodegenRegisterDiscipline:
    def test_register_exhaustion_reported(self):
        declarations = "\n".join(f"var v{i} = {i};" for i in range(40))
        source = f"fn main() {{ {declarations} return v0; }}"
        with pytest.raises(LangError, match="registers"):
            compile_source(source, num_regs=32)

    def test_temps_are_recycled(self):
        # A long expression chain would exhaust a non-recycling pool.
        expr = " + ".join(str(i) for i in range(60))
        assert run_main(f"fn main() {{ return {expr}; }}") == sum(range(60))

    def test_deep_nesting(self):
        expr = "1"
        for _ in range(30):
            expr = f"({expr} + 1)"
        assert run_main(f"fn main() {{ return {expr}; }}") == 31
