"""The PP driver: cloning, configuration plumbing, run integrity."""

import pytest

from repro.ir.disasm import format_program
from repro.machine.config import MachineConfig
from repro.machine.counters import Event
from repro.tools.pp import PP, clone_program

from tests.conftest import compile_corpus


class TestCloning:
    def test_original_program_is_never_mutated(self):
        program = compile_corpus("calls")
        before = format_program(program)
        pp = PP()
        pp.flow_hw(program)
        pp.context_hw(program)
        pp.context_flow(program)
        pp.edge_profile(program)
        assert format_program(program) == before

    def test_clone_is_deep(self):
        program = compile_corpus("loop")
        clone = clone_program(program)
        clone.functions["main"].entry.instrs.pop(0)
        assert len(list(program.functions["main"].instructions())) != len(
            list(clone.functions["main"].instructions())
        )


class TestRuns:
    def test_all_configs_agree_on_result(self, corpus_name):
        program = compile_corpus(corpus_name)
        pp = PP()
        base = pp.baseline(program)
        runs = [
            pp.flow_hw(program),
            pp.flow_freq(program),
            pp.context_hw(program),
            pp.context_flow(program),
            pp.edge_profile(program),
        ]
        for run in runs:
            assert run.return_value == base.return_value, run.label

    def test_labels(self):
        program = compile_corpus("loop")
        pp = PP()
        assert pp.baseline(program).label == "base"
        assert pp.flow_hw(program).label == "flow+hw"
        assert pp.context_hw(program).label == "context+hw"
        assert pp.context_flow(program).label == "context+flow"

    def test_overhead_vs(self):
        program = compile_corpus("nested_loops")
        pp = PP()
        base = pp.baseline(program)
        flow = pp.flow_hw(program)
        assert flow.overhead_vs(base) > 1.0
        assert base.overhead_vs(base) == pytest.approx(1.0)

    def test_instrumented_runs_cost_more(self, corpus_name):
        program = compile_corpus(corpus_name)
        pp = PP()
        base = pp.baseline(program)
        for run in (pp.flow_hw(program), pp.context_flow(program)):
            assert run.cycles >= base.cycles
            assert run.result[Event.INSTRS] >= base.result[Event.INSTRS]


class TestConfiguration:
    def test_pic_events_plumbed(self):
        program = compile_corpus("loop")
        pp = PP(pic0_event=Event.CYCLES, pic1_event=Event.BRANCHES)
        run = pp.flow_hw(program)
        for values in run.flow.path_metrics("main").values():
            # pic0 now carries cycles: at least one per instruction.
            assert values[0] >= 1

    def test_machine_config_plumbed(self):
        # hash_table re-reads a 2KB table: it fits the default 16KB
        # cache but thrashes a 1KB one.
        program = compile_corpus("hash_table")
        small_cache = MachineConfig(dcache_size=1024)
        pp_small = PP(config=small_cache)
        pp_big = PP()
        misses_small = pp_small.baseline(program).result[Event.DC_MISS]
        misses_big = pp_big.baseline(program).result[Event.DC_MISS]
        assert misses_small > misses_big

    def test_placement_plumbed(self):
        program = compile_corpus("nested_loops")
        simple = PP(placement="simple").flow_freq(program)
        optimized = PP(placement="spanning_tree").flow_freq(program)
        assert optimized.cycles <= simple.cycles

    def test_config_not_shared_between_runs(self):
        program = compile_corpus("loop")
        pp = PP()
        first = pp.baseline(program)
        second = pp.baseline(program)
        # Fresh machines: cold caches each time, identical counters.
        assert first.result.counters == second.result.counters
