"""The closed PGO loop: profile -> optimize -> re-measure -> verify.

What is pinned down here:

* the report schema (``repro-pgo-report-v1``), its verdict algebra
  (architectural mismatch always wins), and the cycle's guard rails
  (no baseline specs, no store-less run refs, no foreign profiles);
* stored-run-driven cycles decode the persisted profile and record
  its run id as the profile source;
* ``save=True`` persists both verification runs, and
  ``baseline_for(..., same_code=True)`` walks exactly the
  same-fingerprint lineage across repeated cycles;
* the acceptance claim: on an I-cache-pressured machine, a loop-heavy
  suite workload comes back ``optimization`` — fewer I-cache misses,
  bit-identical architectural results.
"""

from __future__ import annotations

import pytest

from repro.lang import compile_source
from repro.machine.config import MachineConfig
from repro.machine.counters import Event
from repro.opt import OptPlan
from repro.session import (
    PGOError,
    ProfileSession,
    ProfileSpec,
    pgo_cycle,
)
from repro.store import ProfileStore, Verdict
from repro.experiments.pgo import constrained_config
from repro.workloads.suite import build_workload

SOURCE = """
global data[128];

fn work(base) {
    var i = 0; var acc = 0;
    while (i < 16) {
        acc = acc + data[(base + i) & 127] + i;
        i = i + 1;
    }
    return acc;
}

fn main() {
    var total = 0; var j = 0;
    while (j < 40) {
        total = total + work(j);
        j = j + 1;
    }
    return total;
}
"""

SPEC = ProfileSpec(mode="context_flow")


def _program():
    return compile_source(SOURCE)


class TestReport:
    def test_schema_and_verdict(self):
        report = pgo_cycle(_program(), SPEC, workload="unit")
        blob = report.to_json()
        assert blob["format"] == "repro-pgo-report-v1"
        assert blob["workload"] == "unit"
        assert blob["profile_source"] == "live"
        assert blob["architectural_match"] is True
        assert (
            blob["return_values"]["baseline"]
            == blob["return_values"]["optimized"]
        )
        assert blob["verdict"] == report.verdict.value
        assert set(blob["counters"]) == {"baseline", "optimized"}
        assert blob["counters"]["baseline"]["INSTRS"] > 0
        assert blob["plan"] == report.plan.to_json()
        assert blob["stored"] == {"baseline": None, "optimized": None}

    def test_mismatch_forces_degradation(self):
        report = pgo_cycle(_program(), SPEC)
        assert report.verdict is not Verdict.DEGRADATION
        # Same counters, different answer: the verdict must flip.
        report.optimized_return = report.baseline_return + 1
        report.architectural_match = False
        assert report.verdict is Verdict.DEGRADATION
        assert report.to_json()["verdict"] == "degradation"


class TestGuards:
    def test_baseline_spec_rejected(self):
        with pytest.raises(PGOError, match="baseline"):
            pgo_cycle(_program(), ProfileSpec(mode="baseline"))

    def test_no_profile_source_rejected(self):
        with pytest.raises(PGOError, match="live spec or a stored run"):
            pgo_cycle(_program())

    def test_run_ref_requires_store(self):
        with pytest.raises(PGOError, match="store"):
            pgo_cycle(_program(), run_ref="latest")

    def test_foreign_profile_rejected(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        session = ProfileSession()
        session.run(SPEC, _program(), (), store=store, workload="w")
        mutated = compile_source(SOURCE.replace("j < 40", "j < 41"))
        with pytest.raises(PGOError, match="fingerprints"):
            pgo_cycle(mutated, store=store, run_ref="latest")


class TestStoredRuns:
    def test_stored_run_drives_the_cycle(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        session = ProfileSession()
        run = session.run(SPEC, _program(), (), store=store, workload="w")
        report = pgo_cycle(
            _program(), store=store, run_ref="latest", session=session
        )
        assert report.profile_source == run.stored_as
        assert report.workload == "w"  # inherited from the stored run
        assert report.architectural_match
        live = pgo_cycle(_program(), SPEC, session=session)
        assert report.optimized_counters == live.optimized_counters

    def test_save_persists_same_code_lineage(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        first = pgo_cycle(
            _program(), SPEC, store=store, workload="w", save=True
        )
        assert first.baseline_stored_as and first.optimized_stored_as
        opt1 = store.load(first.optimized_stored_as)
        # The optimized program is new code: no same-code ancestor yet,
        # though the cross-code baseline (the unoptimized run) exists.
        assert store.baseline_for(opt1, same_code=True) is None
        assert (
            store.baseline_for(opt1).run_id == first.baseline_stored_as
        )
        # A byte-identical re-measurement dedupes to the same run ids
        # (content addressing), so to extend the lineage the cycle must
        # measure something new: the same code on a tiny I-cache, where
        # even this program thrashes and the counters change.
        again = pgo_cycle(
            _program(), SPEC, store=store, workload="w", save=True
        )
        assert again.baseline_stored_as == first.baseline_stored_as
        assert again.optimized_stored_as == first.optimized_stored_as
        second = pgo_cycle(
            _program(),
            SPEC,
            store=store,
            workload="w",
            save=True,
            session=ProfileSession(
                config=MachineConfig(icache_size=64, icache_assoc=1)
            ),
        )
        base2 = store.load(second.baseline_stored_as)
        opt2 = store.load(second.optimized_stored_as)
        # same_code=True walks each fingerprint's own lineage...
        assert (
            store.baseline_for(base2, same_code=True).run_id
            == first.baseline_stored_as
        )
        assert (
            store.baseline_for(opt2, same_code=True).run_id
            == first.optimized_stored_as
        )
        # ...while the default filter sees the most recent earlier run.
        assert store.baseline_for(opt2).run_id == second.baseline_stored_as


class TestAcceptance:
    def test_loop_workload_optimizes_on_constrained_machine(self):
        program = build_workload("132.ijpeg", 0.5)
        session = ProfileSession(config=constrained_config())
        report = pgo_cycle(
            program,
            SPEC,
            session=session,
            plan=OptPlan(),
            workload="132.ijpeg",
        )
        assert report.architectural_match
        assert report.verdict is Verdict.OPTIMIZATION
        assert (
            report.optimized_counters[Event.IC_MISS]
            < report.baseline_counters[Event.IC_MISS]
        )
        assert report.pipeline.changed
