"""Instrumentation placement: simple vs spanning-tree chord increments."""

from hypothesis import given, settings

from repro.cfg.graph import build_cfg
from repro.ir.asm import parse_program
from repro.pathprof.estimate import estimate_edge_frequencies, loop_depths
from repro.pathprof.numbering import number_paths
from repro.pathprof.placement import plan_simple, plan_spanning_tree

from tests.test_pathprof_numbering import FIG1, random_cfgs


def _numbering(asm: str):
    program = parse_program(asm)
    return number_paths(build_cfg(program.functions["main"]))


LOOPY = """
func main(1) regs=8 {
entry:
    const r1, 0
    br head
head:
    lt r2, r1, r0
    cbr r2, body, out
body:
    and r3, r1, 1
    cbr r3, odd, even
odd:
    add r1, r1, 3
    br head
even:
    add r1, r1, 1
    br head
out:
    ret r1
}
"""


class TestSimplePlacement:
    def test_fig1_telescopes(self):
        plan = plan_simple(_numbering(FIG1))
        plan.check_path_sums()

    def test_loopy_telescopes(self):
        plan = plan_simple(_numbering(LOOPY))
        plan.check_path_sums()

    def test_every_ret_block_commits(self):
        plan = plan_simple(_numbering(FIG1))
        assert [c.block for c in plan.exit_commits] == ["F"]

    def test_backedges_get_start_end(self):
        plan = plan_simple(_numbering(LOOPY))
        assert len(plan.backedge_instrs) == 2
        for bi in plan.backedge_instrs:
            assert bi.edge.dst == "head"


class TestSpanningTreePlacement:
    def test_fig1_telescopes(self):
        numbering = _numbering(FIG1)
        plan = plan_spanning_tree(numbering)
        plan.check_path_sums()

    def test_loopy_telescopes(self):
        numbering = _numbering(LOOPY)
        weights = estimate_edge_frequencies(numbering.cfg)
        plan = plan_spanning_tree(numbering, weights)
        plan.check_path_sums()

    def test_no_more_increments_than_simple(self):
        numbering = _numbering(LOOPY)
        simple = plan_simple(numbering)
        optimized = plan_spanning_tree(
            numbering, estimate_edge_frequencies(numbering.cfg)
        )
        assert optimized.increment_count() <= simple.increment_count()

    def test_weights_move_increments_off_hot_edges(self):
        """With loop-depth weights, loop-body edges join the tree."""
        numbering = _numbering(LOOPY)
        weights = estimate_edge_frequencies(numbering.cfg)
        plan = plan_spanning_tree(numbering, weights)
        depths = loop_depths(numbering.cfg)
        # Any remaining increment must not sit on the single hottest
        # class of edges while a colder alternative existed: weaker but
        # robust check — total weighted increments do not exceed the
        # simple plan's.
        def weighted(p):
            return sum(
                weights.get(inc.edge.index, 1.0)
                for inc in p.increments
                if inc.value != 0
            )

        assert weighted(plan) <= weighted(plan_simple(numbering))
        assert depths["body"] == 1


class TestEstimator:
    def test_loop_depths(self):
        numbering = _numbering(LOOPY)
        depths = loop_depths(numbering.cfg)
        assert depths["entry"] == 0
        assert depths["head"] == 1
        assert depths["body"] == 1
        assert depths["out"] == 0

    def test_edge_weights_scale_with_depth(self):
        numbering = _numbering(LOOPY)
        weights = estimate_edge_frequencies(numbering.cfg)
        inner = numbering.cfg.find_edge("body", "odd")
        outer = numbering.cfg.find_edge("entry", "head")
        assert weights[inner.index] > weights[outer.index]


@given(random_cfgs())
@settings(max_examples=120, deadline=None)
def test_property_simple_placement_telescopes(cfg):
    plan = plan_simple(number_paths(cfg))
    plan.check_path_sums(limit=512)


@given(random_cfgs())
@settings(max_examples=120, deadline=None)
def test_property_spanning_tree_placement_telescopes(cfg):
    numbering = number_paths(cfg)
    weights = estimate_edge_frequencies(cfg)
    plan = plan_spanning_tree(numbering, weights)
    plan.check_path_sums(limit=512)


@given(random_cfgs())
@settings(max_examples=80, deadline=None)
def test_property_chords_never_exceed_simple(cfg):
    numbering = number_paths(cfg)
    simple = plan_simple(numbering)
    optimized = plan_spanning_tree(numbering, estimate_edge_frequencies(cfg))
    assert optimized.increment_count() <= len(simple.increments) + len(
        simple.backedge_instrs
    ) + len(simple.exit_commits)
