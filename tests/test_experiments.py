"""Experiment drivers: row shapes and the paper-matching figure facts."""

import pytest

from repro.experiments import (
    cct_stats_experiment,
    figure1_report,
    figure4_report,
    hot_path_experiment,
    hot_procedure_experiment,
    overhead_components_experiment,
    overhead_experiment,
    perturbation_experiment,
)
from repro.reporting import format_table

SUBSET = ["101.tomcatv", "130.li"]
SCALE = 0.25


class TestFigure1:
    def test_matches_paper(self):
        report = figure1_report()
        assert report["num_paths"] == 6
        paths = {row["Path"] for row in report["paths"]}
        assert paths == {"ACDF", "ACDEF", "ABCDF", "ABCDEF", "ABDF", "ABDEF"}
        # Both placements verified internally; the optimized one needs
        # no more increment sites than the simple one.
        assert report["optimized_increments"] <= report["simple_increments"]

    def test_edge_values_compact(self):
        report = figure1_report()
        values = report["edge_values"]
        # Val is 0 on at least one out-edge of every branching vertex.
        assert values["A->B"] == 0 or values["A->C"] == 0


class TestFigure4:
    def test_matches_paper(self):
        report = figure4_report()
        # C retains exactly its two calling contexts in the CCT.
        assert report["cct_contexts_of_C"] == ["M -> A -> C", "M -> D -> C"]
        # The DCG contains the infeasible-path ingredients (M->D->C->...)
        assert report["dcg_infeasible_path_exists"]
        assert report["dct_size"] >= 7


class TestTableDrivers:
    def test_table1_rows(self):
        rows = overhead_experiment(SUBSET, SCALE)
        names = [r["Benchmark"] for r in rows]
        assert "101.tomcatv" in names and "SPEC95 Avg" in names
        for row in rows:
            assert row["Flow+HW x"] >= 1.0
            assert row["Context+HW x"] >= 1.0
            assert row["Context+Flow x"] >= 1.0

    def test_table2_rows(self):
        rows = perturbation_experiment(SUBSET, SCALE)
        assert len(rows) == len(SUBSET)
        for row in rows:
            assert "Cycles F" in row and "Cycles C" in row
            assert row["Insts F"] >= 1.0

    def test_table3_rows(self):
        rows = cct_stats_experiment(SUBSET, SCALE)
        for row in rows:
            assert row["Nodes"] >= 1
            assert row["Height Max"] >= 1
            assert row["Used"] <= row["Call Sites"]

    def test_table4_rows(self):
        rows = hot_path_experiment(SUBSET, SCALE)
        for row in rows:
            assert row["All Num"] >= row["Hot Num"]
            assert row["Hot Num"] == row["Dense Num"] + row["Sparse Num"]

    def test_table4_adds_low_threshold_for_go_gcc(self):
        rows = hot_path_experiment(["099.go"], SCALE)
        names = [r["Benchmark"] for r in rows]
        assert "099.go" in names
        assert "099.go @0.1%" in names

    def test_table5_rows(self):
        rows = hot_procedure_experiment(SUBSET, SCALE)
        for row in rows:
            assert row["Hot Num"] + row["Cold Num"] >= 1

    def test_components_rows(self):
        rows = overhead_components_experiment(["130.li"], SCALE)
        row = rows[0]
        assert row["Edge opt x"] <= row["Edge simple x"] + 0.05
        assert row["Flow+HW x"] >= row["Path opt x"] - 0.05

    def test_rows_render_as_tables(self):
        rows = hot_path_experiment(["130.li"], SCALE)
        text = format_table(rows, title="Table 4")
        assert "Table 4" in text
        assert "130.li" in text
