"""Profile analyses: hot paths (Table 4), hot procedures (Table 5),
perturbation (Table 2), and the instruction-count correction."""

import pytest

from repro.machine.counters import Event
from repro.profiles.hotpaths import (
    PathClass,
    classify_paths,
    paths_per_hot_block,
    threshold_sweep,
)
from repro.profiles.hotprocs import classify_procedures
from repro.profiles.pathprofile import (
    FunctionPathProfile,
    PathEntry,
    PathProfile,
    collect_path_profile,
)
from repro.profiles.perturbation import (
    estimate_instrumentation_instructions,
    perturbation_ratios,
)
from repro.tools.pp import PP

from tests.conftest import compile_corpus


def _synthetic_profile(paths):
    """Build a PathProfile from (function, sum, freq, instrs, misses)."""

    class _FakeInfo:
        def __init__(self, name, sums):
            self.function = name
            self.numbering = None
            self.num_paths = max(sums) + 1 if sums else 0

    profile = PathProfile()
    by_function = {}
    for function, path_sum, freq, instrs, misses in paths:
        by_function.setdefault(function, []).append((path_sum, freq, instrs, misses))
    for function, entries in by_function.items():
        counts = {s: f for s, f, _, _ in entries}
        metrics = {s: [i, m] for s, _, i, m in entries}
        info = _FakeInfo(function, list(counts))
        fpp = FunctionPathProfile.__new__(FunctionPathProfile)
        fpp.function = function
        fpp.numbering = None
        fpp.num_potential_paths = info.num_paths
        fpp.counts = counts
        fpp.metrics = metrics
        profile.functions[function] = fpp
    return profile


class TestHotPathClassification:
    def test_hot_threshold(self):
        profile = _synthetic_profile(
            [
                ("f", 0, 100, 1000, 90),   # 90% of misses: hot
                ("f", 1, 100, 1000, 9),    # 9%: hot at 1%
                ("f", 2, 100, 1000, 1),    # 1%: exactly at threshold
                ("f", 3, 100, 1000, 0),    # no misses: cold
            ]
        )
        report = classify_paths(profile, threshold=0.01)
        assert report.hot.num == 3
        assert report.cold.num == 1
        assert report.total_misses == 100

    def test_dense_vs_sparse(self):
        profile = _synthetic_profile(
            [
                ("f", 0, 1, 100, 50),     # ratio 0.5: dense
                ("f", 1, 1, 10000, 50),   # ratio 0.005: sparse
            ]
        )
        report = classify_paths(profile, threshold=0.01)
        assert report.dense.num == 1
        assert report.sparse.num == 1
        klasses = {c.entry.path_sum: c.klass for c in report.classified}
        assert klasses[0] is PathClass.DENSE
        assert klasses[1] is PathClass.SPARSE

    def test_shares_sum_to_one(self):
        profile = _synthetic_profile(
            [("f", i, 1, 100 * (i + 1), 10 * (i + 1)) for i in range(10)]
        )
        report = classify_paths(profile)
        ti, tm = report.total_instructions, report.total_misses
        assert report.hot.inst_share(ti) + report.cold.inst_share(ti) == pytest.approx(1.0)
        assert report.hot.miss_share(tm) + report.cold.miss_share(tm) == pytest.approx(1.0)
        assert report.dense.num + report.sparse.num == report.hot.num

    def test_threshold_sweep_monotone(self):
        profile = _synthetic_profile(
            [("f", i, 1, 1000, m) for i, m in enumerate([500, 300, 100, 50, 30, 20])]
        )
        reports = threshold_sweep(profile, (0.01, 0.001))
        assert reports[0.001].hot.num >= reports[0.01].hot.num

    def test_no_misses_program(self):
        profile = _synthetic_profile([("f", 0, 10, 1000, 0)])
        report = classify_paths(profile)
        assert report.hot.num == 0
        assert report.cold.num == 1

    def test_zero_freq_paths_ignored(self):
        profile = _synthetic_profile([("f", 0, 0, 0, 0), ("f", 1, 5, 100, 10)])
        report = classify_paths(profile)
        assert report.total_paths == 1


class TestPathsPerBlock:
    def test_blocks_shared_by_paths(self):
        program = compile_corpus("many_paths")
        run = PP().flow_hw(program)
        report = classify_paths(run.path_profile, threshold=0.01)
        average, per_block = paths_per_hot_block(run.path_profile, report)
        if report.hot.num:
            assert average >= 1.0
            for (function, block), count in per_block.items():
                assert count >= 1


class TestHotProcedures:
    def test_aggregation(self):
        profile = _synthetic_profile(
            [
                ("hotproc", 0, 10, 1000, 80),
                ("hotproc", 1, 10, 1000, 15),
                ("coldproc", 0, 10, 1000, 5),
            ]
        )
        report = classify_procedures(profile, threshold=0.5)
        assert report.hot.num == 1
        assert report.cold.num == 1
        assert report.hot.paths_per_proc() == 2.0

    def test_miss_shares(self):
        profile = _synthetic_profile(
            [("a", 0, 1, 100, 70), ("b", 0, 1, 100, 30)]
        )
        report = classify_procedures(profile, threshold=0.01)
        assert report.hot.miss_share(report.total_misses) == pytest.approx(1.0)


class TestPerturbation:
    def test_ratios(self):
        instrumented = {e: 0 for e in Event}
        baseline = {e: 0 for e in Event}
        baseline[Event.CYCLES] = 100
        instrumented[Event.CYCLES] = 150
        ratios = perturbation_ratios(instrumented, baseline)
        assert ratios[Event.CYCLES] == pytest.approx(1.5)
        assert ratios[Event.FP_STALL] is None  # zero baseline

    def test_instruction_correction_is_close(self):
        """Subtracting estimated instrumentation instructions recovers
        the baseline instruction count to within a few percent."""
        program = compile_corpus("nested_loops")
        pp = PP()
        base = pp.baseline(program)
        run = pp.flow_freq(program, placement="spanning_tree")
        estimate = estimate_instrumentation_instructions(run.flow)
        measured_extra = run.result[Event.INSTRS] - base.result[Event.INSTRS]
        assert estimate > 0
        # Split blocks add a branch the static estimate cannot see;
        # tolerate a small gap.
        assert abs(measured_extra - estimate) <= 0.2 * measured_extra + 5

    def test_correction_exact_without_splits(self):
        """On a program whose increments all sit on br edges the
        estimate is exact."""
        program = compile_corpus("loop")
        pp = PP()
        base = pp.baseline(program)
        run = pp.flow_freq(program, placement="simple")
        estimate = estimate_instrumentation_instructions(run.flow)
        measured_extra = run.result[Event.INSTRS] - base.result[Event.INSTRS]
        assert estimate == measured_extra


class TestCollectProfile:
    def test_totals(self):
        program = compile_corpus("calls")
        run = PP().flow_hw(program)
        profile = run.path_profile
        assert profile.total_instructions() > 0
        assert profile.executed_paths() >= 3
        for entry in profile.entries():
            assert entry.freq >= 0

    def test_decode_entries(self):
        program = compile_corpus("diamond")
        run = PP().flow_hw(program)
        fpp = run.path_profile.functions["main"]
        for entry in fpp.entries():
            decoded = fpp.decode(entry.path_sum)
            assert decoded.blocks[0] == "entry"
