"""The declarative session layer: specs, the one pipeline, phase events.

The tentpole invariant: a :class:`~repro.session.ProfileSession` run
built from a :class:`~repro.session.ProfileSpec` is *identical* — down
to every counter, every path count and metric, every CCT byte, every
edge counter — to what the legacy per-mode ``PP`` driver methods
produce.  Plus: specs round-trip through JSON, malformed specs fail
loudly at construction, and every pipeline phase emits a structured
JSONL event with its wall time.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cct.merge import strict_form
from repro.machine.counters import Event
from repro.session import (
    MODES,
    PHASES,
    PLACEMENTS,
    ProfileSession,
    ProfileSpec,
    ProfileSpecError,
)
from repro.tools.pp import PP
from repro.tools.runlog import RunLog, read_run_log

from tests.conftest import compile_corpus
from tests.ir_strategies import ir_programs

EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "15"))

FUZZ_SETTINGS = settings(
    max_examples=EXAMPLES,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: How the legacy driver spells each spec mode.
LEGACY_METHODS = {
    "baseline": lambda pp, program: pp.baseline(program),
    "flow_hw": lambda pp, program: pp.flow_hw(program),
    "flow_freq": lambda pp, program: pp.flow_freq(program),
    "context_hw": lambda pp, program: pp.context_hw(program),
    "context_flow": lambda pp, program: pp.context_flow(program),
    "edge": lambda pp, program: pp.edge_profile(program),
    "kflow": lambda pp, program: pp.kflow(program),
}


def _spec_for(mode: str) -> ProfileSpec:
    # PP.edge_profile defaults to simple placement; match it.
    return ProfileSpec(
        mode=mode, placement="simple" if mode == "edge" else "spanning_tree"
    )


def _run_facts(run) -> dict:
    """Everything a run produced, in deep-comparable form."""
    facts = {
        "label": run.label,
        "counters": dict(run.result.counters),
        "return_value": run.result.return_value,
        "region_misses": run.result.region_misses,
    }
    if run.path_profile is not None:
        facts["paths"] = {
            name: (dict(fpp.counts), {k: list(v) for k, v in fpp.metrics.items()})
            for name, fpp in run.path_profile.functions.items()
        }
    if run.cct is not None:
        facts["cct"] = strict_form(run.cct)
    if run.edges is not None:
        facts["edges"] = {
            name: dict(info.table.nonzero())
            for name, info in run.edges.functions.items()
        }
    return facts


class TestSessionMatchesLegacyDriver:
    @pytest.mark.parametrize("mode", MODES)
    def test_differential_per_mode(self, mode, corpus_name):
        program = compile_corpus(corpus_name)
        session_run = ProfileSession().run(_spec_for(mode), program)
        legacy_run = LEGACY_METHODS[mode](PP(), program)
        assert _run_facts(session_run) == _run_facts(legacy_run)

    def test_session_reuses_one_memory_map(self):
        program = compile_corpus("calls")
        session = ProfileSession()
        first = session.instrument(_spec_for("flow_hw"), program)
        second = session.instrument(_spec_for("flow_hw"), program)
        assert (
            first.path_runtime.tables[0].base
            == second.path_runtime.tables[0].base
            == session.memory.profiling.base
        )
        assert first.cct_base == second.cct_base == session.memory.cct.base

    def test_repeated_session_runs_are_identical(self):
        program = compile_corpus("nested_loops")
        session = ProfileSession()
        spec = _spec_for("context_flow")
        first = session.run(spec, program)
        second = session.run(spec, program)
        assert _run_facts(first) == _run_facts(second)

    def test_args_default_to_the_spec_inputs(self):
        program = compile_corpus("calls")
        spec = ProfileSpec(mode="baseline", inputs=((),))
        explicit = ProfileSession().run(spec, program, ())
        implicit = ProfileSession().run(spec, program)
        assert explicit.return_value == implicit.return_value


specs = st.builds(
    ProfileSpec,
    mode=st.sampled_from(MODES),
    pic0_event=st.sampled_from(list(Event)),
    pic1_event=st.sampled_from(list(Event)),
    placement=st.sampled_from(PLACEMENTS),
    engine=st.sampled_from([None, "simple", "fast"]),
    by_site=st.booleans(),
    read_at_backedges=st.booleans(),
    functions=st.one_of(
        st.none(),
        st.lists(
            st.text(alphabet="abcdef", min_size=1, max_size=6), max_size=3
        ).map(tuple),
    ),
    inputs=st.lists(
        st.lists(st.integers(min_value=0, max_value=99), max_size=3).map(tuple),
        min_size=1,
        max_size=3,
    ).map(tuple),
)


class TestSpecSerialization:
    @FUZZ_SETTINGS
    @given(spec=specs)
    def test_json_round_trip(self, spec):
        revived = ProfileSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert revived == spec

    @FUZZ_SETTINGS
    @given(
        program=ir_programs(),
        mode=st.sampled_from(("flow_hw", "context_flow")),
    )
    def test_round_tripped_spec_reproduces_the_run(self, program, mode):
        """A spec revived from JSON drives a bit-identical run."""
        spec = _spec_for(mode)
        revived = ProfileSpec.from_json(json.loads(json.dumps(spec.to_json())))
        original = ProfileSession().run(spec, program)
        reproduced = ProfileSession().run(revived, program)
        assert _run_facts(original) == _run_facts(reproduced)

    def test_from_json_ignores_unknown_keys(self):
        raw = ProfileSpec(mode="flow_hw").to_json()
        raw["future_knob"] = True
        assert ProfileSpec.from_json(raw) == ProfileSpec(mode="flow_hw")


class TestSpecValidation:
    def test_unknown_mode_names_the_mode_and_the_options(self):
        with pytest.raises(ProfileSpecError, match="unknown mode 'bogus'"):
            ProfileSpec(mode="bogus")
        with pytest.raises(ProfileSpecError, match="context_flow"):
            ProfileSpec(mode="bogus")

    def test_unknown_placement_rejected(self):
        with pytest.raises(ProfileSpecError, match="unknown placement"):
            ProfileSpec(placement="scattered")

    def test_unknown_event_rejected(self):
        with pytest.raises(ProfileSpecError, match="unknown pic0_event"):
            ProfileSpec(pic0_event="NOT_AN_EVENT")

    def test_event_names_coerce(self):
        spec = ProfileSpec(pic0_event="CYCLES", pic1_event=Event.IC_MISS.value)
        assert spec.pic0_event is Event.CYCLES
        assert spec.pic1_event is Event.IC_MISS

    def test_spec_error_is_a_value_error(self):
        # Callers that caught ValueError before the typed error keep
        # working.
        assert issubclass(ProfileSpecError, ValueError)

    def test_kflow_k_defaults_to_one(self):
        spec = ProfileSpec(mode="kflow")
        assert spec.k == 1
        assert spec == ProfileSpec(mode="kflow", k=1)

    @pytest.mark.parametrize("bad_k", [0, -1, -7])
    def test_kflow_k_below_one_rejected_naming_the_field(self, bad_k):
        with pytest.raises(ProfileSpecError, match="k must be an integer >= 1"):
            ProfileSpec(mode="kflow", k=bad_k)

    @pytest.mark.parametrize("bad_k", [1.5, "2", True, (2,)])
    def test_kflow_k_non_integer_rejected_naming_the_field(self, bad_k):
        with pytest.raises(ProfileSpecError, match="k must be an integer >= 1"):
            ProfileSpec(mode="kflow", k=bad_k)

    @pytest.mark.parametrize(
        "mode", [m for m in MODES if m != "kflow"]
    )
    def test_k_on_non_kflow_mode_rejected_naming_the_field(self, mode):
        with pytest.raises(ProfileSpecError, match="k only applies to kflow"):
            ProfileSpec(mode=mode, k=2)

    def test_k_absent_from_non_kflow_json_and_digests(self):
        # Pre-kflow manifests and store digests must be byte-for-byte
        # unchanged: ``k`` is emitted only when set.
        raw = ProfileSpec(mode="flow_hw").to_json()
        assert "k" not in raw
        assert ProfileSpec.from_json(raw) == ProfileSpec(mode="flow_hw")

    def test_kflow_spec_json_round_trips_with_k(self):
        spec = ProfileSpec(mode="kflow", k=4)
        raw = json.loads(json.dumps(spec.to_json()))
        assert raw["k"] == 4
        revived = ProfileSpec.from_json(raw)
        assert revived == spec
        assert revived.digest() == spec.digest()

    def test_kflow_digest_distinguishes_k(self):
        digests = {ProfileSpec(mode="kflow", k=k).digest() for k in (1, 2, 4)}
        assert len(digests) == 3


class TestPhaseEvents:
    def test_every_phase_logged_with_wall_time(self, tmp_path):
        program = compile_corpus("calls")
        path = str(tmp_path / "run.log.jsonl")
        session = ProfileSession(log=RunLog(path))
        session.run(ProfileSpec(mode="context_flow"), program)
        events = read_run_log(path)
        assert [e["event"] for e in events] == ["phase"] * len(PHASES)
        assert [e["phase"] for e in events] == list(PHASES)
        for event in events:
            assert event["mode"] == "context_flow"
            assert event["seconds"] >= 0
        decode = next(e for e in events if e["phase"] == "decode")
        assert decode["engine"] in ("simple", "fast")
        run = next(e for e in events if e["phase"] == "run")
        assert run["instructions"] > 0 and run["cycles"] > 0

    def test_phases_accumulate_across_runs(self, tmp_path):
        program = compile_corpus("loop")
        path = str(tmp_path / "run.log.jsonl")
        session = ProfileSession(log=RunLog(path))
        session.run(ProfileSpec(mode="baseline"), program)
        session.run(ProfileSpec(mode="flow_hw"), program)
        events = read_run_log(path)
        assert [e["phase"] for e in events] == list(PHASES) * 2
        assert [e["seq"] for e in events] == list(range(2 * len(PHASES)))

    def test_silent_without_a_log(self):
        program = compile_corpus("loop")
        run = ProfileSession().run(ProfileSpec(mode="flow_hw"), program)
        assert run.return_value is not None  # pipeline unconditional
