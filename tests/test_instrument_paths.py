"""Flow-sensitive instrumentation vs. the tracing oracle.

The central correctness property: the instrumented program's counter
tables hold exactly the path frequencies an independent tracer derives
from the block sequence — for every corpus program, both placements,
and both metric modes.
"""

import pytest

from repro.instrument.pathinstr import instrument_paths
from repro.instrument.tables import ProfilingRuntime, TableKind
from repro.machine.counters import Event
from repro.machine.memory import MemoryMap
from repro.machine.vm import Machine
from repro.profiles.oracle import PathOracle

from tests.conftest import compile_corpus


def _run_against_oracle(corpus_name: str, placement: str, mode: str):
    # Oracle run on the uninstrumented program.
    clean = compile_corpus(corpus_name)
    clean_machine = Machine(clean)
    numberings = {}
    flow_probe = instrument_paths(
        compile_corpus(corpus_name), mode=mode, placement=placement
    )
    numberings = {n: info.numbering for n, info in flow_probe.functions.items()}
    oracle = PathOracle(numberings)
    clean_machine.tracer = oracle
    clean_result = clean_machine.run()

    # Instrumented run.
    instrumented = compile_corpus(corpus_name)
    runtime = ProfilingRuntime(MemoryMap().profiling.base)
    flow = instrument_paths(instrumented, mode=mode, placement=placement, runtime=runtime)
    machine = Machine(instrumented)
    machine.path_runtime = runtime
    result = machine.run()
    return clean_result, result, oracle, flow


@pytest.mark.parametrize("placement", ["simple", "spanning_tree"])
def test_counts_match_oracle(corpus_name, placement):
    clean, instrumented, oracle, flow = _run_against_oracle(
        corpus_name, placement, "freq"
    )
    assert instrumented.return_value == clean.return_value
    for name in flow.functions:
        assert flow.path_counts(name) == oracle.function_counts(name), name


@pytest.mark.parametrize("placement", ["simple", "spanning_tree"])
def test_hw_mode_counts_match_oracle(corpus_name, placement):
    clean, instrumented, oracle, flow = _run_against_oracle(
        corpus_name, placement, "hw"
    )
    assert instrumented.return_value == clean.return_value
    for name in flow.functions:
        assert flow.path_counts(name) == oracle.function_counts(name), name


def test_hw_metrics_are_positive_and_bounded(corpus_name):
    _, result, _, flow = _run_against_oracle(corpus_name, "spanning_tree", "hw")
    total_path_instrs = 0
    for name in flow.functions:
        for path_sum, values in flow.path_metrics(name).items():
            assert values[0] > 0  # instructions along an executed path
            assert values[1] >= 0  # misses
            total_path_instrs += values[0]
    # Per-path instruction sums cannot exceed the whole run.
    assert 0 < total_path_instrs <= result[Event.INSTRS]


def test_path_instruction_counts_are_plausible():
    """A straight-line path's metric should be near its block length."""
    from repro.lang import compile_source

    program = compile_source(
        """
        fn main() {
            var i = 0;
            while (i < 50) { i = i + 1; }
            return i;
        }
        """
    )
    runtime = ProfilingRuntime(MemoryMap().profiling.base)
    flow = instrument_paths(program, mode="hw", placement="simple", runtime=runtime)
    machine = Machine(program)
    machine.path_runtime = runtime
    machine.run()
    profile = flow.path_metrics("main")
    counts = flow.path_counts("main")
    # The loop body path dominates: 49 or 50 executions.
    hottest = max(counts, key=counts.get)
    per_exec = profile[hottest][0] / counts[hottest]
    assert 2 <= per_exec <= 40


def test_spilled_function_still_counts_correctly():
    """A function with no free register exercises the spill path."""
    from repro.ir.asm import parse_program

    asm = """
    func main(0) regs=4 {
    entry:
        const r0, 0
        const r1, 10
        const r2, 0
        br head
    head:
        lt r3, r0, r1
        cbr r3, body, done
    body:
        add r2, r2, r0
        add r0, r0, 1
        br head
    done:
        ret r2
    }
    """
    program = parse_program(asm)
    runtime = ProfilingRuntime(MemoryMap().profiling.base)
    flow = instrument_paths(program, mode="freq", placement="simple", runtime=runtime)
    assert flow.functions["main"].spilled
    machine = Machine(program)
    machine.path_runtime = runtime
    result = machine.run()
    assert result.return_value == 45
    counts = flow.path_counts("main")
    # entry..backedge, 9 backedge..backedge, backedge..exit = 11 paths.
    assert sum(counts.values()) == 11


def test_hash_table_used_for_many_path_functions():
    """Functions beyond the array limit get hash-table counters."""
    # 14 sequential diamonds -> 2**14 paths > ARRAY_PATH_LIMIT.
    lines = ["func main(1) regs=8 {", "entry:", "    const r1, 0", "    br d0"]
    for d in range(14):
        nxt = f"d{d + 1}" if d < 13 else "out"
        lines += [
            f"d{d}:",
            f"    and r2, r0, {1 << d}",
            f"    cbr r2, t{d}, f{d}",
            f"t{d}:",
            f"    add r1, r1, 1",
            f"    br {nxt}",
            f"f{d}:",
            f"    br {nxt}",
        ]
    lines += ["out:", "    ret r1", "}"]
    from repro.ir.asm import parse_program

    program = parse_program("\n".join(lines))
    runtime = ProfilingRuntime(MemoryMap().profiling.base)
    flow = instrument_paths(program, mode="freq", placement="simple", runtime=runtime)
    table = flow.functions["main"].table
    assert table.kind is TableKind.HASH
    machine = Machine(program)
    machine.path_runtime = runtime
    machine.run(0b10101010101010)
    counts = flow.path_counts("main")
    assert sum(counts.values()) == 1
    # The single executed path decodes to the expected block sequence.
    (path_sum,) = counts
    path = flow.functions["main"].numbering.regenerate(path_sum)
    taken = [b for b in path.blocks if b.startswith("t")]
    assert len(taken) == 7


def test_original_blocks_preserved():
    """Instrumentation adds code but never removes program instructions."""
    program = compile_corpus("nested_loops")
    before = sum(
        1 for f in program.functions.values() for _ in f.instructions()
    )
    instrument_paths(program, mode="hw", placement="spanning_tree")
    after_program_instrs = sum(
        1
        for f in program.functions.values()
        for i in f.instructions()
        if i.icost == 1 and i.kind.value < 14 and i.kind.value not in (25, 26)
    )
    assert after_program_instrs >= before
