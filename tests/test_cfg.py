"""CFG construction and analyses."""

import pytest

from repro.cfg.analysis import (
    CFGAnalysisError,
    backedges,
    check_single_entry_exit,
    depth_first_order,
    dominators,
    is_reducible,
    natural_loop,
    reachable_to_exit,
    reverse_topological_order,
)
from repro.cfg.graph import EXIT, build_cfg
from repro.ir.asm import parse_program


def _cfg(body: str, name: str = "main", params: int = 0, regs: int = 8):
    program = parse_program(f"func {name}({params}) regs={regs} {{\n{body}\n}}")
    return build_cfg(program.functions[name])


DIAMOND = """
entry:
    const r0, 1
    cbr r0, left, right
left:
    br join
right:
    br join
join:
    ret r0
"""

LOOP = """
entry:
    const r0, 0
    br head
head:
    lt r1, r0, 10
    cbr r1, body, exit
body:
    add r0, r0, 1
    br head
exit:
    ret r0
"""

NESTED_LOOPS = """
entry:
    const r0, 0
    br outer
outer:
    lt r1, r0, 5
    cbr r1, inner_init, out
inner_init:
    const r2, 0
    br inner
inner:
    lt r3, r2, 5
    cbr r3, inner_body, outer_next
inner_body:
    add r2, r2, 1
    br inner
outer_next:
    add r0, r0, 1
    br outer
out:
    ret r0
"""

SELF_LOOP = """
entry:
    const r0, 1
    br spin
spin:
    sub r0, r0, 1
    cbr r0, spin, done
done:
    ret r0
"""

IRREDUCIBLE = """
entry:
    const r0, 1
    cbr r0, a, b
a:
    cbr r0, b, out
b:
    cbr r0, a, out
out:
    ret r0
"""

INFINITE = """
entry:
    const r0, 0
    br spin
spin:
    add r0, r0, 1
    br spin
"""


class TestBuildCfg:
    def test_diamond_structure(self):
        cfg = _cfg(DIAMOND)
        assert set(cfg.vertices) == {"entry", "left", "right", "join", EXIT}
        assert cfg.successors("entry") == ["left", "right"]
        assert cfg.successors("join") == [EXIT]
        assert sorted(cfg.predecessors("join")) == ["left", "right"]

    def test_edge_kinds(self):
        cfg = _cfg(DIAMOND)
        then_edge = cfg.find_edge("entry", "left")
        else_edge = cfg.find_edge("entry", "right")
        exit_edge = cfg.find_edge("join", EXIT)
        assert then_edge.kind == "then"
        assert else_edge.kind == "else"
        assert exit_edge.kind == "exit"

    def test_edge_indices_stable_and_unique(self):
        cfg = _cfg(NESTED_LOOPS)
        indices = [e.index for e in cfg.edges]
        assert indices == list(range(len(cfg.edges)))

    def test_multiple_rets_share_exit(self):
        cfg = _cfg(
            """
entry:
    const r0, 1
    cbr r0, a, b
a:
    ret r0
b:
    ret r0
"""
        )
        assert len(cfg.pred[EXIT]) == 2


class TestDfsAndOrders:
    def test_dfs_starts_at_entry(self):
        order = depth_first_order(_cfg(DIAMOND))
        assert order[0] == "entry"
        assert set(order) == {"entry", "left", "right", "join", EXIT}

    def test_unreachable_blocks_excluded(self):
        cfg = _cfg(
            """
entry:
    ret r0
island:
    br island2
island2:
    ret r0
"""
        )
        assert "island" not in depth_first_order(cfg)

    def test_reverse_topological_order(self):
        cfg = _cfg(DIAMOND)
        order = reverse_topological_order(cfg)
        position = {v: i for i, v in enumerate(order)}
        for edge in cfg.edges:
            assert position[edge.dst] < position[edge.src]

    def test_reverse_topological_raises_on_cycle(self):
        cfg = _cfg(LOOP)
        with pytest.raises(CFGAnalysisError, match="cycle"):
            reverse_topological_order(cfg)

    def test_reverse_topological_with_excluded_backedges(self):
        cfg = _cfg(LOOP)
        excluded = frozenset(e.index for e in backedges(cfg))
        order = reverse_topological_order(cfg, excluded)
        position = {v: i for i, v in enumerate(order)}
        for edge in cfg.edges:
            if edge.index in excluded:
                continue
            assert position[edge.dst] < position[edge.src]


class TestBackedges:
    def test_diamond_has_none(self):
        assert backedges(_cfg(DIAMOND)) == []

    def test_simple_loop(self):
        edges = backedges(_cfg(LOOP))
        assert [(e.src, e.dst) for e in edges] == [("body", "head")]

    def test_nested_loops(self):
        edges = {(e.src, e.dst) for e in backedges(_cfg(NESTED_LOOPS))}
        assert edges == {("inner_body", "inner"), ("outer_next", "outer")}

    def test_self_loop(self):
        edges = backedges(_cfg(SELF_LOOP))
        assert [(e.src, e.dst) for e in edges] == [("spin", "spin")]

    def test_irreducible_graph_yields_some_backedge(self):
        edges = backedges(_cfg(IRREDUCIBLE))
        assert len(edges) >= 1


class TestDominators:
    def test_diamond(self):
        dom = dominators(_cfg(DIAMOND))
        assert dom["join"] == {"entry", "join"}
        assert dom["left"] == {"entry", "left"}
        assert "left" not in dom[EXIT]

    def test_loop_header_dominates_body(self):
        dom = dominators(_cfg(LOOP))
        assert "head" in dom["body"]

    def test_entry_dominates_everything(self):
        dom = dominators(_cfg(NESTED_LOOPS))
        for vertex, doms in dom.items():
            assert "entry" in doms


class TestLoops:
    def test_natural_loop_members(self):
        cfg = _cfg(LOOP)
        edge = backedges(cfg)[0]
        assert natural_loop(cfg, edge) == {"head", "body"}

    def test_nested_loop_containment(self):
        cfg = _cfg(NESTED_LOOPS)
        loops = {e.dst: natural_loop(cfg, e) for e in backedges(cfg)}
        assert loops["inner"] <= loops["outer"]

    def test_reducibility(self):
        assert is_reducible(_cfg(LOOP))
        assert is_reducible(_cfg(NESTED_LOOPS))
        assert not is_reducible(_cfg(IRREDUCIBLE))


class TestExitReachability:
    def test_all_reach_exit_in_diamond(self):
        check_single_entry_exit(_cfg(DIAMOND))

    def test_infinite_loop_fails_check(self):
        with pytest.raises(CFGAnalysisError, match="cannot reach"):
            check_single_entry_exit(_cfg(INFINITE))

    def test_reachable_to_exit(self):
        reach = reachable_to_exit(_cfg(INFINITE))
        assert "spin" not in reach
        assert EXIT in reach
