"""Table 2: perturbation of hardware metrics (paper §6.2).

Paper shape: most ratios sit near 1.0 (SPEC95 averages 1.19/1.10 for
cycles, 1.14/1.06 for instructions), the flow and context variants
track each other, and metrics with tiny baselines (FP stalls in integer
codes, store-buffer stalls) can blow up by orders of magnitude.
"""

from benchmarks.conftest import SCALE, once, workload_selection, write_result
from repro.experiments import perturbation_experiment
from repro.experiments.table2 import average_abs_deviation
from repro.reporting import format_table


def test_table2_perturbation(benchmark):
    names = workload_selection()
    rows = once(benchmark, lambda: perturbation_experiment(names, SCALE))
    text = format_table(rows, title=f"Table 2: perturbation ratios (scale={SCALE})")
    write_result("table2_perturbation.txt", text)

    for row in rows:
        # Instrumentation can only add instructions and cycles.
        assert row["Insts F"] >= 1.0
        assert row["Insts C"] >= 1.0
        assert row["Cycles F"] >= 1.0

    # Cache-miss ratios stay in a sane band on average (they can dip
    # below 1: the paper observed instrumentation sometimes *improves*
    # a metric, e.g. by spreading stores apart).
    deviation_f = average_abs_deviation(
        [{k: v for k, v in r.items() if "Miss" in k} for r in rows], " F"
    )
    assert deviation_f < 3.0

    # Flow and context sensitive runs perturb similarly (paper §6.2:
    # "the two techniques typically obtained similar results").
    cycles_gap = [
        abs(r["Cycles F"] - r["Cycles C"]) for r in rows
    ]
    assert sum(cycles_gap) / len(cycles_gap) < 1.0
