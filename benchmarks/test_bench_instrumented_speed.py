"""Instrumented-suite throughput: probe fusion vs the reference loop.

Runs the SPEC95-like suite under all three instrumented profiling
modes — flow+HW, context+HW, and combined flow+context — with every
execution engine tier (simple, fast, trace), asserts they agree
bit-for-bit on every counter, and records the per-mode timings to
``BENCH_instrumented_speed.json`` at the repository root.

Each workload is instrumented once per mode; every timed pass reuses
the instrumented program with fresh (identically shaped) runtime
state, so the fast engine's warm passes exercise the fused-probe code
path the experiments run in.  The asserted speedup is the warm
fast-engine speedup in flow mode, where every hook fuses into
generated code (combined mode's per-context tables keep the closure
fallback by design).

``REPRO_INSTRUMENTED_SPEED_CHECK_ONLY=1`` relaxes the >=2x assertion
to >1x for noisy shared CI runners;
``REPRO_INSTRUMENTED_SPEED_MIN`` overrides the target.
"""

import json
import os
import pathlib

from benchmarks.conftest import SCALE, once, workload_selection
from repro.tools.bench_runner import measure_instrumented_speed

RESULT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_instrumented_speed.json"
)

#: Required warm flow-mode speedup of fast over simple, unless check-only.
MIN_SPEEDUP = float(os.environ.get("REPRO_INSTRUMENTED_SPEED_MIN", "2.0"))
#: Required warm flow-mode speedup of the trace tier (fused probes
#: running inside compiled superblocks); measured ~3.0x here, gated
#: honestly below that.
TRACE_MIN_SPEEDUP = float(os.environ.get("REPRO_TRACE_INSTRUMENTED_MIN", "2.0"))
CHECK_ONLY = os.environ.get("REPRO_INSTRUMENTED_SPEED_CHECK_ONLY", "") not in ("", "0")


def test_instrumented_speed(benchmark):
    names = workload_selection()
    payload = once(benchmark, lambda: measure_instrumented_speed(SCALE, names))
    payload["min_required"] = MIN_SPEEDUP
    payload["trace_min_required"] = TRACE_MIN_SPEEDUP
    payload["check_only"] = CHECK_ONLY
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    speedup = payload["speedup_warm_flow"]
    speedup_trace = payload["modes"]["flow_hw"]["speedup_trace_warm"]
    if CHECK_ONLY:
        assert speedup > 1.0, payload
        assert speedup_trace > 1.0, payload
    else:
        assert speedup >= MIN_SPEEDUP, payload
        assert speedup_trace >= TRACE_MIN_SPEEDUP, payload
