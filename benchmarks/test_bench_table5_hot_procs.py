"""Table 5: L1 D-cache misses by procedure (§6.4.2-6.4.3).

Paper shape: 1-24 hot procedures cover 44-99% of misses, and hot
procedures execute many paths each (averages of 34/63 for dense/sparse)
— procedure-level reporting cannot isolate the behaviour that path
profiling pins down.
"""

from benchmarks.conftest import SCALE, once, workload_selection, write_result
from repro.experiments import hot_procedure_experiment
from repro.reporting import format_table


def test_table5_hot_procedures(benchmark):
    names = workload_selection()
    rows = once(benchmark, lambda: hot_procedure_experiment(names, SCALE))
    text = format_table(rows, title=f"Table 5: misses by procedure (scale={SCALE})")
    write_result("table5_hot_procs.txt", text)

    for row in rows:
        assert 1 <= row["Hot Num"] <= 30, row["Benchmark"]
        assert row["Hot Misses%"] >= 50.0, row["Benchmark"]
        assert row["Hot Num"] == row["Dense Num"] + row["Sparse Num"]

    # Somewhere in the suite, hot procedures execute many paths each —
    # the §6.4.3 argument for path-level reporting.
    assert any(row["Hot Path/Proc"] >= 10.0 for row in rows)
