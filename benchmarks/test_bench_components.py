"""Ablations: overhead components (§6.1) and design choices (DESIGN.md §5).

* Edge profiling vs path profiling, simple vs spanning-tree placement:
  the paper reports optimized path profiling around 32% overhead,
  roughly twice optimized edge profiling, with the hardware-counter
  reads raising Flow+HW to ~80%.
* Counter reads at loop backedges (§4.3): bounded intervals at extra
  cost.
"""

from benchmarks.conftest import SCALE, once, write_result
from repro.experiments import overhead_components_experiment
from repro.reporting import format_table

#: A cross-section, not the full suite: five configurations each.
WORKLOADS = ["099.go", "129.compress", "130.li", "101.tomcatv", "147.vortex"]


def test_overhead_components(benchmark):
    rows = once(
        benchmark, lambda: overhead_components_experiment(WORKLOADS, SCALE)
    )
    text = format_table(
        rows, title=f"Overhead components ablation (scale={SCALE})"
    )
    write_result("ablation_overhead_components.txt", text)

    for row in rows:
        # The spanning-tree optimization never loses to simple placement.
        assert row["Edge opt x"] <= row["Edge simple x"] + 0.02, row
        assert row["Path opt x"] <= row["Path simple x"] + 0.02, row
        # Hardware-counter reads cost extra on top of frequency-only
        # path profiling (Figure 3's 13+-instruction sequences).
        assert row["Flow+HW x"] >= row["Path opt x"] - 0.02, row


def test_backedge_probe_ablation(benchmark):
    """§4.3: reading counters at backedges bounds intervals, costs more."""
    from repro.tools.pp import PP
    from repro.workloads.suite import build_workload

    def run():
        pp = PP()
        results = []
        for name in ("101.tomcatv", "130.li"):
            program = build_workload(name, SCALE)
            plain = pp.context_hw(program, read_at_backedges=False)
            probed = pp.context_hw(program, read_at_backedges=True)
            results.append(
                {
                    "Benchmark": name,
                    "Context+HW x (exit reads)": plain.cycles,
                    "Context+HW x (backedge reads)": probed.cycles,
                    "Extra cost %": round(
                        100 * (probed.cycles / plain.cycles - 1), 1
                    ),
                }
            )
        return results

    rows = once(benchmark, run)
    write_result(
        "ablation_backedge_probes.txt",
        format_table(rows, title="Backedge counter reads (§4.3)"),
    )
    for row in rows:
        assert row["Context+HW x (backedge reads)"] >= row["Context+HW x (exit reads)"]


def test_array_vs_hash_tables(benchmark):
    """Array-indexed counters execute fewer instructions than hash
    tables (§2: the path sum "can directly index an array of counters
    or be used as a key into a hash table").

    Cycle counts can tell the opposite story: a compact array clusters
    its counters into a handful of cache sets that may conflict with
    the program's own hot lines, while hash buckets scatter — a
    perturbation interaction worth recording, not asserting.
    """
    import repro.instrument.tables as tables
    from repro.instrument.tables import ProfilingRuntime, TableKind
    from repro.instrument.pathinstr import instrument_paths
    from repro.machine.counters import Event
    from repro.machine.memory import MemoryMap
    from repro.machine.vm import Machine
    from repro.workloads.suite import build_workload

    def run():
        results = {}
        for kind in (TableKind.ARRAY, TableKind.HASH):
            program = build_workload("129.compress", SCALE)
            runtime = ProfilingRuntime(MemoryMap().profiling.base)
            original = tables.ARRAY_PATH_LIMIT
            tables.ARRAY_PATH_LIMIT = 0 if kind is TableKind.HASH else original
            try:
                instrument_paths(
                    program, mode="freq", placement="spanning_tree", runtime=runtime
                )
            finally:
                tables.ARRAY_PATH_LIMIT = original
            machine = Machine(program)
            machine.path_runtime = runtime
            result = machine.run()
            results[kind.value] = (result[Event.INSTRS], result.cycles)
        return results

    results = once(benchmark, run)
    write_result(
        "ablation_array_vs_hash.txt",
        f"array table: {results['array'][0]} instrs, {results['array'][1]} cycles\n"
        f"hash table:  {results['hash'][0]} instrs, {results['hash'][1]} cycles\n",
    )
    assert results["array"][0] < results["hash"][0]
