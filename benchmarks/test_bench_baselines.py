"""Baseline comparisons: the related-work techniques of §7.

* call-site discrimination (§4.1): the paper reports the CCT grows
  2-3x when built per call site; we measure the same factor;
* the Goldberg–Hall stack sampler (§7.2): unbounded sample storage
  and sampling error, against the CCT's bounded exact counts;
* gprof's proportional attribution vs the CCT truth across the suite.
"""

from benchmarks.conftest import SCALE, once, write_result
from repro.reporting import format_table


def test_by_site_size_factor(benchmark):
    from repro.tools.pp import PP
    from repro.workloads.suite import build_workload

    names = ["147.vortex", "130.li", "104.hydro2d", "126.gcc"]

    def run():
        pp = PP()
        rows = []
        for name in names:
            program = build_workload(name, SCALE)
            sensitive = pp.context_hw(program, by_site=True)
            insensitive = pp.context_hw(program, by_site=False)
            assert sensitive.return_value == insensitive.return_value
            rows.append(
                {
                    "Benchmark": name,
                    "By-site bytes": sensitive.cct.heap_bytes(),
                    "Merged bytes": insensitive.cct.heap_bytes(),
                    "Factor": round(
                        sensitive.cct.heap_bytes()
                        / insensitive.cct.heap_bytes(),
                        2,
                    ),
                    "By-site nodes": len(sensitive.cct.records) - 1,
                    "Merged nodes": len(insensitive.cct.records) - 1,
                }
            )
        return rows

    rows = once(benchmark, run)
    write_result(
        "ablation_by_site.txt",
        format_table(rows, title="Call-site discrimination cost (§4.1)"),
    )
    # Site discrimination never produces FEWER nodes...
    for row in rows:
        assert row["By-site nodes"] >= row["Merged nodes"]
    # ...and on context-rich programs the paper's ~2-3x byte growth
    # appears (vortex).  Small programs can even tip the other way:
    # merging three direct slots into one callee *list* spends two
    # words per list node, so wide per-caller fan-out with no context
    # splitting costs slightly more merged — worth recording.
    by_name = {row["Benchmark"]: row for row in rows}
    assert by_name["147.vortex"]["Factor"] >= 1.5


def test_sampler_vs_cct(benchmark):
    from repro.cct.gprof import cct_truth
    from repro.cct.runtime import CCTRuntime
    from repro.instrument.cctinstr import instrument_context
    from repro.machine.memory import MemoryMap
    from repro.machine.vm import Machine
    from repro.profiles.sampling import StackSampler
    from repro.workloads.suite import build_workload

    def run():
        rows = []
        for name in ("147.vortex", "130.li"):
            program = build_workload(name, SCALE)
            sampler = StackSampler(period=32)
            machine = Machine(program)
            machine.tracer = sampler
            result = machine.run()

            instrumented = build_workload(name, SCALE)
            instrument_context(instrumented)
            runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=True)
            cct_machine = Machine(instrumented)
            cct_machine.cct_runtime = runtime
            cct_machine.run()

            truth = cct_truth(runtime, metric=1)
            estimates = sampler.inclusive_estimate(result.instructions)
            shared = set(truth) & set(estimates)
            hot = sorted(shared, key=lambda c: -truth[c])[:5]
            error = (
                sum(
                    abs(estimates[c] - truth[c]) / truth[c]
                    for c in hot
                    if truth[c]
                )
                / len(hot)
                if hot
                else 0.0
            )
            rows.append(
                {
                    "Benchmark": name,
                    "Samples": len(sampler.samples),
                    "Sample cells": sampler.storage_cells(),
                    "CCT records": len(runtime.records) - 1,
                    "Hot-context rel. error": round(error, 2),
                }
            )
        return rows

    rows = once(benchmark, run)
    write_result(
        "baseline_sampler_vs_cct.txt",
        format_table(rows, title="Stack sampling (Goldberg-Hall) vs CCT (§7.2)"),
    )
    for row in rows:
        # Unbounded sample storage dwarfs the bounded CCT.
        assert row["Sample cells"] > row["CCT records"]
        # Sampling approximates hot contexts but not exactly.
        assert row["Hot-context rel. error"] < 1.0


def test_gprof_error_across_suite(benchmark):
    from repro.cct.gprof import gprof_attribution, pair_attribution
    from repro.tools.pp import PP
    from repro.workloads.suite import build_workload

    names = ["147.vortex", "104.hydro2d", "130.li"]

    def run():
        pp = PP()
        rows = []
        for name in names:
            program = build_workload(name, SCALE)
            cct_run = pp.context_hw(program)
            estimate = gprof_attribution(cct_run.cct, metric=1).attributed
            truth = pair_attribution(cct_run.cct, metric=1).measured
            keys = [k for k in truth if truth[k] > 0]
            rel_errors = [
                abs(estimate.get(k, 0.0) - truth[k]) / truth[k] for k in keys
            ]
            rows.append(
                {
                    "Benchmark": name,
                    "Pairs": len(keys),
                    "Mean gprof rel. error": round(
                        sum(rel_errors) / len(rel_errors), 3
                    ),
                    "Max gprof rel. error": round(max(rel_errors), 2),
                }
            )
        return rows

    rows = once(benchmark, run)
    write_result(
        "baseline_gprof_error.txt",
        format_table(rows, title="gprof attribution error vs CCT (§7.1)"),
    )
    # Multi-context workloads expose the gprof problem somewhere.
    assert any(row["Max gprof rel. error"] > 0.1 for row in rows)
