"""Sensitivity studies: how robust is the hot-path result to the machine?

The paper measured one machine (16KB direct-mapped L1 D).  These
sweeps check the phenomenon isn't an artifact of that point:

* cache-size sweep: the concentration of misses on few hot paths holds
  across 4KB..64KB caches (absolute misses fall, shares persist);
* DCT/DAG/CCT size spectrum across workloads (Figure 4's spectrum plus
  the §7.3 DAG point in one table).
"""

from benchmarks.conftest import SCALE, once, write_result
from repro.reporting import format_table


def test_cache_size_sweep(benchmark):
    from repro.machine.config import MachineConfig
    from repro.profiles.hotpaths import classify_paths
    from repro.tools.pp import PP
    from repro.workloads.suite import build_workload

    sizes = (4 * 1024, 16 * 1024, 64 * 1024)

    def run():
        rows = []
        for size in sizes:
            pp = PP(config=MachineConfig(dcache_size=size))
            program = build_workload("101.tomcatv", SCALE)
            result = pp.flow_hw(program)
            report = classify_paths(result.path_profile, 0.01)
            rows.append(
                {
                    "D-cache": f"{size // 1024}KB",
                    "Total misses": report.total_misses,
                    "Hot paths": report.hot.num,
                    "Hot miss %": round(
                        100 * report.hot.miss_share(report.total_misses), 1
                    ),
                }
            )
        return rows

    rows = once(benchmark, run)
    write_result(
        "sensitivity_cache_size.txt",
        format_table(rows, title="Hot-path concentration vs D-cache size"),
    )
    # Bigger caches -> fewer misses...
    misses = [row["Total misses"] for row in rows]
    assert misses[0] > misses[1] > 0
    # ...but the hot paths keep carrying the misses at every size with
    # a meaningful miss population.
    for row in rows:
        if row["Total misses"] > 100:
            assert row["Hot miss %"] > 60.0


def test_representation_spectrum(benchmark):
    from repro.cct.dag import compact_dag
    from repro.cct.dct import DynamicCallGraph, DynamicCallRecorder
    from repro.cct.runtime import CCTRuntime
    from repro.instrument.cctinstr import instrument_context
    from repro.machine.memory import MemoryMap
    from repro.machine.vm import Machine
    from repro.workloads.suite import build_workload

    names = ["147.vortex", "145.fpppp", "130.li", "101.tomcatv"]

    def run():
        rows = []
        for name in names:
            program = build_workload(name, SCALE)
            recorder = DynamicCallRecorder()
            machine = Machine(program)
            machine.tracer = recorder
            machine.run()
            dag = compact_dag(recorder.tree)
            dcg = DynamicCallGraph.from_dct(recorder.tree)

            instrumented = build_workload(name, SCALE)
            instrument_context(instrumented)
            runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=False)
            cct_machine = Machine(instrumented)
            cct_machine.cct_runtime = runtime
            cct_machine.run()

            rows.append(
                {
                    "Benchmark": name,
                    "DCT": recorder.tree.size(),
                    "DAG [JSB97]": dag.unique_nodes,
                    "CCT": len(runtime.records) - 1,
                    "DCG": len(dcg.procs),
                }
            )
        return rows

    rows = once(benchmark, run)
    write_result(
        "representation_spectrum.txt",
        format_table(
            rows, title="Calling-behaviour representations (Fig 4 + §7.3)"
        ),
    )
    for row in rows:
        # The paper's spectrum: DCT >= {DAG, CCT} >= DCG.
        assert row["DCT"] >= row["DAG [JSB97]"]
        assert row["DCT"] >= row["CCT"]
        assert row["CCT"] >= row["DCG"]
