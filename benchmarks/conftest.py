"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures over
the SPEC95-like suite and writes the rendered table under
``benchmarks/results/`` (EXPERIMENTS.md records a reference run).

``REPRO_BENCH_SCALE`` (default 0.5) scales workload iteration counts;
``REPRO_BENCH_SUITE`` can restrict to ``CINT95``/``CFP95``.

``REPRO_BENCH_JOBS=N`` fans independent workload simulations out over
``N`` forked processes (every table experiment accepts ``jobs`` and
reads this variable by default through
:func:`repro.tools.bench_runner.run_tasks`).  Unset, ``0``, or ``1``
keeps everything serial in-process.
"""

import os
import pathlib

import pytest

from repro.tools.bench_runner import bench_jobs, run_tasks  # noqa: F401  (re-export)

#: Workload scale used by all table benchmarks.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: Process fan-out for independent workloads (0 = serial).
JOBS = bench_jobs()

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def workload_selection():
    from repro.workloads.suite import workload_names

    suite = os.environ.get("REPRO_BENCH_SUITE", "SPEC95")
    return workload_names(suite)


def write_result(filename: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n")


def once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer.

    The experiments are whole-suite simulations (seconds each); classic
    multi-round timing would multiply that for no statistical gain.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
