"""Table 1: run-time overhead of profiling (paper §6.1).

Paper-reported averages: Flow+HW 1.8x, Context+HW 1.6x, Context+Flow
1.7x over SPEC95, with CINT95 paying far more than CFP95.  Asserted
shape: every configuration costs more than base and the averages stay
within the same moderate band (1x..5x), integer codes >= FP codes for
the context configurations.
"""

from benchmarks.conftest import SCALE, once, workload_selection, write_result
from repro.experiments import overhead_experiment
from repro.reporting import format_table


def test_table1_overhead(benchmark):
    names = workload_selection()
    rows = once(benchmark, lambda: overhead_experiment(names, SCALE))
    text = format_table(rows, title=f"Table 1: overhead (scale={SCALE})")
    write_result("table1_overhead.txt", text)

    per_bench = [r for r in rows if not r["Benchmark"].endswith("Avg")]
    for row in per_bench:
        assert row["Flow+HW x"] >= 1.0, row
        assert row["Context+HW x"] >= 1.0, row
        assert row["Context+Flow x"] >= 1.0, row

    averages = {r["Benchmark"]: r for r in rows if r["Benchmark"].endswith("Avg")}
    spec = averages["SPEC95 Avg"]
    for column in ("Flow+HW x", "Context+HW x", "Context+Flow x"):
        assert 1.0 <= spec[column] <= 5.0, (column, spec[column])
    # Flow+HW is the most expensive configuration on average (it adds
    # counter reads to every path commit), as in the paper.
    assert spec["Flow+HW x"] >= spec["Context+HW x"] - 0.05
