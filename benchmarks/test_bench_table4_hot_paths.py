"""Table 4: L1 D-cache misses by path — the hot-path result (§6.4.1).

Paper shape: excluding go/gcc, a small number of hot paths (3-28)
covers the majority of misses (59-98%); dense paths outnumber sparse
ones; go and gcc execute roughly an order of magnitude more paths, so
the threshold must drop to 0.1% before a small fraction of paths
covers the misses.  §6.4.3: blocks on hot paths lie on many executed
paths (paper average ~16).
"""

from benchmarks.conftest import SCALE, once, workload_selection, write_result
from repro.experiments import hot_path_experiment
from repro.experiments.table4 import MANY_PATH_WORKLOADS
from repro.reporting import format_table


def test_table4_hot_paths(benchmark):
    names = workload_selection()
    rows = once(benchmark, lambda: hot_path_experiment(names, SCALE))
    text = format_table(rows, title=f"Table 4: misses by path (scale={SCALE})")
    write_result("table4_hot_paths.txt", text)

    regular = [
        r for r in rows
        if r["Benchmark"] in names and r["Benchmark"] not in MANY_PATH_WORKLOADS
    ]
    many_path = [r for r in rows if r["Benchmark"] in MANY_PATH_WORKLOADS]
    lowered = [r for r in rows if r["Benchmark"].endswith("@0.1%")]

    # Few hot paths cover most misses in the regular benchmarks.
    for row in regular:
        assert row["Hot Num"] <= 40, row["Benchmark"]
        assert row["Hot Miss%"] >= 50.0, row["Benchmark"]
        assert row["Hot Num"] == row["Dense Num"] + row["Sparse Num"]

    # go/gcc realize many more paths than the rest.
    if many_path and regular:
        median_regular = sorted(r["All Num"] for r in regular)[len(regular) // 2]
        for row in many_path:
            assert row["All Num"] >= 4 * median_regular, row["Benchmark"]
            # At 1% the coverage is poor...
            assert row["Hot Miss%"] < 75.0, row["Benchmark"]
    # ...and the 0.1% threshold recovers it (paper: 42-56%; our smaller
    # realized path population concentrates more).
    for row in lowered:
        assert row["Hot Miss%"] >= 40.0, row["Benchmark"]

    # Hot-path blocks execute along several paths (§6.4.3).
    with_blocks = [r for r in rows if r["Hot Num"] > 0]
    assert any(r["Paths/Block"] >= 2.0 for r in with_blocks)
