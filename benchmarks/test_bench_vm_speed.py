"""Simulator throughput: the predecoded engine vs the reference loop.

Runs the uninstrumented SPEC95-like suite under ``engine="simple"``
(the reference if/elif interpreter) and ``engine="fast"`` (the
predecoded block engine), checks the two agree bit-for-bit on every
counter, and records simulated instructions per second to
``BENCH_vm_speed.json`` at the repository root so the speedup is
tracked across PRs.

The fast engine is timed twice: cold (first run pays per-block decode
and bytecode compilation) and warm (decoded blocks cached — the regime
every experiment runs in, since each table simulates the same programs
under several configurations).  The asserted speedup is the warm one.

``REPRO_VM_SPEED_CHECK_ONLY=1`` relaxes the >=3x assertion to >1x for
noisy shared CI runners; ``REPRO_VM_SPEED_MIN`` overrides the target.
"""

import json
import os
import pathlib
import time

from benchmarks.conftest import SCALE, once, workload_selection
from repro.machine.vm import Machine
from repro.workloads.suite import build_workload

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_vm_speed.json"

#: Required warm speedup of fast over simple, unless check-only.
MIN_SPEEDUP = float(os.environ.get("REPRO_VM_SPEED_MIN", "3.0"))
CHECK_ONLY = os.environ.get("REPRO_VM_SPEED_CHECK_ONLY", "") not in ("", "0")


def _run_suite(programs, engine):
    """One full-suite pass; returns (instructions, seconds, run facts)."""
    total_instructions = 0
    facts = []
    start = time.perf_counter()
    for name, program in programs.items():
        result = Machine(program, engine=engine).run()
        total_instructions += result.instructions
        facts.append((name, result.counters, result.return_value, result.region_misses))
    elapsed = time.perf_counter() - start
    return total_instructions, elapsed, facts


def _best_of(n, fn):
    """Minimum wall time over ``n`` passes (noise floor, not average)."""
    best = None
    for _ in range(n):
        instructions, elapsed, facts = fn()
        if best is None or elapsed < best[1]:
            best = (instructions, elapsed, facts)
    return best


def test_vm_speed(benchmark):
    names = workload_selection()
    programs = {name: build_workload(name, SCALE) for name in names}

    def measure():
        simple_i, simple_t, simple_facts = _best_of(
            2, lambda: _run_suite(programs, "simple")
        )
        cold_i, cold_t, cold_facts = _run_suite(programs, "fast")
        warm_i, warm_t, warm_facts = _best_of(2, lambda: _run_suite(programs, "fast"))
        return (
            (simple_i, simple_t, simple_facts),
            (cold_i, cold_t, cold_facts),
            (warm_i, warm_t, warm_facts),
        )

    simple, cold, warm = once(benchmark, measure)
    simple_i, simple_t, simple_facts = simple
    cold_i, cold_t, cold_facts = cold
    warm_i, warm_t, warm_facts = warm

    # Both engines must be bit-identical in every counter, the return
    # value, and the per-region miss attribution, on every workload.
    assert simple_facts == cold_facts == warm_facts

    speedup_cold = simple_t / cold_t
    speedup_warm = simple_t / warm_t
    payload = {
        "scale": SCALE,
        "workloads": len(programs),
        "simulated_instructions": simple_i,
        "simple": {"seconds": round(simple_t, 4), "instructions_per_second": round(simple_i / simple_t)},
        "fast_cold": {"seconds": round(cold_t, 4), "instructions_per_second": round(cold_i / cold_t)},
        "fast_warm": {"seconds": round(warm_t, 4), "instructions_per_second": round(warm_i / warm_t)},
        "speedup_cold": round(speedup_cold, 2),
        "speedup_warm": round(speedup_warm, 2),
        "min_required": MIN_SPEEDUP,
        "check_only": CHECK_ONLY,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    if CHECK_ONLY:
        assert speedup_warm > 1.0, payload
    else:
        assert speedup_warm >= MIN_SPEEDUP, payload
