"""Simulator throughput: the predecoded engine vs the reference loop.

Runs the uninstrumented SPEC95-like suite under ``engine="simple"``
(the reference if/elif interpreter) and ``engine="fast"`` (the
predecoded block engine), checks the two agree bit-for-bit on every
counter, and records simulated instructions per second to
``BENCH_vm_speed.json`` at the repository root so the speedup is
tracked across PRs.

The fast engine is timed twice: cold (first run pays per-block decode
and bytecode compilation) and warm (decoded blocks cached — the regime
every experiment runs in, since each table simulates the same programs
under several configurations).  The asserted speedup is the warm one.

``REPRO_VM_SPEED_CHECK_ONLY=1`` relaxes the >=3x assertion to >1x for
noisy shared CI runners; ``REPRO_VM_SPEED_MIN`` overrides the target.
"""

import json
import os
import pathlib

from benchmarks.conftest import SCALE, once, workload_selection
from repro.tools.bench_runner import measure_vm_speed

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_vm_speed.json"

#: Required warm speedup of fast over simple, unless check-only.
MIN_SPEEDUP = float(os.environ.get("REPRO_VM_SPEED_MIN", "3.0"))
CHECK_ONLY = os.environ.get("REPRO_VM_SPEED_CHECK_ONLY", "") not in ("", "0")


def test_vm_speed(benchmark):
    names = workload_selection()
    payload = once(benchmark, lambda: measure_vm_speed(SCALE, names))
    payload["min_required"] = MIN_SPEEDUP
    payload["check_only"] = CHECK_ONLY
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    speedup_warm = payload["speedup_warm"]
    if CHECK_ONLY:
        assert speedup_warm > 1.0, payload
    else:
        assert speedup_warm >= MIN_SPEEDUP, payload
