"""Simulator throughput: the compiled engine tiers vs the reference loop.

Runs the uninstrumented SPEC95-like suite under ``engine="simple"``
(the reference if/elif interpreter), ``engine="fast"`` (the predecoded
block engine), and ``engine="trace"`` (the superblock trace tier),
checks all tiers agree bit-for-bit on every counter, and records
simulated instructions per second to ``BENCH_vm_speed.json`` at the
repository root so the speedups are tracked across PRs.

Each compiled tier is timed twice: cold (first run pays per-block
decode and bytecode compilation — the trace tier additionally pays, or
is spared by the persistent code cache, trace compilation) and warm
(compiled code cached — the regime every experiment runs in).  The
asserted speedups are the warm ones.

``REPRO_VM_SPEED_CHECK_ONLY=1`` relaxes both assertions to >1x for
noisy shared CI runners; ``REPRO_VM_SPEED_MIN`` and
``REPRO_TRACE_SPEED_MIN`` override the targets.
"""

import json
import os
import pathlib

from benchmarks.conftest import SCALE, once, workload_selection
from repro.tools.bench_runner import measure_vm_speed

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_vm_speed.json"

#: Required warm speedup of fast over simple, unless check-only.
MIN_SPEEDUP = float(os.environ.get("REPRO_VM_SPEED_MIN", "3.0"))
#: Required warm speedup of the trace tier over simple, unless
#: check-only.  Deliberately below the fast-tier gate: on the
#: call-heavy suite the tiers measure at parity (~3.3–3.7x here), and
#: the trace tier's headline win is the cold-start codegen the disk
#: cache eliminates, not warm throughput.
TRACE_MIN_SPEEDUP = float(os.environ.get("REPRO_TRACE_SPEED_MIN", "2.5"))
CHECK_ONLY = os.environ.get("REPRO_VM_SPEED_CHECK_ONLY", "") not in ("", "0")


def test_vm_speed(benchmark):
    names = workload_selection()
    payload = once(benchmark, lambda: measure_vm_speed(SCALE, names))
    payload["min_required"] = MIN_SPEEDUP
    payload["trace_min_required"] = TRACE_MIN_SPEEDUP
    payload["check_only"] = CHECK_ONLY
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    speedup_warm = payload["speedup_warm"]
    speedup_trace = payload["speedup_trace_warm"]
    # Warm passes must reuse every compiled block and trace.
    assert payload["fast_warm"]["source_cache_misses"] == 0, payload
    assert payload["trace_warm"]["traces_generated"] == 0, payload
    if CHECK_ONLY:
        assert speedup_warm > 1.0, payload
        assert speedup_trace > 1.0, payload
    else:
        assert speedup_warm >= MIN_SPEEDUP, payload
        assert speedup_trace >= TRACE_MIN_SPEEDUP, payload
