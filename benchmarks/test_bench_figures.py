"""Figures 1-5: the path-numbering example and DCT/DCG/CCT contrast.

Figure 1/2: six unique compact path sums, with both instrumentation
placements verified.  Figure 4: C keeps two calling contexts in the CCT
that the DCG conflates, and the DCG admits an infeasible path.  Figure
5: recursion collapses into a bounded CCT with backedges.
"""

import json

from benchmarks.conftest import once, write_result
from repro.experiments import figure1_report, figure4_report


def test_figure1_path_numbering(benchmark):
    report = once(benchmark, figure1_report)
    write_result("figure1_labelling.txt", json.dumps(report, indent=2, default=str))
    assert report["num_paths"] == 6
    sums = sorted(row["Path Sum"] for row in report["paths"])
    assert sums == [0, 1, 2, 3, 4, 5]
    assert report["optimized_increments"] <= report["simple_increments"]


def test_figure4_calling_structures(benchmark):
    report = once(benchmark, figure4_report)
    write_result("figure4_cct.txt", json.dumps(report, indent=2, default=str))
    assert report["cct_contexts_of_C"] == ["M -> A -> C", "M -> D -> C"]
    assert report["dcg_infeasible_path_exists"]


def test_figure5_recursion_bounds_cct(benchmark):
    """A deep recursion's CCT stays bounded while its DCT grows."""
    from repro.machine.memory import MemoryMap
    from repro.machine.vm import Machine
    from repro.cct.dct import DynamicCallRecorder
    from repro.cct.runtime import CCTRuntime
    from repro.instrument.cctinstr import instrument_context
    from repro.workloads import make_recursive_program

    def build():
        program = make_recursive_program("fig5", seed=5, iterations=8, depth=9)
        recorder = DynamicCallRecorder()
        machine = Machine(program)
        machine.tracer = recorder
        machine.run()

        instrumented = make_recursive_program("fig5", seed=5, iterations=8, depth=9)
        instrument_context(instrumented)
        runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=False)
        machine = Machine(instrumented)
        machine.cct_runtime = runtime
        machine.run()
        return recorder.tree.size(), len(runtime.records) - 1

    dct_size, cct_nodes = once(benchmark, build)
    write_result(
        "figure5_recursion.txt",
        f"DCT activations: {dct_size}\nCCT records: {cct_nodes}\n",
    )
    assert dct_size > 10 * cct_nodes  # unbounded tree vs bounded CCT
