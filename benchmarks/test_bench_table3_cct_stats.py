"""Table 3: CCT statistics under combined flow+context profiling (§6.3).

Paper shape: CCTs are bushy rather than tall (height bounded by the
procedure count, breadth large), node counts vary by orders of
magnitude with the vortex-like call-layer program the largest, and a
meaningful fraction of used call sites is reached by exactly one
intraprocedural path — where the combination equals full
interprocedural path profiling.
"""

from benchmarks.conftest import SCALE, once, workload_selection, write_result
from repro.experiments import cct_stats_experiment
from repro.reporting import format_table
from repro.workloads.suite import build_workload


def test_table3_cct_statistics(benchmark):
    names = workload_selection()
    rows = once(benchmark, lambda: cct_stats_experiment(names, SCALE))
    text = format_table(rows, title=f"Table 3: CCT statistics (scale={SCALE})")
    write_result("table3_cct_stats.txt", text)

    by_name = {r["Benchmark"]: r for r in rows}
    for name, row in by_name.items():
        nprocs = len(build_workload(name, SCALE).functions)
        # Depth bounded by the number of procedures (§4.1) (+1: root).
        assert row["Height Max"] <= nprocs + 1, name
        assert row["Used"] <= row["Call Sites"], name
        assert row["One Path"] is None or row["One Path"] <= row["Used"]
        assert row["Size"] > 0 and row["Nodes"] >= 1

    if "147.vortex" in by_name:
        others = [r["Nodes"] for n, r in by_name.items() if n != "147.vortex"]
        assert by_name["147.vortex"]["Nodes"] >= max(others)
