"""Context-sensitive profiling: the CCT vs. the gprof approximation.

A callee whose cost depends on who called it is exactly what gprof
cannot express (paper §1, §7.1, citing Ponder & Fateman).  This example
builds the CCT for such a program, prints the per-context truth, what
gprof would report, and the one-level caller/callee pairs — and shows
the recursion handling of Figure 5.

Run:  python examples/calling_context.py
"""

from repro.cct.gprof import cct_truth, gprof_attribution, pair_attribution
from repro.cct.stats import cct_statistics
from repro.lang import compile_source
from repro.reporting import format_table
from repro.tools import PP

SOURCE = """
global scratch[4096];

fn smooth(n) {
    // cost proportional to n
    var i = 0; var sum = 0;
    while (i < n) { sum = sum + scratch[i & 4095]; i = i + 1; }
    return sum;
}

fn preview(image) {
    // thumbnails: cheap calls to smooth
    return smooth(8);
}

fn render(image) {
    // full quality: expensive calls to smooth
    return smooth(800);
}

fn walk(depth) {
    // recursion: every level collapses into one CCT record
    if (depth == 0) { return preview(depth); }
    return walk(depth - 1) + 1;
}

fn main() {
    var i = 0; var out = 0;
    while (i < 40) {
        out = out + preview(i);
        if (i % 20 == 0) { out = out + render(i); }
        i = i + 1;
    }
    out = out + walk(6);
    return out;
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    run = PP().context_hw(program)
    cct = run.cct

    print("calling context tree (one line per context):")
    rows = []
    for record in cct.records:
        if record is cct.root:
            continue
        rows.append(
            {
                "Context": " -> ".join(record.context()[1:]),
                "Calls": record.metrics[0],
                "Instrs (incl.)": record.metrics[1],
            }
        )
    rows.sort(key=lambda r: r["Context"])
    print(format_table(rows))

    truth = cct_truth(cct, metric=1)
    gprof = gprof_attribution(cct, metric=1)
    pairs = pair_attribution(cct, metric=1)

    print("\nWho pays for smooth()?")
    comparison = []
    for caller in ("preview", "render"):
        context = next(
            (k for k in truth if k[-2:] == (caller, "smooth")), None
        )
        comparison.append(
            {
                "Caller": caller,
                "CCT truth": truth.get(context, 0),
                "Pairs (PF88)": pairs.measured.get((caller, "smooth"), 0),
                "gprof estimate": round(
                    gprof.attributed.get((caller, "smooth"), 0.0)
                ),
            }
        )
    print(format_table(comparison))
    print(
        "\ngprof splits smooth's total by call counts (42 cheap vs 2 "
        "expensive calls), so it blames preview for cost render incurred."
    )

    walk_records = [r for r in cct.records if r.id == "walk"]
    print(
        f"\nrecursion: walk() was activated "
        f"{walk_records[0].metrics[0]} times but occupies "
        f"{len(walk_records)} CCT record (Figure 5's backedge rule)"
    )

    stats = cct_statistics(cct)
    print(
        f"\nCCT: {stats.nodes} nodes, height {stats.height_max}, "
        f"{stats.size_bytes} bytes, max replication {stats.max_replication}"
    )


if __name__ == "__main__":
    main()
