"""Tour of the extensions: signals, sampling, stitching, rendering.

* a periodic signal handler gets its own CCT root (§4.2's note);
* the Goldberg–Hall stack sampler (§7.2) estimates what the CCT counts
  exactly, with unbounded storage;
* combined flow+context profiles stitch into an interprocedural hot
  path through one-path call sites (§6.3);
* the CCT renders as an ASCII tree and Graphviz DOT.

Run:  python examples/advanced_tour.py
"""

from repro.cct.dag import compact_dag, dag_statistics
from repro.cct.runtime import CCTRuntime
from repro.cct.dct import DynamicCallRecorder
from repro.instrument.cctinstr import instrument_context
from repro.lang import compile_source
from repro.machine.memory import MemoryMap
from repro.machine.vm import Machine
from repro.profiles.interproc import stitch_hot_path
from repro.profiles.sampling import StackSampler
from repro.render import render_cct_ascii
from repro.tools import PP

SOURCE = """
global journal[512];

fn checkpoint(n) {
    journal[n & 511] = n;
    return 0;
}

fn parse(i) {
    var j = 0; var sum = 0;
    while (j < 6) { sum = sum + journal[(i * 5 + j) & 511]; j = j + 1; }
    return sum;
}

fn evaluate(i) {
    var v = parse(i);
    if (v % 3 == 0) { return v * 2; }
    return v + 1;
}

fn main() {
    var i = 0; var out = 0;
    while (i < 120) {
        out = out + evaluate(i);
        i = i + 1;
    }
    return out & 65535;
}
"""


def main() -> None:
    # --- signals: a second CCT root ----------------------------------
    program = compile_source(SOURCE)
    instrument_context(program)
    runtime = CCTRuntime(MemoryMap().cct.base, collect_hw=True)
    machine = Machine(program)
    machine.cct_runtime = runtime
    machine.install_signal(handler="checkpoint", period=600)
    machine.run()
    print(f"signals delivered: {machine.signals_delivered}")
    print("\nCCT with the handler as an extra entry point:")
    print(render_cct_ascii(runtime.root, metric=0))

    # --- sampling vs exact counting -----------------------------------
    program = compile_source(SOURCE)
    sampler = StackSampler(period=16)
    machine = Machine(program)
    machine.tracer = sampler
    result = machine.run()
    shares = sampler.context_shares()
    hottest = max(shares, key=shares.get)
    print(
        f"\nsampler: {len(sampler.samples)} samples, "
        f"{sampler.storage_cells()} stack cells stored (unbounded!)\n"
        f"hottest sampled context: {' -> '.join(hottest)} "
        f"({100 * shares[hottest]:.0f}% of samples)"
    )

    # --- DAG compaction (the [JSB97] alternative) ----------------------
    program = compile_source(SOURCE)
    recorder = DynamicCallRecorder()
    machine = Machine(program)
    machine.tracer = recorder
    machine.run()
    print(f"\nDAG compaction: {dag_statistics(compact_dag(recorder.tree))}")

    # --- interprocedural stitching -------------------------------------
    program = compile_source(SOURCE)
    run = PP().context_flow(program)
    stitched = stitch_hot_path(run)
    print("\nstitched interprocedural hot path")
    print("(= exact through a one-path call site, ~ hottest-guess):")
    print(stitched.describe())


if __name__ == "__main__":
    main()
