"""Survey the SPEC95-like suite: a miniature of the paper's evaluation.

Runs a cross-section of the workload suite under every profiling
configuration and prints condensed versions of Table 1 (overhead) and
Table 4 (hot paths).  For the full 18-benchmark tables, run the
benchmark harness (``pytest benchmarks/ --benchmark-only``) or see
EXPERIMENTS.md.

Run:  python examples/spec_survey.py [scale]
"""

import sys

from repro.experiments import hot_path_experiment, overhead_experiment
from repro.reporting import format_table

WORKLOADS = [
    "099.go",        # branchy: the many-paths outlier
    "126.gcc",       # branchy
    "129.compress",  # two hot procedures
    "130.li",        # interpreter with indirect dispatch
    "147.vortex",    # deep call layers: the big CCT
    "101.tomcatv",   # loop kernel: one dominant procedure
    "107.mgrid",     # loop kernel
    "145.fpppp",     # recursion
]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5

    print(f"running {len(WORKLOADS)} workloads at scale {scale} ...\n")
    rows = overhead_experiment(WORKLOADS, scale)
    print(format_table(
        rows,
        columns=[
            "Benchmark", "Base Time", "Flow+HW x", "Context+HW x",
            "Context+Flow x",
        ],
        title="Table 1 (condensed): profiling overhead (x base cycles)",
    ))

    print()
    rows = hot_path_experiment(WORKLOADS, scale)
    print(format_table(
        rows,
        columns=[
            "Benchmark", "All Num", "All Miss", "Hot Num", "Hot Miss%",
            "Dense Num", "Sparse Num", "Cold Num", "Cold Miss%",
            "Paths/Block",
        ],
        title="Table 4 (condensed): L1 D-cache misses by path",
    ))
    print(
        "\nNote how the go/gcc rows realize an order of magnitude more "
        "paths and need the 0.1% threshold — the paper's §6.4.1 "
        "observation."
    )


if __name__ == "__main__":
    main()
