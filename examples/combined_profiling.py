"""Combined flow+context profiling: paths inside calling contexts.

The paper's §4.3 combination stores each procedure's path counters in
its CCT call record, approximating interprocedural path profiling.
Here the same procedure (``transform``) behaves differently depending
on its caller: batch processing drives it down the vectorized path,
interactive use down the fallback path.  A flow-only profile mixes the
two; the combined profile separates them per context.  The CCT is then
serialized and reloaded, as PP writes its heap at program exit.

Run:  python examples/combined_profiling.py
"""

import os
import tempfile

from repro.cct.serialize import load_cct, save_cct
from repro.cct.stats import cct_statistics
from repro.lang import compile_source
from repro.reporting import format_table
from repro.tools import PP

SOURCE = """
global buffer[2048];

fn transform(i, aligned) {
    var sum = 0;
    if (aligned != 0) {
        // vectorized path
        var j = 0;
        while (j < 16) { sum = sum + buffer[(i + j) & 2047]; j = j + 2; }
    } else {
        // scalar fallback path
        var j = 0;
        while (j < 4) { sum = sum + buffer[(i * 7 + j) & 2047]; j = j + 1; }
    }
    return sum;
}

fn batch(i) { return transform(i, 1); }
fn interactive(i) { return transform(i, 0); }

fn main() {
    var i = 0; var out = 0;
    while (i < 120) {
        out = out + batch(i);
        if (i % 3 == 0) { out = out + interactive(i); }
        i = i + 1;
    }
    return out & 65535;
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    run = PP().context_flow(program)
    cct = run.cct

    print("transform's path profile, per calling context:")
    rows = []
    for record in cct.records:
        table = record.path_tables.get("transform")
        if table is None:
            continue
        context = " -> ".join(record.context()[1:])
        numbering = run.flow.functions["transform"].numbering
        for path_sum, count in sorted(table.counts.items()):
            rows.append(
                {
                    "Context": context,
                    "Path": numbering.regenerate(path_sum).describe()[:48],
                    "Freq": count,
                }
            )
    print(format_table(rows))

    print(
        "\nA flow-only profile would sum the two contexts; the combined "
        "profile shows batch drives the vectorized path and interactive "
        "the fallback."
    )

    stats = cct_statistics(cct, run.program, run.flow.functions)
    print(
        f"\nCall sites reached by exactly one path in their context: "
        f"{stats.call_sites_one_path} of {stats.call_sites_used} used "
        f"(there, flow+context equals full interprocedural path profiling)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "program.cct")
        save_cct(cct, path)
        size = os.path.getsize(path)
        loaded = load_cct(path)
        print(
            f"\nserialized the CCT to {size} bytes on disk "
            f"({cct.heap_bytes()} simulated heap bytes); reload has "
            f"{len(loaded.records)} records"
        )


if __name__ == "__main__":
    main()
