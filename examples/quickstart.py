"""Quickstart: profile a program's paths with hardware metrics.

Compiles a small program, runs it under PP's Flow-and-HW configuration
(PIC0 = instructions, PIC1 = L1 D-cache misses, as in the paper's
Table 4), and prints every executed path with its metrics — then the
paper's Figure 1 example for reference.

Run:  python examples/quickstart.py
"""

from repro.experiments import figure1_report
from repro.lang import compile_source
from repro.profiles import classify_paths
from repro.reporting import format_table
from repro.tools import PP

SOURCE = """
global table[8192];

fn lookup(key) {
    var h = (key * 2654435761) & 8191;
    if (table[h] == key) { return 1; }     // hit: one probe
    table[h] = key;                         // miss: install
    return 0;
}

fn main() {
    var i = 0;
    var hits = 0;
    while (i < 3000) {
        hits = hits + lookup(i % 700);
        i = i + 1;
    }
    return hits;
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    pp = PP()

    base = pp.baseline(program)
    run = pp.flow_hw(program)
    print(f"result = {run.return_value} (uninstrumented: {base.return_value})")
    print(f"profiling overhead: {run.overhead_vs(base):.2f}x base\n")

    rows = []
    for name, function_profile in run.path_profile.functions.items():
        for entry in function_profile.entries():
            decoded = function_profile.decode(entry.path_sum)
            rows.append(
                {
                    "Function": name,
                    "Path": decoded.describe(),
                    "Freq": entry.freq,
                    "Instrs": entry.instructions,
                    "L1D Misses": entry.misses,
                    "Miss/Instr": round(
                        entry.misses / entry.instructions, 4
                    ) if entry.instructions else 0,
                }
            )
    rows.sort(key=lambda r: -r["L1D Misses"])
    print(format_table(rows, title="Executed paths (hottest first)"))

    report = classify_paths(run.path_profile, threshold=0.01)
    print(
        f"\n{report.hot.num} hot paths carry "
        f"{100 * report.hot.miss_share(report.total_misses):.1f}% of the misses"
    )

    fig1 = figure1_report()
    print("\n--- Paper Figure 1 (the six-path example) ---")
    print(format_table(fig1["paths"]))
    print(f"simple placement:   {fig1['simple_increments']} increment sites")
    print(f"optimized placement: {fig1['optimized_increments']} increment sites")


if __name__ == "__main__":
    main()
