"""Hot-path hunting: find a cache conflict the way the paper intends.

The program interleaves two computations; one of them ping-pongs
between two arrays that map to the same cache sets.  A flow-INsensitive
profile (per procedure) only says "process() misses a lot"; the
flow-sensitive path profile shows the misses concentrate on the single
path where both arrays are touched — the cache-conflict diagnosis the
paper's introduction motivates.  We then pad one array to break the
conflict and measure again.

Run:  python examples/hot_paths.py
"""

from repro.lang import compile_source
from repro.profiles import classify_paths, classify_procedures
from repro.reporting import format_table
from repro.tools import PP

#: The 16KB direct-mapped cache holds 2048 8-byte words.  With
#: spacer = 1536, array b starts exactly 2048 words after a, so
#: a[k] and b[k] always map to the same set and the interleaved
#: accesses ping-pong.  Growing the spacer by the access window
#: (64 lines = 256 words) moves b's sets clear of a's.
TEMPLATE = """
global a[512];
global spacer[{spacer}];
global b[512];

fn process(i) {{
    var sum = 0;
    if (i % 8 == 0) {{
        // the conflict path: alternating same-set accesses
        var j = 0;
        while (j < 64) {{
            sum = sum + a[j * 4] + b[j * 4];
            j = j + 1;
        }}
    }} else {{
        // the friendly path: sequential walk of one array
        var j = 0;
        while (j < 64) {{
            sum = sum + a[j];
            j = j + 1;
        }}
    }}
    return sum;
}}

fn main() {{
    var i = 0;
    var total = 0;
    while (i < 400) {{
        total = total + process(i);
        i = i + 1;
    }}
    return total & 65535;
}}
"""


def profile(spacer: int, label: str) -> int:
    program = compile_source(TEMPLATE.format(spacer=spacer))
    run = PP().flow_hw(program)

    print(f"=== {label} (spacer = {spacer} words) ===")
    procs = classify_procedures(run.path_profile, threshold=0.01)
    print(format_table(
        [
            {
                "Procedure": e.function,
                "Paths": e.executed_paths,
                "Misses": e.misses,
                "Miss/Instr": round(e.miss_ratio, 4),
                "Class": e.klass.value,
            }
            for e in procs.entries
        ],
        title="Per procedure (what a flow-insensitive profiler sees)",
    ))

    report = classify_paths(run.path_profile, threshold=0.01)
    rows = []
    for classified in report.classified:
        entry = classified.entry
        fpp = run.path_profile.functions[entry.function]
        rows.append(
            {
                "Function": entry.function,
                "Path": fpp.decode(entry.path_sum).describe()[:60],
                "Freq": entry.freq,
                "Misses": entry.misses,
                "Class": classified.klass.value,
            }
        )
    rows.sort(key=lambda r: -r["Misses"])
    print(format_table(rows[:6], title="Per path (what PP sees)"))
    total = report.total_misses
    print(f"total L1D misses: {total}\n")
    return total


def main() -> None:
    conflicted = profile(spacer=1536, label="conflicting layout")
    fixed = profile(spacer=1792, label="padded layout")
    print(
        f"padding the arrays apart removed "
        f"{100 * (conflicted - fixed) / conflicted:.0f}% of the misses"
    )


if __name__ == "__main__":
    main()
