"""Code generation: mini-language AST -> IR.

Register discipline: parameters first, then every ``var`` of the
function (the namespace is flat, as in early C), then a stack of
expression temporaries.  A function that cannot fit in the register
file is rejected with a clean error — mirroring the era's compilers —
which also guarantees the *instrumentation* is what introduces any
spilling, as in the paper's perturbation discussion.

Float arithmetic is exposed through the ``fadd``/``fsub``/``fmul``/
``fdiv`` intrinsics (they compile to FP-unit instructions with real
latencies); the infix operators are integer.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.function import Program
from repro.ir.instructions import Imm
from repro.lang import ast
from repro.lang.lexer import LangError
from repro.lang.parser import parse_source
from repro.lang.sema import check_module
from repro.machine.memory import WORD

#: Must match MemoryMap's globals region base.
GLOBALS_BASE = 0x0001_0000

_BINOPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
    "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}

_FLOAT_INTRINSICS = {"fadd": "fadd", "fsub": "fsub", "fmul": "fmul", "fdiv": "fdiv"}


class _FunctionCodegen:
    def __init__(
        self,
        decl: ast.FnDecl,
        arrays: Dict[str, int],
        functions: Dict[str, ast.FnDecl],
        num_regs: int,
    ):
        self.decl = decl
        self.arrays = arrays
        self.functions = functions
        self.fb = FunctionBuilder(decl.name, num_params=len(decl.params), num_regs=num_regs)
        self.locals: Dict[str, int] = {}
        for index, param in enumerate(decl.params):
            self.locals[param] = index
        for name in _collect_locals(decl.body):
            if name not in self.locals:
                reg = len(self.locals)
                if reg >= num_regs:
                    raise LangError(
                        f"{decl.name!r} needs more than {num_regs} registers",
                        decl.line,
                    )
                self.locals[name] = reg
        self.temp_base = len(self.locals)
        self._free_temps: List[int] = []
        self._next_temp = self.temp_base
        self._labels = 0
        self._loop_stack: List[tuple] = []

    # -- registers ------------------------------------------------------------

    def alloc_temp(self) -> int:
        if self._free_temps:
            return self._free_temps.pop()
        reg = self._next_temp
        if reg >= self.fb.function.num_regs:
            raise LangError(
                f"{self.decl.name!r}: expression too complex for the "
                f"{self.fb.function.num_regs}-register file",
                self.decl.line,
            )
        self._next_temp += 1
        return reg

    def free_temp(self, reg: int) -> None:
        if reg >= self.temp_base:
            self._free_temps.append(reg)

    # -- labels / blocks -----------------------------------------------------------

    def label(self, hint: str) -> str:
        self._labels += 1
        return f"{hint}{self._labels}"

    def terminated(self) -> bool:
        current = self.fb._current
        if current is None or not current.instrs:
            return False
        from repro.ir.instructions import is_terminator

        return is_terminator(current.instrs[-1])

    def branch_to(self, target: str) -> None:
        if not self.terminated():
            self.fb.br(target)

    # -- expressions -----------------------------------------------------------------

    def gen_expr(self, expr: ast.Expr) -> int:
        """Emit code computing ``expr``; returns the register holding it.

        Caller frees the register through :meth:`free_temp` (a no-op
        when the value sits in a local/param).
        """
        fb = self.fb
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            dst = self.alloc_temp()
            fb.const(expr.value, dst=dst)
            return dst
        if isinstance(expr, ast.Name):
            return self.locals[expr.ident]
        if isinstance(expr, ast.Index):
            addr = self.gen_address(expr)
            dst = self.alloc_temp()
            fb.load(addr, 0, dst=dst)
            self.free_temp(addr)
            return dst
        if isinstance(expr, ast.Unary):
            operand = self.gen_expr(expr.operand)
            dst = self.alloc_temp()
            if expr.op == "-":
                fb.const(0, dst=dst)
                fb.binop("sub", dst, operand, dst=dst)
            else:  # '!'
                fb.binop("eq", operand, Imm(0), dst=dst)
            self.free_temp(operand)
            return dst
        if isinstance(expr, ast.BinOp):
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            dst = self.alloc_temp()
            fb.binop(_BINOPS[expr.op], left, right, dst=dst)
            self.free_temp(left)
            self.free_temp(right)
            return dst
        if isinstance(expr, ast.Logical):
            return self.gen_logical(expr)
        if isinstance(expr, ast.CallExpr):
            if expr.callee in _FLOAT_INTRINSICS:
                left = self.gen_expr(expr.args[0])
                right = self.gen_expr(expr.args[1])
                dst = self.alloc_temp()
                fb.fbinop(_FLOAT_INTRINSICS[expr.callee], left, right, dst=dst)
                self.free_temp(left)
                self.free_temp(right)
                return dst
            args = [self.gen_expr(arg) for arg in expr.args]
            dst = self.alloc_temp()
            fb.call(expr.callee, list(args), dst=dst)
            for arg in args:
                self.free_temp(arg)
            return dst
        raise LangError(f"unhandled expression {expr!r}", getattr(expr, "line", 0))

    def gen_address(self, index: ast.Index) -> int:
        """Address of a global array element, in a temp register."""
        base = self.arrays[index.array]
        reg = self.gen_expr(index.index)
        addr = self.alloc_temp()
        self.fb.binop("mul", reg, Imm(WORD), dst=addr)
        self.fb.binop("add", addr, Imm(GLOBALS_BASE + base * WORD), dst=addr)
        self.free_temp(reg)
        return addr

    def gen_logical(self, expr: ast.Logical) -> int:
        fb = self.fb
        result = self.alloc_temp()
        rhs_label = self.label("L")
        short_label = self.label("L")
        join_label = self.label("L")
        left = self.gen_expr(expr.left)
        if expr.op == "&&":
            fb.cbr(left, rhs_label, short_label)
            short_value = 0
        else:
            fb.cbr(left, short_label, rhs_label)
            short_value = 1
        self.free_temp(left)
        fb.block(rhs_label)
        right = self.gen_expr(expr.right)
        fb.binop("ne", right, Imm(0), dst=result)
        self.free_temp(right)
        fb.br(join_label)
        fb.block(short_label)
        fb.const(short_value, dst=result)
        fb.br(join_label)
        fb.block(join_label)
        return result

    # -- statements ------------------------------------------------------------------

    def gen_body(self, body: List[ast.Stmt]) -> None:
        for stmt in body:
            if self.terminated():
                return  # dead code after return/break/continue
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        fb = self.fb
        if isinstance(stmt, ast.VarDecl):
            value = self.gen_expr(stmt.init)
            fb.move(self.locals[stmt.name], value)
            self.free_temp(value)
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.Name):
                value = self.gen_expr(stmt.value)
                fb.move(self.locals[stmt.target.ident], value)
                self.free_temp(value)
            else:
                addr = self.gen_address(stmt.target)
                value = self.gen_expr(stmt.value)
                fb.store(value, addr, 0)
                self.free_temp(value)
                self.free_temp(addr)
        elif isinstance(stmt, ast.If):
            then_label = self.label("then")
            else_label = self.label("else") if stmt.else_body else None
            join_label = self.label("join")
            cond = self.gen_expr(stmt.cond)
            fb.cbr(cond, then_label, else_label or join_label)
            self.free_temp(cond)
            fb.block(then_label)
            self.gen_body(stmt.then_body)
            self.branch_to(join_label)
            if else_label is not None:
                fb.block(else_label)
                self.gen_body(stmt.else_body)
                self.branch_to(join_label)
            fb.block(join_label)
        elif isinstance(stmt, ast.While):
            head_label = self.label("head")
            body_label = self.label("body")
            exit_label = self.label("exit")
            fb.br(head_label)
            fb.block(head_label)
            cond = self.gen_expr(stmt.cond)
            fb.cbr(cond, body_label, exit_label)
            self.free_temp(cond)
            fb.block(body_label)
            self._loop_stack.append((head_label, exit_label))
            self.gen_body(stmt.body)
            self._loop_stack.pop()
            self.branch_to(head_label)
            fb.block(exit_label)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                fb.ret(Imm(0))
            else:
                value = self.gen_expr(stmt.value)
                fb.ret(value)
                self.free_temp(value)
        elif isinstance(stmt, ast.Break):
            fb.br(self._loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            fb.br(self._loop_stack[-1][0])
        elif isinstance(stmt, ast.ExprStmt):
            value = self.gen_expr(stmt.expr)
            self.free_temp(value)
        else:
            raise LangError(f"unhandled statement {stmt!r}", getattr(stmt, "line", 0))

    # -- driver -----------------------------------------------------------------------

    def generate(self):
        self.fb.block("entry")
        self.gen_body(self.decl.body)
        if not self.terminated():
            self.fb.ret(Imm(0))
        return self.fb


def _collect_locals(body: List[ast.Stmt]) -> List[str]:
    names: List[str] = []

    def walk(stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.VarDecl):
                names.append(stmt.name)
            elif isinstance(stmt, ast.If):
                walk(stmt.then_body)
                walk(stmt.else_body)
            elif isinstance(stmt, ast.While):
                walk(stmt.body)

    walk(body)
    return names


def compile_source(source: str, num_regs: int = 32) -> Program:
    """Compile mini-language source to a validated IR program."""
    module = parse_source(source)
    check_module(module)

    arrays: Dict[str, int] = {}
    offset = 0
    for declaration in module.globals:
        arrays[declaration.name] = offset
        offset += declaration.words

    functions = {fn.name: fn for fn in module.functions}
    pb = ProgramBuilder(entry="main")
    for declaration in module.functions:
        codegen = _FunctionCodegen(declaration, arrays, functions, num_regs)
        pb.add(codegen.generate())
    program = pb.finish(validate=True)
    program.globals_size = offset
    return program
