"""Semantic checks: names, arity, assignment targets, break placement."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.lang import ast
from repro.lang.lexer import LangError

#: FP intrinsics (compiled to FP-unit instructions by codegen).
_INTRINSICS = frozenset({"fadd", "fsub", "fmul", "fdiv"})


def check_module(module: ast.Module) -> None:
    """Raise :class:`LangError` on the first semantic violation."""
    arrays: Dict[str, ast.GlobalArray] = {}
    for declaration in module.globals:
        if declaration.name in arrays:
            raise LangError(
                f"duplicate global {declaration.name!r}", declaration.line
            )
        if declaration.words <= 0:
            raise LangError(
                f"global {declaration.name!r} must have positive size",
                declaration.line,
            )
        arrays[declaration.name] = declaration

    functions: Dict[str, ast.FnDecl] = {}
    for function in module.functions:
        if function.name in functions:
            raise LangError(f"duplicate function {function.name!r}", function.line)
        if function.name in arrays:
            raise LangError(
                f"{function.name!r} is both a global and a function", function.line
            )
        if len(set(function.params)) != len(function.params):
            raise LangError(
                f"duplicate parameter in {function.name!r}", function.line
            )
        functions[function.name] = function

    if "main" not in functions:
        raise LangError("no 'main' function", 0)

    for function in module.functions:
        _check_function(function, arrays, functions)


def _check_function(
    function: ast.FnDecl,
    arrays: Dict[str, ast.GlobalArray],
    functions: Dict[str, ast.FnDecl],
) -> None:
    scope: Set[str] = set(function.params)

    def check_expr(expr: ast.Expr) -> None:
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            return
        if isinstance(expr, ast.Name):
            if expr.ident not in scope:
                raise LangError(
                    f"undefined variable {expr.ident!r} in {function.name!r}",
                    expr.line,
                )
            return
        if isinstance(expr, ast.Index):
            if expr.array not in arrays:
                raise LangError(
                    f"undefined global array {expr.array!r}", expr.line
                )
            check_expr(expr.index)
            return
        if isinstance(expr, ast.Unary):
            check_expr(expr.operand)
            return
        if isinstance(expr, (ast.BinOp, ast.Logical)):
            check_expr(expr.left)
            check_expr(expr.right)
            return
        if isinstance(expr, ast.CallExpr):
            if expr.callee in _INTRINSICS:
                if len(expr.args) != 2:
                    raise LangError(
                        f"intrinsic {expr.callee!r} takes 2 args", expr.line
                    )
                for arg in expr.args:
                    check_expr(arg)
                return
            callee = functions.get(expr.callee)
            if callee is None:
                raise LangError(f"undefined function {expr.callee!r}", expr.line)
            if len(expr.args) != len(callee.params):
                raise LangError(
                    f"{expr.callee!r} takes {len(callee.params)} args, "
                    f"got {len(expr.args)}",
                    expr.line,
                )
            for arg in expr.args:
                check_expr(arg)
            return
        raise LangError(f"unhandled expression {expr!r}", getattr(expr, "line", 0))

    def check_body(body: List[ast.Stmt], in_loop: bool) -> None:
        for stmt in body:
            if isinstance(stmt, ast.VarDecl):
                check_expr(stmt.init)
                scope.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                if isinstance(stmt.target, ast.Name):
                    if stmt.target.ident not in scope:
                        raise LangError(
                            f"assignment to undeclared {stmt.target.ident!r}",
                            stmt.line,
                        )
                else:
                    check_expr(stmt.target)
                check_expr(stmt.value)
            elif isinstance(stmt, ast.If):
                check_expr(stmt.cond)
                check_body(stmt.then_body, in_loop)
                check_body(stmt.else_body, in_loop)
            elif isinstance(stmt, ast.While):
                check_expr(stmt.cond)
                check_body(stmt.body, True)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    check_expr(stmt.value)
            elif isinstance(stmt, (ast.Break, ast.Continue)):
                if not in_loop:
                    kind = "break" if isinstance(stmt, ast.Break) else "continue"
                    raise LangError(f"{kind} outside a loop", stmt.line)
            elif isinstance(stmt, ast.ExprStmt):
                check_expr(stmt.expr)
            else:
                raise LangError(f"unhandled statement {stmt!r}", getattr(stmt, "line", 0))

    check_body(function.body, False)
