"""Recursive-descent parser with precedence-climbing expressions."""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast
from repro.lang.lexer import LangError, Token, tokenize

#: Binary operator precedence (higher binds tighter).  ``&&``/``||``
#: are handled separately for short-circuiting.
_PRECEDENCE = {
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_LOGICAL = {"||": 1, "&&": 2}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise LangError(f"expected {want!r}, found {token.text!r}", token.line)
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    # -- top level ---------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        module = ast.Module()
        while self.peek().kind != "eof":
            token = self.peek()
            if token.kind == "global":
                module.globals.append(self.parse_global())
            elif token.kind == "fn":
                module.functions.append(self.parse_fn())
            else:
                raise LangError(
                    f"expected 'fn' or 'global', found {token.text!r}", token.line
                )
        return module

    def parse_global(self) -> ast.GlobalArray:
        line = self.expect("global").line
        name = self.expect("ident").text
        self.expect("punct", "[")
        words = int(self.expect("int").text)
        self.expect("punct", "]")
        self.expect("punct", ";")
        return ast.GlobalArray(name, words, line)

    def parse_fn(self) -> ast.FnDecl:
        line = self.expect("fn").line
        name = self.expect("ident").text
        self.expect("punct", "(")
        params: List[str] = []
        if not self.accept("punct", ")"):
            while True:
                params.append(self.expect("ident").text)
                if self.accept("punct", ")"):
                    break
                self.expect("punct", ",")
        body = self.parse_block()
        return ast.FnDecl(name, params, body, line)

    # -- statements -----------------------------------------------------------------

    def parse_block(self) -> List[ast.Stmt]:
        self.expect("punct", "{")
        stmts: List[ast.Stmt] = []
        while not self.accept("punct", "}"):
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self) -> ast.Stmt:
        token = self.peek()
        if token.kind == "var":
            self.next()
            name = self.expect("ident").text
            self.expect("op", "=")
            init = self.parse_expr()
            self.expect("punct", ";")
            return ast.VarDecl(name, init, token.line)
        if token.kind == "if":
            self.next()
            self.expect("punct", "(")
            cond = self.parse_expr()
            self.expect("punct", ")")
            then_body = self.parse_block()
            else_body: List[ast.Stmt] = []
            if self.accept("else"):
                if self.peek().kind == "if":
                    else_body = [self.parse_stmt()]
                else:
                    else_body = self.parse_block()
            return ast.If(cond, then_body, else_body, token.line)
        if token.kind == "while":
            self.next()
            self.expect("punct", "(")
            cond = self.parse_expr()
            self.expect("punct", ")")
            body = self.parse_block()
            return ast.While(cond, body, token.line)
        if token.kind == "return":
            self.next()
            value: Optional[ast.Expr] = None
            if not (self.peek().kind == "punct" and self.peek().text == ";"):
                value = self.parse_expr()
            self.expect("punct", ";")
            return ast.Return(value, token.line)
        if token.kind == "break":
            self.next()
            self.expect("punct", ";")
            return ast.Break(token.line)
        if token.kind == "continue":
            self.next()
            self.expect("punct", ";")
            return ast.Continue(token.line)
        # Assignment or expression statement.
        expr = self.parse_expr()
        if self.accept("op", "="):
            if not isinstance(expr, (ast.Name, ast.Index)):
                raise LangError("invalid assignment target", token.line)
            value = self.parse_expr()
            self.expect("punct", ";")
            return ast.Assign(expr, value, token.line)
        self.expect("punct", ";")
        return ast.ExprStmt(expr, token.line)

    # -- expressions -----------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_logical(0)

    def _parse_logical(self, min_prec: int) -> ast.Expr:
        left = self._parse_binary(0)
        while True:
            token = self.peek()
            if token.kind != "op" or token.text not in _LOGICAL:
                return left
            prec = _LOGICAL[token.text]
            if prec < min_prec:
                return left
            self.next()
            right = self._parse_logical(prec + 1)
            left = ast.Logical(token.text, left, right, token.line)

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind != "op" or token.text not in _PRECEDENCE:
                return left
            prec = _PRECEDENCE[token.text]
            if prec < min_prec:
                return left
            self.next()
            right = self._parse_binary(prec + 1)
            left = ast.BinOp(token.text, left, right, token.line)

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "!"):
            self.next()
            return ast.Unary(token.text, self.parse_unary(), token.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        token = self.next()
        if token.kind == "int":
            return ast.IntLit(int(token.text), token.line)
        if token.kind == "float":
            return ast.FloatLit(float(token.text), token.line)
        if token.kind == "punct" and token.text == "(":
            inner = self.parse_expr()
            self.expect("punct", ")")
            return inner
        if token.kind == "ident":
            nxt = self.peek()
            if nxt.kind == "punct" and nxt.text == "(":
                self.next()
                args: List[ast.Expr] = []
                if not self.accept("punct", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if self.accept("punct", ")"):
                            break
                        self.expect("punct", ",")
                return ast.CallExpr(token.text, args, token.line)
            if nxt.kind == "punct" and nxt.text == "[":
                self.next()
                index = self.parse_expr()
                self.expect("punct", "]")
                return ast.Index(token.text, index, token.line)
            return ast.Name(token.text, token.line)
        raise LangError(f"unexpected token {token.text!r}", token.line)


def parse_source(source: str) -> ast.Module:
    """Parse mini-language source into a module AST."""
    return Parser(tokenize(source)).parse_module()
