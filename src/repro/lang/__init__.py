"""A small structured language compiled to the IR.

Workloads and examples are easier to author (and to read) as
structured source than as assembly.  The language is C-flavoured:

.. code-block:: text

    global table[4096];

    fn probe(key) {
        var h = (key * 31) & 4095;
        if (table[h] == key) { return 1; }
        return 0;
    }

    fn main() {
        var i = 0; var hits = 0;
        while (i < 1000) {
            hits = hits + probe(i & 255);
            i = i + 1;
        }
        return hits;
    }

Features: integer and float arithmetic, comparisons, short-circuit
``&&``/``||``, ``if``/``else``, ``while`` with ``break``/``continue``,
global arrays (living in the machine's globals region), functions with
values, and direct calls.  The compiler performs name/arity checking
and a linear-scan-free register discipline (locals pinned, expression
temporaries stack-allocated) that keeps functions within the finite
register file — or reports a clean error when they cannot be.
"""

from repro.lang.lexer import LangError, Token, tokenize
from repro.lang.parser import parse_source
from repro.lang.codegen import compile_source

__all__ = ["LangError", "Token", "compile_source", "parse_source", "tokenize"]
