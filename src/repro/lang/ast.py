"""Abstract syntax for the mini language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


# -- expressions -------------------------------------------------------------


@dataclass
class IntLit:
    value: int
    line: int = 0


@dataclass
class FloatLit:
    value: float
    line: int = 0


@dataclass
class Name:
    ident: str
    line: int = 0


@dataclass
class Index:
    """``array[index]`` — global array element."""

    array: str
    index: "Expr"
    line: int = 0


@dataclass
class Unary:
    op: str  # '-' or '!'
    operand: "Expr"
    line: int = 0


@dataclass
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass
class Logical:
    """Short-circuit ``&&`` / ``||``."""

    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass
class CallExpr:
    callee: str
    args: List["Expr"]
    line: int = 0


Expr = Union[IntLit, FloatLit, Name, Index, Unary, BinOp, Logical, CallExpr]


# -- statements ---------------------------------------------------------------


@dataclass
class VarDecl:
    name: str
    init: Expr
    line: int = 0


@dataclass
class Assign:
    target: Union[Name, Index]
    value: Expr
    line: int = 0


@dataclass
class If:
    cond: Expr
    then_body: List["Stmt"]
    else_body: List["Stmt"]
    line: int = 0


@dataclass
class While:
    cond: Expr
    body: List["Stmt"]
    line: int = 0


@dataclass
class Return:
    value: Optional[Expr]
    line: int = 0


@dataclass
class Break:
    line: int = 0


@dataclass
class Continue:
    line: int = 0


@dataclass
class ExprStmt:
    expr: Expr
    line: int = 0


Stmt = Union[VarDecl, Assign, If, While, Return, Break, Continue, ExprStmt]


# -- top level -------------------------------------------------------------------


@dataclass
class GlobalArray:
    name: str
    words: int
    line: int = 0


@dataclass
class FnDecl:
    name: str
    params: List[str]
    body: List[Stmt]
    line: int = 0


@dataclass
class Module:
    globals: List[GlobalArray] = field(default_factory=list)
    functions: List[FnDecl] = field(default_factory=list)
