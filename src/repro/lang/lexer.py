"""Lexer for the mini language."""

from __future__ import annotations

import re
from typing import List, NamedTuple


class LangError(Exception):
    """Any front-end error, tagged with a source line."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class Token(NamedTuple):
    kind: str
    text: str
    line: int


KEYWORDS = frozenset(
    {"fn", "var", "global", "if", "else", "while", "return", "break", "continue"}
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<newline>\n)
  | (?P<float>\d+\.\d+(?:[eE][-+]?\d+)?)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|==|!=|&&|\|\||<<|>>|[-+*/%&|^<>!=])
  | (?P<punct>[(){}\[\],;])
    """,
    re.VERBOSE,
)


def tokenize(source: str) -> List[Token]:
    """Tokenize; keywords become their own kinds."""
    tokens: List[Token] = []
    line = 1
    pos = 0
    length = len(source)
    while pos < length:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise LangError(f"unexpected character {source[pos]!r}", line)
        pos = match.end()
        kind = match.lastgroup
        if kind == "newline":
            line += 1
            continue
        if kind in ("ws", "comment"):
            continue
        text = match.group()
        if kind == "ident" and text in KEYWORDS:
            kind = text
        tokens.append(Token(kind, text, line))
    tokens.append(Token("eof", "", line))
    return tokens
