"""End-to-end drivers: the PP tool."""

from repro.tools.pp import PP, ProfileRun, clone_program

__all__ = ["PP", "ProfileRun", "clone_program"]
