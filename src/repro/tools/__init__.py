"""End-to-end drivers: the PP tool and the sharded-run driver."""

from repro.tools.pp import PP, ProfileRun, clone_program
from repro.tools.shard_runner import (
    ShardOutcome,
    ShardSpec,
    serial_run,
    shard_run,
    spec_for_workload,
)

__all__ = [
    "PP",
    "ProfileRun",
    "ShardOutcome",
    "ShardSpec",
    "clone_program",
    "serial_run",
    "shard_run",
    "spec_for_workload",
]
