"""Fault injection for the sharded profiling driver.

Production profile collection treats partial or failed collection as
the common case: workers get OOM-killed, machines hang, dumps are cut
short by full disks.  To test the shard runner's recovery paths the
same way every time, a :class:`FaultPlan` deterministically injures
exactly one shard at a well-defined point of its execution:

* ``kill`` — the worker SIGKILLs itself mid-run (after half its
  inputs), simulating an external kill with per-run state lost;
* ``hang`` — the worker stops making progress mid-run until the
  parent's shard ``timeout`` fires and it is killed;
* ``truncate`` — the worker completes, writes its checkpoint, then
  truncates its CCT dump, simulating a torn write that slipped past
  the atomic rename (e.g. a disk filling up mid-flush).

A plan fires **once per working directory**: before injuring itself
the worker drops a ``fault-N.fired`` marker, so the retried (or
resumed) attempt runs clean.  That single-shot discipline is what
lets the fault tests assert that *recovery*, not luck, produced the
byte-identical merge.

Plans come from two seams: an explicit :class:`FaultPlan` handed to
``shard_run``/``resume_run`` (tests), or the ``REPRO_FAULT_PLAN``
environment variable (CLI experiments), spelled ``kind:shard`` with
an optional ``:point`` suffix — e.g. ``kill:1`` or
``truncate:0:after_dump``.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Optional

#: Supported injuries and the execution points where they apply.
FAULT_KINDS = ("kill", "hang", "truncate")
FAULT_POINTS = ("mid_run", "after_dump")

#: Environment seam read by forked workers (parent env propagates).
FAULT_ENV = "REPRO_FAULT_PLAN"


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic injury: ``kind`` at ``point`` of shard ``shard``."""

    kind: str
    shard: int
    point: str = "mid_run"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; options: {FAULT_KINDS}")
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; options: {FAULT_POINTS}"
            )
        if self.kind == "truncate" and self.point != "after_dump":
            object.__setattr__(self, "point", "after_dump")

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """``"kill:1"`` or ``"truncate:0:after_dump"`` -> a plan."""
        parts = text.strip().split(":")
        if len(parts) not in (2, 3):
            raise ValueError(f"fault plan {text!r}: expected kind:shard[:point]")
        kind, shard = parts[0], int(parts[1])
        point = parts[2] if len(parts) == 3 else (
            "after_dump" if kind == "truncate" else "mid_run"
        )
        return cls(kind, shard, point)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        raw = os.environ.get(FAULT_ENV, "").strip()
        return cls.parse(raw) if raw else None

    # -- firing --------------------------------------------------------------

    def _marker(self, workdir: str) -> str:
        return os.path.join(workdir, f"fault-{self.shard}.fired")

    def fired(self, workdir: str) -> bool:
        """Has this plan already injured a worker under ``workdir``?"""
        return os.path.exists(self._marker(workdir))

    def maybe_fire(
        self, workdir: str, shard: int, point: str, dump_path: Optional[str] = None
    ) -> None:
        """Injure the calling worker if the plan targets this spot.

        Called from inside worker processes at each instrumented point.
        The marker file is written *before* the injury so the injury is
        single-shot even when it kills the process on the next line.
        """
        if shard != self.shard or point != self.point or self.fired(workdir):
            return
        with open(self._marker(workdir), "w") as handle:
            handle.write(f"{self.kind}:{self.shard}:{self.point}\n")
        if self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.kind == "hang":
            # Sleep far past any test timeout; the parent kills us.
            while True:  # pragma: no cover - killed externally
                time.sleep(60.0)
        elif self.kind == "truncate" and dump_path and os.path.exists(dump_path):
            size = os.path.getsize(dump_path)
            with open(dump_path, "r+b") as handle:
                handle.truncate(max(size // 2, 1))


__all__ = ["FAULT_ENV", "FAULT_KINDS", "FAULT_POINTS", "FaultPlan"]
