"""PP — the Path Profiler (§5), end to end.

One method per profiling configuration of Table 1:

* :meth:`PP.baseline` — the uninstrumented run (free-running counters);
* :meth:`PP.flow_hw` — hardware metrics along intraprocedural paths
  ("Flow and HW");
* :meth:`PP.context_hw` — hardware metrics per calling context
  ("Context and HW");
* :meth:`PP.context_flow` — path frequencies per calling context
  ("Context and Flow");
* :meth:`PP.flow_freq` — plain path profiling (the §6.1 baseline);
* :meth:`PP.edge_profile` — the qpt-style edge-profiling comparator.

Every method deep-copies the input program before instrumenting, so
one program object can be profiled under every configuration.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cct.runtime import CCTRuntime
from repro.instrument.cctinstr import ContextInstrumentation, instrument_context
from repro.instrument.edgeinstr import EdgeInstrumentation, instrument_edges
from repro.instrument.pathinstr import FlowInstrumentation, instrument_paths
from repro.instrument.tables import ProfilingRuntime
from repro.ir.function import Program
from repro.machine.config import MachineConfig
from repro.machine.counters import Event
from repro.machine.memory import MemoryMap
from repro.machine.vm import Machine, RunResult
from repro.profiles.pathprofile import PathProfile, collect_path_profile


def clone_program(program: Program) -> Program:
    """Deep-copy a program so instrumentation can edit it freely."""
    return copy.deepcopy(program)


@dataclass
class ProfileRun:
    """Everything one profiling run produced."""

    label: str
    program: Program
    machine: Machine
    result: RunResult
    flow: Optional[FlowInstrumentation] = None
    edges: Optional[EdgeInstrumentation] = None
    context: Optional[ContextInstrumentation] = None
    cct: Optional[CCTRuntime] = None
    path_profile: Optional[PathProfile] = None

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def return_value(self):
        return self.result.return_value

    def overhead_vs(self, baseline: "ProfileRun") -> float:
        """Run-time ratio against a baseline run (Table 1's "x base")."""
        return self.cycles / baseline.cycles if baseline.cycles else float("inf")


class PP:
    """The profiler front end; see the module docstring."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        pic0_event: Event = Event.INSTRS,
        pic1_event: Event = Event.DC_MISS,
        placement: str = "spanning_tree",
        engine: Optional[str] = None,
    ):
        self.config = config or MachineConfig()
        self.pic0_event = pic0_event
        self.pic1_event = pic1_event
        self.placement = placement
        #: Execution engine for every machine this profiler creates
        #: (None defers to the Machine default / ``REPRO_ENGINE``).
        self.engine = engine

    # -- runs ------------------------------------------------------------------

    def _machine(self, program: Program) -> Machine:
        return Machine(
            program,
            copy.deepcopy(self.config),
            pic0_event=self.pic0_event,
            pic1_event=self.pic1_event,
            engine=self.engine,
        )

    def baseline(self, program: Program, args: Sequence = ()) -> ProfileRun:
        target = clone_program(program)
        machine = self._machine(target)
        result = machine.run(*args)
        return ProfileRun("base", target, machine, result)

    def flow_hw(
        self,
        program: Program,
        args: Sequence = (),
        functions: Optional[Sequence[str]] = None,
    ) -> ProfileRun:
        target = clone_program(program)
        runtime = ProfilingRuntime(MemoryMap().profiling.base)
        flow = instrument_paths(
            target,
            mode="hw",
            placement=self.placement,
            runtime=runtime,
            functions=functions,
        )
        machine = self._machine(target)
        machine.path_runtime = runtime
        result = machine.run(*args)
        profile = collect_path_profile(flow)
        return ProfileRun(
            "flow+hw", target, machine, result, flow=flow, path_profile=profile
        )

    def flow_freq(
        self,
        program: Program,
        args: Sequence = (),
        functions: Optional[Sequence[str]] = None,
        placement: Optional[str] = None,
    ) -> ProfileRun:
        target = clone_program(program)
        runtime = ProfilingRuntime(MemoryMap().profiling.base)
        flow = instrument_paths(
            target,
            mode="freq",
            placement=placement or self.placement,
            runtime=runtime,
            functions=functions,
        )
        machine = self._machine(target)
        machine.path_runtime = runtime
        result = machine.run(*args)
        profile = collect_path_profile(flow)
        return ProfileRun(
            "flow", target, machine, result, flow=flow, path_profile=profile
        )

    def context_hw(
        self,
        program: Program,
        args: Sequence = (),
        functions: Optional[Sequence[str]] = None,
        read_at_backedges: bool = False,
        by_site: bool = True,
    ) -> ProfileRun:
        target = clone_program(program)
        context = instrument_context(
            target, functions=functions, read_at_backedges=read_at_backedges
        )
        cct = CCTRuntime(MemoryMap().cct.base, collect_hw=True, by_site=by_site)
        machine = self._machine(target)
        machine.cct_runtime = cct
        result = machine.run(*args)
        return ProfileRun(
            "context+hw", target, machine, result, context=context, cct=cct
        )

    def context_flow(
        self,
        program: Program,
        args: Sequence = (),
        functions: Optional[Sequence[str]] = None,
        by_site: bool = True,
    ) -> ProfileRun:
        target = clone_program(program)
        runtime = ProfilingRuntime(MemoryMap().profiling.base)
        # Flow first so path commits precede CctExit (see cctinstr).
        flow = instrument_paths(
            target,
            mode="freq",
            placement=self.placement,
            runtime=runtime,
            functions=functions,
            per_context=True,
        )
        context = instrument_context(target, functions=functions)
        cct = CCTRuntime(
            MemoryMap().cct.base, collect_hw=False, profiling=runtime, by_site=by_site
        )
        machine = self._machine(target)
        machine.path_runtime = runtime
        machine.cct_runtime = cct
        result = machine.run(*args)
        profile = collect_path_profile(flow, cct_runtime=cct)
        return ProfileRun(
            "context+flow",
            target,
            machine,
            result,
            flow=flow,
            context=context,
            cct=cct,
            path_profile=profile,
        )

    def edge_profile(
        self,
        program: Program,
        args: Sequence = (),
        placement: str = "simple",
        functions: Optional[Sequence[str]] = None,
    ) -> ProfileRun:
        target = clone_program(program)
        runtime = ProfilingRuntime(MemoryMap().profiling.base)
        edges = instrument_edges(
            target, placement=placement, runtime=runtime, functions=functions
        )
        machine = self._machine(target)
        machine.path_runtime = runtime
        result = machine.run(*args)
        return ProfileRun("edge", target, machine, result, edges=edges)
