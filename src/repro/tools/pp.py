"""PP — the Path Profiler (§5), as a facade over :mod:`repro.session`.

``PP`` holds a profiler *configuration* (machine config, PIC events,
default placement, engine) and turns it into declarative
:class:`~repro.session.ProfileSpec` values that one shared
:class:`~repro.session.ProfileSession` executes.  One method per
profiling configuration of Table 1 survives for convenience:

* :meth:`PP.baseline` — the uninstrumented run (free-running counters);
* :meth:`PP.flow_hw` — hardware metrics along intraprocedural paths
  ("Flow and HW");
* :meth:`PP.context_hw` — hardware metrics per calling context
  ("Context and HW");
* :meth:`PP.context_flow` — path frequencies per calling context
  ("Context and Flow");
* :meth:`PP.flow_freq` — plain path profiling (the §6.1 baseline);
* :meth:`PP.edge_profile` — the qpt-style edge-profiling comparator;
* :meth:`PP.kflow` — hardware metrics along paths spanning up to k
  loop iterations (multi-iteration Ball–Larus; k=1 equals flow_hw).

Each is a one-liner: build a spec with :meth:`PP.spec`, run it with
:meth:`PP.run`.  Drivers that want the pipeline directly (sharding,
benchmarks, experiments) use the session layer themselves.

Every run deep-copies the input program before instrumenting, so one
program object can be profiled under every configuration.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.function import Program
from repro.machine.config import MachineConfig
from repro.machine.counters import Event
from repro.session import ProfileRun, ProfileSession, ProfileSpec, clone_program

__all__ = ["PP", "ProfileRun", "clone_program"]


class PP:
    """The profiler front end; see the module docstring."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        pic0_event: Event = Event.INSTRS,
        pic1_event: Event = Event.DC_MISS,
        placement: str = "spanning_tree",
        engine: Optional[str] = None,
    ):
        self.config = config or MachineConfig()
        self.pic0_event = pic0_event
        self.pic1_event = pic1_event
        self.placement = placement
        #: Execution engine for every machine this profiler creates
        #: (None defers to the Machine default / ``REPRO_ENGINE``).
        self.engine = engine
        self.session = ProfileSession(config=self.config)

    # -- the declarative core --------------------------------------------------

    def spec(
        self,
        mode: str,
        placement: Optional[str] = None,
        functions: Optional[Sequence[str]] = None,
        **overrides,
    ) -> ProfileSpec:
        """A :class:`ProfileSpec` carrying this profiler's defaults."""
        return ProfileSpec(
            mode=mode,
            pic0_event=self.pic0_event,
            pic1_event=self.pic1_event,
            placement=placement if placement is not None else self.placement,
            engine=self.engine,
            functions=None if functions is None else tuple(functions),
            **overrides,
        )

    def run(
        self, spec: ProfileSpec, program: Program, args: Sequence = ()
    ) -> ProfileRun:
        """Execute one spec through the shared session pipeline."""
        return self.session.run(spec, program, args)

    # -- the six named configurations ------------------------------------------

    def baseline(self, program: Program, args: Sequence = ()) -> ProfileRun:
        return self.run(self.spec("baseline"), program, args)

    def flow_hw(
        self,
        program: Program,
        args: Sequence = (),
        functions: Optional[Sequence[str]] = None,
    ) -> ProfileRun:
        return self.run(self.spec("flow_hw", functions=functions), program, args)

    def flow_freq(
        self,
        program: Program,
        args: Sequence = (),
        functions: Optional[Sequence[str]] = None,
        placement: Optional[str] = None,
    ) -> ProfileRun:
        return self.run(
            self.spec("flow_freq", placement=placement, functions=functions),
            program,
            args,
        )

    def context_hw(
        self,
        program: Program,
        args: Sequence = (),
        functions: Optional[Sequence[str]] = None,
        read_at_backedges: bool = False,
        by_site: bool = True,
    ) -> ProfileRun:
        return self.run(
            self.spec(
                "context_hw",
                functions=functions,
                read_at_backedges=read_at_backedges,
                by_site=by_site,
            ),
            program,
            args,
        )

    def context_flow(
        self,
        program: Program,
        args: Sequence = (),
        functions: Optional[Sequence[str]] = None,
        by_site: bool = True,
    ) -> ProfileRun:
        return self.run(
            self.spec("context_flow", functions=functions, by_site=by_site),
            program,
            args,
        )

    def edge_profile(
        self,
        program: Program,
        args: Sequence = (),
        placement: str = "simple",
        functions: Optional[Sequence[str]] = None,
    ) -> ProfileRun:
        return self.run(
            self.spec("edge", placement=placement, functions=functions),
            program,
            args,
        )

    def kflow(
        self,
        program: Program,
        args: Sequence = (),
        k: int = 1,
        functions: Optional[Sequence[str]] = None,
    ) -> ProfileRun:
        return self.run(self.spec("kflow", functions=functions, k=k), program, args)
