"""Parallel fan-out for independent whole-workload simulations.

Every table experiment is an embarrassingly parallel loop — one
simulated machine per workload, no shared state — so the suite can fan
out across processes.  Opt in with ``REPRO_BENCH_JOBS=N`` (or an
explicit ``jobs=`` argument); unset, ``0``, or ``1`` degrades to a
plain serial loop with zero multiprocessing involvement, so the default
behaviour (and any environment without working ``fork``) is unchanged.

Workers must be module-level callables (picklable) taking one item from
the work list; results come back in input order.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def bench_jobs(default: int = 0) -> int:
    """Parallelism requested via ``REPRO_BENCH_JOBS`` (0 means serial)."""
    raw = os.environ.get("REPRO_BENCH_JOBS", "").strip()
    if not raw:
        return default
    try:
        jobs = int(raw)
    except ValueError:
        return default
    return max(jobs, 0)


def run_tasks(
    worker: Callable[[T], R],
    items: Sequence[T],
    jobs: Optional[int] = None,
) -> List[R]:
    """Map ``worker`` over ``items``, optionally across processes.

    ``jobs=None`` reads :func:`bench_jobs`; ``jobs <= 1`` (or fewer
    than two items) runs serially in-process.  Parallel runs use a
    fork-based pool so programs/configs reach workers without pickling
    the simulator state; results preserve input order, and worker
    exceptions propagate to the caller.
    """
    items = list(items)
    if jobs is None:
        jobs = bench_jobs()
    if jobs <= 1 or len(items) < 2:
        return [worker(item) for item in items]

    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    jobs = min(jobs, len(items))
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(worker, items)
