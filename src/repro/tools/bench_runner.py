"""Benchmark infrastructure: process fan-out and engine speed measurement.

Three independent facilities live here:

* :func:`run_tasks` — parallel fan-out for independent whole-workload
  simulations.  Every table experiment is an embarrassingly parallel
  loop — one simulated machine per workload, no shared state — so the
  suite can fan out across processes.  Opt in with
  ``REPRO_BENCH_JOBS=N`` (or an explicit ``jobs=`` argument); unset,
  ``0``, or ``1`` degrades to a plain serial loop with zero
  multiprocessing involvement, so the default behaviour (and any
  environment without working ``fork``) is unchanged.  Workers must be
  module-level callables (picklable) taking one item from the work
  list; results come back in input order.

* :func:`run_supervised` — fault-aware fan-out for workers that may
  crash, hang, or be killed: one forked process per item, bounded
  concurrency, per-process timeouts, and a :class:`ProcessOutcome`
  (exit code, timed-out flag, wall time) per item instead of a return
  value.  The sharded profiling driver builds its retry/resume logic
  on this.

* :func:`measure_vm_speed` / :func:`measure_instrumented_speed` — time
  the SPEC95-like suite under ``engine="simple"`` (the reference
  if/elif interpreter), ``engine="fast"`` (the predecoded block
  engine), and ``engine="trace"`` (the superblock trace tier),
  uninstrumented or under the three instrumented profiling modes
  (flow+HW, context+HW, combined flow+context).  Each measurement
  asserts all engines agree bit-for-bit on every counter, the return
  value, and per-region miss attribution before reporting a speedup,
  and folds each machine's decode-cache and trace-tier statistics into
  the per-tier payload entries; the results back
  ``BENCH_vm_speed.json`` and ``BENCH_instrumented_speed.json`` at the
  repository root.

The instrumented measurement instruments each workload **once** per
mode and reuses the instrumented program across every timed pass,
attaching fresh (but identically shaped) runtime state per run: a
``copy.deepcopy`` of the pristine post-instrumentation
:class:`~repro.instrument.tables.ProfilingRuntime` and/or a new
:class:`~repro.cct.runtime.CCTRuntime` at the same base address.  The
fast engine's compiled-source cache keys on table geometry *values*,
not runtime identity, so warm passes genuinely reuse compiled blocks —
the regime every real experiment runs in.  Runtime construction and
machine setup happen outside the timed window; only simulation time is
reported.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def bench_jobs(default: int = 0) -> int:
    """Parallelism requested via ``REPRO_BENCH_JOBS`` (0 means serial)."""
    raw = os.environ.get("REPRO_BENCH_JOBS", "").strip()
    if not raw:
        return default
    try:
        jobs = int(raw)
    except ValueError:
        return default
    return max(jobs, 0)


def run_tasks(
    worker: Callable[[T], R],
    items: Sequence[T],
    jobs: Optional[int] = None,
) -> List[R]:
    """Map ``worker`` over ``items``, optionally across processes.

    ``jobs=None`` reads :func:`bench_jobs`; ``jobs <= 1`` (or fewer
    than two items) runs serially in-process.  Parallel runs use a
    fork-based pool so programs/configs reach workers without pickling
    the simulator state; results preserve input order, and worker
    exceptions propagate to the caller.
    """
    items = list(items)
    if jobs is None:
        jobs = bench_jobs()
    if jobs <= 1 or len(items) < 2:
        return [worker(item) for item in items]

    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    jobs = min(jobs, len(items))
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(worker, items)


@dataclass
class ProcessOutcome:
    """How one supervised worker process ended."""

    index: int
    exitcode: Optional[int]
    timed_out: bool
    seconds: float

    @property
    def ok(self) -> bool:
        return self.exitcode == 0 and not self.timed_out


def run_supervised(
    worker: Callable[[T], None],
    items: Sequence[T],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    poll: float = 0.005,
    on_start: Optional[Callable[[int, int], None]] = None,
) -> List[ProcessOutcome]:
    """Fork one *supervised* process per item; report how each ended.

    Unlike :func:`run_tasks` (a ``Pool.map`` that hangs forever if a
    worker is SIGKILLed and propagates nothing about timeouts), this
    runner exists for workers that are *expected* to die: each item
    gets its own forked process, at most ``jobs`` run concurrently,
    and any process still alive ``timeout`` seconds after its start is
    killed and reported as timed out.  Workers communicate results via
    side effects only (checkpoint files); the supervisor reads nothing
    from them but their exit code.

    ``on_start(index, pid)`` is invoked as each worker launches (for
    run logs).  Outcomes come back in item order.
    """
    import multiprocessing

    items = list(items)
    if jobs is None or jobs <= 0:
        jobs = len(items) or 1
    ctx = multiprocessing.get_context("fork")
    outcomes: List[Optional[ProcessOutcome]] = [None] * len(items)
    pending = list(range(len(items)))
    running: Dict[int, Tuple[object, float, Optional[float]]] = {}
    while pending or running:
        while pending and len(running) < jobs:
            index = pending.pop(0)
            process = ctx.Process(target=worker, args=(items[index],))
            process.start()
            started = time.perf_counter()
            deadline = None if timeout is None else started + timeout
            running[index] = (process, started, deadline)
            if on_start is not None:
                on_start(index, process.pid)
        finished = []
        now = time.perf_counter()
        for index, (process, started, deadline) in running.items():
            if not process.is_alive():
                process.join()
                outcomes[index] = ProcessOutcome(
                    index, process.exitcode, False, now - started
                )
                finished.append(index)
            elif deadline is not None and now >= deadline:
                process.kill()
                process.join()
                outcomes[index] = ProcessOutcome(
                    index, process.exitcode, True, now - started
                )
                finished.append(index)
        for index in finished:
            del running[index]
        if running and not finished:
            time.sleep(poll)
    return [outcome for outcome in outcomes if outcome is not None]


# ---------------------------------------------------------------------------
# Engine speed measurement (BENCH_vm_speed / BENCH_instrumented_speed)
# ---------------------------------------------------------------------------

#: Instrumented profiling modes measured by default, in report order.
INSTRUMENTED_MODES = ("flow_hw", "context_hw", "context_flow")


def prepare_instrumented(program, mode: str):
    """Instrument a clone of ``program`` once for ``mode``.

    A thin wrapper over the canonical pipeline: builds a default
    :class:`~repro.session.ProfileSpec` for ``mode`` and asks a
    :class:`~repro.session.ProfileSession` to instrument.  Returns
    ``(target, fresh)`` where ``target`` is the instrumented program
    (shared by every pass, so the fast engine's per-block
    compiled-source cache stays warm) and ``fresh()`` builds a new
    ``(path_runtime, cct_runtime)`` pair for one run: empty counters,
    identical table geometry and base addresses.
    """
    from repro.session import ProfileSession, ProfileSpec

    instrumented = ProfileSession().instrument(ProfileSpec(mode=mode), program)
    return instrumented.program, lambda: instrumented.runtimes(fresh=True)


#: ``Machine.codegen_stats`` keys folded into bench payloads — the
#: decode-cache observability satellite: a warm pass whose
#: ``source_cache_hits`` do not dominate is re-compiling blocks it
#: should be reusing.
CODEGEN_STAT_KEYS = ("decoded_blocks", "source_cache_hits", "source_cache_misses")

#: ``Machine.trace_stats`` keys folded into trace-tier bench payloads.
TRACE_STAT_KEYS = (
    "traces_compiled",
    "traces_generated",
    "trace_blocks",
    "trace_entries",
    "disk_cache_hits",
    "disk_cache_misses",
)


def _suite_pass(machines) -> Tuple[int, float, list, Dict[str, int]]:
    """Run prepared ``(name, machine)`` pairs; time only ``run()``.

    Returns ``(total instructions, seconds, per-run facts, stats)``
    where the facts — counters, return value, region misses — are what
    engine equality is asserted on and ``stats`` sums every machine's
    ``codegen_stats`` and ``trace_stats``.
    """
    total_instructions = 0
    elapsed = 0.0
    facts = []
    stats: Dict[str, int] = {}
    for name, machine in machines:
        start = time.perf_counter()
        result = machine.run()
        elapsed += time.perf_counter() - start
        total_instructions += result.instructions
        facts.append((name, result.counters, result.return_value, result.region_misses))
        for source in (machine.codegen_stats, machine.trace_stats):
            for key, value in source.items():
                stats[key] = stats.get(key, 0) + value
    return total_instructions, elapsed, facts, stats


def _best_pass(n: int, fn) -> Tuple[int, float, list, Dict[str, int]]:
    """Minimum wall time over ``n`` passes (noise floor, not average)."""
    best = None
    for _ in range(n):
        result = fn()
        if best is None or result[1] < best[1]:
            best = result
    return best


def _tier_entry(
    instructions: int, seconds: float, stats: Dict[str, int], keys: Sequence[str]
) -> Dict:
    entry = {
        "seconds": round(seconds, 4),
        "instructions_per_second": round(instructions / seconds),
    }
    entry.update({key: stats.get(key, 0) for key in keys})
    return entry


def measure_engine_speed(make_pass: Callable[[str], Iterable]) -> Dict:
    """Simple vs fast vs trace engine timings over one configuration.

    ``make_pass(engine)`` yields ``(name, ready-to-run Machine)`` pairs
    and is called once per pass (fresh machines, fresh runtime state).
    The simple engine and the warm fast/trace passes run best-of-two;
    the cold passes (first decode + compile) are timed once.  Raises
    ``AssertionError`` unless all passes produced identical facts —
    the bit-exactness contract every engine tier must honour.
    """
    simple_i, simple_t, simple_facts, _ = _best_pass(
        2, lambda: _suite_pass(make_pass("simple"))
    )
    cold_i, cold_t, cold_facts, cold_stats = _suite_pass(make_pass("fast"))
    warm_i, warm_t, warm_facts, warm_stats = _best_pass(
        2, lambda: _suite_pass(make_pass("fast"))
    )
    tcold_i, tcold_t, tcold_facts, tcold_stats = _suite_pass(make_pass("trace"))
    twarm_i, twarm_t, twarm_facts, twarm_stats = _best_pass(
        2, lambda: _suite_pass(make_pass("trace"))
    )
    passes = {
        "fast_cold": cold_facts,
        "fast_warm": warm_facts,
        "trace_cold": tcold_facts,
        "trace_warm": twarm_facts,
    }
    for label, facts in passes.items():
        if facts != simple_facts:
            diverging = [
                fact[0]
                for fact, other in zip(simple_facts, facts)
                if fact != other
            ]
            raise AssertionError(
                f"{label} disagrees with simple on run facts: {diverging}"
            )
    return {
        "simulated_instructions": simple_i,
        "simple": {
            "seconds": round(simple_t, 4),
            "instructions_per_second": round(simple_i / simple_t),
        },
        "fast_cold": _tier_entry(cold_i, cold_t, cold_stats, CODEGEN_STAT_KEYS),
        "fast_warm": _tier_entry(warm_i, warm_t, warm_stats, CODEGEN_STAT_KEYS),
        "trace_cold": _tier_entry(
            tcold_i, tcold_t, tcold_stats, CODEGEN_STAT_KEYS + TRACE_STAT_KEYS
        ),
        "trace_warm": _tier_entry(
            twarm_i, twarm_t, twarm_stats, CODEGEN_STAT_KEYS + TRACE_STAT_KEYS
        ),
        "speedup_cold": round(simple_t / cold_t, 2),
        "speedup_warm": round(simple_t / warm_t, 2),
        "speedup_trace_cold": round(simple_t / tcold_t, 2),
        "speedup_trace_warm": round(simple_t / twarm_t, 2),
    }


def _build_suite(scale: float, names: Optional[Sequence[str]]) -> Dict:
    from repro.workloads.suite import build_workload, workload_names

    if names is None:
        names = workload_names("SPEC95")
    return {name: build_workload(name, scale) for name in names}


def measure_vm_speed(scale: float, names: Optional[Sequence[str]] = None) -> Dict:
    """Uninstrumented suite throughput, simple vs fast engine."""
    from repro.machine.vm import Machine

    programs = _build_suite(scale, names)

    def make_pass(engine):
        return ((name, Machine(program, engine=engine)) for name, program in programs.items())

    payload = {"scale": scale, "workloads": len(programs)}
    payload.update(measure_engine_speed(make_pass))
    return payload


def measure_instrumented_speed(
    scale: float,
    names: Optional[Sequence[str]] = None,
    modes: Sequence[str] = INSTRUMENTED_MODES,
) -> Dict:
    """Instrumented suite throughput per profiling mode, both engines.

    The headline number (``speedup_warm_flow``, the gate in
    ``BENCH_instrumented_speed.json``) is the warm fast-engine speedup
    on the flow-instrumented suite — the mode where every profiling
    hook fuses into generated code.  Combined mode's per-context path
    tables (``table == -1``) keep the closure fallback, so its speedup
    reflects fused CCT hooks only.
    """
    from repro.machine.vm import Machine

    programs = _build_suite(scale, names)
    payload: Dict = {"scale": scale, "workloads": len(programs), "modes": {}}
    for mode in modes:
        prepared = [
            (name, *prepare_instrumented(program, mode))
            for name, program in programs.items()
        ]

        def make_pass(engine, prepared=prepared):
            for name, target, fresh in prepared:
                machine = Machine(target, engine=engine)
                machine.path_runtime, machine.cct_runtime = fresh()
                yield name, machine

        payload["modes"][mode] = measure_engine_speed(make_pass)
    if "flow_hw" in payload["modes"]:
        payload["speedup_warm_flow"] = payload["modes"]["flow_hw"]["speedup_warm"]
    return payload
