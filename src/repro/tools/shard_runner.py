"""Sharded profiling: split a workload's input set across workers.

Scaling the reproduction past one process per workload means running
shards of an input set concurrently and *aggregating* their profiles —
the same problem PGO systems solve when combining per-process
hardware-counter dumps.  The driver here:

1. splits the input set round-robin across ``shards`` workers and
   writes a **run manifest** describing the split;
2. each worker (a forked process supervised by
   :func:`repro.tools.bench_runner.run_supervised`) runs its inputs
   serially, merges the per-run CCTs with
   :func:`repro.cct.merge.merge_ccts`, and **checkpoints** the shard's
   aggregate atomically: the CCT dump via
   :func:`repro.cct.serialize.save_cct` (tmp-file + rename) and a
   digest-carrying result file referencing it;
3. the parent validates each checkpoint (exit code, result digest,
   CCT dump digest), **retries** failed, hung, or corrupt shards with
   bounded backoff, reloads the dumps, and merges them into one
   aggregate CCT / path profile and one summed hardware-counter bank.

Because the merge is commutative and associative with the empty CCT
as identity (see :mod:`repro.cct.merge`), the aggregate is identical
for every shard count — including ``shards=1`` — and identical to
:func:`serial_run`, the in-process reference that never forks or
touches disk.  The same algebra is what makes the runner *resumable*:
a shard's checkpoint is a pure function of the spec and its input
chunk, so :func:`resume_run` can re-execute only the missing or
corrupt shards of a crashed run and still converge to the byte-
identical serial result — recomputing a shard can never change what
it contributes.  ``tests/test_shard_runner.py`` pins the equivalence
for ``N ∈ {1, 2, 4}``; ``tests/test_shard_faults.py`` pins it under
injected worker kills, hangs, and truncated dumps
(:mod:`repro.tools.faults`).

Every run appends shard start/exit/retry/merge events to a JSONL run
log (:mod:`repro.tools.runlog`) in the working directory; workers
additionally append per-run pipeline ``phase`` events (clone /
instrument / decode / run / collect, stamped with their shard and
pid) through the :class:`~repro.session.ProfileSession` they run on.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cct.merge import MergedCCT, cct_digest, merge_ccts
from repro.cct.serialize import CCTLoadError, file_digest, load_cct, save_cct
from repro.machine.counters import NUM_EVENTS, Event
from repro.profiles.merge import (
    counts_from_json,
    counts_to_json,
    merge_counts,
    merge_metric_maps,
    metric_maps_from_json,
    metric_maps_to_json,
)
from repro.profiles.pathprofile import (
    FunctionPathProfile,
    PathProfile,
    collect_path_profile,
)
from repro.session import ProfileSession, ProfileSpec, ProfileSpecError
from repro.store.iojson import payload_digest as _payload_digest
from repro.store.iojson import write_json_atomic as _write_json_atomic
from repro.tools.bench_runner import run_supervised
from repro.tools.faults import FaultPlan
from repro.tools.runlog import RunLog

#: Profiling configurations the driver knows how to merge.
MODES = ("context_flow", "context_hw", "flow_hw", "kflow")

#: Modes whose shard aggregate is a *flat* path profile (pointwise
#: count/metric sums keyed by path id, no CCT) — ``flow_hw`` and its
#: multi-iteration generalization.  The merge algebra is identical:
#: ``kflow`` only changes the numbering (and hence the table
#: geometry), never the shape of the checkpoint payload.
FLAT_FLOW_MODES = ("flow_hw", "kflow")

MANIFEST_FORMAT = "repro-shard-manifest-v1"
RESULT_FORMAT = "repro-shard-result-v1"
MANIFEST_NAME = "manifest.json"
LOG_NAME = "run.log.jsonl"

#: Exponential backoff between retry waves is capped here (seconds).
MAX_BACKOFF = 2.0


class ShardCheckpointError(ValueError):
    """A shard checkpoint or run manifest is missing or corrupt."""

    def __init__(self, path: str, reason: str):
        super().__init__(f"{path}: {reason}")
        self.path = path
        self.reason = reason


class ShardRunError(RuntimeError):
    """A shard kept failing after its retry budget was spent.

    Carries the manifest path so the caller (or the ``repro shard-run
    --resume`` CLI) can resume the run: checkpoints of the shards that
    *did* complete stay valid on disk.
    """

    def __init__(self, message: str, shard: int, attempts: int, manifest: Optional[str]):
        super().__init__(message)
        self.shard = shard
        self.attempts = attempts
        self.manifest = manifest


@dataclass(frozen=True, init=False)
class ShardSpec:
    """A workload plus its profiling spec, in fork-safe (picklable) form.

    Exactly one of ``workload`` (a SPEC95 suite name), ``source``
    (mini-language text), or ``asm`` (IR assembly text) names the
    program; workers rebuild it locally rather than pickling compiled
    IR.  ``profile`` is the embedded :class:`~repro.session.
    ProfileSpec` describing *how* each input is profiled — its
    ``inputs`` is the input set, one integer-argument tuple per run of
    ``main``.  The legacy keyword arguments (``inputs``, ``mode``,
    ``engine``, ``placement``, ``by_site``) still construct (or
    override) the embedded spec, and read back through properties.

    ``retries``/``timeout``/``backoff`` are the fault-tolerance knobs:
    each shard may be re-executed up to ``retries`` extra times after
    a crash, hang (a worker alive past ``timeout`` seconds is killed),
    or corrupt checkpoint, with exponential backoff between waves
    (``backoff * 2**(attempt-1)`` seconds, capped at ``MAX_BACKOFF``).
    """

    workload: Optional[str]
    scale: float
    source: Optional[str]
    asm: Optional[str]
    profile: ProfileSpec
    retries: int
    timeout: Optional[float]
    backoff: float

    def __init__(
        self,
        workload: Optional[str] = None,
        scale: float = 1.0,
        source: Optional[str] = None,
        asm: Optional[str] = None,
        inputs: Optional[Sequence[Sequence[int]]] = None,
        mode: Optional[str] = None,
        engine: Optional[str] = None,
        placement: Optional[str] = None,
        by_site: Optional[bool] = None,
        profile: Optional[ProfileSpec] = None,
        retries: int = 2,
        timeout: Optional[float] = None,
        backoff: float = 0.05,
    ):
        if profile is None:
            profile = ProfileSpec(
                mode="context_flow" if mode is None else mode,
                engine=engine,
                placement="spanning_tree" if placement is None else placement,
                by_site=True if by_site is None else by_site,
                inputs=((),) if inputs is None else tuple(
                    tuple(args) for args in inputs
                ),
            )
        else:
            overrides = {
                key: value
                for key, value in (
                    ("mode", mode),
                    ("engine", engine),
                    ("placement", placement),
                    ("by_site", by_site),
                    ("inputs", inputs),
                )
                if value is not None
            }
            if overrides:
                profile = replace(profile, **overrides)
        if profile.mode not in MODES:
            raise ProfileSpecError(
                f"unknown mode {profile.mode!r}; options: {MODES}"
            )
        named = [x is not None for x in (workload, source, asm)]
        if sum(named) != 1:
            raise ValueError("specify exactly one of workload/source/asm")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        object.__setattr__(self, "workload", workload)
        object.__setattr__(self, "scale", scale)
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "asm", asm)
        object.__setattr__(self, "profile", profile)
        object.__setattr__(self, "retries", retries)
        object.__setattr__(self, "timeout", timeout)
        object.__setattr__(self, "backoff", backoff)

    # -- legacy accessors (pre-ProfileSpec field names) ------------------------

    @property
    def inputs(self) -> Tuple[Tuple[int, ...], ...]:
        return self.profile.inputs

    @property
    def mode(self) -> str:
        return self.profile.mode

    @property
    def engine(self) -> Optional[str]:
        return self.profile.engine

    @property
    def placement(self) -> str:
        return self.profile.placement

    @property
    def by_site(self) -> bool:
        return self.profile.by_site

    def build_program(self):
        if self.workload is not None:
            from repro.workloads.suite import build_workload

            return build_workload(self.workload, self.scale)
        if self.source is not None:
            from repro.lang import compile_source

            return compile_source(self.source)
        from repro.ir.asm import parse_program

        return parse_program(self.asm)


def spec_to_json(spec: ShardSpec) -> dict:
    """A JSON-safe description of a spec (the manifest's ``spec`` key).

    The profiling configuration is embedded whole under ``profile``
    (see :meth:`repro.session.ProfileSpec.to_json`).
    """
    return {
        "workload": spec.workload,
        "scale": spec.scale,
        "source": spec.source,
        "asm": spec.asm,
        "profile": spec.profile.to_json(),
        "retries": spec.retries,
        "timeout": spec.timeout,
        "backoff": spec.backoff,
    }


def spec_from_json(raw: dict) -> ShardSpec:
    """Inverse of :func:`spec_to_json` (unknown keys are ignored).

    Legacy manifests — written before the profiling configuration was
    an embedded :class:`~repro.session.ProfileSpec` — carried ``mode``
    / ``engine`` / ``placement`` / ``by_site`` / ``inputs`` at top
    level; they still load.
    """
    kwargs = {
        key: raw[key]
        for key in (
            "workload", "scale", "source", "asm", "retries", "timeout", "backoff"
        )
        if key in raw
    }
    if isinstance(raw.get("profile"), dict):
        kwargs["profile"] = ProfileSpec.from_json(raw["profile"])
    else:
        for key in ("inputs", "mode", "engine", "placement", "by_site"):
            if key in raw:
                kwargs[key] = raw[key]
        if "inputs" in kwargs:
            kwargs["inputs"] = tuple(tuple(args) for args in kwargs["inputs"])
    return ShardSpec(**kwargs)


@dataclass
class ShardOutcome:
    """The merged view of one sharded (or serial reference) run."""

    spec: ShardSpec
    shards: int
    #: Aggregate CCT (context modes; ``None`` for ``flow_hw``).
    cct: Optional[MergedCCT]
    #: Aggregate flat path profile (``None`` for ``context_hw``).
    path_profile: Optional[PathProfile]
    #: Sum of the sixteen ground-truth event counters over every run.
    counters: Dict[Event, int]
    #: ``main``'s return value per input, in input-set order.
    return_values: List[int]
    #: Shard CCT dump paths (empty when ``workdir`` was temporary).
    shard_files: List[str] = field(default_factory=list)
    #: Run manifest path (``None`` when ``workdir`` was temporary).
    manifest_path: Optional[str] = None


def _run_one(
    session: ProfileSession, program, spec: ShardSpec, args: Tuple[int, ...]
):
    """One input's profiling run through the canonical session pipeline.

    ``ProfileSpec`` already validated the mode at construction; this
    re-checks against the *shard-mergeable* subset so a spec built for
    a mode the merge layer cannot aggregate fails loudly, by name,
    instead of silently running some other configuration.
    """
    if spec.mode not in MODES:
        raise ProfileSpecError(
            f"cannot shard-merge mode {spec.mode!r}; options: {MODES}"
        )
    return session.run(spec.profile, program, args)


def flow_template(spec: ShardSpec):
    """Instrument (without running) to recover the path numberings.

    Instrumentation is deterministic in the program, so the template's
    :class:`FunctionPathInfo` decodes path sums produced by any worker.
    """
    return ProfileSession().instrument(spec.profile, spec.build_program()).flow


# -- checkpoints and the run manifest ----------------------------------------


def _chunks_of(spec: ShardSpec, shards: int) -> List[List[Tuple[int, Tuple[int, ...]]]]:
    indexed = list(enumerate(spec.inputs))
    return [indexed[shard::shards] for shard in range(shards)]


def _result_path(workdir: str, shard: int) -> str:
    return os.path.join(workdir, f"shard{shard}.result.json")


def _cct_dump_path(workdir: str, shard: int) -> str:
    return os.path.join(workdir, f"shard{shard}.cct.json")


def _load_checkpoint(workdir: str, shard: int) -> dict:
    """Load and integrity-check one shard's result checkpoint.

    Returns the result payload; raises :class:`ShardCheckpointError`
    (result file missing/corrupt) or lets
    :class:`~repro.cct.serialize.CCTLoadError` escape (CCT dump
    unreadable) so the caller can name the offending path.
    """
    path = _result_path(workdir, shard)
    if not os.path.exists(path):
        raise ShardCheckpointError(path, "missing shard result")
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ShardCheckpointError(
            path, f"truncated or corrupt shard result ({exc})"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != RESULT_FORMAT:
        raise ShardCheckpointError(path, "not a shard result file")
    if payload.get("digest") != _payload_digest(payload):
        raise ShardCheckpointError(path, "shard result digest mismatch")
    if payload.get("cct") is not None:
        dump = os.path.join(workdir, payload["cct"])
        if not os.path.exists(dump):
            raise ShardCheckpointError(dump, "missing shard CCT dump")
        if file_digest(dump) != payload.get("cct_digest"):
            raise ShardCheckpointError(
                dump, "shard CCT dump digest mismatch (torn write?)"
            )
    return payload


def _checkpoint_valid(workdir: str, shard: int) -> bool:
    try:
        _load_checkpoint(workdir, shard)
        return True
    except (ShardCheckpointError, CCTLoadError):
        return False


def manifest_path_of(workdir: str) -> str:
    return os.path.join(workdir, MANIFEST_NAME)


def _write_manifest(workdir: str, spec: ShardSpec, shards: int) -> str:
    chunks = _chunks_of(spec, shards)
    payload = {
        "format": MANIFEST_FORMAT,
        "spec": spec_to_json(spec),
        "shards": shards,
        "entries": [
            {
                "shard": shard,
                "result": os.path.basename(_result_path(workdir, shard)),
                "cct": os.path.basename(_cct_dump_path(workdir, shard)),
                "inputs": [index for index, _ in chunks[shard]],
            }
            for shard in range(shards)
        ],
    }
    path = manifest_path_of(workdir)
    _write_json_atomic(path, payload)
    return path


def load_manifest(path: str) -> dict:
    """Read a run manifest; :class:`ShardCheckpointError` if damaged."""
    if not os.path.exists(path):
        raise ShardCheckpointError(path, "missing run manifest")
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ShardCheckpointError(
            path, f"truncated or corrupt run manifest ({exc})"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != MANIFEST_FORMAT:
        raise ShardCheckpointError(path, "not a shard run manifest")
    return payload


# -- the worker --------------------------------------------------------------


def _shard_worker_entry(task) -> None:
    """Run one shard's inputs and checkpoint the aggregate to disk.

    Executed in a forked worker (or in-process when ``jobs=1``).  All
    results travel through the checkpoint files — the supervisor reads
    nothing from the worker but its exit code — which is what makes a
    SIGKILLed worker indistinguishable from a never-started one and
    retry/resume a pure re-execution.
    """
    spec, shard, chunk, workdir, fault = task
    # ``writer`` distinguishes each worker process's lines (and its
    # per-writer ``seq``) from the coordinator's in the shared log.
    session = ProfileSession(
        log=RunLog(
            os.path.join(workdir, LOG_NAME),
            writer=f"shard-{shard}/{os.getpid()}",
            shard=shard,
            pid=os.getpid(),
        )
    )
    program = spec.build_program()
    counters = [0] * NUM_EVENTS
    returns: List[Tuple[int, int]] = []
    ccts = []
    flow_counts: Dict[str, Dict[int, int]] = {}
    flow_metrics: Dict[str, Dict[int, List[int]]] = {}
    midpoint = len(chunk) // 2
    for position, (input_index, args) in enumerate(chunk):
        if fault is not None and position == midpoint:
            fault.maybe_fire(workdir, shard, "mid_run")
        run = _run_one(session, program, spec, args)
        for event in Event:
            counters[event] += run.result.counters[event]
        returns.append((input_index, run.result.return_value))
        if run.cct is not None:
            ccts.append(run.cct)
        if spec.mode in FLAT_FLOW_MODES:
            for name, fpp in run.path_profile.functions.items():
                flow_counts[name] = merge_counts(
                    [flow_counts.get(name, {}), fpp.counts]
                )
                flow_metrics[name] = merge_metric_maps(
                    [flow_metrics.get(name, {}), fpp.metrics]
                )
    if fault is not None and not chunk:
        fault.maybe_fire(workdir, shard, "mid_run")

    cct_name = None
    dump_digest = None
    if ccts:
        dump = _cct_dump_path(workdir, shard)
        save_cct(merge_ccts(ccts), dump)
        dump_digest = file_digest(dump)
        cct_name = os.path.basename(dump)
        # The digest witnesses the *intended* dump; a truncate fault
        # after this point is exactly the torn write it simulates.
        if fault is not None:
            fault.maybe_fire(workdir, shard, "after_dump", dump_path=dump)
    payload = {
        "format": RESULT_FORMAT,
        "shard": shard,
        "counters": counters,
        "returns": [[index, value] for index, value in returns],
        "cct": cct_name,
        "cct_digest": dump_digest,
        "flow_counts": (
            counts_to_json(flow_counts) if spec.mode in FLAT_FLOW_MODES else None
        ),
        "flow_metrics": (
            metric_maps_to_json(flow_metrics)
            if spec.mode in FLAT_FLOW_MODES
            else None
        ),
    }
    payload["digest"] = _payload_digest(payload)
    result = _result_path(workdir, shard)
    _write_json_atomic(result, payload)
    if fault is not None and cct_name is None:
        fault.maybe_fire(workdir, shard, "after_dump", dump_path=result)


# -- the supervisor ----------------------------------------------------------


def _execute_shards(
    spec: ShardSpec,
    shards: int,
    workdir: str,
    pending: Sequence[int],
    jobs: int,
    log: RunLog,
    retries: int,
    timeout: Optional[float],
    fault: Optional[FaultPlan],
    manifest: Optional[str],
) -> None:
    """Run ``pending`` shards to valid checkpoints, retrying failures.

    Waves: every still-failing shard of a wave is retried in the next
    one after an exponential-backoff pause, until its checkpoint
    validates or its attempt budget (``1 + retries``) is spent —
    then :class:`ShardRunError` (completed checkpoints stay on disk).
    ``jobs=1`` runs workers in-process (no fork, timeouts unenforced),
    which still exercises the full checkpoint/validate/merge path.
    """
    chunks = _chunks_of(spec, shards)
    attempts = {shard: 0 for shard in pending}
    wave = list(pending)
    while wave:
        for shard in wave:
            attempts[shard] += 1
        tasks = [(spec, shard, chunks[shard], workdir, fault) for shard in wave]
        failed: List[int] = []
        if jobs == 1:
            for task in tasks:
                shard = task[1]
                log.emit(
                    "shard_start", shard=shard, attempt=attempts[shard], pid=os.getpid()
                )
                started = time.perf_counter()
                exitcode = 0
                try:
                    _shard_worker_entry(task)
                except Exception as exc:  # noqa: BLE001 - retried below
                    exitcode = 1
                    log.emit(
                        "shard_corrupt",
                        shard=shard,
                        attempt=attempts[shard],
                        reason=f"worker raised {type(exc).__name__}: {exc}",
                    )
                log.emit(
                    "shard_exit",
                    shard=shard,
                    attempt=attempts[shard],
                    exitcode=exitcode,
                    timed_out=False,
                    seconds=round(time.perf_counter() - started, 4),
                )
                if exitcode != 0:
                    failed.append(shard)
        else:
            outcomes = run_supervised(
                _shard_worker_entry,
                tasks,
                jobs=jobs,
                timeout=timeout,
                on_start=lambda i, pid: log.emit(
                    "shard_start", shard=wave[i], attempt=attempts[wave[i]], pid=pid
                ),
            )
            for outcome in outcomes:
                shard = wave[outcome.index]
                log.emit(
                    "shard_exit",
                    shard=shard,
                    attempt=attempts[shard],
                    exitcode=outcome.exitcode,
                    timed_out=outcome.timed_out,
                    seconds=round(outcome.seconds, 4),
                )
                if not outcome.ok:
                    failed.append(shard)
        for shard in wave:
            if shard in failed:
                continue
            try:
                payload = _load_checkpoint(workdir, shard)
            except (ShardCheckpointError, CCTLoadError) as exc:
                log.emit(
                    "shard_corrupt",
                    shard=shard,
                    attempt=attempts[shard],
                    reason=str(exc),
                )
                failed.append(shard)
                continue
            log.emit(
                "shard_done",
                shard=shard,
                attempt=attempts[shard],
                digest=payload["digest"],
            )
        exhausted = [shard for shard in failed if attempts[shard] > retries]
        if exhausted:
            shard = exhausted[0]
            log.emit(
                "run_failed",
                shard=shard,
                attempts=attempts[shard],
                reason="retry budget exhausted",
            )
            raise ShardRunError(
                f"shard {shard} failed {attempts[shard]} time(s); "
                + (f"resume with the manifest at {manifest}" if manifest
                   else "re-run with a persistent workdir to enable resume"),
                shard=shard,
                attempts=attempts[shard],
                manifest=manifest,
            )
        if failed:
            delay = min(
                MAX_BACKOFF,
                spec.backoff * (2 ** (max(attempts[s] for s in failed) - 1)),
            )
            for shard in sorted(failed):
                log.emit(
                    "shard_retry",
                    shard=shard,
                    next_attempt=attempts[shard] + 1,
                    delay=round(delay, 4),
                )
            if delay:
                time.sleep(delay)
        wave = sorted(failed)


# -- merging -----------------------------------------------------------------


def _merge_from_checkpoints(
    spec: ShardSpec, shards: int, workdir: str, log: RunLog
) -> ShardOutcome:
    counters = {event: 0 for event in Event}
    returns: List[Tuple[int, int]] = []
    shard_files: List[str] = []
    ccts = []
    flow_payloads = []
    for shard in range(shards):
        payload = _load_checkpoint(workdir, shard)
        for event in Event:
            counters[event] += payload["counters"][event]
        returns.extend((index, value) for index, value in payload["returns"])
        if payload["cct"] is not None:
            dump = os.path.join(workdir, payload["cct"])
            shard_files.append(dump)
            ccts.append(load_cct(dump))
        if spec.mode in FLAT_FLOW_MODES:
            flow_payloads.append(
                (
                    counts_from_json(payload["flow_counts"] or {}),
                    metric_maps_from_json(payload["flow_metrics"] or {}),
                )
            )

    cct = merge_ccts(ccts) if spec.mode not in FLAT_FLOW_MODES else None
    log.emit(
        "merge",
        shards_merged=shards,
        cct_digest=None if cct is None else cct_digest(cct),
    )
    profile: Optional[PathProfile] = None
    if spec.mode == "context_flow":
        profile = collect_path_profile(flow_template(spec), cct_runtime=cct)
    elif spec.mode in FLAT_FLOW_MODES:
        template = flow_template(spec)
        profile = PathProfile()
        for name, info in template.functions.items():
            merged_counts = merge_counts(
                [counts.get(name, {}) for counts, _ in flow_payloads]
            )
            merged_metrics = merge_metric_maps(
                [metrics.get(name, {}) for _, metrics in flow_payloads]
            )
            profile.functions[name] = FunctionPathProfile(
                info, merged_counts, merged_metrics
            )
    return ShardOutcome(
        spec=spec,
        shards=shards,
        cct=cct,
        path_profile=profile,
        counters=counters,
        return_values=[rv for _, rv in sorted(returns)],
        shard_files=shard_files,
        manifest_path=manifest_path_of(workdir),
    )


# -- entry points ------------------------------------------------------------


def shard_run(
    spec: ShardSpec,
    shards: int,
    workdir: Optional[str] = None,
    jobs: Optional[int] = None,
    max_retries: Optional[int] = None,
    timeout: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> ShardOutcome:
    """Profile ``spec``'s input set across ``shards`` forked workers.

    ``workdir`` keeps the per-shard checkpoints, the run manifest, and
    the JSONL run log (otherwise a temporary directory is used and
    cleaned up — which also forfeits resumability).  ``jobs`` caps
    worker parallelism (default: one process per shard; ``jobs=1``
    runs the shards serially in-process, still exercising the full
    checkpoint/merge path).  ``max_retries``/``timeout`` override the
    spec's knobs; ``fault_plan`` (or ``REPRO_FAULT_PLAN``) injects a
    deterministic worker fault for testing recovery.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    retries = spec.retries if max_retries is None else max_retries
    timeout = spec.timeout if timeout is None else timeout
    fault = fault_plan if fault_plan is not None else FaultPlan.from_env()
    cleanup = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-shards-")
        workdir = cleanup.name
    try:
        # Stale checkpoints from a previous run in the same directory
        # would let a crashed worker masquerade as a completed one —
        # including shards beyond this run's count, which a later
        # resume of an old manifest could otherwise pick up.
        for name in os.listdir(workdir):
            if name.startswith("shard") and (
                name.endswith(".result.json") or name.endswith(".cct.json")
            ):
                os.unlink(os.path.join(workdir, name))
        manifest = _write_manifest(workdir, spec, shards)
        log = RunLog(os.path.join(workdir, LOG_NAME))
        log.emit(
            "run_start",
            shards=shards,
            inputs=len(spec.inputs),
            mode=spec.mode,
            resume=False,
        )
        _execute_shards(
            spec,
            shards,
            workdir,
            list(range(shards)),
            shards if jobs is None else jobs,
            log,
            retries,
            timeout,
            fault,
            None if cleanup is not None else manifest,
        )
        outcome = _merge_from_checkpoints(spec, shards, workdir, log)
        log.emit("run_complete", shards=shards)
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    if cleanup is not None:
        outcome.shard_files = []
        outcome.manifest_path = None
    return outcome


def resume_run(
    manifest: str,
    jobs: Optional[int] = None,
    max_retries: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> ShardOutcome:
    """Finish an interrupted sharded run from its manifest.

    Validates every shard checkpoint under the manifest's directory,
    re-executes only the missing or corrupt shards, and merges.  The
    merge consumes the same per-shard aggregates a crash-free run
    would have produced (each is a deterministic function of the spec
    and its input chunk), so the resumed outcome is byte-identical to
    both the uninterrupted sharded run and the serial reference.
    """
    payload = load_manifest(manifest)
    spec = spec_from_json(payload["spec"])
    shards = payload["shards"]
    workdir = os.path.dirname(os.path.abspath(manifest))
    retries = spec.retries if max_retries is None else max_retries
    fault = fault_plan if fault_plan is not None else FaultPlan.from_env()
    log = RunLog(os.path.join(workdir, LOG_NAME))
    pending = [
        shard for shard in range(shards) if not _checkpoint_valid(workdir, shard)
    ]
    log.emit(
        "run_start",
        shards=shards,
        inputs=len(spec.inputs),
        mode=spec.mode,
        resume=True,
        pending=pending,
    )
    if pending:
        _execute_shards(
            spec,
            shards,
            workdir,
            pending,
            len(pending) if jobs is None else jobs,
            log,
            retries,
            spec.timeout,
            fault,
            manifest,
        )
    outcome = _merge_from_checkpoints(spec, shards, workdir, log)
    log.emit("run_complete", shards=shards)
    return outcome


def serial_run(spec: ShardSpec) -> ShardOutcome:
    """The unsharded reference: every input in-process, one merge.

    Uses the identical aggregation path as :func:`shard_run` (merge of
    per-run CCTs, pointwise profile sums) without forking or touching
    disk, so sharded outcomes can be compared against it bit for bit.
    """
    session = ProfileSession()
    program = spec.build_program()
    counters = {event: 0 for event in Event}
    returns: List[int] = []
    ccts = []
    profiles: List[PathProfile] = []
    for args in spec.inputs:
        run = _run_one(session, program, spec, args)
        for event in Event:
            counters[event] += run.result.counters[event]
        returns.append(run.result.return_value)
        if run.cct is not None:
            ccts.append(run.cct)
        if spec.mode in FLAT_FLOW_MODES:
            profiles.append(run.path_profile)

    cct = merge_ccts(ccts) if spec.mode not in FLAT_FLOW_MODES else None
    profile: Optional[PathProfile] = None
    if spec.mode == "context_flow":
        profile = collect_path_profile(flow_template(spec), cct_runtime=cct)
    elif spec.mode in FLAT_FLOW_MODES:
        template = flow_template(spec)
        profile = PathProfile()
        for name, info in template.functions.items():
            profile.functions[name] = FunctionPathProfile(
                info,
                merge_counts([p.functions[name].counts for p in profiles
                              if name in p.functions]),
                merge_metric_maps([p.functions[name].metrics for p in profiles
                                   if name in p.functions]),
            )
    return ShardOutcome(
        spec=spec,
        shards=1,
        cct=cct,
        path_profile=profile,
        counters=counters,
        return_values=returns,
    )


def spec_for_workload(
    name: str,
    scale: float = 1.0,
    runs: int = 1,
    mode: str = "context_flow",
    engine: Optional[str] = None,
) -> ShardSpec:
    """Input set for a suite workload: ``runs`` repetitions of its
    (argument-less, deterministic) entry point."""
    return ShardSpec(
        workload=name,
        scale=scale,
        inputs=tuple(() for _ in range(max(1, runs))),
        mode=mode,
        engine=engine,
    )


__all__ = [
    "FLAT_FLOW_MODES",
    "LOG_NAME",
    "MANIFEST_NAME",
    "MODES",
    "ShardCheckpointError",
    "ShardOutcome",
    "ShardRunError",
    "ShardSpec",
    "load_manifest",
    "manifest_path_of",
    "resume_run",
    "serial_run",
    "shard_run",
    "spec_for_workload",
    "spec_from_json",
    "spec_to_json",
]
