"""Sharded profiling: split a workload's input set across workers.

Scaling the reproduction past one process per workload means running
shards of an input set concurrently and *aggregating* their profiles —
the same problem PGO systems solve when combining per-process
hardware-counter dumps.  The driver here:

1. splits the input set round-robin across ``shards`` workers;
2. each worker (a forked process via
   :func:`repro.tools.bench_runner.run_tasks`) runs its inputs
   serially, merges the per-run CCTs with
   :func:`repro.cct.merge.merge_ccts`, and serializes the shard's
   aggregate with :func:`repro.cct.serialize.save_cct`;
3. the parent reloads the shard dumps and merges them into one
   aggregate CCT / path profile and one summed hardware-counter bank.

Because the merge is commutative and associative with the empty CCT
as identity (see :mod:`repro.cct.merge`), the aggregate is identical
for every shard count — including ``shards=1`` — and identical to
:func:`serial_run`, the in-process reference that never forks or
touches disk.  ``tests/test_shard_runner.py`` pins this for
``N ∈ {1, 2, 4}`` across statistics, hot paths, and all sixteen
counters.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cct.merge import MergedCCT, merge_ccts
from repro.cct.serialize import load_cct, save_cct
from repro.machine.counters import NUM_EVENTS, Event
from repro.machine.memory import MemoryMap
from repro.profiles.merge import merge_counts, merge_metric_maps
from repro.profiles.pathprofile import (
    FunctionPathProfile,
    PathProfile,
    collect_path_profile,
)
from repro.tools.bench_runner import run_tasks
from repro.tools.pp import PP, clone_program

#: Profiling configurations the driver knows how to merge.
MODES = ("context_flow", "context_hw", "flow_hw")


@dataclass(frozen=True)
class ShardSpec:
    """A workload plus its input set, in fork-safe (picklable) form.

    Exactly one of ``workload`` (a SPEC95 suite name), ``source``
    (mini-language text), or ``asm`` (IR assembly text) names the
    program; workers rebuild it locally rather than pickling compiled
    IR.  ``inputs`` is the input set: one integer-argument tuple per
    run of ``main``.
    """

    workload: Optional[str] = None
    scale: float = 1.0
    source: Optional[str] = None
    asm: Optional[str] = None
    inputs: Tuple[Tuple[int, ...], ...] = ((),)
    mode: str = "context_flow"
    engine: Optional[str] = None
    placement: str = "spanning_tree"
    by_site: bool = True

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; options: {MODES}")
        named = [x is not None for x in (self.workload, self.source, self.asm)]
        if sum(named) != 1:
            raise ValueError("specify exactly one of workload/source/asm")
        object.__setattr__(
            self, "inputs", tuple(tuple(args) for args in self.inputs)
        )

    def build_program(self):
        if self.workload is not None:
            from repro.workloads.suite import build_workload

            return build_workload(self.workload, self.scale)
        if self.source is not None:
            from repro.lang import compile_source

            return compile_source(self.source)
        from repro.ir.asm import parse_program

        return parse_program(self.asm)


@dataclass
class ShardOutcome:
    """The merged view of one sharded (or serial reference) run."""

    spec: ShardSpec
    shards: int
    #: Aggregate CCT (context modes; ``None`` for ``flow_hw``).
    cct: Optional[MergedCCT]
    #: Aggregate flat path profile (``None`` for ``context_hw``).
    path_profile: Optional[PathProfile]
    #: Sum of the sixteen ground-truth event counters over every run.
    counters: Dict[Event, int]
    #: ``main``'s return value per input, in input-set order.
    return_values: List[int]
    #: Shard CCT dump paths (empty when ``workdir`` was temporary).
    shard_files: List[str] = field(default_factory=list)


def _run_one(pp: PP, program, spec: ShardSpec, args: Tuple[int, ...]):
    if spec.mode == "context_flow":
        return pp.context_flow(program, args, by_site=spec.by_site)
    if spec.mode == "context_hw":
        return pp.context_hw(program, args, by_site=spec.by_site)
    return pp.flow_hw(program, args)


def flow_template(spec: ShardSpec):
    """Instrument (without running) to recover the path numberings.

    Instrumentation is deterministic in the program, so the template's
    :class:`FunctionPathInfo` decodes path sums produced by any worker.
    """
    from repro.instrument.pathinstr import instrument_paths

    program = clone_program(spec.build_program())
    from repro.instrument.tables import ProfilingRuntime

    runtime = ProfilingRuntime(MemoryMap().profiling.base)
    return instrument_paths(
        program,
        mode="hw" if spec.mode == "flow_hw" else "freq",
        placement=spec.placement,
        runtime=runtime,
        per_context=spec.mode == "context_flow",
    )


def _shard_worker(task):
    """Run one shard's inputs; executed in a forked worker process."""
    spec, chunk, cct_path = task
    pp = PP(placement=spec.placement, engine=spec.engine)
    program = spec.build_program()
    counters = [0] * NUM_EVENTS
    returns: List[Tuple[int, int]] = []
    ccts = []
    flow_counts: Dict[str, Dict[int, int]] = {}
    flow_metrics: Dict[str, Dict[int, List[int]]] = {}
    for input_index, args in chunk:
        run = _run_one(pp, program, spec, args)
        for event in Event:
            counters[event] += run.result.counters[event]
        returns.append((input_index, run.result.return_value))
        if run.cct is not None:
            ccts.append(run.cct)
        if spec.mode == "flow_hw":
            for name, fpp in run.path_profile.functions.items():
                flow_counts[name] = merge_counts(
                    [flow_counts.get(name, {}), fpp.counts]
                )
                flow_metrics[name] = merge_metric_maps(
                    [flow_metrics.get(name, {}), fpp.metrics]
                )
    if ccts:
        save_cct(merge_ccts(ccts), cct_path)
    else:
        cct_path = None
    return {
        "counters": counters,
        "returns": returns,
        "cct_path": cct_path,
        "flow_counts": flow_counts if spec.mode == "flow_hw" else None,
        "flow_metrics": flow_metrics if spec.mode == "flow_hw" else None,
    }


def _merge_shard_results(spec: ShardSpec, shards: int, results) -> ShardOutcome:
    counters = {event: 0 for event in Event}
    returns: List[Tuple[int, int]] = []
    shard_files: List[str] = []
    ccts = []
    for result in results:
        for event in Event:
            counters[event] += result["counters"][event]
        returns.extend(result["returns"])
        if result["cct_path"]:
            shard_files.append(result["cct_path"])
            ccts.append(load_cct(result["cct_path"]))

    cct = merge_ccts(ccts) if spec.mode != "flow_hw" else None
    profile: Optional[PathProfile] = None
    if spec.mode == "context_flow":
        profile = collect_path_profile(flow_template(spec), cct_runtime=cct)
    elif spec.mode == "flow_hw":
        template = flow_template(spec)
        profile = PathProfile()
        for name, info in template.functions.items():
            merged_counts = merge_counts(
                [r["flow_counts"].get(name, {}) for r in results]
            )
            merged_metrics = merge_metric_maps(
                [r["flow_metrics"].get(name, {}) for r in results]
            )
            profile.functions[name] = FunctionPathProfile(
                info, merged_counts, merged_metrics
            )
    return ShardOutcome(
        spec=spec,
        shards=shards,
        cct=cct,
        path_profile=profile,
        counters=counters,
        return_values=[rv for _, rv in sorted(returns)],
        shard_files=shard_files,
    )


def shard_run(
    spec: ShardSpec,
    shards: int,
    workdir: Optional[str] = None,
    jobs: Optional[int] = None,
) -> ShardOutcome:
    """Profile ``spec``'s input set across ``shards`` forked workers.

    ``workdir`` keeps the per-shard CCT dumps (otherwise a temporary
    directory is used and cleaned up).  ``jobs`` caps worker
    parallelism (default: one process per shard; ``jobs=1`` runs the
    shards serially in-process, still exercising the dump/merge path).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    chunks = [
        [(i, args) for i, args in enumerate(spec.inputs)][shard::shards]
        for shard in range(shards)
    ]
    cleanup = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-shards-")
        workdir = cleanup.name
    try:
        tasks = [
            (spec, chunk, os.path.join(workdir, f"shard{index}.cct.json"))
            for index, chunk in enumerate(chunks)
        ]
        results = run_tasks(
            _shard_worker, tasks, jobs=shards if jobs is None else jobs
        )
        outcome = _merge_shard_results(spec, shards, results)
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    if cleanup is not None:
        outcome.shard_files = []
    return outcome


def serial_run(spec: ShardSpec) -> ShardOutcome:
    """The unsharded reference: every input in-process, one merge.

    Uses the identical aggregation path as :func:`shard_run` (merge of
    per-run CCTs, pointwise profile sums) without forking or touching
    disk, so sharded outcomes can be compared against it bit for bit.
    """
    pp = PP(placement=spec.placement, engine=spec.engine)
    program = spec.build_program()
    counters = {event: 0 for event in Event}
    returns: List[int] = []
    ccts = []
    profiles: List[PathProfile] = []
    for args in spec.inputs:
        run = _run_one(pp, program, spec, args)
        for event in Event:
            counters[event] += run.result.counters[event]
        returns.append(run.result.return_value)
        if run.cct is not None:
            ccts.append(run.cct)
        if spec.mode == "flow_hw":
            profiles.append(run.path_profile)

    cct = merge_ccts(ccts) if spec.mode != "flow_hw" else None
    profile: Optional[PathProfile] = None
    if spec.mode == "context_flow":
        profile = collect_path_profile(flow_template(spec), cct_runtime=cct)
    elif spec.mode == "flow_hw":
        template = flow_template(spec)
        profile = PathProfile()
        for name, info in template.functions.items():
            profile.functions[name] = FunctionPathProfile(
                info,
                merge_counts([p.functions[name].counts for p in profiles
                              if name in p.functions]),
                merge_metric_maps([p.functions[name].metrics for p in profiles
                                   if name in p.functions]),
            )
    return ShardOutcome(
        spec=spec,
        shards=1,
        cct=cct,
        path_profile=profile,
        counters=counters,
        return_values=returns,
    )


def spec_for_workload(
    name: str,
    scale: float = 1.0,
    runs: int = 1,
    mode: str = "context_flow",
    engine: Optional[str] = None,
) -> ShardSpec:
    """Input set for a suite workload: ``runs`` repetitions of its
    (argument-less, deterministic) entry point."""
    return ShardSpec(
        workload=name,
        scale=scale,
        inputs=tuple(() for _ in range(max(1, runs))),
        mode=mode,
        engine=engine,
    )


__all__ = [
    "MODES",
    "ShardOutcome",
    "ShardSpec",
    "serial_run",
    "shard_run",
    "spec_for_workload",
]
