"""Structured JSONL logging for profiling runs.

Long collection runs need post-mortem observability: which shard was
retried, why, how many attempts it took, what digest the merge
consumed, and how long each pipeline phase of every run took.  Writers
append one JSON object per event to a ``run.log.jsonl`` file next to
the shard checkpoints (or wherever ``repro profile --log`` points), so
a crashed or resumed run carries its full history in the working
directory.

Events share a small envelope — ``seq`` (monotonic per writer),
``ts`` (Unix seconds), ``event`` — plus event-specific fields:

========================  ====================================================
``run_start``             ``shards``, ``inputs``, ``mode``, ``resume``
``shard_start``           ``shard``, ``attempt``, ``pid``
``shard_exit``            ``shard``, ``attempt``, ``exitcode``, ``timed_out``,
                          ``seconds``
``shard_corrupt``         ``shard``, ``attempt``, ``reason``
``shard_retry``           ``shard``, ``next_attempt``, ``delay``
``shard_done``            ``shard``, ``attempt``, ``digest``
``merge``                 ``shards_merged``, ``cct_digest``
``run_complete``          ``shards``
``run_failed``            ``shard``, ``attempts``, ``reason``
``phase``                 ``phase`` (clone/instrument/decode/run/collect,
                          plus ``store`` when the run is persisted to a
                          profile store, and ``trace_compile`` /
                          ``cache_hit`` after a trace-engine run),
                          ``mode``, ``seconds``; the decode phase adds
                          ``engine``, the run phase ``instructions`` and
                          ``cycles``, the store phase ``run_id`` and
                          ``workload``, the trace_compile phase the
                          machine's trace statistics (``traces_compiled``,
                          ``disk_cache_hits``, ...), the cache_hit phase
                          ``disk_cache_hits`` (emitted by
                          :class:`repro.session.ProfileSession`)
========================  ====================================================

The log is append-only.  Shard workers append their own ``phase``
events: each ``emit`` is a single whole-line ``O_APPEND`` write, so
concurrent writers interleave lines, never bytes.  A writer can carry
``context`` fields (e.g. ``shard``/``pid``) merged into every record
to tell its lines apart; ``seq`` stays monotonic *per writer*.  A
``RunLog(None)`` swallows events, keeping call sites unconditional.
"""

from __future__ import annotations

import json
import time
from typing import Iterator, List, Optional


class RunLog:
    """Append-only JSONL event log (no-op when ``path`` is ``None``).

    ``context`` keyword fields are merged into every record the writer
    emits — the shard runner stamps worker logs with ``shard``/``pid``.
    """

    def __init__(self, path: Optional[str], **context):
        self.path = path
        self.context = context
        self._seq = 0

    def emit(self, event: str, **fields) -> None:
        if self.path is None:
            return
        record = {"seq": self._seq, "ts": round(time.time(), 3), "event": event}
        record.update(self.context)
        record.update(fields)
        self._seq += 1
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_run_log(path: str) -> List[dict]:
    """Parse a run log back into event dicts (skipping torn tails).

    A crash can leave a partial final line; tolerate it — the log is
    observability, not a source of truth (the checkpoints are).
    """
    events: List[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                break
    return events


def events_of(path: str, kind: str) -> Iterator[dict]:
    """The events of one kind, in log order."""
    return (event for event in read_run_log(path) if event.get("event") == kind)


__all__ = ["RunLog", "events_of", "read_run_log"]
