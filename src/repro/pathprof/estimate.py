"""Static edge-frequency estimation for spanning-tree placement.

The MICRO'96 optimization picks a maximum-weight spanning tree so that
frequently executed edges become tree edges (which carry no increment).
Absent measured frequencies, the classic heuristic weights an edge by
``10 ** loop_depth``: an edge nested in two loops is assumed 100x hotter
than straight-line code.
"""

from __future__ import annotations

from typing import Dict

from repro.cfg.analysis import backedges, natural_loop
from repro.cfg.graph import CFG


def loop_depths(cfg: CFG) -> Dict[str, int]:
    """Loop-nesting depth per vertex: how many natural loops contain it."""
    depth = {v: 0 for v in cfg.vertices}
    seen_headers = set()
    for edge in backedges(cfg):
        # Multiple backedges to one header describe the same loop for
        # depth purposes; count each header once.
        if edge.dst in seen_headers:
            continue
        seen_headers.add(edge.dst)
        for vertex in natural_loop(cfg, edge):
            depth[vertex] += 1
    return depth


def estimate_edge_frequencies(cfg: CFG) -> Dict[int, float]:
    """CFG-edge index -> estimated relative frequency.

    An edge executes about as often as its less deeply nested endpoint;
    a backedge executes as often as the loop body (its source's depth).
    """
    depth = loop_depths(cfg)
    back_indices = {e.index for e in backedges(cfg)}
    weights: Dict[int, float] = {}
    for edge in cfg.edges:
        if edge.index in back_indices:
            d = depth[edge.src]
        else:
            d = min(depth[edge.src], depth[edge.dst])
        weights[edge.index] = 10.0 ** d
    return weights
