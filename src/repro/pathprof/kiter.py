"""k-iteration Ball–Larus path numbering (multi-iteration path profiling).

The base transform (:mod:`repro.pathprof.transform`) truncates every
path at a loop backedge, so cross-iteration behaviour is invisible by
construction.  Following D'Elia & Demetrescu ("Ball-Larus Path Profiling
Across Multiple Loop Iterations"), this module numbers paths that cross
up to ``k`` backedges by running the ordinary Ball–Larus numbering over
a *layered product graph*:

* ``k`` copies of the acyclified CFG body stacked as layers ``0..k-1``
  (a vertex is the tuple ``(block, layer)``; ENTRY and EXIT stay
  unreplicated),
* each backedge ``v->w`` contributes its usual pseudo edges — a start
  edge ``ENTRY -> (w, 0)`` and an end edge ``(v, k-1) -> EXIT`` — plus
  ``k-1`` *cross* edges ``(v, i) -> (w, i+1)`` that let a path continue
  through the backedge into the next layer,
* edges into EXIT are kept at every layer, so paths may end after fewer
  than ``k`` crossings.

Because :class:`~repro.pathprof.numbering.PathNumbering` never inspects
vertex names, it runs unmodified over the layered graph and yields the
same unique/compact guarantee: path sums are dense in
``[0, num_paths)``.  At ``k = 1`` the layered graph's edge list is
index-identical to :func:`~repro.pathprof.transform.build_transformed`'s,
so the Val labelling — and therefore every downstream artifact — is
*equal*, not merely isomorphic.

The probe encoding packs ``path_sum * k + layer`` into the single
scavenged path register; see :mod:`repro.instrument.kflowinstr`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cfg.analysis import backedges as find_backedges
from repro.cfg.graph import CFG, Edge
from repro.pathprof.numbering import PathNumbering, ReconstructedPath
from repro.pathprof.transform import TEdge


def _block_name(vertex) -> str:
    """Map a layered vertex back to its CFG block name."""
    return vertex[0] if isinstance(vertex, tuple) else vertex


class KTransformedGraph:
    """The layered acyclic graph the k-iteration numbering runs on.

    Duck-typed to :class:`~repro.pathprof.transform.TransformedGraph`
    (``entry``/``exit``/``vertices``/``succ``/``pred``/``edges``/
    ``backedges``/``pseudo_for_backedge``) so
    :class:`~repro.pathprof.numbering.PathNumbering` works unchanged.
    Non-string vertices are ``(block, layer)`` tuples.
    """

    def __init__(self, cfg: CFG, k: int):
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ValueError(f"k must be an int >= 1, got {k!r}")
        self.cfg = cfg
        self.k = k
        self.entry = cfg.entry
        self.exit = cfg.exit
        self.vertices: List[object] = [cfg.entry]
        for layer in range(k):
            for v in cfg.vertices:
                if v != cfg.entry and v != cfg.exit:
                    self.vertices.append((v, layer))
        self.vertices.append(cfg.exit)
        self.succ: Dict[object, List[TEdge]] = {v: [] for v in self.vertices}
        self.pred: Dict[object, List[TEdge]] = {v: [] for v in self.vertices}
        self.edges: List[TEdge] = []
        self.backedges: List[Edge] = []
        #: backedge CFG index -> (start TEdge, end TEdge)
        self.pseudo_for_backedge: Dict[int, Tuple[TEdge, TEdge]] = {}
        #: backedge CFG index -> [cross TEdge at layer 0 .. layer k-2]
        self.cross_for_backedge: Dict[int, List[TEdge]] = {}
        #: (CFG edge index, layer) -> its real TEdge copy
        self.layer_edges: Dict[Tuple[int, int], TEdge] = {}

    def _vmap(self, name: str, layer: int):
        if name == self.cfg.entry or name == self.cfg.exit:
            return name
        return (name, layer)

    def _add(self, src, dst, role: str, origin: Edge) -> TEdge:
        edge = TEdge(src, dst, len(self.edges), role, origin)
        self.edges.append(edge)
        self.succ[src].append(edge)
        self.pred[dst].append(edge)
        return edge


def build_ktransformed(cfg: CFG, k: int) -> KTransformedGraph:
    """Build the layered product graph for paths crossing up to ``k-1`` backedges.

    The edge insertion order is a contract: at ``k = 1`` it is
    index-identical to :func:`build_transformed` (non-backedge CFG edges
    in CFG order, then start/end pseudo pairs in backedge-discovery
    order), which is what makes k=1 profiles byte-identical to the base
    flow modes.
    """
    graph = KTransformedGraph(cfg, k)
    back = find_backedges(cfg)
    back_indices = {e.index for e in back}
    graph.backedges = back
    for layer in range(k):
        for edge in cfg.edges:
            if edge.index in back_indices:
                continue
            if edge.src == cfg.entry and layer > 0:
                continue  # ENTRY has no predecessors; it exists only at layer 0
            tedge = graph._add(
                graph._vmap(edge.src, layer), graph._vmap(edge.dst, layer), "real", edge
            )
            graph.layer_edges[(edge.index, layer)] = tedge
    for edge in back:
        start = graph._add(cfg.entry, graph._vmap(edge.dst, 0), "start", edge)
        crosses = [
            graph._add(
                graph._vmap(edge.src, i), graph._vmap(edge.dst, i + 1), "cross", edge
            )
            for i in range(k - 1)
        ]
        end = graph._add(graph._vmap(edge.src, k - 1), cfg.exit, "end", edge)
        graph.pseudo_for_backedge[edge.index] = (start, end)
        graph.cross_for_backedge[edge.index] = crosses
    return graph


class KPathNumbering(PathNumbering):
    """Ball–Larus numbering over the layered product graph.

    All machinery is inherited; only decoding needs to project layered
    ``(block, layer)`` vertices back to block names so reconstructed
    paths read like ordinary block sequences.
    """

    graph: KTransformedGraph

    @property
    def k(self) -> int:
        return self.graph.k

    def _decode(self, path_sum: int, tedges: List[TEdge]) -> ReconstructedPath:
        entry_backedge: Optional[Edge] = None
        exit_backedge: Optional[Edge] = None
        edges = list(tedges)
        if edges and edges[0].role == "start":
            entry_backedge = edges[0].origin
        if edges and edges[-1].role == "end":
            exit_backedge = edges[-1].origin
        blocks: List[str] = []
        if edges:
            first = edges[0]
            blocks.append(_block_name(first.dst if first.role == "start" else first.src))
            for edge in edges[1:] if first.role == "start" else edges:
                if edge.dst != self.graph.exit:
                    blocks.append(_block_name(edge.dst))
        return ReconstructedPath(path_sum, edges, blocks, entry_backedge, exit_backedge)

    # -- per-layer value helpers (used by probe placement) ---------------------

    def layer_values(self, cfg_edge: Edge) -> Tuple[Optional[int], ...]:
        """Val of each layer copy of a non-backedge CFG edge.

        ``None`` marks a layer whose copy is unreachable in the layered
        graph (the numbering never labels edges out of unreachable
        vertices); reachability over-approximates dynamic occupancy, so
        such entries are never consulted at run time.
        """
        values: List[Optional[int]] = []
        for layer in range(self.k):
            tedge = self.graph.layer_edges.get((cfg_edge.index, layer))
            values.append(None if tedge is None else self.val.get(tedge.index))
        return tuple(values)

    def cross_values(self, backedge: Edge) -> Tuple[int, ...]:
        """Raw Val of the cross edge at each layer ``0..k-2`` (0 if unreachable)."""
        return tuple(
            self.val.get(tedge.index, 0)
            for tedge in self.graph.cross_for_backedge[backedge.index]
        )


def number_kpaths(cfg: CFG, k: int) -> KPathNumbering:
    """Convenience: build the layered graph for ``cfg`` and number its paths."""
    return KPathNumbering(build_ktransformed(cfg, k))


# ---------------------------------------------------------------------------
# The k=1 reconstruction law: prefix-splitting a k-path at its backedge
# crossings yields base (1-iteration) paths whose summed frequencies
# equal an independently measured k=1 profile exactly, because the two
# instrumentations partition the *same* dynamic edge stream — only the
# commit points differ.  (Metrics do not project: probe overhead differs
# with k.)
# ---------------------------------------------------------------------------


def split_kpath(knum: KPathNumbering, base: PathNumbering, path_sum: int) -> List[int]:
    """Split one k-path into the base path sums of its per-iteration segments.

    Walks the decoded layered-edge sequence; every cross edge closes the
    current segment with the base backedge's END value and opens the next
    with its START value, while real/start/end edges map to their base
    Val through the shared CFG edge.
    """
    bgraph = base.graph
    sums: List[int] = []
    current = 0
    for tedge in knum.regenerate(path_sum).tedges:
        pseudo = bgraph.pseudo_for_backedge.get(tedge.origin.index)
        if tedge.role == "start":
            current = base.val[pseudo[0].index]
        elif tedge.role == "cross":
            sums.append(current + base.val[pseudo[1].index])
            current = base.val[pseudo[0].index]
        elif tedge.role == "end":
            current += base.val[pseudo[1].index]
        else:
            current += base.val[bgraph.real_edge_for(tedge.origin).index]
    sums.append(current)
    return sums


def project_kpath_counts(
    knum: KPathNumbering, base: PathNumbering, counts: Dict[int, int]
) -> Dict[int, int]:
    """Project a k-path frequency table onto base (k=1) path sums."""
    projected: Dict[int, int] = {}
    for path_sum, freq in counts.items():
        if freq == 0:
            continue
        for segment in split_kpath(knum, base, path_sum):
            projected[segment] = projected.get(segment, 0) + freq
    return projected
