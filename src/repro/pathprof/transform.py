"""Cyclic -> acyclic CFG transformation (paper §2.2).

For each backedge b = v->w the transform removes b and adds two pseudo
edges: ``b_start = ENTRY->w`` and ``b_end = v->EXIT``.  The resulting
graph is acyclic, and the unique/compact path-sum property extends to
the four path categories the paper profiles:

* backedge-free ENTRY..EXIT paths,
* ENTRY..v followed by backedge v->w  (uses b_end),
* backedge into w, w..z, backedge out of z  (uses b_start and b'_end),
* backedge into w, w..EXIT  (uses b_start).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cfg.analysis import backedges as find_backedges
from repro.cfg.graph import CFG, Edge


@dataclass(frozen=True)
class TEdge:
    """An edge of the transformed graph.

    ``role`` is ``"real"`` for surviving CFG edges, ``"start"`` for
    ENTRY->w pseudo edges, ``"end"`` for v->EXIT pseudo edges.
    ``origin`` is the underlying CFG edge: for pseudo edges, the
    backedge they replace.
    """

    src: str
    dst: str
    index: int
    role: str
    origin: Edge

    @property
    def is_pseudo(self) -> bool:
        return self.role != "real"

    def __repr__(self) -> str:
        tag = "" if self.role == "real" else f"[{self.role}]"
        return f"TEdge({self.src}->{self.dst}{tag})"


class TransformedGraph:
    """The acyclic graph the numbering runs on.

    Successor lists preserve the original CFG edge order, with pseudo
    start edges appended to ENTRY's list in backedge-discovery order.
    The order is the total order the numbering uses (the paper notes
    the choice is immaterial; a fixed one keeps everything
    deterministic).
    """

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.entry = cfg.entry
        self.exit = cfg.exit
        self.vertices: List[str] = list(cfg.vertices)
        self.succ: Dict[str, List[TEdge]] = {v: [] for v in self.vertices}
        self.pred: Dict[str, List[TEdge]] = {v: [] for v in self.vertices}
        self.edges: List[TEdge] = []
        self.backedges: List[Edge] = []
        #: backedge CFG index -> (start TEdge, end TEdge)
        self.pseudo_for_backedge: Dict[int, Tuple[TEdge, TEdge]] = {}

    def _add(self, src: str, dst: str, role: str, origin: Edge) -> TEdge:
        edge = TEdge(src, dst, len(self.edges), role, origin)
        self.edges.append(edge)
        self.succ[src].append(edge)
        self.pred[dst].append(edge)
        return edge

    def real_edge_for(self, cfg_edge: Edge) -> Optional[TEdge]:
        for edge in self.succ[cfg_edge.src]:
            if edge.role == "real" and edge.origin.index == cfg_edge.index:
                return edge
        return None


def build_transformed(cfg: CFG) -> TransformedGraph:
    """Apply the backedge -> pseudo-edge transformation to ``cfg``."""
    graph = TransformedGraph(cfg)
    back = find_backedges(cfg)
    back_indices = {e.index for e in back}
    graph.backedges = back
    for edge in cfg.edges:
        if edge.index not in back_indices:
            graph._add(edge.src, edge.dst, "real", edge)
    for edge in back:
        start = graph._add(cfg.entry, edge.dst, "start", edge)
        end = graph._add(edge.src, cfg.exit, "end", edge)
        graph.pseudo_for_backedge[edge.index] = (start, end)
    return graph
