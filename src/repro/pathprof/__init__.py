"""Ball–Larus efficient path profiling (paper §2) and its extensions.

Pipeline:

1. :mod:`repro.pathprof.transform` turns a cyclic CFG into an acyclic
   one by replacing each backedge v->w with pseudo edges ENTRY->w and
   v->EXIT (§2.2).
2. :mod:`repro.pathprof.numbering` computes NP(v) (paths to EXIT) and
   the Val(e) edge labelling whose path sums are unique and compact
   (§2.1), plus path-sum -> block-sequence regeneration.
3. :mod:`repro.pathprof.placement` decides where increments go: the
   simple per-edge scheme of Figure 1(c), or the spanning-tree chord
   optimization of Figure 1(d) (from the Ball–Larus MICRO'96 paper the
   authors cite).
4. :mod:`repro.pathprof.kiter` extends the numbering to paths crossing
   up to k loop backedges (D'Elia & Demetrescu's multi-iteration
   scheme) via a layered product graph; ids stay dense and the k=1
   case degenerates to the base numbering exactly.
"""

from repro.pathprof.transform import TEdge, TransformedGraph, build_transformed
from repro.pathprof.numbering import (
    PathNumbering,
    PathProfilingError,
    ReconstructedPath,
    number_paths,
)
from repro.pathprof.kiter import (
    KPathNumbering,
    KTransformedGraph,
    build_ktransformed,
    number_kpaths,
    project_kpath_counts,
    split_kpath,
)
from repro.pathprof.placement import (
    BackedgeInstr,
    EdgeIncrement,
    ExitCommit,
    InstrumentationPlan,
    KBackedgeInstr,
    KEdgeIncrement,
    KExitCommit,
    KInstrumentationPlan,
    plan_kflow,
    plan_simple,
    plan_spanning_tree,
)
from repro.pathprof.estimate import estimate_edge_frequencies

__all__ = [
    "BackedgeInstr",
    "EdgeIncrement",
    "ExitCommit",
    "InstrumentationPlan",
    "KBackedgeInstr",
    "KEdgeIncrement",
    "KExitCommit",
    "KInstrumentationPlan",
    "KPathNumbering",
    "KTransformedGraph",
    "PathNumbering",
    "PathProfilingError",
    "ReconstructedPath",
    "TEdge",
    "TransformedGraph",
    "build_ktransformed",
    "build_transformed",
    "estimate_edge_frequencies",
    "number_kpaths",
    "number_paths",
    "plan_kflow",
    "plan_simple",
    "plan_spanning_tree",
    "project_kpath_counts",
    "split_kpath",
]
