"""Ball–Larus efficient path profiling (paper §2) and its extensions.

Pipeline:

1. :mod:`repro.pathprof.transform` turns a cyclic CFG into an acyclic
   one by replacing each backedge v->w with pseudo edges ENTRY->w and
   v->EXIT (§2.2).
2. :mod:`repro.pathprof.numbering` computes NP(v) (paths to EXIT) and
   the Val(e) edge labelling whose path sums are unique and compact
   (§2.1), plus path-sum -> block-sequence regeneration.
3. :mod:`repro.pathprof.placement` decides where increments go: the
   simple per-edge scheme of Figure 1(c), or the spanning-tree chord
   optimization of Figure 1(d) (from the Ball–Larus MICRO'96 paper the
   authors cite).
"""

from repro.pathprof.transform import TEdge, TransformedGraph, build_transformed
from repro.pathprof.numbering import (
    PathNumbering,
    PathProfilingError,
    ReconstructedPath,
    number_paths,
)
from repro.pathprof.placement import (
    BackedgeInstr,
    EdgeIncrement,
    ExitCommit,
    InstrumentationPlan,
    plan_simple,
    plan_spanning_tree,
)
from repro.pathprof.estimate import estimate_edge_frequencies

__all__ = [
    "BackedgeInstr",
    "EdgeIncrement",
    "ExitCommit",
    "InstrumentationPlan",
    "PathNumbering",
    "PathProfilingError",
    "ReconstructedPath",
    "TEdge",
    "TransformedGraph",
    "build_transformed",
    "estimate_edge_frequencies",
    "number_paths",
    "plan_simple",
    "plan_spanning_tree",
]
