"""Instrumentation placement: where the path-register updates go.

Two schemes:

* :func:`plan_simple` — Figure 1(c): every transformed edge with a
  nonzero Val gets ``r += Val(e)``; backedges get the combined
  ``count[r+END]++; r = START``; returning blocks commit with the Val of
  their exit edge folded in.

* :func:`plan_spanning_tree` — Figure 1(d) / the MICRO'96 optimization:
  add an uninstrumentable closing edge EXIT->ENTRY, pick a maximum-weight
  spanning tree of the (undirected) transformed graph, and place
  increments only on *chords*.  A chord's increment is the signed sum of
  Val around its fundamental cycle; for any ENTRY..EXIT path the chord
  increments telescope to exactly the path's Val sum, so path sums are
  unchanged while hot tree edges carry no instrumentation.  Increments
  that land on pseudo edges fold into the backedge's START/END
  constants, and those on exit edges fold into the commit.

Both schemes produce an :class:`InstrumentationPlan`, which the editor
(:mod:`repro.edit`) lowers to actual spliced IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cfg.graph import CFG, Edge
from repro.pathprof.kiter import KPathNumbering
from repro.pathprof.numbering import PathNumbering
from repro.pathprof.transform import TEdge


@dataclass(frozen=True)
class EdgeIncrement:
    """``r += value`` on a real CFG edge (value may be negative)."""

    edge: Edge
    value: int


@dataclass(frozen=True)
class BackedgeInstr:
    """``count[r + end_val] += 1; r = start_val`` on a backedge."""

    edge: Edge
    end_val: int
    start_val: int


@dataclass(frozen=True)
class ExitCommit:
    """``count[r + value] += 1`` in a returning block (before the ret)."""

    block: str
    value: int


@dataclass
class InstrumentationPlan:
    """Everything the editor needs to instrument one function."""

    numbering: PathNumbering
    method: str
    increments: List[EdgeIncrement] = field(default_factory=list)
    backedge_instrs: List[BackedgeInstr] = field(default_factory=list)
    exit_commits: List[ExitCommit] = field(default_factory=list)

    @property
    def num_paths(self) -> int:
        return self.numbering.num_paths

    @property
    def cfg(self) -> CFG:
        return self.numbering.cfg

    def increment_count(self) -> int:
        """Number of distinct ``r += v`` sites (the optimization's target)."""
        return sum(1 for inc in self.increments if inc.value != 0)

    def check_path_sums(self, limit: int = 4096) -> None:
        """Verify every path's increments telescope to its path sum.

        Walks up to ``limit`` regenerated paths and simulates the plan's
        updates; raises ``AssertionError`` on mismatch.  Used by tests
        and as a paranoia check for the spanning-tree scheme.
        """
        inc_by_edge: Dict[int, int] = {
            inc.edge.index: inc.value for inc in self.increments
        }
        start_by_backedge = {
            bi.edge.index: bi.start_val for bi in self.backedge_instrs
        }
        end_by_backedge = {bi.edge.index: bi.end_val for bi in self.backedge_instrs}
        commit_by_block = {ec.block: ec.value for ec in self.exit_commits}
        for path in self.numbering.enumerate_paths(limit=limit):
            register = 0
            if path.entry_backedge is not None:
                register = start_by_backedge[path.entry_backedge.index]
            for tedge in path.tedges:
                if tedge.role == "real" and tedge.dst != self.numbering.graph.exit:
                    register += inc_by_edge.get(tedge.origin.index, 0)
            if path.exit_backedge is not None:
                register += end_by_backedge[path.exit_backedge.index]
            else:
                register += commit_by_block[path.blocks[-1]]
            assert register == path.path_sum, (
                f"{self.cfg.name}: path {path.describe()} commits {register}, "
                f"expected {path.path_sum}"
            )


# ---------------------------------------------------------------------------
# k-iteration placement (kflow mode)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KEdgeIncrement:
    """``r += values[layer]`` on a real CFG edge (raw, unscaled values).

    ``values`` has one entry per layer; edges whose value is uniform
    across layers are lowered to a plain :class:`~repro.ir.PathAdd`.
    """

    edge: Edge
    values: Tuple[int, ...]


@dataclass(frozen=True)
class KBackedgeInstr:
    """Backedge probe: cross into the next layer, or commit at layer k-1.

    ``cross[i]`` is the raw Val of the cross edge leaving layer ``i``;
    ``end_val``/``start_val`` are the raw Vals of the layered graph's
    end/start pseudo edges (the commit index offset and post-commit
    restart).
    """

    edge: Edge
    cross: Tuple[int, ...]
    end_val: int
    start_val: int


@dataclass(frozen=True)
class KExitCommit:
    """``count[path + values[layer]] += 1`` in a returning block."""

    block: str
    values: Tuple[int, ...]


@dataclass
class KInstrumentationPlan:
    """Per-layer probe placement for one function's k-iteration profile."""

    numbering: KPathNumbering
    method: str
    increments: List[KEdgeIncrement] = field(default_factory=list)
    backedge_instrs: List[KBackedgeInstr] = field(default_factory=list)
    exit_commits: List[KExitCommit] = field(default_factory=list)

    @property
    def num_paths(self) -> int:
        return self.numbering.num_paths

    @property
    def cfg(self) -> CFG:
        return self.numbering.cfg

    def check_path_sums(self, limit: int = 4096) -> None:
        """Simulate the packed-register probes over regenerated k-paths.

        The register packs ``path_sum * k + layer``; each probe must
        telescope to the path's sum at its commit point.  Raises
        ``AssertionError`` on mismatch.
        """
        k = self.numbering.k
        inc_by_edge = {inc.edge.index: inc.values for inc in self.increments}
        bi_by_edge = {bi.edge.index: bi for bi in self.backedge_instrs}
        commit_by_block = {ec.block: ec.values for ec in self.exit_commits}
        exit_vertex = self.numbering.graph.exit
        for path in self.numbering.enumerate_paths(limit=limit):
            register = 0
            if path.entry_backedge is not None:
                register = bi_by_edge[path.entry_backedge.index].start_val * k
            for tedge in path.tedges:
                layer = register % k
                if tedge.role == "real" and tedge.dst != exit_vertex:
                    values = inc_by_edge.get(tedge.origin.index)
                    if values is not None:
                        register += values[layer] * k
                elif tedge.role == "cross":
                    register += bi_by_edge[tedge.origin.index].cross[layer] * k + 1
            layer = register % k
            if path.exit_backedge is not None:
                assert layer == k - 1, (
                    f"{self.cfg.name}: path {path.describe()} takes the end "
                    f"pseudo edge at layer {layer}, expected {k - 1}"
                )
                committed = (register - layer) // k + bi_by_edge[
                    path.exit_backedge.index
                ].end_val
            else:
                committed = (register - layer) // k + commit_by_block[path.blocks[-1]][
                    layer
                ]
            assert committed == path.path_sum, (
                f"{self.cfg.name}: path {path.describe()} commits {committed}, "
                f"expected {path.path_sum}"
            )


def plan_kflow(numbering: KPathNumbering) -> KInstrumentationPlan:
    """Per-edge placement over the layered graph (the kflow scheme).

    Each surviving CFG edge carries the per-layer Vals of its ``k``
    copies; unreachable layer copies are padded with the uniform
    reachable value when one exists (so the edge still collapses to a
    single plain add) and 0 otherwise — reachability over-approximates
    dynamic occupancy, so padded entries are never read at run time.
    """
    plan = KInstrumentationPlan(numbering, method="kflow")
    graph = numbering.graph
    cfg = numbering.cfg
    back_indices = {e.index for e in graph.backedges}
    for edge in cfg.edges:
        if edge.index in back_indices:
            continue
        raw = numbering.layer_values(edge)
        reachable = [v for v in raw if v is not None]
        if not reachable:
            continue  # no layer copy reachable from ENTRY: never executes
        uniform = reachable[0] if all(v == reachable[0] for v in reachable) else None
        pad = uniform if uniform is not None else 0
        values = tuple(pad if v is None else v for v in raw)
        if edge.dst == cfg.exit:
            plan.exit_commits.append(KExitCommit(edge.src, values))
        elif any(values):
            plan.increments.append(KEdgeIncrement(edge, values))
    for backedge in graph.backedges:
        start, end = graph.pseudo_for_backedge[backedge.index]
        plan.backedge_instrs.append(
            KBackedgeInstr(
                backedge,
                numbering.cross_values(backedge),
                numbering.val.get(end.index, 0),
                numbering.val[start.index],
            )
        )
    return plan


def plan_simple(numbering: PathNumbering) -> InstrumentationPlan:
    """The per-edge scheme: instrument every nonzero transformed edge."""
    plan = InstrumentationPlan(numbering, method="simple")
    graph = numbering.graph
    for tedge in graph.edges:
        if tedge.index not in numbering.val:
            continue  # source unreachable from ENTRY: never executes
        value = numbering.val[tedge.index]
        if tedge.role != "real":
            continue
        if tedge.dst == graph.exit:
            plan.exit_commits.append(ExitCommit(tedge.src, value))
        elif value != 0:
            plan.increments.append(EdgeIncrement(tedge.origin, value))
    for backedge in graph.backedges:
        start_val, end_val = numbering.pseudo_values(backedge)
        plan.backedge_instrs.append(BackedgeInstr(backedge, end_val, start_val))
    return plan


def plan_spanning_tree(
    numbering: PathNumbering,
    weights: Optional[Dict[int, float]] = None,
) -> InstrumentationPlan:
    """The chord-increment scheme over a maximum-weight spanning tree.

    ``weights`` maps CFG-edge indices to relative frequencies (measured
    or estimated); heavier edges are preferred as tree edges.  Pseudo
    edges inherit their backedge's weight.
    """
    plan = InstrumentationPlan(numbering, method="spanning_tree")
    graph = numbering.graph
    tree, closing = _max_spanning_tree(numbering, weights)
    chord_inc = _chord_increments(numbering, tree, closing)

    start_vals: Dict[int, int] = {e.index: 0 for e in graph.backedges}
    end_vals: Dict[int, int] = {e.index: 0 for e in graph.backedges}
    commits: Dict[str, int] = {}
    # Every exit edge needs a commit even with a zero increment.
    for tedge in graph.edges:
        if tedge.role == "real" and tedge.dst == graph.exit:
            commits[tedge.src] = 0

    for tedge, inc in chord_inc.items():
        if tedge.role == "start":
            start_vals[tedge.origin.index] = inc
        elif tedge.role == "end":
            end_vals[tedge.origin.index] = inc
        elif tedge.dst == graph.exit:
            commits[tedge.src] = inc
        elif inc != 0:
            plan.increments.append(EdgeIncrement(tedge.origin, inc))

    for backedge in graph.backedges:
        plan.backedge_instrs.append(
            BackedgeInstr(backedge, end_vals[backedge.index], start_vals[backedge.index])
        )
    for block, value in commits.items():
        plan.exit_commits.append(ExitCommit(block, value))
    return plan


# ---------------------------------------------------------------------------
# Spanning-tree machinery
# ---------------------------------------------------------------------------

#: Sentinel "edge" closing EXIT back to ENTRY; always a tree edge.
_CLOSING = "closing"


class _UnionFind:
    def __init__(self, items):
        self.parent = {item: item for item in items}

    def find(self, item):
        root = item
        parent = self.parent
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a, b) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


def _max_spanning_tree(
    numbering: PathNumbering, weights: Optional[Dict[int, float]]
) -> Tuple[List[TEdge], bool]:
    """Kruskal over the undirected transformed graph.

    Returns (tree edges, closing_in_tree).  The closing EXIT->ENTRY edge
    is processed first so it is always in the tree (it cannot carry an
    increment).  Ties break on edge index for determinism.
    """
    graph = numbering.graph
    uf = _UnionFind(graph.vertices)
    closing_in_tree = uf.union(graph.exit, graph.entry)

    def weight(tedge: TEdge) -> float:
        if weights is None:
            return 1.0
        return weights.get(tedge.origin.index, 1.0)

    ordered = sorted(graph.edges, key=lambda e: (-weight(e), e.index))
    tree: List[TEdge] = []
    for tedge in ordered:
        if uf.union(tedge.src, tedge.dst):
            tree.append(tedge)
    return tree, closing_in_tree


def _chord_increments(
    numbering: PathNumbering, tree: List[TEdge], closing_in_tree: bool
) -> Dict[TEdge, int]:
    """Increment per chord: signed Val around its fundamental cycle.

    For chord c = u->v, the fundamental cycle is c plus the tree path
    from v back to u; traversing it in c's direction, each edge
    contributes +Val if traversed forward and -Val if backward.  The
    closing edge contributes 0 (it has no Val).
    """
    graph = numbering.graph
    tree_set = {e.index for e in tree}
    # Undirected adjacency over tree edges: vertex -> (neighbor, tedge, forward)
    adj: Dict[str, List[Tuple[str, Optional[TEdge], bool]]] = {
        v: [] for v in graph.vertices
    }
    for tedge in tree:
        adj[tedge.src].append((tedge.dst, tedge, True))
        adj[tedge.dst].append((tedge.src, tedge, False))
    if closing_in_tree:
        adj[graph.exit].append((graph.entry, None, True))
        adj[graph.entry].append((graph.exit, None, False))

    # Root the tree at ENTRY once; record parent pointers.
    parent: Dict[str, Tuple[str, Optional[TEdge], bool]] = {}
    seen = {graph.entry}
    stack = [graph.entry]
    while stack:
        vertex = stack.pop()
        for neighbor, tedge, forward in adj[vertex]:
            if neighbor in seen:
                continue
            seen.add(neighbor)
            parent[neighbor] = (vertex, tedge, forward)
            stack.append(neighbor)

    depth: Dict[str, int] = {graph.entry: 0}

    def vertex_depth(vertex: str) -> int:
        trail = []
        while vertex not in depth:
            trail.append(vertex)
            vertex = parent[vertex][0]
        base = depth[vertex]
        for v in reversed(trail):
            base += 1
            depth[v] = base
        return depth[trail[0]] if trail else base

    increments: Dict[TEdge, int] = {}
    for tedge in graph.edges:
        if tedge.index in tree_set:
            continue
        if tedge.index not in numbering.val:
            continue  # source unreachable from ENTRY: never executes
        inc = numbering.val[tedge.index]
        # Walk v and u up to their LCA, signing tree-edge Vals.
        u, v = tedge.src, tedge.dst
        du, dv = vertex_depth(u), vertex_depth(v)
        # Traversal direction: cycle goes u ->(chord) v ->(tree) u.
        # From v up toward the LCA we travel *with* the path direction
        # v..u, so a tree edge stored as parent->child (forward=True,
        # meaning edge points parent->child... see below) contributes:
        #   going from child to parent against edge direction -> -Val
        #   going from child to parent along edge direction  -> +Val
        # parent[child] = (parent, tedge, forward) with forward=True when
        # the tedge is directed parent->child.
        # Tree edges whose source is unreachable carry no Val; any
        # consistent assignment works for the telescoping identity
        # (both sides are linear in the edge weights and such edges
        # never lie on an executed path), so they count as zero.
        val = numbering.val
        while dv > du:
            p, edge, forward = parent[v]
            if edge is not None:
                value = val.get(edge.index, 0)
                inc += -value if forward else value
            v, dv = p, dv - 1
        while du > dv:
            p, edge, forward = parent[u]
            if edge is not None:
                value = val.get(edge.index, 0)
                inc += value if forward else -value
            u, du = p, du - 1
        while u != v:
            pu, eu, fu = parent[u]
            pv, ev, fv = parent[v]
            if eu is not None:
                value = val.get(eu.index, 0)
                inc += value if fu else -value
            if ev is not None:
                value = val.get(ev.index, 0)
                inc += -value if fv else value
            u, v = pu, pv
        increments[tedge] = inc
    return increments
