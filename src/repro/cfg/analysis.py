"""Graph analyses over CFGs: DFS, backedges, orders, dominators, loops.

Backedge identification follows the paper (§2.2): a depth-first search
from ENTRY marks an edge u->w as a backedge when w is on the current
DFS stack (i.e., w is an ancestor of u in the DFS tree).  The cyclic->
acyclic transform and the four path categories are all defined in terms
of this edge set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.cfg.graph import CFG, Edge


class CFGAnalysisError(Exception):
    """Raised when an analysis's precondition does not hold."""


def depth_first_order(cfg: CFG) -> List[str]:
    """Vertices reachable from entry in DFS preorder (iterative)."""
    order: List[str] = []
    seen: Set[str] = set()
    stack = [cfg.entry]
    while stack:
        vertex = stack.pop()
        if vertex in seen:
            continue
        seen.add(vertex)
        order.append(vertex)
        # Reverse so the first successor is visited first.
        for edge in reversed(cfg.succ[vertex]):
            if edge.dst not in seen:
                stack.append(edge.dst)
    return order


def backedges(cfg: CFG) -> List[Edge]:
    """Edges whose target is a DFS ancestor of their source.

    Iterative DFS with explicit colors: gray = on the current DFS
    stack.  Deterministic because successor lists have stable order.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {v: WHITE for v in cfg.vertices}
    result: List[Edge] = []
    # Stack entries: (vertex, iterator position into succ list)
    stack: List[Tuple[str, int]] = []
    color[cfg.entry] = GRAY
    stack.append((cfg.entry, 0))
    while stack:
        vertex, idx = stack[-1]
        succs = cfg.succ[vertex]
        if idx < len(succs):
            stack[-1] = (vertex, idx + 1)
            edge = succs[idx]
            dst_color = color[edge.dst]
            if dst_color == GRAY:
                result.append(edge)
            elif dst_color == WHITE:
                color[edge.dst] = GRAY
                stack.append((edge.dst, 0))
        else:
            color[vertex] = BLACK
            stack.pop()
    return result


def reverse_topological_order(
    cfg: CFG, exclude: FrozenSet[int] = frozenset()
) -> List[str]:
    """Reverse topological order of the graph minus ``exclude``-d edges.

    ``exclude`` holds edge indices (typically the backedges) so the
    remaining graph must be acyclic; raises :class:`CFGAnalysisError`
    if a cycle survives.  Only vertices reachable from entry are
    returned.
    """
    # Iterative postorder DFS; postorder of a DAG reversed is a
    # topological order, so the postorder itself is reverse-topological.
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {v: WHITE for v in cfg.vertices}
    order: List[str] = []
    stack: List[Tuple[str, int]] = []
    color[cfg.entry] = GRAY
    stack.append((cfg.entry, 0))
    while stack:
        vertex, idx = stack[-1]
        succs = cfg.succ[vertex]
        advanced = False
        while idx < len(succs):
            edge = succs[idx]
            idx += 1
            if edge.index in exclude:
                continue
            dst_color = color[edge.dst]
            if dst_color == GRAY:
                raise CFGAnalysisError(
                    f"{cfg.name}: cycle through {edge.src}->{edge.dst} after "
                    f"excluding {len(exclude)} edges"
                )
            if dst_color == WHITE:
                stack[-1] = (vertex, idx)
                color[edge.dst] = GRAY
                stack.append((edge.dst, 0))
                advanced = True
                break
        if advanced:
            continue
        stack[-1] = (vertex, idx)
        if idx >= len(succs):
            color[vertex] = BLACK
            order.append(vertex)
            stack.pop()
    return order


def dominators(cfg: CFG) -> Dict[str, Set[str]]:
    """Dominator sets by iterative dataflow over reverse postorder.

    Only vertices reachable from entry appear in the result.
    """
    rpo = list(reversed(_postorder(cfg)))
    reachable = set(rpo)
    dom: Dict[str, Set[str]] = {v: reachable.copy() for v in rpo}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for vertex in rpo:
            if vertex == cfg.entry:
                continue
            preds = [e.src for e in cfg.pred[vertex] if e.src in reachable]
            if not preds:
                continue
            new = set.intersection(*(dom[p] for p in preds))
            new.add(vertex)
            if new != dom[vertex]:
                dom[vertex] = new
                changed = True
    return dom


def _postorder(cfg: CFG) -> List[str]:
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {v: WHITE for v in cfg.vertices}
    order: List[str] = []
    stack: List[Tuple[str, int]] = []
    color[cfg.entry] = GRAY
    stack.append((cfg.entry, 0))
    while stack:
        vertex, idx = stack[-1]
        succs = cfg.succ[vertex]
        if idx < len(succs):
            stack[-1] = (vertex, idx + 1)
            dst = succs[idx].dst
            if color[dst] == WHITE:
                color[dst] = GRAY
                stack.append((dst, 0))
        else:
            color[vertex] = BLACK
            order.append(vertex)
            stack.pop()
    return order


def is_reducible(cfg: CFG) -> bool:
    """True when every backedge target dominates its source.

    The paper's algorithm handles irreducible CFGs too (any DFS backedge
    set works); this predicate exists for workload statistics and tests.
    """
    dom = dominators(cfg)
    for edge in backedges(cfg):
        if edge.src not in dom:  # unreachable source
            continue
        if edge.dst not in dom[edge.src]:
            return False
    return True


def natural_loop(cfg: CFG, backedge: Edge) -> Set[str]:
    """Vertices of the natural loop of ``backedge`` (header included)."""
    header = backedge.dst
    loop: Set[str] = {header}
    stack = [backedge.src]
    while stack:
        vertex = stack.pop()
        if vertex in loop:
            continue
        loop.add(vertex)
        for edge in cfg.pred[vertex]:
            stack.append(edge.src)
    return loop


def reachable_to_exit(cfg: CFG) -> Set[str]:
    """Vertices from which EXIT is reachable (reverse reachability)."""
    seen: Set[str] = set()
    stack = [cfg.exit]
    while stack:
        vertex = stack.pop()
        if vertex in seen:
            continue
        seen.add(vertex)
        for edge in cfg.pred[vertex]:
            stack.append(edge.src)
    return seen


def check_single_entry_exit(cfg: CFG) -> None:
    """Precondition of path profiling: all vertices reachable from entry
    can reach EXIT.  Raises :class:`CFGAnalysisError` otherwise."""
    forward = set(depth_first_order(cfg))
    backward = reachable_to_exit(cfg)
    stuck = forward - backward
    if stuck:
        raise CFGAnalysisError(
            f"{cfg.name}: vertices cannot reach EXIT: {sorted(stuck)}"
        )
