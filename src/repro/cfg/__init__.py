"""Control-flow graphs and the analyses path profiling needs.

Builds a CFG per function with a unique ENTRY (the function's first
block) and a synthetic unique EXIT that every returning block feeds,
exactly the normal form the paper's algorithm requires (§2).
"""

from repro.cfg.graph import ENTRY, EXIT, CFG, Edge, build_cfg
from repro.cfg.analysis import (
    CFGAnalysisError,
    backedges,
    depth_first_order,
    dominators,
    is_reducible,
    natural_loop,
    reverse_topological_order,
)

__all__ = [
    "CFG",
    "CFGAnalysisError",
    "ENTRY",
    "EXIT",
    "Edge",
    "backedges",
    "build_cfg",
    "depth_first_order",
    "dominators",
    "is_reducible",
    "natural_loop",
    "reverse_topological_order",
]
