"""CFG construction from IR functions.

Vertices are block names plus a synthetic :data:`EXIT` vertex.  Every
block whose terminator leaves the function (``ret`` or ``longjmp``)
gets an edge to EXIT, giving the unique-exit normal form the
Ball–Larus algorithm requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir.function import Function
from repro.ir.instructions import Kind

#: Name of the synthetic exit vertex; never collides with block names
#: because the assembler/builder reject identifiers with this shape.
EXIT = "__EXIT__"

#: Synthetic entry vertex, added only when the function's first block
#: has predecessors (e.g. a loop branching back to it).  The
#: Ball–Larus algorithm requires an ENTRY with no incoming edges:
#: otherwise a backedge into the first block would turn into a pseudo
#: edge ENTRY->ENTRY, a self-loop in the "acyclic" graph.
ENTRY = "__ENTRY__"


@dataclass(frozen=True)
class Edge:
    """A CFG edge.  ``index`` is stable and unique within one CFG.

    ``kind`` records how control flows: ``"branch"`` for br targets,
    ``"then"``/``"else"`` for the two arms of a cbr, ``"exit"`` for the
    synthetic edge to EXIT.
    """

    src: str
    dst: str
    index: int
    kind: str = "branch"

    def __repr__(self) -> str:
        return f"Edge({self.src}->{self.dst}#{self.index})"


class CFG:
    """Adjacency-list CFG with stable edge indices."""

    def __init__(self, name: str, entry: str):
        self.name = name
        self.entry = entry
        self.exit = EXIT
        self.vertices: List[str] = []
        self.succ: Dict[str, List[Edge]] = {}
        self.pred: Dict[str, List[Edge]] = {}
        self.edges: List[Edge] = []

    def add_vertex(self, name: str) -> None:
        if name in self.succ:
            raise ValueError(f"duplicate vertex {name!r}")
        self.vertices.append(name)
        self.succ[name] = []
        self.pred[name] = []

    def add_edge(self, src: str, dst: str, kind: str = "branch") -> Edge:
        edge = Edge(src, dst, len(self.edges), kind)
        self.edges.append(edge)
        self.succ[src].append(edge)
        self.pred[dst].append(edge)
        return edge

    def successors(self, vertex: str) -> List[str]:
        return [e.dst for e in self.succ[vertex]]

    def predecessors(self, vertex: str) -> List[str]:
        return [e.src for e in self.pred[vertex]]

    def out_degree(self, vertex: str) -> int:
        return len(self.succ[vertex])

    def find_edge(self, src: str, dst: str) -> Optional[Edge]:
        for edge in self.succ[src]:
            if edge.dst == dst:
                return edge
        return None

    def __repr__(self) -> str:
        return (
            f"CFG({self.name!r}, {len(self.vertices)} vertices, "
            f"{len(self.edges)} edges)"
        )


def build_cfg(function: Function) -> CFG:
    """Build the CFG of ``function`` with the synthetic EXIT vertex.

    Blocks unreachable from the entry are still added as vertices (the
    analyses skip them); blocks that cannot reach EXIT make path
    profiling ill-defined and are rejected by the path-profiling pass,
    not here.
    """
    cfg = CFG(function.name, function.entry.name)
    for block in function.blocks:
        cfg.add_vertex(block.name)
    cfg.add_vertex(EXIT)
    for block in function.blocks:
        term = block.terminator
        kind = term.kind
        if kind == Kind.BR:
            cfg.add_edge(block.name, term.target, "branch")
        elif kind == Kind.CBR:
            cfg.add_edge(block.name, term.then, "then")
            cfg.add_edge(block.name, term.els, "else")
        elif kind in (Kind.RET, Kind.LONGJMP):
            cfg.add_edge(block.name, EXIT, "exit")
        else:  # pragma: no cover - validation guarantees a terminator
            raise ValueError(f"block {block.name!r} has no terminator")
    first = function.entry.name
    if cfg.pred[first]:
        cfg.add_vertex(ENTRY)
        cfg.add_edge(ENTRY, first, "entry")
        cfg.entry = ENTRY
    return cfg
