"""Superblock formation from a measured path profile.

Takes a steady-state loop path — a Ball–Larus path that both enters
and leaves through backedges to the same header — and tail-duplicates
it into a *superblock*: a single-entry clone of the trace whose
internal unconditional jumps are straightened away.  All edges into
the original header are redirected to the clone, so steady iterations
run entirely inside the trace; any off-trace branch falls back into
the original blocks and re-enters the trace at the next backedge.

This is precisely the trade the paper's summary describes: "these
optimizations duplicate paths to customize them, which increases code
size" — and a path profile is what makes picking the right trace an
empirical decision rather than a guess.

Selection and transformation are separate layers: the pass pipeline
(:mod:`repro.opt.pipeline`) ranks candidate loop paths *across all
functions* via :meth:`~repro.opt.measured.MeasuredProfile.
hot_loop_paths` and applies :func:`form_superblock_from_path` to the
winners under a code-growth budget; :func:`form_superblock` survives
as the single-function convenience that picks the hottest qualifying
path from one profile (live or measured — both carry ``counts`` and
``decode``).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir.function import Block, Function, validate_function
from repro.ir.instructions import Kind
from repro.pathprof.numbering import ReconstructedPath


@dataclass
class SuperblockResult:
    """What the transformation did, for reporting and tests."""

    function: str
    header: str
    trace: List[str]
    clone_names: List[str]
    trace_freq: int
    blocks_added: int
    jumps_straightened: int
    code_growth: int  # icost-weighted instructions added


def hottest_loop_path(profile):
    """The most frequent backedge-to-backedge path around one header.

    ``profile`` is anything with ``counts`` and ``decode`` — a live
    :class:`~repro.profiles.pathprofile.FunctionPathProfile` or a
    :class:`~repro.opt.measured.MeasuredFunctionProfile`.
    """
    best = None
    best_freq = 0
    for path_sum, freq in profile.counts.items():
        if freq <= best_freq:
            continue
        decoded = profile.decode(path_sum)
        if decoded.entry_backedge is None or decoded.exit_backedge is None:
            continue
        if decoded.entry_backedge.dst != decoded.exit_backedge.dst:
            continue
        best = decoded
        best_freq = freq
    return best, best_freq


def form_superblock(
    function: Function,
    profile,
    min_freq: int = 2,
) -> Optional[SuperblockResult]:
    """Pick the hottest loop path of one function and superblock it."""
    path, freq = hottest_loop_path(profile)
    if path is None or freq < min_freq:
        return None
    return form_superblock_from_path(function, path, freq)


def form_superblock_from_path(
    function: Function,
    path: ReconstructedPath,
    freq: int,
) -> Optional[SuperblockResult]:
    """Apply superblock formation for one selected loop path, in place.

    ``path`` must be a steady-state loop path (entry and exit backedges
    to the same header); returns None when the function was already
    transformed (the clone names exist).
    """
    header = path.blocks[0]
    trace = list(path.blocks)
    size_before = function.size_in_instructions()

    # 1. Clone the trace, chaining on-trace terminator arms.
    suffix = ".sb"
    clone_names = [name + suffix for name in trace]
    if any(any(b.name == cn for b in function.blocks) for cn in clone_names):
        return None  # already transformed
    clones: Dict[str, Block] = {}
    for position, name in enumerate(trace):
        original = function.block(name)
        clone = Block(clone_names[position], copy.deepcopy(original.instrs))
        clones[name] = clone
    for position, name in enumerate(trace[:-1]):
        term = clones[name].instrs[-1]
        nxt = trace[position + 1]
        _retarget(term, nxt, nxt + suffix)
    for clone in clones.values():
        function.add_block(clone)

    # 2. Redirect every edge into the original header (preheader edges,
    #    all backedges — including the trace clone's own) to the clone
    #    header, so steady iterations stay in the superblock.
    header_clone = header + suffix
    for block in function.blocks:
        if block.name == header_clone:
            continue
        _retarget(block.instrs[-1], header, header_clone)
        block.note_edit()

    # 3. Straighten: merge clone pairs linked by unconditional jumps.
    jumps_straightened = 0
    chain = list(clone_names)
    position = 0
    while position < len(chain) - 1:
        current = function.block(chain[position])
        term = current.instrs[-1]
        if term.kind == Kind.BR and term.target == chain[position + 1]:
            follower = function.block(chain[position + 1])
            current.instrs = current.instrs[:-1] + follower.instrs
            current.note_edit()
            function.blocks.remove(follower)
            function.invalidate_index()
            removed = chain.pop(position + 1)
            clone_names.remove(removed)
            jumps_straightened += 1
            # Re-examine the merged block: it may now end in a Br to
            # the next clone in the chain.
        else:
            position += 1

    function.invalidate_index()
    if function.assign_call_sites():
        # Sites renumbered: decoded blocks bake ``Call.site`` into their
        # compiled closures, so every block with a call must be evicted.
        for block in function.blocks:
            block.note_edit()
    validate_function(function)
    return SuperblockResult(
        function=function.name,
        header=header,
        trace=trace,
        clone_names=clone_names,
        trace_freq=freq,
        blocks_added=len(clone_names),
        jumps_straightened=jumps_straightened,
        code_growth=function.size_in_instructions() - size_before,
    )


def _retarget(terminator, old: str, new: str) -> None:
    kind = terminator.kind
    if kind == Kind.BR and terminator.target == old:
        terminator.target = new
    elif kind == Kind.CBR:
        if terminator.then == old:
            terminator.then = new
        if terminator.els == old:
            terminator.els = new
