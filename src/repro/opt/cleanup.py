"""IR cleanup passes: constant folding, copy propagation, dead blocks.

Small, local, and semantics-preserving — the passes a binary editor's
companion optimizer would run after splicing or duplication:

* :func:`fold_constants` — per-block constant and copy propagation:
  an operand whose defining ``const``/``mov`` is visible within the
  block folds into an immediate; fully-constant integer ops evaluate
  at compile time.  Conditional branches on known constants become
  unconditional.
* :func:`remove_unreachable_blocks` — drop blocks no path from the
  entry reaches (superblock formation, for one, orphans originals).
* :func:`merge_blocks` — splice a block into its unique ``br``
  successor, removing the executed jump (inlining and superblock
  formation both leave such seams).
* :func:`cleanup_function` / :func:`cleanup_program` — all of the
  above, to a fixpoint.

None of the passes touch instrumentation pseudo-instructions, and all
preserve observable behaviour: tests check optimized programs return
identical results with no more executed instructions.
"""

from __future__ import annotations

from typing import Dict, List, Set, Union

from repro.cfg.analysis import depth_first_order
from repro.cfg.graph import build_cfg
from repro.ir.function import Function, Program, validate_function
from repro.ir.instructions import (
    BINARY_OPS,
    Binop,
    Br,
    Cbr,
    Const,
    Imm,
    Instruction,
    Kind,
    Move,
)


def fold_constants(function: Function) -> int:
    """Per-block constant/copy propagation; returns changes made.

    A block is rebound (and its edit generation stamped, per the
    invalidation contract) only when rewriting actually changed an
    instruction — an untouched block keeps its decoded/compiled code.
    """
    changes = 0
    for block in function.blocks:
        known: Dict[int, Union[int, float]] = {}
        copies: Dict[int, int] = {}
        rewritten: List[Instruction] = []
        block_changed = False
        for instr in block.instrs:
            kind = instr.kind
            if kind == Kind.CONST:
                known[instr.dst] = instr.value
                copies.pop(instr.dst, None)
                _invalidate_copies_of(copies, instr.dst)
                rewritten.append(instr)
                continue
            if kind == Kind.MOVE:
                source = copies.get(instr.src, instr.src)
                if source in known:
                    rewritten.append(Const(instr.dst, known[source]))
                    known[instr.dst] = known[source]
                    copies.pop(instr.dst, None)
                    _invalidate_copies_of(copies, instr.dst)
                    changes += 1
                    block_changed = True
                else:
                    copies[instr.dst] = source
                    known.pop(instr.dst, None)
                    if source != instr.src:
                        rewritten.append(Move(instr.dst, source))
                        block_changed = True
                    else:
                        rewritten.append(instr)
                continue
            if kind == Kind.BINOP:
                a = copies.get(instr.a, instr.a)
                b = instr.b
                if not isinstance(b, Imm):
                    b = copies.get(b, b)
                    if b in known and isinstance(known[b], int):
                        b = Imm(known[b])
                        changes += 1
                if (
                    a in known
                    and isinstance(known[a], int)
                    and isinstance(b, Imm)
                    and isinstance(b.value, int)
                ):
                    value = BINARY_OPS[instr.op](known[a], b.value)
                    rewritten.append(Const(instr.dst, value))
                    known[instr.dst] = value
                    copies.pop(instr.dst, None)
                    _invalidate_copies_of(copies, instr.dst)
                    changes += 1
                    block_changed = True
                    continue
                if a != instr.a or b is not instr.b:
                    rewritten.append(Binop(instr.op, instr.dst, a, b))
                    block_changed = True
                else:
                    rewritten.append(instr)
                known.pop(instr.dst, None)
                copies.pop(instr.dst, None)
                _invalidate_copies_of(copies, instr.dst)
                continue
            if kind == Kind.CBR:
                cond = copies.get(instr.cond, instr.cond)
                if cond in known:
                    target = instr.then if known[cond] != 0 else instr.els
                    rewritten.append(Br(target))
                    changes += 1
                    block_changed = True
                    continue
                if cond != instr.cond:
                    rewritten.append(Cbr(cond, instr.then, instr.els))
                    changes += 1
                    block_changed = True
                    continue
                rewritten.append(instr)
                continue
            # Anything else: operands may read copies; defs invalidate.
            for reg in instr.defined():
                known.pop(reg, None)
                copies.pop(reg, None)
                _invalidate_copies_of(copies, reg)
            rewritten.append(instr)
        if block_changed:
            block.instrs = rewritten
            block.note_edit()
    return changes


def _invalidate_copies_of(copies: Dict[int, int], reg: int) -> None:
    for dst in [d for d, s in copies.items() if s == reg]:
        del copies[dst]


def merge_blocks(function: Function) -> int:
    """Merge each block into its unique ``br`` successor; returns merges.

    When a block ends in an unconditional branch to a block with no
    other predecessors, the two are one straight-line region split by
    an executed jump — inlining and superblock formation both leave
    such seams (entry glue, lowered returns, straightened traces).
    Merging splices the successor's instructions over the branch,
    removing one executed instruction per traversal.  Blocks carrying
    instrumentation pseudo-instructions are left alone (probe placement
    is per-block), and the entry block is never absorbed.
    """
    merges = 0
    while True:
        cfg = build_cfg(function)
        by_name = {b.name: b for b in function.blocks}
        merged = False
        for block in function.blocks:
            if not block.instrs:
                continue
            last = block.instrs[-1]
            if last.kind != Kind.BR:
                continue
            target = last.target
            if target == block.name or target == function.entry.name:
                continue
            if len(cfg.pred.get(target, ())) != 1:
                continue
            tblock = by_name[target]
            if any(
                i.kind >= Kind.PATH_RESET
                for i in block.instrs + tblock.instrs
            ):
                continue
            block.instrs = block.instrs[:-1] + tblock.instrs
            function.blocks.remove(tblock)
            function.invalidate_index()
            block.note_edit()
            merges += 1
            merged = True
            break
        if not merged:
            break
    if merges and function.assign_call_sites():
        for block in function.blocks:
            if any(i.kind in (Kind.CALL, Kind.ICALL) for i in block.instrs):
                block.note_edit()
    return merges


def remove_unreachable_blocks(function: Function) -> int:
    """Drop blocks unreachable from the entry; returns blocks removed.

    When a removed block contained a call, the surviving call sites
    renumber — and compiled block closures bake ``Call.site`` in, so
    every surviving block with a call is stamped with a fresh edit
    generation (the invalidation contract; relying on the incidental
    address shift of later blocks is not enough for a block whose
    address happens to stay put).
    """
    cfg = build_cfg(function)
    reachable: Set[str] = set(depth_first_order(cfg))
    keep = [b for b in function.blocks if b.name in reachable]
    dropped = [b for b in function.blocks if b.name not in reachable]
    removed = len(dropped)
    if removed:
        sites_shift = any(
            i.kind in (Kind.CALL, Kind.ICALL)
            for b in dropped
            for i in b.instrs
        )
        function.blocks = keep
        function.invalidate_index()
        function.assign_call_sites()
        if sites_shift:
            for block in function.blocks:
                if any(
                    i.kind in (Kind.CALL, Kind.ICALL) for i in block.instrs
                ):
                    block.note_edit()
    return removed


def cleanup_function(function: Function, max_rounds: int = 8) -> int:
    """Fold and prune to a fixpoint; returns total changes."""
    total = 0
    for _ in range(max_rounds):
        changes = fold_constants(function)
        changes += remove_unreachable_blocks(function)
        changes += merge_blocks(function)
        total += changes
        if not changes:
            break
    validate_function(function)
    return total


def cleanup_program(program: Program) -> int:
    return sum(cleanup_function(f) for f in program.functions.values())
