"""CCT-driven procedure inlining for hot call edges.

The calling context tree says which call edges dominate the run; this
pass inlines the hottest of them, subject to a size budget.  Inlining
in this IR is a block-level splice:

* the callee's blocks are cloned into the caller under mangled names,
  with every register shifted past the caller's file (the caller's
  file grows by the callee's — registers are frame-local, so disjoint
  ranges cannot clash);
* the call instruction's block is split: the head keeps the
  instructions before the call plus the argument moves and a branch to
  the cloned entry; a continuation block receives the rest;
* callee returns become an assignment to the call's destination
  register followed by a branch to the continuation.

Two semantic corners are handled explicitly.  A fresh callee frame
starts zeroed, so every non-parameter register *live at the callee's
entry* (it may be read before written) is zeroed before entering the
clone; a callee that initialises its locals needs no glue.  And a
``ret`` with no value still defines the caller's destination register
(the machine writes 0), so a bare return lowers to ``const dst, 0``.

Callees containing ``setjmp``/``longjmp`` (non-local control would
escape the clone's frame discipline), frame spills (slot addresses are
frame-relative), or instrumentation pseudo-instructions are refused,
as are recursive self-edges and site-insensitive edges that cannot be
mapped back to one call instruction.

After every splice the caller's call sites are renumbered and *all*
its blocks are stamped with a fresh edit generation — the PR 3
invalidation contract: compiled closures bake ``Call.site`` in, so a
renumbered site must evict the block's decoded code.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cfg.graph import build_cfg
from repro.ir.function import Block, Function, Program, validate_function
from repro.ir.instructions import (
    Br,
    Const,
    Imm,
    Instruction,
    Kind,
    Move,
    Ret,
)

#: Kinds a callee may not contain if it is to be inlined.
_UNINLINEABLE = frozenset(
    {Kind.SETJMP, Kind.LONGJMP, Kind.FRAME_LOAD, Kind.FRAME_STORE}
)
_FIRST_PSEUDO = Kind.PATH_RESET


@dataclass
class InlineResult:
    """One performed inline, for reporting and tests."""

    caller: str
    callee: str
    site: int
    calls: int
    code_growth: int  # icost-weighted instructions added to the caller


def _inlineable(callee: Function, caller: Function) -> bool:
    if callee.name == caller.name:
        return False  # direct recursion: inlining cannot terminate it
    for instr in callee.instructions():
        if instr.kind in _UNINLINEABLE or instr.kind >= _FIRST_PSEUDO:
            return False
    return True


def _find_call(caller: Function, callee: str, site: int):
    """The call instruction for a measured edge, or None.

    ``site`` indexes :meth:`Function.assign_call_sites` numbering; -1
    (a site-insensitive profile) matches the first direct call to
    ``callee``.
    """
    for block in caller.blocks:
        for instr in block.instrs:
            if instr.kind != Kind.CALL or instr.callee != callee:
                continue
            if site == -1 or instr.site == site:
                return instr
    return None


def _locate(caller: Function, call) -> Optional[tuple]:
    """Where a call instruction currently lives: ``(block, index)``.

    Lookup is by instruction identity, so a call resolved against the
    profiled program is still found after earlier inlines split or
    renumbered the caller's blocks.
    """
    for block in caller.blocks:
        for index, instr in enumerate(block.instrs):
            if instr is call:
                return block, index
    return None


def _entry_live_registers(callee: Function) -> set:
    """Registers the callee may read before writing: the zero-init set.

    A fresh frame starts zeroed, so the clone must zero exactly the
    registers that are live at the callee's entry — computed by the
    textbook backward dataflow (``live_in = gen | (live_out - kill)``)
    to a fixpoint.  A well-formed callee that initialises its locals
    before use needs no zeroing glue at all.
    """
    gen: Dict[str, set] = {}
    kill: Dict[str, set] = {}
    for block in callee.blocks:
        reads: set = set()
        writes: set = set()
        for instr in block.instrs:
            for reg in instr.operands():
                if reg not in writes:
                    reads.add(reg)
            writes.update(instr.defined())
        gen[block.name] = reads
        kill[block.name] = writes
    cfg = build_cfg(callee)
    live_in: Dict[str, set] = {name: set() for name in gen}
    changed = True
    while changed:
        changed = False
        for block in callee.blocks:
            live_out: set = set()
            for succ in cfg.successors(block.name):
                if succ in live_in:
                    live_out |= live_in[succ]
            updated = gen[block.name] | (live_out - kill[block.name])
            if updated != live_in[block.name]:
                live_in[block.name] = updated
                changed = True
    return live_in[callee.entry.name]


def inline_call(
    program: Program,
    caller: Function,
    callee: Function,
    site: int = -1,
    call=None,
) -> Optional[InlineResult]:
    """Inline one direct call in place; None when the edge is refused.

    The call is named either by ``site`` (resolved against the current
    numbering) or directly by the ``call`` instruction object.
    """
    if not _inlineable(callee, caller):
        return None
    if call is None:
        call = _find_call(caller, callee.name, site)
    if call is None or call.kind != Kind.CALL or call.callee != callee.name:
        return None
    located = _locate(caller, call)
    if located is None:
        return None
    block, index = located
    size_before = caller.size_in_instructions()

    # Unique name mangling per inline within this caller.
    for counter in itertools.count():
        prefix = f"{block.name}.inl{counter}"
        if not any(b.name.startswith(prefix) for b in caller.blocks):
            break
    name_map = {b.name: f"{prefix}.{b.name}" for b in callee.blocks}
    cont_name = f"{prefix}.cont"

    offset = caller.num_regs
    caller.num_regs += callee.num_regs

    # Clone and remap the callee's blocks.
    clones: List[Block] = []
    for source in callee.blocks:
        instrs = [_remap(copy.deepcopy(i), offset) for i in source.instrs]
        lowered: List[Instruction] = []
        for instr in instrs:
            if instr.kind == Kind.BR:
                instr.target = name_map[instr.target]
                lowered.append(instr)
            elif instr.kind == Kind.CBR:
                instr.then = name_map[instr.then]
                instr.els = name_map[instr.els]
                lowered.append(instr)
            elif instr.kind == Kind.RET:
                lowered.extend(_lower_return(instr, call.dst, offset))
                lowered.append(Br(cont_name))
            else:
                lowered.append(instr)
        clones.append(Block(name_map[source.name], lowered))

    # Split the call block: head = prefix + entry glue, cont = the rest.
    head = block.instrs[:index]
    for param, arg in enumerate(call.args):
        if isinstance(arg, Imm):
            head.append(Const(offset + param, arg.value))
        else:
            head.append(Move(offset + param, arg))
    for reg in sorted(_entry_live_registers(callee)):
        if reg >= callee.num_params:
            head.append(Const(offset + reg, 0))
    head.append(Br(name_map[callee.entry.name]))
    cont = Block(cont_name, block.instrs[index + 1 :])
    block.instrs = head
    block.note_edit()

    position = caller.blocks.index(block)
    caller.blocks[position + 1 : position + 1] = [cont] + clones
    caller.invalidate_index()

    # Sites renumber across the whole caller (the inlined call vanished
    # and trailing calls moved): every block's decoded code may bake a
    # stale ``Call.site``, so stamp them all.
    caller.assign_call_sites()
    for stale in caller.blocks:
        stale.note_edit()
    validate_function(caller, program)
    return InlineResult(
        caller=caller.name,
        callee=callee.name,
        site=site,
        calls=0,
        code_growth=caller.size_in_instructions() - size_before,
    )


def _remap(instr: Instruction, offset: int) -> Instruction:
    """Shift every register reference of a cloned instruction by ``offset``."""
    kind = instr.kind
    if kind == Kind.CONST:
        instr.dst += offset
    elif kind == Kind.MOVE:
        instr.dst += offset
        instr.src += offset
    elif kind in (Kind.BINOP, Kind.FBINOP):
        instr.dst += offset
        instr.a += offset
        if not isinstance(instr.b, Imm):
            instr.b += offset
    elif kind == Kind.LOAD:
        instr.dst += offset
        instr.base += offset
    elif kind == Kind.STORE:
        if not isinstance(instr.src, Imm):
            instr.src += offset
        instr.base += offset
    elif kind == Kind.ALLOC:
        instr.dst += offset
        if not isinstance(instr.size, Imm):
            instr.size += offset
    elif kind == Kind.CBR:
        instr.cond += offset
    elif kind == Kind.CALL:
        instr.args = [
            a if isinstance(a, Imm) else a + offset for a in instr.args
        ]
        if instr.dst is not None:
            instr.dst += offset
    elif kind == Kind.ICALL:
        instr.func += offset
        instr.args = [
            a if isinstance(a, Imm) else a + offset for a in instr.args
        ]
        if instr.dst is not None:
            instr.dst += offset
    elif kind == Kind.RET:
        if instr.value is not None and not isinstance(instr.value, Imm):
            instr.value += offset
    return instr


def _lower_return(ret: Ret, dst: Optional[int], offset: int) -> List[Instruction]:
    """``ret v`` inside the clone -> assignment to the call's dst.

    The register in ``ret.value`` was already shifted by :func:`_remap`.
    A bare ``ret`` writes 0 to the destination — exactly what the
    machine's RET does when a destination register is expected.
    """
    if dst is None:
        return []
    if ret.value is None:
        return [Const(dst, 0)]
    if isinstance(ret.value, Imm):
        return [Const(dst, ret.value.value)]
    return [Move(dst, ret.value)]


def inline_hot_calls(
    program: Program,
    profile,
    min_calls: int = 2,
    max_callee_size: int = 40,
    growth_budget: float = 0.25,
    growth_floor: int = 32,
) -> List[InlineResult]:
    """Inline the profile's hottest call edges under a size budget.

    Edges come from :meth:`~repro.opt.measured.MeasuredProfile.
    hot_call_edges` (most-invoked first).  A callee larger than
    ``max_callee_size`` (icost-weighted) is never inlined; the pass
    stops before program growth would exceed ``growth_budget`` times
    the original program size (but may always grow by at least
    ``growth_floor`` — a fraction of a tiny program starves the pass,
    and tiny programs are the ones growth cannot hurt).
    """
    original = program.total_instructions()
    allowance = max(int(original * growth_budget), growth_floor)
    # Resolve every candidate edge to its call instruction *before* any
    # transformation: the profile's site indices refer to the measured
    # program's numbering, which the first inline invalidates.
    candidates = []
    seen = set()
    for edge in profile.hot_call_edges(min_calls=min_calls):
        caller = program.functions.get(edge.caller)
        callee = program.functions.get(edge.callee)
        if caller is None or callee is None:
            continue
        call = _find_call(caller, edge.callee, edge.site)
        if call is None or id(call) in seen:
            continue
        seen.add(id(call))
        candidates.append((edge, caller, callee, call))

    results: List[InlineResult] = []
    for edge, caller, callee, call in candidates:
        if callee.size_in_instructions() > max_callee_size:
            continue
        if program.total_instructions() + callee.size_in_instructions() \
                > original + allowance:
            continue
        outcome = inline_call(program, caller, callee, edge.site, call=call)
        if outcome is None:
            continue
        outcome.calls = edge.calls
        results.append(outcome)
    return results


__all__ = ["InlineResult", "inline_call", "inline_hot_calls"]
