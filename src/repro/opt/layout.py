"""Profile-guided code layout.

Reorders the blocks of each profiled function so the blocks of the
hottest paths come first and in path order.  Block order is purely a
layout property in this IR — control flow is by name — so the
transformation cannot change semantics, only instruction-cache
behaviour and fetch-line locality, which the machine simulator
measures.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.function import Program


def profile_guided_layout(program: Program, profile) -> Dict[str, List[str]]:
    """Reorder blocks in place; returns the new order per function.

    ``profile`` is any measured view whose ``functions`` map carries
    per-function ``counts`` and ``decode`` — a live
    :class:`~repro.profiles.pathprofile.PathProfile` or a
    :class:`~repro.opt.measured.MeasuredProfile` decoded from a stored
    run.  Blocks are ranked by the total frequency of the executed
    paths that contain them, then emitted in the order the hottest
    path visits them, with the remaining blocks (cold or unprofiled)
    appended in their original order.  The entry block always stays
    first.  Block order is purely a layout property in this IR, so the
    pass can only move instruction-cache behaviour, never semantics.
    """
    new_orders: Dict[str, List[str]] = {}
    for name, function_profile in profile.functions.items():
        function = program.functions.get(name)
        if function is None:
            continue
        heat: Dict[str, int] = {block.name: 0 for block in function.blocks}
        ranked_paths = sorted(
            function_profile.counts.items(), key=lambda item: -item[1]
        )
        visit_order: List[str] = []
        for path_sum, freq in ranked_paths:
            if freq <= 0:
                continue
            decoded = function_profile.decode(path_sum)
            for block in decoded.blocks:
                if block in heat:
                    heat[block] += freq
                    if block not in visit_order:
                        visit_order.append(block)

        entry = function.entry.name
        order: List[str] = [entry]
        for block in visit_order:
            if block != entry:
                order.append(block)
        for block in function.blocks:
            if block.name not in order:
                order.append(block.name)

        by_name = {block.name: block for block in function.blocks}
        function.blocks = [by_name[n] for n in order]
        function.invalidate_index()
        new_orders[name] = order
    return new_orders
