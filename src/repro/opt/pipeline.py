"""The measured-profile-driven optimization pipeline.

An :class:`OptPlan` names the passes to run (with their budgets); a
:class:`MeasuredProfile` supplies the numbers; :func:`run_pipeline`
applies the passes to a program in place, validating after each one
and recording what every pass did.  Each pass consumes only the
read-only measured view — nothing in this package re-profiles, so the
same stored run can drive many candidate plans.

Registered passes:

* ``inline`` — CCT-driven inlining of hot call edges under a size
  budget (:mod:`repro.opt.inline`); a no-op for profiles without a
  CCT (flow-only modes).
* ``superblock`` — hot-path-driven superblock formation, selected
  globally: candidate loop paths from *all* functions are ranked by
  measured frequency and applied hottest-first (at most one trace per
  loop header) under the shared code-growth budget.
* ``layout`` — profile-guided code layout ordered by measured path
  frequency (:mod:`repro.opt.layout`).
* ``cleanup`` — constant folding and unreachable-block removal to a
  fixpoint (:mod:`repro.opt.cleanup`), which prunes the originals the
  superblock pass orphans.

The default plan runs all four in that order: inlining first (it
exposes calls to the later intraprocedural passes), then trace
formation, then layout, then cleanup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cfg.graph import build_cfg
from repro.ir.function import Program, validate_program
from repro.pathprof.numbering import PathProfilingError, number_paths
from repro.opt.cleanup import cleanup_program
from repro.opt.inline import inline_hot_calls
from repro.opt.layout import profile_guided_layout
from repro.opt.measured import MeasuredProfile
from repro.opt.superblock import form_superblock_from_path


class OptError(ValueError):
    """The plan is malformed (unknown pass name, bad budget)."""


@dataclass(frozen=True)
class OptPlan:
    """What to run and under which budgets — pure data, JSON-safe."""

    passes: Tuple[str, ...] = ("inline", "superblock", "layout", "cleanup")
    #: Minimum measured frequency for a superblock trace.
    min_freq: int = 2
    #: Minimum measured invocation count for an inlined call edge.
    min_calls: int = 2
    #: Largest callee (icost-weighted) the inliner will duplicate.
    max_callee_size: int = 40
    #: Fraction of the original program size each duplicating pass may
    #: add (inlining and superblock formation share the same knob).
    growth_budget: float = 0.25
    #: Absolute floor on that allowance: a small program may always
    #: grow by this many icost-weighted instructions (a fraction of a
    #: tiny program starves every duplicating pass, and tiny programs
    #: are exactly the ones code growth cannot hurt).
    growth_floor: int = 32

    def __post_init__(self):
        for name in self.passes:
            if name not in PASSES:
                raise OptError(
                    f"unknown pass {name!r}; options: {sorted(PASSES)}"
                )
        if self.growth_budget < 0:
            raise OptError("growth_budget must be >= 0")
        if self.growth_floor < 0:
            raise OptError("growth_floor must be >= 0")

    def to_json(self) -> dict:
        return {
            "passes": list(self.passes),
            "min_freq": self.min_freq,
            "min_calls": self.min_calls,
            "max_callee_size": self.max_callee_size,
            "growth_budget": self.growth_budget,
            "growth_floor": self.growth_floor,
        }


@dataclass
class PassResult:
    """One pass's outcome: did it change anything, and what exactly."""

    name: str
    changed: bool
    details: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {"pass": self.name, "changed": self.changed, **self.details}


@dataclass
class PipelineResult:
    """Everything the pipeline did to the program."""

    plan: OptPlan
    passes: List[PassResult]
    icost_before: int
    icost_after: int

    @property
    def changed(self) -> bool:
        return any(p.changed for p in self.passes)

    def to_json(self) -> dict:
        return {
            "plan": self.plan.to_json(),
            "passes": [p.to_json() for p in self.passes],
            "icost_before": self.icost_before,
            "icost_after": self.icost_after,
        }


# -- the passes --------------------------------------------------------------


def _pass_inline(
    program: Program, profile: MeasuredProfile, plan: OptPlan
) -> PassResult:
    results = inline_hot_calls(
        program,
        profile,
        min_calls=plan.min_calls,
        max_callee_size=plan.max_callee_size,
        growth_budget=plan.growth_budget,
        growth_floor=plan.growth_floor,
    )
    return PassResult(
        "inline",
        bool(results),
        {
            "inlined": [
                {
                    "caller": r.caller,
                    "callee": r.callee,
                    "site": r.site,
                    "calls": r.calls,
                    "code_growth": r.code_growth,
                }
                for r in results
            ]
        },
    )


def _profile_matches(function, profile: MeasuredProfile) -> bool:
    """Is the measured numbering still valid for this function's CFG?

    An earlier pass (inlining, above all) may have restructured the
    function since it was measured; decoding path sums against the new
    CFG would be silently wrong.  The potential-path count is the same
    witness the store uses: rebuild the numbering and compare.
    """
    measured = profile.functions.get(function.name)
    if measured is None:
        return False
    try:
        numbering = number_paths(build_cfg(function))
    except PathProfilingError:
        return False
    return numbering.num_paths == measured.num_potential_paths


def _pass_superblock(
    program: Program, profile: MeasuredProfile, plan: OptPlan
) -> PassResult:
    """Global hot-path selection: hottest measured loop paths first.

    One trace per (function, loop header); the shared growth budget is
    spent hottest-first, so when the allowance runs out it is the cold
    tail that goes untransformed.  A function whose CFG no longer
    matches the measured numbering (an earlier inline restructured it)
    is skipped rather than mis-decoded — re-profiling the optimized
    program and running the pipeline again chases that exposed
    opportunity, which is exactly the loop :mod:`repro.session.pgo`
    closes.
    """
    original = program.total_instructions()
    allowance = max(int(original * plan.growth_budget), plan.growth_floor)
    spent = 0
    formed: Dict[Tuple[str, str], object] = {}
    fresh: Dict[str, bool] = {}
    results = []
    for candidate in profile.hot_loop_paths(min_freq=plan.min_freq):
        function = program.functions.get(candidate.function)
        if function is None:
            continue
        if candidate.function not in fresh:
            fresh[candidate.function] = _profile_matches(function, profile)
        if not fresh[candidate.function]:
            continue
        header = candidate.path.blocks[0]
        if (candidate.function, header) in formed:
            continue
        trace_cost = sum(
            sum(i.icost for i in function.block(name).instrs)
            for name in candidate.path.blocks
            if any(b.name == name for b in function.blocks)
        )
        if spent + trace_cost > allowance:
            continue
        outcome = form_superblock_from_path(
            function, candidate.path, candidate.freq
        )
        if outcome is None:
            continue
        spent += outcome.code_growth
        formed[(candidate.function, header)] = outcome
        results.append(outcome)
    return PassResult(
        "superblock",
        bool(results),
        {
            "superblocks": [
                {
                    "function": r.function,
                    "header": r.header,
                    "trace": r.trace,
                    "freq": r.trace_freq,
                    "jumps_straightened": r.jumps_straightened,
                    "code_growth": r.code_growth,
                }
                for r in results
            ]
        },
    )


def _pass_layout(
    program: Program, profile: MeasuredProfile, plan: OptPlan
) -> PassResult:
    orders = profile_guided_layout(program, profile)
    return PassResult(
        "layout", bool(orders), {"reordered": sorted(orders)}
    )


def _pass_cleanup(
    program: Program, profile: MeasuredProfile, plan: OptPlan
) -> PassResult:
    changes = cleanup_program(program)
    return PassResult("cleanup", changes > 0, {"changes": changes})


#: The pass registry: name -> callable(program, profile, plan).
PASSES: Dict[str, Callable[[Program, MeasuredProfile, OptPlan], PassResult]] = {
    "inline": _pass_inline,
    "superblock": _pass_superblock,
    "layout": _pass_layout,
    "cleanup": _pass_cleanup,
}


def run_pipeline(
    program: Program,
    profile: MeasuredProfile,
    plan: Optional[OptPlan] = None,
) -> PipelineResult:
    """Apply the plan's passes to ``program`` in place.

    The program is validated after every pass — a pass that breaks a
    structural invariant fails loudly here, not as a wrong answer at
    the next run.
    """
    plan = plan or OptPlan()
    icost_before = program.total_instructions()
    results = []
    for name in plan.passes:
        results.append(PASSES[name](program, profile, plan))
        validate_program(program)
    return PipelineResult(
        plan=plan,
        passes=results,
        icost_before=icost_before,
        icost_after=program.total_instructions(),
    )


__all__ = [
    "OptError",
    "OptPlan",
    "PASSES",
    "PassResult",
    "PipelineResult",
    "run_pipeline",
]
