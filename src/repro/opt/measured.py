"""`MeasuredProfile` — the read-only measured view optimization passes consume.

The paper's closing argument is that profiles exist to *drive*
optimization; this module is the seam where measured data enters the
optimizer.  A :class:`MeasuredProfile` unifies everything one profiling
run learned about a program:

* per-function path tables (frequency and, when the run carried HW
  metrics, per-path counter accumulations), decodable back into block
  sequences through a Ball–Larus numbering;
* hot call edges aggregated from the calling context tree;
* whole-run hardware-counter totals.

It is built either live from a :class:`~repro.session.ProfileRun`
(:meth:`MeasuredProfile.from_run`) or from a persisted run reloaded
through :mod:`repro.store` (:meth:`MeasuredProfile.from_stored`).  The
stored form carries no numbering — the Ball–Larus numbering is a pure
function of the CFG, so :meth:`from_stored` rebuilds it from the
*uninstrumented* program and verifies the potential-path counts match,
rejecting a profile that was measured against different code.  kflow
profiles (paths spanning ``k`` loop iterations) are projected exactly
onto 1-iteration path sums via
:func:`~repro.pathprof.kiter.project_kpath_counts`; their metrics do
not project (probe overhead differs with ``k``) and are dropped.

Passes treat the view as read-only: :class:`MeasuredFunctionProfile`
duck-types the live
:class:`~repro.profiles.pathprofile.FunctionPathProfile` (``counts``,
``metrics``, ``decode``), so the superblock and layout passes accept
either without caring where the numbers came from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cct.records import ROOT_ID, CalleeList
from repro.cfg.graph import build_cfg
from repro.ir.function import Program
from repro.machine.counters import Event
from repro.pathprof.kiter import number_kpaths, project_kpath_counts
from repro.pathprof.numbering import (
    PathNumbering,
    PathProfilingError,
    ReconstructedPath,
    number_paths,
)


class MeasuredProfileError(ValueError):
    """The profile cannot be interpreted against this program."""


@dataclass(frozen=True)
class CallEdge:
    """One measured caller->callee edge, aggregated over all contexts.

    ``site`` is the caller's call-site index (-1 when the profile was
    collected site-insensitively); ``calls`` is the invocation count and
    ``cost`` the PIC0 metric accumulated in the callee's records.
    """

    caller: str
    site: int
    callee: str
    calls: int
    cost: int


@dataclass(frozen=True)
class HotPath:
    """One executed path, ranked within :meth:`MeasuredProfile.hot_paths`."""

    function: str
    path_sum: int
    freq: int
    metrics: Tuple[int, ...]
    path: ReconstructedPath


class MeasuredFunctionProfile:
    """One function's measured paths; duck-types ``FunctionPathProfile``."""

    def __init__(
        self,
        function: str,
        numbering: PathNumbering,
        counts: Dict[int, int],
        metrics: Optional[Dict[int, List[int]]] = None,
    ):
        self.function = function
        self.numbering = numbering
        self.num_potential_paths = numbering.num_paths
        self.counts = dict(counts)
        self.metrics = {k: list(v) for k, v in (metrics or {}).items()}

    def decode(self, path_sum: int) -> ReconstructedPath:
        return self.numbering.regenerate(path_sum)

    def total_freq(self) -> int:
        return sum(self.counts.values())


class MeasuredProfile:
    """The unified read-only view one optimization pipeline runs against."""

    def __init__(
        self,
        functions: Dict[str, MeasuredFunctionProfile],
        call_edges: Tuple[CallEdge, ...] = (),
        counters: Optional[Dict[Event, int]] = None,
        source: str = "live",
    ):
        self.functions = functions
        self.call_edges = tuple(call_edges)
        self.counters = dict(counters or {})
        #: Where the numbers came from: ``"live"`` or a store run id.
        self.source = source

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_run(
        cls, run, program: Program, by_site: bool = True
    ) -> "MeasuredProfile":
        """Build the view from a live :class:`~repro.session.ProfileRun`.

        ``by_site`` must match the spec the run was collected under:
        with a site-insensitive CCT the slot index is not a call-site
        index, so edges are reported with ``site=-1``.
        """
        functions: Dict[str, MeasuredFunctionProfile] = {}
        if run.path_profile is not None:
            for name, fpp in run.path_profile.functions.items():
                if name not in program.functions:
                    continue
                functions[name] = MeasuredFunctionProfile(
                    name, fpp.numbering, fpp.counts, fpp.metrics
                )
        edges = (
            () if run.cct is None else _edges_from_cct(run.cct.root, by_site)
        )
        return cls(
            functions,
            call_edges=edges,
            counters=dict(run.result.counters),
            source="live",
        )

    @classmethod
    def from_stored(cls, stored, program: Program) -> "MeasuredProfile":
        """Rebuild the view from a reloaded store entry.

        The stored run carries path-sum tables but no numbering; the
        numbering is reconstructed from ``program``'s CFGs exactly as
        the instrumentation pass built it, and the potential-path count
        is checked against the stored witness — a mismatch means the
        profile was measured against different code and raises
        :class:`MeasuredProfileError` instead of silently mis-decoding.
        """
        k = stored.spec.k if stored.spec.mode == "kflow" else None
        functions: Dict[str, MeasuredFunctionProfile] = {}
        for name, sfp in (stored.paths or {}).items():
            function = program.functions.get(name)
            if function is None:
                raise MeasuredProfileError(
                    f"stored profile covers function {name!r} "
                    f"which this program does not define"
                )
            try:
                cfg = build_cfg(function)
                numbering = number_paths(cfg)
            except PathProfilingError as exc:
                raise MeasuredProfileError(
                    f"cannot rebuild path numbering for {name!r}: {exc}"
                ) from exc
            counts = sfp.counts
            metrics = sfp.metrics
            if k is not None and k > 1:
                knum = number_kpaths(cfg, k)
                if knum.num_paths != sfp.num_potential_paths:
                    raise MeasuredProfileError(
                        f"{name!r}: stored profile has "
                        f"{sfp.num_potential_paths} potential k-paths, "
                        f"this program has {knum.num_paths} — "
                        f"the profile was measured against different code"
                    )
                counts = project_kpath_counts(knum, numbering, counts)
                metrics = {}  # k-path metrics do not project onto base paths
            elif numbering.num_paths != sfp.num_potential_paths:
                raise MeasuredProfileError(
                    f"{name!r}: stored profile has "
                    f"{sfp.num_potential_paths} potential paths, "
                    f"this program has {numbering.num_paths} — "
                    f"the profile was measured against different code"
                )
            functions[name] = MeasuredFunctionProfile(
                name, numbering, counts, metrics
            )
        edges = (
            ()
            if stored.cct is None
            else _edges_from_cct(stored.cct.root, stored.spec.by_site)
        )
        return cls(
            functions,
            call_edges=edges,
            counters=dict(stored.counters),
            source=stored.run_id,
        )

    # -- hot-path queries ------------------------------------------------------

    def hot_paths(
        self, limit: Optional[int] = None, by: str = "freq"
    ) -> List[HotPath]:
        """Executed paths across all functions, hottest first.

        ``by="freq"`` ranks by execution frequency; ``by="misses"``
        ranks by the accumulated PIC1 metric (the paper's hot-path
        criterion) and falls back to frequency for paths without
        metrics.
        """
        if by not in ("freq", "misses"):
            raise MeasuredProfileError(f"unknown hot-path ranking {by!r}")
        entries: List[HotPath] = []
        for name, mfp in self.functions.items():
            for path_sum, freq in mfp.counts.items():
                if freq <= 0:
                    continue
                metrics = tuple(mfp.metrics.get(path_sum, ()))
                entries.append(
                    HotPath(name, path_sum, freq, metrics, mfp.decode(path_sum))
                )
        if by == "misses":
            entries.sort(
                key=lambda e: (
                    -(e.metrics[1] if len(e.metrics) > 1 else e.freq),
                    e.function,
                    e.path_sum,
                )
            )
        else:
            entries.sort(key=lambda e: (-e.freq, e.function, e.path_sum))
        return entries if limit is None else entries[:limit]

    def hot_loop_paths(self, min_freq: int = 2) -> List[HotPath]:
        """Superblock candidates: steady-state loop paths, hottest first.

        A qualifying path both enters and leaves through backedges to
        the same header — one full iteration of a loop's dominant body.
        """
        candidates = []
        for entry in self.hot_paths():
            if entry.freq < min_freq:
                continue
            path = entry.path
            if path.entry_backedge is None or path.exit_backedge is None:
                continue
            if path.entry_backedge.dst != path.exit_backedge.dst:
                continue
            candidates.append(entry)
        return candidates

    def hot_call_edges(self, min_calls: int = 1) -> List[CallEdge]:
        """Measured call edges, most-invoked first."""
        edges = [e for e in self.call_edges if e.calls >= min_calls]
        edges.sort(key=lambda e: (-e.calls, -e.cost, e.caller, e.site))
        return edges

    # -- per-block attribution -------------------------------------------------

    def block_heat(self, function: str) -> Dict[str, int]:
        """Execution frequency per block: paths through it, summed."""
        mfp = self.functions.get(function)
        heat: Dict[str, int] = {}
        if mfp is None:
            return heat
        for path_sum, freq in mfp.counts.items():
            if freq <= 0:
                continue
            for block in mfp.decode(path_sum).blocks:
                heat[block] = heat.get(block, 0) + freq
        return heat

    def block_attribution(
        self, program: Program, function: str, metric: int = 1
    ) -> Dict[str, float]:
        """Approximate per-block share of one accumulated path metric.

        A path's metric is measured for the whole path; it is spread
        over the path's blocks proportionally to each block's
        icost-weighted size, which is the best flow-sensitive
        attribution available without per-block counters.
        """
        mfp = self.functions.get(function)
        target = program.functions.get(function)
        shares: Dict[str, float] = {}
        if mfp is None or target is None:
            return shares
        sizes = {
            b.name: sum(i.icost for i in b.instrs) for b in target.blocks
        }
        for path_sum, values in mfp.metrics.items():
            if len(values) <= metric:
                continue
            blocks = [
                b for b in mfp.decode(path_sum).blocks if sizes.get(b, 0) > 0
            ]
            total = sum(sizes[b] for b in blocks)
            if not total:
                continue
            for block in blocks:
                shares[block] = (
                    shares.get(block, 0.0)
                    + values[metric] * sizes[block] / total
                )
        return shares


def _edges_from_cct(root, by_site: bool = True) -> Tuple[CallEdge, ...]:
    """Aggregate (caller, site, callee) edges over the CCT's tree edges.

    Recursion backedges (a slot pointing at the record itself or an
    ancestor) are excluded, matching
    :meth:`~repro.cct.records.CallRecord.tree_children`; edges out of
    the synthetic root are skipped — there is no caller to optimize.
    """
    totals: Dict[Tuple[str, int, str], List[int]] = {}
    stack = [root]
    while stack:
        record = stack.pop()
        for slot_index, slot in enumerate(record.slots):
            site = slot_index if by_site else -1
            if slot is None:
                continue
            children = slot.records() if isinstance(slot, CalleeList) else [slot]
            for child in children:
                if child.parent is not record:
                    continue  # recursion backedge
                stack.append(child)
                if record.id == ROOT_ID:
                    continue
                key = (record.id, site, child.id)
                tally = totals.setdefault(key, [0, 0])
                if child.metrics:
                    tally[0] += child.metrics[0]
                if len(child.metrics) > 1:
                    tally[1] += child.metrics[1]
    return tuple(
        CallEdge(caller, site, callee, calls, cost)
        for (caller, site, callee), (calls, cost) in sorted(totals.items())
    )


__all__ = [
    "CallEdge",
    "HotPath",
    "MeasuredFunctionProfile",
    "MeasuredProfile",
    "MeasuredProfileError",
]
