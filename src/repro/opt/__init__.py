"""Path-profile consumers: the optimizations the paper's summary points at.

"Compilers can use path profiles to identify portions of a program that
would benefit from optimization, and as an empirical basis for making
optimization tradeoffs."  The package is organised as a measured-
profile-driven pass pipeline:

* :mod:`repro.opt.measured` — the read-only :class:`MeasuredProfile`
  view every pass consumes: hot paths from flow/kflow tables, hot call
  edges from CCTs, per-block attributions — built live from a
  :class:`~repro.session.ProfileRun` or decoded from a stored run;
* :mod:`repro.opt.pipeline` — :class:`OptPlan` / :func:`run_pipeline`,
  the pass manager with shared code-growth budgets;
* :mod:`repro.opt.inline` — CCT-driven inlining of hot call edges;
* :mod:`repro.opt.superblock` — superblock formation: clone the
  blocks of a hot loop path into a single-entry trace and straighten
  away its internal jumps, trading code size (the paper: "these
  optimizations duplicate paths to customize them, which increases
  code size") for fewer executed instructions;
* :mod:`repro.opt.layout` — hot-path code layout: reorder each
  function's blocks so the hottest path is contiguous in memory,
  improving I-cache behaviour with zero semantic change;
* :mod:`repro.opt.cleanup` — constant folding, copy propagation, and
  unreachable-block removal.

The `profile -> optimize -> re-measure` loop that proves the win on
the counters lives one layer up, in :mod:`repro.session.pgo`.
"""

from repro.opt.cleanup import (
    cleanup_function,
    cleanup_program,
    fold_constants,
    merge_blocks,
    remove_unreachable_blocks,
)
from repro.opt.inline import InlineResult, inline_call, inline_hot_calls
from repro.opt.layout import profile_guided_layout
from repro.opt.measured import (
    CallEdge,
    HotPath,
    MeasuredFunctionProfile,
    MeasuredProfile,
    MeasuredProfileError,
)
from repro.opt.pipeline import (
    OptError,
    OptPlan,
    PASSES,
    PassResult,
    PipelineResult,
    run_pipeline,
)
from repro.opt.superblock import (
    SuperblockResult,
    form_superblock,
    form_superblock_from_path,
    hottest_loop_path,
)

__all__ = [
    "CallEdge",
    "HotPath",
    "InlineResult",
    "MeasuredFunctionProfile",
    "MeasuredProfile",
    "MeasuredProfileError",
    "OptError",
    "OptPlan",
    "PASSES",
    "PassResult",
    "PipelineResult",
    "SuperblockResult",
    "cleanup_function",
    "cleanup_program",
    "fold_constants",
    "form_superblock",
    "form_superblock_from_path",
    "hottest_loop_path",
    "inline_call",
    "inline_hot_calls",
    "merge_blocks",
    "profile_guided_layout",
    "remove_unreachable_blocks",
    "run_pipeline",
]
