"""Path-profile consumers: the optimizations the paper's summary points at.

"Compilers can use path profiles to identify portions of a program that
would benefit from optimization, and as an empirical basis for making
optimization tradeoffs."  Two such consumers are implemented:

* :mod:`repro.opt.layout` — hot-path code layout: reorder each
  function's blocks so the hottest path is contiguous in memory,
  improving I-cache behaviour with zero semantic change;
* :mod:`repro.opt.superblock` — superblock formation: clone the
  blocks of the hottest loop path into a single-entry trace and
  straighten away its internal jumps, trading code size (the paper:
  "these optimizations duplicate paths to customize them, which
  increases code size") for fewer executed instructions.
"""

from repro.opt.cleanup import (
    cleanup_function,
    cleanup_program,
    fold_constants,
    remove_unreachable_blocks,
)
from repro.opt.layout import profile_guided_layout
from repro.opt.superblock import SuperblockResult, form_superblock

__all__ = [
    "SuperblockResult",
    "cleanup_function",
    "cleanup_program",
    "fold_constants",
    "form_superblock",
    "profile_guided_layout",
    "remove_unreachable_blocks",
]
