"""Synthetic workloads: the SPEC95 substitute.

The paper's evaluation runs the 18 SPEC95 benchmarks.  Those binaries
(and an UltraSPARC) are unavailable here, so this package generates
deterministic IR programs named after them, each built from an
*archetype* whose structural parameters (loop nests, branching width,
call depth, recursion, indirect dispatch, and data-access skew) are
chosen to reproduce the published *shape*:

* loop-dominated FP codes (tomcatv, swim, ...) concentrate nearly all
  misses in one or two kernel procedures and a handful of paths;
* integer codes mix hot kernels with dispatch trees that spread a long
  cold tail of paths;
* go and gcc stand apart, realizing roughly an order of magnitude more
  paths with misses diffused across them (the paper lowers their hot
  threshold to 0.1%);
* interpreters (li, perl, m88ksim) dispatch through indirect calls,
  exercising the CCT's callee lists;
* vortex builds deep, wide call layers, producing the largest CCT.

Everything is seeded: the same spec always generates the same program
and the same execution.
"""

from repro.workloads.archetypes import (
    make_branchy_program,
    make_compress_program,
    make_interpreter_program,
    make_layered_calls_program,
    make_loop_kernel_program,
    make_recursive_program,
)
from repro.workloads.suite import (
    CFP95,
    CINT95,
    SPEC95,
    WorkloadSpec,
    build_workload,
    workload_names,
)

__all__ = [
    "CFP95",
    "CINT95",
    "SPEC95",
    "WorkloadSpec",
    "build_workload",
    "make_branchy_program",
    "make_compress_program",
    "make_interpreter_program",
    "make_layered_calls_program",
    "make_loop_kernel_program",
    "make_recursive_program",
    "workload_names",
]
