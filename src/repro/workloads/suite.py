"""The SPEC95-named workload suite.

Each entry binds an archetype and parameters to a benchmark name from
the paper's tables.  ``scale`` multiplies iteration counts: the default
(1.0) is sized for test/benchmark turnaround on the simulator; the
experiment harness can raise it for smoother statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.ir.function import Program
from repro.workloads.archetypes import (
    make_branchy_program,
    make_compress_program,
    make_interpreter_program,
    make_layered_calls_program,
    make_loop_kernel_program,
    make_recursive_program,
)


@dataclass
class WorkloadSpec:
    name: str
    archetype: str
    suite: str  # "CINT95" or "CFP95"
    build: Callable[[float], Program] = field(repr=False, default=None)


def _scaled(base_iterations: int, scale: float) -> int:
    return max(4, int(round(base_iterations * scale)))


def _spec(name: str, archetype: str, suite: str, builder) -> WorkloadSpec:
    return WorkloadSpec(name, archetype, suite, builder)


SPEC95: Dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    SPEC95[spec.name] = spec


# --- CINT95 ------------------------------------------------------------------

_register(_spec(
    "099.go", "branchy", "CINT95",
    lambda scale: make_branchy_program(
        "099.go", seed=99, iterations=_scaled(56, scale), rows=36, diamonds=12
    ),
))
_register(_spec(
    "124.m88ksim", "interpreter", "CINT95",
    lambda scale: make_interpreter_program(
        "124.m88ksim", seed=124, iterations=_scaled(420, scale), handlers=8
    ),
))
_register(_spec(
    "126.gcc", "branchy", "CINT95",
    lambda scale: make_branchy_program(
        "126.gcc", seed=126, iterations=_scaled(52, scale), rows=38, diamonds=13
    ),
))
_register(_spec(
    "129.compress", "compress", "CINT95",
    lambda scale: make_compress_program(
        "129.compress", seed=129, iterations=_scaled(70, scale)
    ),
))
_register(_spec(
    "130.li", "interpreter", "CINT95",
    lambda scale: make_interpreter_program(
        "130.li", seed=130, iterations=_scaled(380, scale), handlers=10
    ),
))
_register(_spec(
    "132.ijpeg", "loop_kernel", "CINT95",
    lambda scale: make_loop_kernel_program(
        "132.ijpeg", seed=132, iterations=_scaled(55, scale), rows=40,
        kernels=2, fp_ops=0, conflict_rounds=2,
    ),
))
_register(_spec(
    "134.perl", "interpreter", "CINT95",
    lambda scale: make_interpreter_program(
        "134.perl", seed=134, iterations=_scaled(400, scale), handlers=12
    ),
))
_register(_spec(
    "147.vortex", "layered_calls", "CINT95",
    lambda scale: make_layered_calls_program(
        "147.vortex", seed=147, iterations=_scaled(60, scale), layers=5, width=4
    ),
))

# --- CFP95 --------------------------------------------------------------------

_register(_spec(
    "101.tomcatv", "loop_kernel", "CFP95",
    lambda scale: make_loop_kernel_program(
        "101.tomcatv", seed=101, iterations=_scaled(60, scale), rows=56,
        kernels=1, fp_ops=6, conflict_rounds=4,
    ),
))
_register(_spec(
    "102.swim", "loop_kernel", "CFP95",
    lambda scale: make_loop_kernel_program(
        "102.swim", seed=102, iterations=_scaled(58, scale), rows=52,
        kernels=1, fp_ops=5, conflict_rounds=3,
    ),
))
_register(_spec(
    "103.su2cor", "loop_kernel", "CFP95",
    lambda scale: make_loop_kernel_program(
        "103.su2cor", seed=103, iterations=_scaled(48, scale), rows=44,
        kernels=2, fp_ops=4, conflict_rounds=3,
    ),
))
_register(_spec(
    "104.hydro2d", "loop_kernel", "CFP95",
    lambda scale: make_loop_kernel_program(
        "104.hydro2d", seed=104, iterations=_scaled(46, scale), rows=40,
        kernels=3, fp_ops=4, conflict_rounds=2,
    ),
))
_register(_spec(
    "107.mgrid", "loop_kernel", "CFP95",
    lambda scale: make_loop_kernel_program(
        "107.mgrid", seed=107, iterations=_scaled(52, scale), rows=48,
        kernels=2, fp_ops=5, conflict_rounds=1, edge_period=8,
    ),
))
_register(_spec(
    "110.applu", "loop_kernel", "CFP95",
    lambda scale: make_loop_kernel_program(
        "110.applu", seed=110, iterations=_scaled(44, scale), rows=42,
        kernels=2, fp_ops=6, conflict_rounds=2,
    ),
))
_register(_spec(
    "125.turb3d", "loop_kernel", "CFP95",
    lambda scale: make_loop_kernel_program(
        "125.turb3d", seed=125, iterations=_scaled(50, scale), rows=40,
        kernels=3, fp_ops=5, conflict_rounds=2, edge_period=8,
    ),
))
_register(_spec(
    "141.apsi", "loop_kernel", "CFP95",
    lambda scale: make_loop_kernel_program(
        "141.apsi", seed=141, iterations=_scaled(42, scale), rows=38,
        kernels=3, fp_ops=4, conflict_rounds=2,
    ),
))
_register(_spec(
    "145.fpppp", "recursive", "CFP95",
    lambda scale: make_recursive_program(
        "145.fpppp", seed=145, iterations=_scaled(16, scale), depth=8
    ),
))
_register(_spec(
    "146.wave5", "loop_kernel", "CFP95",
    lambda scale: make_loop_kernel_program(
        "146.wave5", seed=146, iterations=_scaled(46, scale), rows=44,
        kernels=2, fp_ops=5, conflict_rounds=3, edge_period=8,
    ),
))

CINT95: List[str] = [n for n, s in SPEC95.items() if s.suite == "CINT95"]
CFP95: List[str] = [n for n, s in SPEC95.items() if s.suite == "CFP95"]


def workload_names(suite: str = "SPEC95") -> List[str]:
    if suite == "SPEC95":
        return list(SPEC95)
    if suite == "CINT95":
        return list(CINT95)
    if suite == "CFP95":
        return list(CFP95)
    raise ValueError(f"unknown suite {suite!r}")


def build_workload(name: str, scale: float = 1.0) -> Program:
    """Build a fresh program for ``name`` (deterministic in scale)."""
    if name not in SPEC95:
        raise KeyError(f"unknown workload {name!r}; options: {sorted(SPEC95)}")
    return SPEC95[name].build(scale)
