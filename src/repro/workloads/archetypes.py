"""Workload archetypes: program generators behind the SPEC95-like suite.

Every generator is deterministic in ``(name, seed, scale)`` and returns
a validated :class:`~repro.ir.function.Program` whose ``main`` returns a
checksum — instrumented and uninstrumented runs must return the same
value, which the tests assert.

The archetypes and the published behaviour they are shaped to match:

====================  =====================================================
archetype             SPEC95 behaviour reproduced
====================  =====================================================
loop_kernel           FP codes: 1-3 hot procedures, few dense hot paths
                      carrying most misses (tomcatv's single procedure
                      covers 99.7%)
branchy               go/gcc: an order of magnitude more executed paths,
                      misses diffused, hot threshold must drop to 0.1%
interpreter           li/perl/m88ksim: indirect dispatch (CCT callee
                      lists), a couple of miss-heavy handlers
layered_calls         vortex: deep and wide call layers -> the largest CCT
compress              compress: two hot procedures with above-average
                      miss ratios covering ~92% of misses
recursive             CCT recursion backedges (Figure 5)
====================  =====================================================
"""

from __future__ import annotations

from random import Random
from typing import List, Tuple

from repro.ir.builder import ProgramBuilder
from repro.ir.function import Program
from repro.ir.instructions import Imm
from repro.workloads.kernels import (
    GlobalPlanner,
    emit_compute_chain,
    emit_conflict_ping_pong,
    emit_dispatch_tree,
    emit_fp_chain,
    emit_lcg_step,
    emit_sum_walk,
)

#: Words in the default 16KB cache (8-byte words).
CACHE_WORDS = 16 * 1024 // 8


# ---------------------------------------------------------------------------
# Shared pieces
# ---------------------------------------------------------------------------


def _emit_main(
    pb: ProgramBuilder,
    iterations: int,
    kernel_calls: List[Tuple[str, int]],
    seed: int,
) -> None:
    """``main``: LCG-driven loop calling each kernel with (i, state).

    ``kernel_calls`` is a list of (function name, period): the kernel
    is called on iterations divisible by its period, so kernels can
    have different heats.
    """
    fb = pb.function("main", num_params=0, num_regs=16)
    i, limit, state, scratch, checksum, cond, tmp = 0, 1, 2, 3, 4, 5, 6
    fb.block("entry")
    fb.const(0, dst=i)
    fb.const(iterations, dst=limit)
    fb.const(seed & 0x7FFFFFFF or 1, dst=state)
    fb.const(0, dst=checksum)
    fb.br("loop")
    fb.block("loop")
    fb.binop("lt", i, limit, dst=cond)
    fb.cbr(cond, "body", "done")
    fb.block("body")
    emit_lcg_step(fb, state, scratch)
    previous = "body"
    for index, (kernel, period) in enumerate(kernel_calls):
        if period <= 1:
            fb.call(kernel, [i, state], dst=tmp)
            fb.binop("add", checksum, tmp, dst=checksum)
            continue
        fb.binop("mod", i, Imm(period), dst=scratch)
        fb.binop("eq", scratch, Imm(0), dst=cond)
        call_block = f"call{index}"
        skip_block = f"skip{index}"
        fb.cbr(cond, call_block, skip_block)
        fb.block(call_block)
        fb.call(kernel, [i, state], dst=tmp)
        fb.binop("add", checksum, tmp, dst=checksum)
        fb.br(skip_block)
        fb.block(skip_block)
        previous = skip_block
    fb.binop("add", i, Imm(1), dst=i)
    fb.br("loop")
    fb.block("done")
    fb.ret(checksum)
    pb.add(fb)


def _finish(pb: ProgramBuilder, planner: GlobalPlanner) -> Program:
    program = pb.finish(validate=True)
    program.globals_size = planner.total_words
    return program


# ---------------------------------------------------------------------------
# loop_kernel: the FP archetype
# ---------------------------------------------------------------------------


def make_loop_kernel_program(
    name: str,
    seed: int = 1,
    iterations: int = 60,
    rows: int = 48,
    kernels: int = 1,
    fp_ops: int = 4,
    conflict_rounds: int = 3,
    edge_period: int = 16,
    array_words: int = 4 * CACHE_WORDS,
) -> Program:
    """Loop-nest FP code: hot paths inside 1..3 kernel procedures.

    Each kernel's inner loop alternates between a *dense* helper
    (line-strided walk over a multiple-of-cache array plus a conflict
    ping-pong: nearly every access misses) and a *sparse* helper
    (a unit-stride walk plus heavy register work: executes just as
    often, misses far less per instruction).  Every
    ``edge_period``-th row takes an edge helper with an 8-way dispatch
    tree — the cold tail, with a trickle of misses of its own.
    Helpers are called per inner iteration, so call-frequency (and with
    it CCT maintenance) is realistic for loop code.
    """
    rng = Random(seed)
    pb = ProgramBuilder(entry="main")
    planner = GlobalPlanner()
    calls: List[Tuple[str, int]] = []
    for k in range(kernels):
        kname = f"kernel{k}"
        big = planner.array(f"{kname}_big", array_words)
        medium = planner.array(f"{kname}_med", 2 * CACHE_WORDS)
        pair = planner.conflict_pair(f"{kname}_cp", 512, CACHE_WORDS)

        # --- dense helper: concentrated conflict + capacity misses ---
        fb = pb.function(f"dense{k}", num_params=2, num_regs=14)
        i, j = 0, 1
        addr, scratch, accum, tmp = 2, 3, 4, 5
        fb.block("entry")
        fb.const(0, dst=accum)
        fb.binop("mul", i, Imm(rows | 1), dst=tmp)
        fb.binop("add", tmp, j, dst=tmp)
        emit_sum_walk(fb, big, tmp, accum, addr, scratch, loads=3, stride_words=4)
        emit_conflict_ping_pong(fb, pair, j, accum, addr, scratch, conflict_rounds)
        # Write the result back at a new line: write misses for Table 2.
        fb.store(accum, addr, 8 * 4)
        fb.ret(accum)
        pb.add(fb)

        # --- sparse helper: heavy work, few misses per instruction ---
        fb = pb.function(f"sparse{k}", num_params=2, num_regs=14)
        i, j = 0, 1
        addr, scratch, accum, tmp, fval = 2, 3, 4, 5, 6
        fb.block("entry")
        fb.const(0, dst=accum)
        fb.binop("add", i, j, dst=tmp)
        emit_sum_walk(fb, medium, tmp, accum, addr, scratch, loads=4, stride_words=1)
        emit_compute_chain(fb, accum, 10)
        fb.store(accum, addr, 0)
        if fp_ops:
            fb.const(1.25, dst=fval)
            emit_fp_chain(fb, fval, tmp, fp_ops)
        fb.ret(accum)
        pb.add(fb)

        # --- edge helper: the cold tail (8-way dispatch) ---
        fb = pb.function(f"edge{k}", num_params=2, num_regs=14)
        i, j = 0, 1
        addr, scratch, accum, sel = 2, 3, 4, 5
        fb.block("entry")
        fb.const(0, dst=accum)
        fb.binop("add", i, j, dst=sel)
        fb.binop("and", sel, Imm(7), dst=sel)
        fb.br("disp_0_8")

        def leaf(fbl, index):
            emit_compute_chain(fbl, accum, 2 + index % 3)
            if index % 2 == 0:
                fbl.binop("add", sel, Imm(index * 37), dst=scratch)
                emit_sum_walk(fbl, medium, scratch, accum, addr, scratch,
                              loads=1, stride_words=4)

        emit_dispatch_tree(fb, sel, 8, "disp", "out", scratch, leaf)
        fb.block("out")
        fb.ret(accum)
        pb.add(fb)

        # --- the kernel: inner loop calling the helpers ---
        fb = pb.function(kname, num_params=2, num_regs=16)
        i, state = 0, 1
        j, limit, cond, scratch, accum, tmp = 2, 3, 4, 5, 6, 7
        trip = rows + rng.randrange(8)
        fb.block("entry")
        fb.const(0, dst=j)
        fb.const(trip, dst=limit)
        fb.const(0, dst=accum)
        fb.br("loop")
        fb.block("loop")
        fb.binop("lt", j, limit, dst=cond)
        fb.cbr(cond, "body", "done")
        fb.block("body")
        fb.binop("and", j, Imm(edge_period - 1), dst=scratch)
        fb.binop("eq", scratch, Imm(0), dst=cond)
        fb.cbr(cond, "edge", "steady")
        fb.block("steady")
        fb.binop("and", j, Imm(1), dst=cond)
        fb.cbr(cond, "odd", "even")
        fb.block("even")
        fb.call(f"dense{k}", [i, j], dst=tmp)
        fb.binop("add", accum, tmp, dst=accum)
        fb.br("next")
        fb.block("odd")
        fb.call(f"sparse{k}", [i, j], dst=tmp)
        fb.binop("add", accum, tmp, dst=accum)
        fb.br("next")
        fb.block("edge")
        fb.call(f"edge{k}", [i, j], dst=tmp)
        fb.binop("add", accum, tmp, dst=accum)
        fb.br("next")
        fb.block("next")
        fb.binop("add", j, Imm(1), dst=j)
        fb.br("loop")
        fb.block("done")
        fb.binop("and", accum, Imm(0xFFFF_FFFF), dst=accum)
        fb.ret(accum)
        pb.add(fb)
        calls.append((kname, 1 if k == 0 else 2 + k))
    _emit_main(pb, iterations, calls, seed)
    return _finish(pb, planner)


# ---------------------------------------------------------------------------
# branchy: the go/gcc archetype
# ---------------------------------------------------------------------------


def make_branchy_program(
    name: str,
    seed: int = 2,
    iterations: int = 40,
    rows: int = 24,
    diamonds: int = 7,
    evaluators: int = 3,
    array_words: int = 4 * CACHE_WORDS,
) -> Program:
    """Branch-heavy code: ``2**diamonds`` path shapes per inner iteration.

    Several ``evaluate`` procedures each run a chain of diamonds per
    inner iteration; a diamond tests the OR of two mid-range LCG bits
    (taken with probability ~3/4, so realized patterns follow a
    moderately skewed distribution: many paths execute, none
    dominates).  *Both* arms do a pseudo-random load into a
    cache-busting array, so misses are spread across the realized paths
    rather than concentrated — the go/gcc phenomenon that forces the
    hot-path threshold down to 0.1%.  Every inner iteration also calls
    a shared ``score`` helper, keeping call frequency (and CCT
    maintenance cost) realistic for pointer-heavy integer code.
    """
    rng = Random(seed)
    pb = ProgramBuilder(entry="main")
    planner = GlobalPlanner()
    big = planner.array("table", array_words)

    # Shared helper: two diamonds plus a pseudo-random load.
    fb = pb.function("score", num_params=2, num_regs=14)
    i, state = 0, 1
    addr, scratch, accum, bit = 2, 3, 4, 5
    fb.block("entry")
    fb.const(0, dst=accum)
    fb.binop("shr", state, Imm(11), dst=bit)
    fb.binop("and", bit, Imm(1), dst=bit)
    fb.cbr(bit, "walk", "calc")
    fb.block("walk")
    fb.binop("shr", state, Imm(13), dst=addr)
    emit_sum_walk(fb, big, addr, accum, scratch, bit, loads=2, stride_words=4)
    fb.br("tail")
    fb.block("calc")
    emit_compute_chain(fb, accum, 4)
    fb.br("tail")
    fb.block("tail")
    fb.binop("and", i, Imm(3), dst=bit)
    fb.binop("eq", bit, Imm(0), dst=bit)
    fb.cbr(bit, "extra", "out")
    fb.block("extra")
    fb.binop("shr", state, Imm(17), dst=addr)
    emit_sum_walk(fb, big, addr, accum, scratch, bit, loads=1, stride_words=4)
    fb.br("out")
    fb.block("out")
    fb.ret(accum)
    pb.add(fb)

    calls: List[Tuple[str, int]] = []
    for e in range(evaluators):
        ename = f"evaluate{e}"
        ndiamonds = max(3, diamonds - e)
        fb = pb.function(ename, num_params=2, num_regs=16)
        i, state = 0, 1
        j, limit, cond, addr, scratch, accum, bit, tmp = 2, 3, 4, 5, 6, 7, 8, 9
        fb.block("entry")
        fb.const(0, dst=j)
        fb.const(rows, dst=limit)
        fb.const(0, dst=accum)
        fb.br("loop")
        fb.block("loop")
        fb.binop("lt", j, limit, dst=cond)
        fb.cbr(cond, "body0", "done")
        for d in range(ndiamonds):
            fb.block(f"body{d}")
            if d == 0:
                emit_lcg_step(fb, state, scratch)
            # Mid-range bits: low LCG bits have short periods.
            fb.binop("shr", state, Imm(d + 7), dst=bit)
            fb.binop("shr", state, Imm(d + 16), dst=scratch)
            fb.binop("or", bit, scratch, dst=bit)
            fb.binop("and", bit, Imm(1), dst=bit)
            fb.cbr(bit, f"then{d}", f"else{d}")
            join = f"body{d + 1}" if d + 1 < ndiamonds else "call"
            fb.block(f"then{d}")
            # Pseudo-random indexed load: mostly misses, on every path.
            fb.binop("shr", state, Imm(3 + d), dst=addr)
            emit_sum_walk(fb, big, addr, accum, scratch, bit, loads=1, stride_words=4)
            fb.br(join)
            fb.block(f"else{d}")
            if rng.random() < 0.5:
                fb.binop("shr", state, Imm(5 + d), dst=addr)
                emit_sum_walk(fb, big, addr, accum, scratch, bit, loads=1, stride_words=4)
            else:
                emit_compute_chain(fb, accum, 2)
            fb.br(join)
        fb.block("call")
        fb.call("score", [j, state], dst=tmp)
        fb.binop("add", accum, tmp, dst=accum)
        fb.binop("add", j, Imm(1), dst=j)
        fb.br("loop")
        fb.block("done")
        fb.binop("and", accum, Imm(0xFFFF_FFFF), dst=accum)
        fb.ret(accum)
        pb.add(fb)
        calls.append((ename, e + 1))
    _emit_main(pb, iterations, calls, seed)
    return _finish(pb, planner)


# ---------------------------------------------------------------------------
# interpreter: the li/perl/m88ksim archetype
# ---------------------------------------------------------------------------


def make_interpreter_program(
    name: str,
    seed: int = 3,
    iterations: int = 250,
    handlers: int = 8,
    array_words: int = 2 * CACHE_WORDS,
) -> Program:
    """A dispatch interpreter: indirect calls through a handler table.

    One or two handlers are miss-heavy (the interpreter's "memory"
    opcodes); the rest are compute.  One handler recurses (bounded),
    exercising CCT backedges under indirect dispatch.
    """
    rng = Random(seed)
    pb = ProgramBuilder(entry="main")
    planner = GlobalPlanner()
    heap = planner.array("heap", array_words)
    pair = planner.conflict_pair("cells", 512, CACHE_WORDS)

    handler_names = [f"op{h}" for h in range(handlers)]
    for h, hname in enumerate(handler_names):
        fb = pb.function(hname, num_params=2, num_regs=12)
        i, state = 0, 1
        addr, scratch, accum, cond = 2, 3, 4, 5
        fb.block("entry")
        fb.const(0, dst=accum)
        if h == 0:
            # The hot memory opcode: conflict misses plus a store.
            emit_conflict_ping_pong(fb, pair, i, accum, addr, scratch, rounds=4)
            fb.store(accum, addr, 0)
            fb.ret(accum)
        elif h == 1:
            # Pseudo-random heap walk.
            fb.binop("shr", state, Imm(4), dst=addr)
            emit_sum_walk(fb, heap, addr, accum, scratch, cond, loads=4, stride_words=4)
            fb.ret(accum)
        elif h == 2:
            # Bounded recursion (an eval-like opcode).
            fb.binop("and", i, Imm(3), dst=scratch)
            fb.binop("gt", scratch, Imm(0), dst=cond)
            fb.cbr(cond, "recurse", "leaf")
            fb.block("recurse")
            fb.binop("sub", i, Imm(1), dst=scratch)
            fb.call(hname, [scratch, state], dst=accum)
            fb.binop("add", accum, Imm(1), dst=accum)
            fb.ret(accum)
            fb.block("leaf")
            emit_compute_chain(fb, accum, 3)
            fb.ret(accum)
        elif h == 3 and handlers > 4:
            # A handler that calls another handler directly.
            fb.call(handler_names[1], [i, state], dst=accum)
            fb.binop("xor", accum, state, dst=accum)
            fb.ret(accum)
        elif h == 4 and handlers > 5:
            # A lukewarm handler: light strided traffic.
            fb.binop("shr", state, Imm(9), dst=addr)
            emit_sum_walk(fb, heap, addr, accum, scratch, cond, loads=1, stride_words=2)
            emit_compute_chain(fb, accum, 4)
            fb.ret(accum)
        else:
            emit_compute_chain(fb, accum, 2 + rng.randrange(6))
            if h % 2:
                # Occasional single load: a trickle of cold-path misses.
                fb.binop("shr", state, Imm(6 + h), dst=addr)
                emit_sum_walk(fb, heap, addr, accum, scratch, cond, loads=1, stride_words=1)
            fb.binop("xor", accum, state, dst=accum)
            fb.ret(accum)
        pb.add(fb)

    fb = pb.function("main", num_params=0, num_regs=16)
    i, limit, state, scratch, checksum, cond, op, tmp = 0, 1, 2, 3, 4, 5, 6, 7
    fb.block("entry")
    fb.const(0, dst=i)
    fb.const(iterations, dst=limit)
    fb.const(seed & 0x7FFFFFFF or 1, dst=state)
    fb.const(0, dst=checksum)
    fb.br("loop")
    fb.block("loop")
    fb.binop("lt", i, limit, dst=cond)
    fb.cbr(cond, "body", "done")
    fb.block("body")
    emit_lcg_step(fb, state, scratch)
    # Skew the opcode mix: half the time opcode 0 (the hot one).
    fb.binop("and", state, Imm(1), dst=cond)
    fb.cbr(cond, "hot", "dispatch")
    fb.block("hot")
    fb.const(0, dst=op)
    fb.br("docall")
    fb.block("dispatch")
    fb.binop("shr", state, Imm(7), dst=op)
    fb.binop("mod", op, Imm(len(handler_names)), dst=op)
    fb.br("docall")
    fb.block("docall")
    fb.icall(op, [i, state], dst=tmp)
    fb.binop("add", checksum, tmp, dst=checksum)
    fb.binop("add", i, Imm(1), dst=i)
    fb.br("loop")
    fb.block("done")
    fb.ret(checksum)
    pb.add(fb)

    program = _finish(pb, planner)
    # Handler h must be function-table index h for the icall to work.
    for hname in handler_names:
        program.function_index(hname)
    return program


# ---------------------------------------------------------------------------
# layered_calls: the vortex archetype
# ---------------------------------------------------------------------------


def make_layered_calls_program(
    name: str,
    seed: int = 4,
    iterations: int = 30,
    layers: int = 4,
    width: int = 3,
    array_words: int = 2 * CACHE_WORDS,
) -> Program:
    """Deep call layers: layer-k functions call layer-(k+1) functions.

    Each function branches on an LCG bit between two distinct callees,
    so many distinct call chains execute -> a large, bushy CCT with
    high replication of the leaf procedures.
    """
    rng = Random(seed)
    pb = ProgramBuilder(entry="main")
    planner = GlobalPlanner()
    big = planner.array("store", array_words)

    names = [[f"L{layer}_{w}" for w in range(width)] for layer in range(layers)]
    # Leaves: a miss-heavy one, a lukewarm one, the rest compute.
    for w, leaf in enumerate(names[-1]):
        fb = pb.function(leaf, num_params=2, num_regs=12)
        i, state = 0, 1
        addr, scratch, accum, cond = 2, 3, 4, 5
        fb.block("entry")
        fb.const(0, dst=accum)
        if w == 0:
            fb.binop("shr", state, Imm(5), dst=addr)
            emit_sum_walk(fb, big, addr, accum, scratch, cond, loads=5, stride_words=4)
        elif w == 1:
            fb.binop("shr", state, Imm(8), dst=addr)
            emit_sum_walk(fb, big, addr, accum, scratch, cond, loads=1, stride_words=2)
            emit_compute_chain(fb, accum, 5)
        else:
            emit_compute_chain(fb, accum, 3 + w)
            if w % 2:
                fb.binop("and", i, Imm(255), dst=addr)
                emit_sum_walk(fb, big, addr, accum, scratch, cond, loads=1, stride_words=1)
            fb.binop("xor", accum, i, dst=accum)
        fb.ret(accum)
        pb.add(fb)

    for layer in range(layers - 2, -1, -1):
        for w, fname in enumerate(names[layer]):
            callees = rng.sample(names[layer + 1], 2)
            fb = pb.function(fname, num_params=2, num_regs=12)
            i, state = 0, 1
            scratch, accum, cond, tmp = 2, 3, 4, 5
            fb.block("entry")
            fb.binop("shr", state, Imm(layer + w), dst=scratch)
            fb.binop("and", scratch, Imm(1), dst=cond)
            fb.cbr(cond, "left", "right")
            fb.block("left")
            fb.call(callees[0], [i, state], dst=accum)
            fb.br("join")
            fb.block("right")
            fb.call(callees[1], [i, state], dst=accum)
            fb.br("join")
            fb.block("join")
            if rng.random() < 0.5:
                fb.call(callees[0], [i, state], dst=tmp)
                fb.binop("add", accum, tmp, dst=accum)
            fb.ret(accum)
            pb.add(fb)

    calls = [(fname, 1 + w) for w, fname in enumerate(names[0])]
    _emit_main(pb, iterations, calls, seed)
    return _finish(pb, planner)


# ---------------------------------------------------------------------------
# compress: two hot procedures
# ---------------------------------------------------------------------------


def make_compress_program(
    name: str,
    seed: int = 5,
    iterations: int = 80,
    block_words: int = 32,
    array_words: int = 4 * CACHE_WORDS,
) -> Program:
    """compress-like: a tight coding loop plus a hash-probe procedure."""
    pb = ProgramBuilder(entry="main")
    planner = GlobalPlanner()
    data = planner.array("data", array_words)
    table = planner.array("hash", 2 * CACHE_WORDS)

    fb = pb.function("code_block", num_params=2, num_regs=16)
    i, state = 0, 1
    j, limit, cond, addr, scratch, accum, tmp = 2, 3, 4, 5, 6, 7, 8
    fb.block("entry")
    fb.const(0, dst=j)
    fb.const(block_words, dst=limit)
    fb.const(0, dst=accum)
    fb.br("loop")
    fb.block("loop")
    fb.binop("lt", j, limit, dst=cond)
    fb.cbr(cond, "body", "done")
    fb.block("body")
    fb.binop("mul", i, Imm(block_words), dst=tmp)
    fb.binop("add", tmp, j, dst=tmp)
    emit_sum_walk(fb, data, tmp, accum, addr, scratch, loads=2, stride_words=4)
    fb.call("probe", [accum, state], dst=scratch)
    fb.binop("add", accum, scratch, dst=accum)
    fb.binop("add", j, Imm(1), dst=j)
    fb.br("loop")
    fb.block("done")
    # Flush the coded block: a burst of stores that pressures the
    # store buffer (Table 2's SB-stall column needs a real source).
    for burst in range(24):
        fb.store(accum, addr, 8 * burst)
    fb.binop("and", accum, Imm(0xFFFF_FFFF), dst=accum)
    fb.ret(accum)
    pb.add(fb)

    fb = pb.function("probe", num_params=2, num_regs=12)
    key, state = 0, 1
    addr, scratch, cond, accum = 2, 3, 4, 5
    fb.block("entry")
    fb.binop("mul", key, Imm(2654435761), dst=addr)
    emit_sum_walk(fb, table, addr, key, scratch, cond, loads=1, stride_words=4)
    fb.binop("and", key, Imm(7), dst=cond)
    fb.cbr(cond, "hit", "miss")
    fb.block("hit")
    fb.ret(key)
    fb.block("miss")
    # Second probe on a miss.
    fb.binop("add", addr, Imm(1), dst=addr)
    emit_sum_walk(fb, table, addr, key, scratch, cond, loads=1, stride_words=4)
    fb.ret(key)
    pb.add(fb)

    _emit_main(pb, iterations, [("code_block", 1)], seed)
    return _finish(pb, planner)


# ---------------------------------------------------------------------------
# recursive: CCT backedges
# ---------------------------------------------------------------------------


def make_recursive_program(
    name: str,
    seed: int = 6,
    iterations: int = 12,
    depth: int = 7,
    array_words: int = 4 * CACHE_WORDS,
) -> Program:
    """Mutual and self recursion over a small working set (Figure 5)."""
    pb = ProgramBuilder(entry="main")
    planner = GlobalPlanner()
    tree = planner.array("tree", array_words)

    fb = pb.function("walk", num_params=2, num_regs=12)
    n, state = 0, 1
    cond, scratch, accum, addr = 2, 3, 4, 5
    fb.block("entry")
    fb.binop("le", n, Imm(0), dst=cond)
    fb.cbr(cond, "leaf", "inner")
    fb.block("leaf")
    fb.binop("shr", state, Imm(3), dst=addr)
    fb.binop("xor", addr, n, dst=addr)
    fb.const(0, dst=accum)
    emit_sum_walk(fb, tree, addr, accum, scratch, cond, loads=3, stride_words=4)
    fb.ret(accum)
    fb.block("inner")
    fb.binop("sub", n, Imm(1), dst=scratch)
    fb.call("helper", [scratch, state], dst=accum)
    fb.binop("sub", n, Imm(2), dst=scratch)
    fb.binop("ge", scratch, Imm(0), dst=cond)
    fb.cbr(cond, "second", "donef")
    fb.block("second")
    fb.call("walk", [scratch, state], dst=cond)
    fb.binop("add", accum, cond, dst=accum)
    fb.br("donef")
    fb.block("donef")
    fb.ret(accum)
    pb.add(fb)

    fb = pb.function("helper", num_params=2, num_regs=12)
    n, state = 0, 1
    cond, scratch, accum = 2, 3, 4
    fb.block("entry")
    fb.binop("le", n, Imm(0), dst=cond)
    fb.cbr(cond, "base", "rec")
    fb.block("base")
    fb.const(1, dst=accum)
    fb.ret(accum)
    fb.block("rec")
    # Mutual recursion back into walk.
    fb.binop("sub", n, Imm(1), dst=scratch)
    fb.call("walk", [scratch, state], dst=accum)
    fb.binop("add", accum, Imm(1), dst=accum)
    fb.ret(accum)
    pb.add(fb)

    fb = pb.function("driver", num_params=2, num_regs=8)
    i, state = 0, 1
    depth_reg, out = 2, 3
    fb.block("entry")
    fb.const(depth, dst=depth_reg)
    fb.call("walk", [depth_reg, state], dst=out)
    fb.ret(out)
    pb.add(fb)

    _emit_main(pb, iterations, [("driver", 1)], seed)
    return _finish(pb, planner)
