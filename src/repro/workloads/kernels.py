"""IR-emitting building blocks shared by the workload archetypes.

Each helper emits straight-line or structured code into a
:class:`~repro.ir.builder.FunctionBuilder`, managing registers
explicitly (workload functions run close to the 32-register file on
purpose, so instrumentation occasionally has to spill — a perturbation
source the paper discusses).

Memory addressing: workload arrays live in the globals region at fixed
offsets; absolute base addresses are compile-time constants, exactly
like linked global arrays in a real binary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Imm
from repro.machine.memory import WORD

#: Must match MemoryMap's globals region base.
GLOBALS_BASE = 0x0001_0000

#: Words per 32-byte cache line (the default machine's line size).
LINE_WORDS = 4

#: LCG constants (glibc's): deterministic pseudo-random data at runtime.
LCG_MUL = 1103515245
LCG_ADD = 12345
LCG_MASK = 0x7FFFFFFF


@dataclass
class ArrayDecl:
    """A global array: ``words`` 8-byte words at a fixed offset."""

    name: str
    offset_words: int
    words: int

    @property
    def base(self) -> int:
        return GLOBALS_BASE + self.offset_words * WORD


class GlobalPlanner:
    """Assigns global-array offsets; tracks the program's globals size."""

    def __init__(self) -> None:
        self._next = 0
        self.arrays: List[ArrayDecl] = []

    def array(self, name: str, words: int, align_lines: bool = True) -> ArrayDecl:
        if align_lines and self._next % LINE_WORDS:
            self._next += LINE_WORDS - self._next % LINE_WORDS
        decl = ArrayDecl(name, self._next, words)
        self._next += words
        self.arrays.append(decl)
        return decl

    def conflict_pair(self, name: str, words: int, cache_words: int) -> Tuple[ArrayDecl, ArrayDecl]:
        """Two arrays exactly one cache-size apart: same-set conflicts.

        Alternating accesses at equal indices evict each other in a
        direct-mapped cache — the concentrated-miss pattern behind the
        paper's dense hot paths (§1: "possibly due to a cache
        conflict").
        """
        first = self.array(f"{name}_a", words)
        gap = cache_words - (self._next - first.offset_words) % cache_words
        self._next += gap % cache_words
        second = self.array(f"{name}_b", words, align_lines=False)
        return first, second

    @property
    def total_words(self) -> int:
        return self._next


# ---------------------------------------------------------------------------
# Emission helpers
# ---------------------------------------------------------------------------


def emit_lcg_step(fb: FunctionBuilder, state: int, scratch: int) -> None:
    """``state = (state * LCG_MUL + LCG_ADD) & LCG_MASK`` in-place."""
    fb.binop("mul", state, Imm(LCG_MUL), dst=scratch)
    fb.binop("add", scratch, Imm(LCG_ADD), dst=scratch)
    fb.binop("and", scratch, Imm(LCG_MASK), dst=state)


def emit_array_addr(
    fb: FunctionBuilder,
    array: ArrayDecl,
    index: int,
    addr: int,
    stride_words: int = 1,
    mask_to_array: bool = True,
) -> None:
    """``addr = array.base + ((index * stride) % words) * 8``.

    ``words`` is rounded down to a power of two for cheap masking, as a
    hand-written kernel would.
    """
    fb.binop("mul", index, Imm(stride_words), dst=addr)
    if mask_to_array:
        mask = _floor_pow2(array.words) - 1
        fb.binop("and", addr, Imm(mask), dst=addr)
    fb.binop("mul", addr, Imm(WORD), dst=addr)
    fb.binop("add", addr, Imm(array.base), dst=addr)


def _floor_pow2(value: int) -> int:
    if value < 1:
        raise ValueError("array too small")
    return 1 << (value.bit_length() - 1)


def emit_sum_walk(
    fb: FunctionBuilder,
    array: ArrayDecl,
    index: int,
    accum: int,
    addr: int,
    scratch: int,
    loads: int,
    stride_words: int,
) -> None:
    """Unrolled read chain: ``loads`` loads at increasing strided offsets.

    A stride of one word stays within cache lines (few misses); a
    stride of a line or more touches a new line per load (misses once
    the footprint exceeds the cache).
    """
    emit_array_addr(fb, array, index, addr, stride_words)
    step = stride_words * WORD
    wrap = _floor_pow2(array.words) * WORD
    for i in range(loads):
        offset = (i * step) % max(wrap, WORD)
        fb.load(addr, offset, dst=scratch)
        fb.binop("add", accum, scratch, dst=accum)


def emit_conflict_ping_pong(
    fb: FunctionBuilder,
    pair: Tuple[ArrayDecl, ArrayDecl],
    index: int,
    accum: int,
    addr: int,
    scratch: int,
    rounds: int,
) -> None:
    """Alternate loads of two same-set arrays: every access misses."""
    first, second = pair
    emit_array_addr(fb, first, index, addr, stride_words=LINE_WORDS)
    delta = second.base - first.base
    for _ in range(rounds):
        fb.load(addr, 0, dst=scratch)
        fb.binop("add", accum, scratch, dst=accum)
        fb.load(addr, delta, dst=scratch)
        fb.binop("add", accum, scratch, dst=accum)


def emit_fp_chain(fb: FunctionBuilder, value: int, scratch: int, ops: int) -> None:
    """A dependent FP chain (fadd/fmul alternating): FP stall pressure."""
    fb.const(1.0001, dst=scratch)
    for i in range(ops):
        op = "fmul" if i % 2 else "fadd"
        fb.fbinop(op, value, scratch, dst=value)


def emit_compute_chain(fb: FunctionBuilder, value: int, ops: int) -> None:
    """Cache-neutral integer work (the sparse-path filler)."""
    for i in range(ops):
        op = ("add", "xor", "mul")[i % 3]
        fb.binop(op, value, Imm(2 * i + 1), dst=value)


def emit_dispatch_tree(
    fb: FunctionBuilder,
    selector: int,
    width: int,
    label: str,
    join: str,
    scratch: int,
    leaf_emit,
) -> None:
    """A balanced if-tree over ``selector in [0, width)``: ``width`` paths.

    ``leaf_emit(fb, leaf_index)`` emits each leaf's body; every leaf
    branches to ``join``.  This is the long-cold-tail generator: each
    leaf is one distinct path.
    """
    if width < 1 or width & (width - 1):
        raise ValueError("dispatch width must be a power of two")

    def subtree(name: str, lo: int, hi: int) -> None:
        fb.block(name)
        if hi - lo == 1:
            leaf_emit(fb, lo)
            fb.br(join)
            return
        mid = (lo + hi) // 2
        fb.binop("lt", selector, Imm(mid), dst=scratch)
        left = f"{label}_{lo}_{mid}"
        right = f"{label}_{mid}_{hi}"
        fb.cbr(scratch, left, right)
        subtree(left, lo, mid)
        subtree(right, mid, hi)

    subtree(f"{label}_{0}_{width}", 0, width)


def counted_loop(fb: FunctionBuilder, name: str, counter: int, limit: int,
                 scratch: int, body: str, done: str) -> None:
    """Emit the ``head`` block of a counted loop; caller emits the body.

    Layout: ``name`` tests ``counter < limit`` and branches to ``body``
    or ``done``.  The body must increment the counter and branch back
    to ``name``.
    """
    fb.block(name)
    fb.binop("lt", counter, limit, dst=scratch)
    fb.cbr(scratch, body, done)
