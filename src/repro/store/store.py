"""`ProfileStore` — a content-addressed on-disk profile registry.

Profiles become a *service* when runs are comparable across time: a
stored profile is keyed by ``(ProfileSpec digest, workload id, code
fingerprint)`` so any two entries under one spec digest are diffable
by construction — same mode, same placement, same PIC events, same
input set, and (for path profiles) the same Ball–Larus numbering.

Layout under the store root::

    index.json                  the lookup/listing index (atomic rewrites)
    objects/<aa>/<digest>.json  content-addressed blobs

Every artifact — the run record itself, the CCT dump, the flat path
and edge profiles — is a blob named by the SHA-256 of its bytes, so
storage is deduplicating and idempotent: re-saving an identical run
writes nothing and returns the same run id.  Writes go through the
PR 4 tmp-file + rename machinery (:mod:`repro.store.iojson`), reads
re-verify the content digest with
:func:`repro.cct.serialize.file_digest` — a truncated or tampered
blob is a typed :class:`StoreError` naming the path, never a silently
wrong profile.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cct.serialize import CCTLoadError, file_digest, load_cct, save_cct
from repro.machine.counters import Event
from repro.session.spec import ProfileSpec
from repro.store.encode import (
    StoredFunctionPaths,
    counters_from_json,
    counters_to_json,
    edge_profile_from_json,
    edge_profile_to_json,
    path_profile_from_json,
    path_profile_to_json,
    paths_of,
)
from repro.store.iojson import canonical_json, write_json_atomic

RUN_FORMAT = "repro-store-run-v1"
INDEX_FORMAT = "repro-store-index-v1"
INDEX_NAME = "index.json"

#: Shortest run-id prefix :meth:`ProfileStore.resolve` accepts.
MIN_PREFIX = 4


class StoreError(ValueError):
    """A store artifact is missing, corrupt, or a ref does not resolve.

    Carries the offending ``path`` (a file for corruption, the store
    root for ref errors) so callers report *which* artifact is damaged
    instead of leaking a parse traceback.
    """

    def __init__(self, path: str, reason: str):
        super().__init__(f"{path}: {reason}")
        self.path = path
        self.reason = reason


def code_fingerprint(program) -> str:
    """SHA-256 of the program's disassembly — the code-version key.

    Computed over the *uninstrumented* program, so the fingerprint
    identifies what the user wrote, not what the instrumentation pass
    turned it into.
    """
    from repro.ir.disasm import format_program

    return hashlib.sha256(format_program(program).encode()).hexdigest()


@dataclass
class StoredProfile:
    """One fully reloaded registry entry."""

    run_id: str
    spec: ProfileSpec
    spec_digest: str
    workload: str
    code_fingerprint: str
    counters: Dict[Event, int]
    return_values: List[int]
    #: Recency rank in the index (monotonic per store).
    seq: int
    cct: Optional[object] = None
    paths: Optional[Dict[str, StoredFunctionPaths]] = None
    edges: Optional[Dict[str, Dict[int, int]]] = None
    record: dict = field(default_factory=dict, repr=False)

    @property
    def key(self) -> tuple:
        return (self.spec_digest, self.workload, self.code_fingerprint)


class ProfileStore:
    """The registry: save, resolve, and reload profiles by content."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(os.path.join(root, "objects"), exist_ok=True)

    # -- blobs ---------------------------------------------------------------

    def _object_path(self, digest: str) -> str:
        return os.path.join(self.root, "objects", digest[:2], f"{digest}.json")

    def _put_bytes(self, data: bytes) -> str:
        digest = hashlib.sha256(data).hexdigest()
        path = self._object_path(digest)
        if not os.path.exists(path):
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}"
            try:
                with open(tmp, "wb") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        return digest

    def _put_cct(self, cct) -> str:
        """Content-address a CCT dump: save, digest the bytes, rename."""
        staging = os.path.join(
            self.root, "objects", f"staging.{os.getpid()}.cct.json"
        )
        try:
            save_cct(cct, staging)
            with open(staging, "rb") as handle:
                return self._put_bytes(handle.read())
        finally:
            if os.path.exists(staging):
                os.unlink(staging)

    def _get_blob(self, digest: str, what: str) -> str:
        """Verified blob path: existence + content-digest check."""
        path = self._object_path(digest)
        if not os.path.exists(path):
            raise StoreError(path, f"missing {what} blob")
        if file_digest(path) != digest:
            raise StoreError(
                path, f"{what} blob content does not match its digest (truncated?)"
            )
        return path

    def _get_json(self, digest: str, what: str) -> dict:
        path = self._get_blob(digest, what)
        try:
            with open(path) as handle:
                return json.load(handle)
        except json.JSONDecodeError as exc:  # pragma: no cover - digest catches first
            raise StoreError(path, f"corrupt {what} blob ({exc})") from exc

    # -- the index -----------------------------------------------------------

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, INDEX_NAME)

    def _load_index(self) -> dict:
        if not os.path.exists(self.index_path):
            return {"format": INDEX_FORMAT, "runs": []}
        try:
            with open(self.index_path) as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise StoreError(
                self.index_path, f"truncated or corrupt store index ({exc})"
            ) from exc
        if not isinstance(payload, dict) or payload.get("format") != INDEX_FORMAT:
            raise StoreError(self.index_path, "not a profile store index")
        return payload

    def entries(
        self,
        workload: Optional[str] = None,
        spec_digest: Optional[str] = None,
    ) -> List[dict]:
        """Index entries, oldest first, optionally filtered by key."""
        runs = self._load_index()["runs"]
        if workload is not None:
            runs = [e for e in runs if e["workload"] == workload]
        if spec_digest is not None:
            runs = [e for e in runs if e["spec_digest"] == spec_digest]
        return sorted(runs, key=lambda e: e["seq"])

    # -- saving --------------------------------------------------------------

    def save_record(
        self,
        record: dict,
        cct=None,
        paths=None,
        edges=None,
    ) -> str:
        """Low-level save: persist blobs, the record, and an index row.

        ``record`` carries everything but the ``blobs`` table (filled
        here).  Returns the run id — the content digest of the record
        blob.  Saving an identical record is a no-op returning the same
        id: content addressing makes the operation idempotent.
        """
        record = dict(record)
        record["format"] = RUN_FORMAT
        record["blobs"] = {
            "cct": None if cct is None else self._put_cct(cct),
            "paths": None if paths is None else self._put_bytes(
                canonical_json(path_profile_to_json(paths)).encode()
            ),
            "edges": None if edges is None else self._put_bytes(
                canonical_json(edge_profile_to_json(edges)).encode()
            ),
        }
        run_id = self._put_bytes(canonical_json(record).encode())

        index = self._load_index()
        if not any(entry["run"] == run_id for entry in index["runs"]):
            seq = 1 + max((entry["seq"] for entry in index["runs"]), default=0)
            index["runs"].append(
                {
                    "run": run_id,
                    "seq": seq,
                    "spec_digest": record["spec_digest"],
                    "workload": record["workload"],
                    "code_fingerprint": record["code_fingerprint"],
                    "mode": record["spec"]["mode"],
                }
            )
            write_json_atomic(self.index_path, index)
        return run_id

    def save_run(self, spec: ProfileSpec, run, *, workload: str, program) -> str:
        """Persist one :class:`~repro.session.ProfileRun`.

        ``program`` is the *uninstrumented* program the run profiled —
        its disassembly digest is the code-fingerprint key component.
        """
        record = {
            "spec": spec.to_json(),
            "spec_digest": spec.digest(),
            "workload": workload,
            "code_fingerprint": code_fingerprint(program),
            "counters": counters_to_json(run.result.counters),
            "return_values": [run.return_value],
        }
        return self.save_record(
            record,
            cct=run.cct,
            paths=paths_of(run.path_profile),
            edges=run.edges,
        )

    def save_outcome(self, outcome, *, workload: Optional[str] = None) -> str:
        """Persist a sharded (or serial-reference) aggregate.

        The merged CCT/profile of a :class:`~repro.tools.shard_runner.
        ShardOutcome` is byte-equivalent to the serial run's, so stored
        shard aggregates diff cleanly against stored serial runs.
        """
        fingerprint = code_fingerprint(outcome.spec.build_program())
        if workload is None:
            workload = outcome.spec.workload or f"inline:{fingerprint[:12]}"
        spec = outcome.spec.profile
        record = {
            "spec": spec.to_json(),
            "spec_digest": spec.digest(),
            "workload": workload,
            "code_fingerprint": fingerprint,
            "counters": counters_to_json(outcome.counters),
            "return_values": list(outcome.return_values),
        }
        return self.save_record(
            record,
            cct=outcome.cct,
            paths=paths_of(outcome.path_profile),
        )

    # -- refs and loading ----------------------------------------------------

    def resolve(self, ref: str) -> str:
        """A ref -> run id.

        Ref syntax:

        * ``latest`` / ``latest~N`` — the most recent run (N back);
        * ``<workload>:latest~N`` — the same, within one workload;
        * a run-id prefix (>= ``MIN_PREFIX`` hex chars, unambiguous).
        """
        if not ref:
            raise StoreError(self.root, "empty ref")
        workload = None
        selector = ref
        if ":" in ref:
            workload, selector = ref.rsplit(":", 1)
        if selector == "latest" or selector.startswith("latest~"):
            back = 0
            if "~" in selector:
                try:
                    back = int(selector.split("~", 1)[1])
                except ValueError:
                    raise StoreError(self.root, f"malformed ref {ref!r}") from None
            entries = self.entries(workload=workload)
            if back < 0 or back >= len(entries):
                raise StoreError(
                    self.root,
                    f"ref {ref!r} reaches past the {len(entries)} stored run(s)",
                )
            return entries[len(entries) - 1 - back]["run"]
        if workload is not None:
            raise StoreError(self.root, f"malformed ref {ref!r}")
        if len(ref) < MIN_PREFIX or any(c not in "0123456789abcdef" for c in ref):
            raise StoreError(self.root, f"unknown ref {ref!r}")
        matches = sorted(
            {e["run"] for e in self.entries() if e["run"].startswith(ref)}
        )
        if not matches:
            raise StoreError(self.root, f"unknown ref {ref!r}")
        if len(matches) > 1:
            raise StoreError(
                self.root,
                f"ambiguous ref {ref!r} ({len(matches)} matches)",
            )
        return matches[0]

    def load(self, ref: str) -> StoredProfile:
        """Reload a stored profile, verifying every blob's digest."""
        run_id = self.resolve(ref)
        entry = next(e for e in self.entries() if e["run"] == run_id)
        record = self._get_json(run_id, "run record")
        if not isinstance(record, dict) or record.get("format") != RUN_FORMAT:
            raise StoreError(self._object_path(run_id), "not a stored run record")
        try:
            spec = ProfileSpec.from_json(record["spec"])
            counters = counters_from_json(record.get("counters", {}))
            blobs = record.get("blobs") or {}
            paths = edges = None
            if blobs.get("paths"):
                paths = path_profile_from_json(
                    self._get_json(blobs["paths"], "path profile")
                )
            if blobs.get("edges"):
                edges = edge_profile_from_json(
                    self._get_json(blobs["edges"], "edge profile")
                )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, StoreError):
                raise
            raise StoreError(
                self._object_path(run_id),
                f"malformed run record ({type(exc).__name__}: {exc})",
            ) from exc
        cct = None
        if blobs.get("cct"):
            path = self._get_blob(blobs["cct"], "CCT")
            try:
                cct = load_cct(path)
            except CCTLoadError as exc:
                raise StoreError(path, exc.reason) from exc
        return StoredProfile(
            run_id=run_id,
            spec=spec,
            spec_digest=record["spec_digest"],
            workload=record["workload"],
            code_fingerprint=record["code_fingerprint"],
            counters=counters,
            return_values=list(record.get("return_values", [])),
            seq=entry["seq"],
            cct=cct,
            paths=paths,
            edges=edges,
            record=record,
        )

    def baseline_for(
        self, stored: StoredProfile, same_code: bool = False
    ) -> Optional[StoredProfile]:
        """The most recent *earlier* run of the same spec and workload.

        The CI gate's comparison point.  By default code fingerprint is
        deliberately not part of the filter: the gate exists to compare
        across code versions.  ``same_code=True`` adds the fingerprint
        to the filter, selecting the lineage of runs measured against
        byte-identical code — what a PGO cycle wants, where the
        interesting baseline is the *same* program before optimization
        was applied to a copy.
        """
        earlier = [
            entry
            for entry in self.entries(
                workload=stored.workload, spec_digest=stored.spec_digest
            )
            if entry["seq"] < stored.seq
            and (
                not same_code
                or entry["code_fingerprint"] == stored.code_fingerprint
            )
        ]
        if not earlier:
            return None
        return self.load(earlier[-1]["run"])


__all__ = [
    "INDEX_FORMAT",
    "MIN_PREFIX",
    "ProfileStore",
    "RUN_FORMAT",
    "StoreError",
    "StoredProfile",
    "code_fingerprint",
]
