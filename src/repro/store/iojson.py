"""Atomic JSON writes and canonical payload digests.

The PR 4 fault-tolerance work taught the repo one durable idiom: every
on-disk artifact is written to a same-directory temp file and renamed
into place (a reader never sees a torn payload), and every payload
carries or is addressed by a SHA-256 digest of its canonical JSON
encoding.  The shard runner grew that machinery privately; the profile
store is the second subsystem that needs it, so it lives here and both
import it.  ``json.dumps(..., sort_keys=True)`` is the canonical
encoding — kept byte-compatible with the digests PR 4 checkpoints
already carry on disk.
"""

from __future__ import annotations

import hashlib
import json
import os


def canonical_json(payload: dict) -> str:
    """The canonical encoding digests are computed over."""
    return json.dumps(payload, sort_keys=True)


def json_digest(payload: dict) -> str:
    """SHA-256 of a payload's canonical JSON encoding."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def payload_digest(payload: dict) -> str:
    """Digest of a payload minus its own ``digest`` field.

    Self-digesting checkpoints store this under ``digest``; validation
    recomputes it over the rest of the payload.
    """
    return json_digest({k: v for k, v in payload.items() if k != "digest"})


def write_json_atomic(path: str, payload: dict) -> None:
    """Write JSON via tmp-file + rename: readers never see a torn file.

    A crash mid-write leaves any previous version of ``path`` intact;
    the stray temp file (named with the writer's pid) is removed on the
    way out when the rename never happened.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


__all__ = [
    "canonical_json",
    "json_digest",
    "payload_digest",
    "write_json_atomic",
]
