"""Content-addressed profile store and regression detection.

``ProfileStore`` persists CCT dumps, path/edge profiles, and run
metadata keyed by ``(ProfileSpec digest, workload, code fingerprint)``;
``diff_profiles`` diffs two stored runs into typed verdicts.  See
``docs/API.md`` ("Profile store & regression detection").
"""

from repro.store.detect import (
    DetectError,
    DetectorReport,
    DiffReport,
    Finding,
    Thresholds,
    Verdict,
    counter_findings,
    diff_profiles,
    worst,
)
from repro.store.encode import StoredFunctionPaths
from repro.store.iojson import (
    canonical_json,
    json_digest,
    payload_digest,
    write_json_atomic,
)
from repro.store.store import ProfileStore, StoredProfile, StoreError, code_fingerprint

__all__ = [
    "DetectError",
    "DetectorReport",
    "DiffReport",
    "Finding",
    "ProfileStore",
    "StoreError",
    "StoredFunctionPaths",
    "StoredProfile",
    "Thresholds",
    "Verdict",
    "canonical_json",
    "code_fingerprint",
    "counter_findings",
    "diff_profiles",
    "json_digest",
    "payload_digest",
    "worst",
    "write_json_atomic",
]
