"""Regression detection over stored profiles.

Three detectors diff two :class:`~repro.store.store.StoredProfile`
operands of the same spec digest:

* ``counters`` — overhead / instruction-count drift of the whole-run
  hardware-counter bank, one finding per gated event;
* ``contexts`` — per-context counter deltas over a lockstep walk of
  the two CCTs (:func:`repro.cct.merge.walk_lockstep`, the same
  slot/procedure unification the merge algebra uses), so a context
  only one run reached shows up against an implicit zero;
* ``hot_paths`` — churn of the top-k hot paths: which paths entered
  and exited the hot set, and whether the entering paths carry more
  weight than the exiting ones.

Every judgement runs through one threshold model
(:class:`Thresholds`): a pair below the absolute ``min_count`` floor
is noise (``ok``); otherwise the *symmetric* relative change
``(candidate - baseline) / max(baseline, candidate)`` is compared
against ``ratio``.  The symmetric denominator makes the algebra's
mirror law exact at the judgement level: swapping the operands
mirrors every judged pair's verdict (``degradation`` <->
``optimization``, ``ok`` fixed).  Detector and report verdicts are
severity maxima (:func:`worst`) over their pairs, which deliberately
does *not* commute with mirroring: a mixed result — a degradation
here, an optimization there — is a degradation in both diff
directions, so a regression can never net out against an unrelated
improvement.  ``tests/test_store_detect.py`` derives the reverse
report from the forward findings and checks both levels exactly on
generated profiles, alongside ``diff(p, p)`` being all-``ok``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.cct.merge import MergeError, walk_lockstep
from repro.machine.counters import Event
from repro.store.store import StoredProfile


class Verdict(str, Enum):
    OK = "ok"
    DEGRADATION = "degradation"
    OPTIMIZATION = "optimization"


#: ``diff(b, a)`` maps each verdict of ``diff(a, b)`` through this.
MIRROR = {
    Verdict.OK: Verdict.OK,
    Verdict.DEGRADATION: Verdict.OPTIMIZATION,
    Verdict.OPTIMIZATION: Verdict.DEGRADATION,
}

#: Severity order for aggregation: a degradation anywhere dominates.
_SEVERITY = {Verdict.OK: 0, Verdict.OPTIMIZATION: 1, Verdict.DEGRADATION: 2}


def worst(verdicts) -> Verdict:
    """The aggregate verdict: degradation > optimization > ok."""
    result = Verdict.OK
    for verdict in verdicts:
        if _SEVERITY[verdict] > _SEVERITY[result]:
            result = verdict
    return result


class DetectError(ValueError):
    """The operands cannot be diffed (e.g. different spec digests)."""


@dataclass(frozen=True)
class Thresholds:
    """The configurable threshold model shared by every detector.

    ``ratio`` — symmetric relative change above which a pair is a
    verdict; ``min_count`` — absolute floor below which a pair is
    noise; ``top_k`` — hot-set size for the churn detector;
    ``events`` — the counter events the drift detector gates on.
    """

    ratio: float = 0.05
    min_count: int = 32
    top_k: int = 10
    events: Tuple[Event, ...] = (
        Event.INSTRS,
        Event.CYCLES,
        Event.DC_MISS,
        Event.IC_MISS,
        Event.BR_MISPRED,
    )

    def judge(self, baseline: int, candidate: int) -> Verdict:
        """One pair through the model.  Antisymmetric by construction:
        swapping the operands negates the ratio, mirroring the verdict."""
        magnitude = max(baseline, candidate)
        if magnitude < self.min_count:
            return Verdict.OK
        ratio = (candidate - baseline) / magnitude
        if ratio > self.ratio:
            return Verdict.DEGRADATION
        if ratio < -self.ratio:
            return Verdict.OPTIMIZATION
        return Verdict.OK

    def to_json(self) -> dict:
        return {
            "ratio": self.ratio,
            "min_count": self.min_count,
            "top_k": self.top_k,
            "events": [event.name for event in self.events],
        }


@dataclass
class Finding:
    """One judged pair: a counter, a context, or a hot path."""

    detector: str
    subject: str
    baseline: int
    candidate: int
    verdict: Verdict

    @property
    def delta(self) -> int:
        return self.candidate - self.baseline

    def to_json(self) -> dict:
        return {
            "detector": self.detector,
            "subject": self.subject,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "verdict": self.verdict.value,
        }


@dataclass
class DetectorReport:
    """One detector's verdict plus its non-``ok`` findings."""

    name: str
    verdict: Verdict
    #: Pairs examined (contexts walked, events compared, paths ranked).
    checked: int
    findings: List[Finding] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "detector": self.name,
            "verdict": self.verdict.value,
            "checked": self.checked,
            "findings": [finding.to_json() for finding in self.findings],
        }


@dataclass
class DiffReport:
    """The full diff of two stored profiles."""

    baseline: str
    candidate: str
    spec_digest: str
    thresholds: Thresholds
    detectors: List[DetectorReport]

    @property
    def verdict(self) -> Verdict:
        return worst(report.verdict for report in self.detectors)

    @property
    def findings(self) -> List[Finding]:
        return [f for report in self.detectors for f in report.findings]

    def to_json(self) -> dict:
        return {
            "format": "repro-diff-report-v1",
            "baseline": self.baseline,
            "candidate": self.candidate,
            "spec_digest": self.spec_digest,
            "verdict": self.verdict.value,
            "thresholds": self.thresholds.to_json(),
            "detectors": [report.to_json() for report in self.detectors],
        }


# -- the detectors -----------------------------------------------------------


def counter_findings(
    base_counters, cand_counters, t: Thresholds
) -> DetectorReport:
    """Judge two raw counter dicts (``Event -> int``) per threshold.

    The counter half of the diff algebra, exposed for callers that have
    counters but no :class:`StoredProfile` — the PGO loop re-measures a
    program it just transformed, so there is no stored run to wrap.
    """
    findings = []
    checked = 0
    for event in t.events:
        before = base_counters.get(event, 0)
        after = cand_counters.get(event, 0)
        if not before and not after:
            continue
        checked += 1
        verdict = t.judge(before, after)
        if verdict is not Verdict.OK:
            findings.append(Finding("counters", event.name, before, after, verdict))
    return DetectorReport(
        "counters", worst(f.verdict for f in findings), checked, findings
    )


def _counter_drift(
    base: StoredProfile, cand: StoredProfile, t: Thresholds
) -> DetectorReport:
    return counter_findings(base.counters, cand.counters, t)


def _context_label(context) -> str:
    return " -> ".join(proc for _, proc in context) or "<root>"


def _record_cost(record) -> int:
    """The cost metric of one CCT record: PIC0 if present, else calls."""
    if record is None or not record.metrics:
        return 0
    return record.metrics[1] if len(record.metrics) > 1 else record.metrics[0]


def _context_deltas(
    base: StoredProfile, cand: StoredProfile, t: Thresholds
) -> Optional[DetectorReport]:
    if base.cct is None or cand.cct is None:
        return None
    findings = []
    verdicts = []
    checked = 0
    try:
        pairs = list(walk_lockstep(base.cct, cand.cct))
    except MergeError as exc:
        raise DetectError(f"CCTs are not structurally comparable: {exc}") from exc
    for context, left, right in pairs:
        if not context:
            continue  # the root aggregates everything below it
        checked += 1
        before, after = _record_cost(left), _record_cost(right)
        verdict = t.judge(before, after)
        verdicts.append(verdict)
        if verdict is not Verdict.OK:
            findings.append(
                Finding("contexts", _context_label(context), before, after, verdict)
            )
    findings.sort(key=lambda f: (-abs(f.delta), f.subject))
    return DetectorReport("contexts", worst(verdicts), checked, findings)


def _path_weights(
    paths: Dict[str, object], use_metrics: bool
) -> Dict[Tuple[str, int], int]:
    weights: Dict[Tuple[str, int], int] = {}
    for name, fpp in paths.items():
        for path_sum, freq in fpp.counts.items():
            if use_metrics:
                values = fpp.metrics.get(path_sum, ())
                weight = values[1] if len(values) > 1 else 0
            else:
                weight = freq
            if weight > 0:
                weights[(name, path_sum)] = weight
    return weights


def _hot_set(weights: Dict[Tuple[str, int], int], k: int) -> List[Tuple[str, int]]:
    ranked = sorted(weights, key=lambda key: (-weights[key], key))
    return ranked[:k]


def _has_metrics(paths) -> bool:
    return any(
        len(values) > 1
        for fpp in paths.values()
        for values in fpp.metrics.values()
    )


def _hot_path_churn(
    base: StoredProfile, cand: StoredProfile, t: Thresholds
) -> Optional[DetectorReport]:
    if base.paths is None or cand.paths is None:
        return None
    # Rank by the miss metric when both operands carry metrics (the
    # paper's hot-path criterion), by frequency otherwise — the same
    # rule on both sides, so the mirror law holds.
    use_metrics = _has_metrics(base.paths) and _has_metrics(cand.paths)
    before = _path_weights(base.paths, use_metrics)
    after = _path_weights(cand.paths, use_metrics)
    hot_before = _hot_set(before, t.top_k)
    hot_after = _hot_set(after, t.top_k)
    entered = [key for key in hot_after if key not in hot_before]
    exited = [key for key in hot_before if key not in hot_after]

    findings = []
    for name, path_sum in entered:
        key = (name, path_sum)
        findings.append(
            Finding(
                "hot_paths",
                f"{name}#path{path_sum} entered top-{t.top_k}",
                before.get(key, 0),
                after.get(key, 0),
                t.judge(before.get(key, 0), after.get(key, 0)),
            )
        )
    for name, path_sum in exited:
        key = (name, path_sum)
        findings.append(
            Finding(
                "hot_paths",
                f"{name}#path{path_sum} exited top-{t.top_k}",
                before.get(key, 0),
                after.get(key, 0),
                t.judge(before.get(key, 0), after.get(key, 0)),
            )
        )
    # The detector verdict weighs the churn as a whole: entering paths
    # carrying more weight than the exiting ones means the hot set got
    # more expensive.
    weight_exited = sum(before.get(key, 0) for key in exited)
    weight_entered = sum(after.get(key, 0) for key in entered)
    verdict = t.judge(weight_exited, weight_entered)
    checked = len(set(hot_before) | set(hot_after))
    return DetectorReport("hot_paths", verdict, checked, findings)


def diff_profiles(
    base: StoredProfile,
    cand: StoredProfile,
    thresholds: Optional[Thresholds] = None,
) -> DiffReport:
    """Diff two stored profiles of the same spec digest.

    :class:`DetectError` if the digests differ — comparability is what
    content-addressing by spec digest buys, so crossing digests is a
    usage error, not a degraded comparison.
    """
    t = thresholds or Thresholds()
    if base.spec_digest != cand.spec_digest:
        raise DetectError(
            f"profiles are not spec-compatible: spec digests "
            f"{base.spec_digest[:12]} vs {cand.spec_digest[:12]} differ"
        )
    detectors = [_counter_drift(base, cand, t)]
    for optional in (_context_deltas(base, cand, t), _hot_path_churn(base, cand, t)):
        if optional is not None:
            detectors.append(optional)
    return DiffReport(
        baseline=base.run_id,
        candidate=cand.run_id,
        spec_digest=base.spec_digest,
        thresholds=t,
        detectors=detectors,
    )


__all__ = [
    "DetectError",
    "DetectorReport",
    "DiffReport",
    "Finding",
    "MIRROR",
    "Thresholds",
    "Verdict",
    "counter_findings",
    "diff_profiles",
    "worst",
]
