"""JSON encodings for the store's flat profile blobs.

The CCT already has a serialized form (:mod:`repro.cct.serialize`);
this module gives the *flat* artifacts — hardware-counter banks, path
profiles, edge profiles — equally strict round trips.  Decoding
validates eagerly: every count is required to be an integer at load
time, so a corrupt blob surfaces as a :class:`ValueError` (wrapped
into a typed :class:`~repro.store.store.StoreError` by the store)
instead of as a silently wrong profile or a lazy failure deep inside
a later diff.

Path counts reuse the string-keyed sparse-map round trip the shard
checkpoints standardized (:mod:`repro.profiles.merge`); what's added
here is the per-function envelope (potential-path counts — the
numbering-compatibility witness the merge layer also keys on) and the
decoded :class:`StoredFunctionPaths` view the detector layer walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.machine.counters import Event
from repro.profiles.merge import (
    counts_from_json,
    counts_to_json,
    metric_maps_from_json,
    metric_maps_to_json,
)


def _require_int(value, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{what} must be an integer, got {value!r}")
    return value


def counters_to_json(counters: Dict[Event, int]) -> Dict[str, int]:
    """Event-keyed counter bank -> name-keyed JSON object."""
    return {event.name: int(counters[event]) for event in Event if event in counters}


def counters_from_json(raw: Dict[str, int]) -> Dict[Event, int]:
    """Inverse of :func:`counters_to_json`; unknown events rejected."""
    if not isinstance(raw, dict):
        raise ValueError(f"counter bank must be an object, got {raw!r}")
    counters: Dict[Event, int] = {}
    for name, value in raw.items():
        try:
            event = Event[name]
        except KeyError:
            raise ValueError(f"unknown counter event {name!r}") from None
        counters[event] = _require_int(value, f"counter {name}")
    return counters


@dataclass
class StoredFunctionPaths:
    """One function's flat path profile, as reloaded from a blob.

    Carries no :class:`~repro.pathprof.numbering.PathNumbering` — a
    stored profile is diffable without re-instrumenting the program;
    path sums identify paths because both diff operands share the spec
    (and therefore the numbering) by construction.
    """

    num_potential_paths: int
    counts: Dict[int, int]
    metrics: Dict[int, List[int]]

    def total_freq(self) -> int:
        return sum(self.counts.values())


def path_profile_to_json(profile) -> dict:
    """Encode a :class:`~repro.profiles.pathprofile.PathProfile` (or a
    ``{name: StoredFunctionPaths}`` map reloaded earlier)."""
    functions = getattr(profile, "functions", profile)
    return {
        name: {
            "num_potential_paths": fpp.num_potential_paths,
            "counts": counts_to_json({name: fpp.counts})[name],
            "metrics": metric_maps_to_json({name: fpp.metrics})[name],
        }
        for name, fpp in sorted(functions.items())
    }


def path_profile_from_json(raw: dict) -> Dict[str, StoredFunctionPaths]:
    """Inverse of :func:`path_profile_to_json`, validated eagerly."""
    if not isinstance(raw, dict):
        raise ValueError(f"path profile must be an object, got {raw!r}")
    functions: Dict[str, StoredFunctionPaths] = {}
    for name, body in raw.items():
        if not isinstance(body, dict):
            raise ValueError(f"path profile for {name!r} must be an object")
        counts = counts_from_json({name: body.get("counts", {})})[name]
        metrics = metric_maps_from_json({name: body.get("metrics", {})})[name]
        for key, count in counts.items():
            _require_int(count, f"{name} path {key} count")
        for key, values in metrics.items():
            for value in values:
                _require_int(value, f"{name} path {key} metric")
        functions[name] = StoredFunctionPaths(
            _require_int(
                body.get("num_potential_paths", 0), f"{name} potential paths"
            ),
            counts,
            metrics,
        )
    return functions


def edge_profile_to_json(edges) -> dict:
    """Encode per-function edge counters.

    ``edges`` is an :class:`~repro.instrument.edgeinstr.
    EdgeInstrumentation` (live run) or an already-flat
    ``{function: {edge_index: count}}`` map.
    """
    functions = getattr(edges, "functions", None)
    if functions is not None:
        flat = {name: info.table.nonzero() for name, info in functions.items()}
    else:
        flat = edges
    return counts_to_json(flat)


def edge_profile_from_json(raw: dict) -> Dict[str, Dict[int, int]]:
    """Inverse of :func:`edge_profile_to_json`, validated eagerly."""
    if not isinstance(raw, dict):
        raise ValueError(f"edge profile must be an object, got {raw!r}")
    flat = counts_from_json(raw)
    for name, counts in flat.items():
        for key, count in counts.items():
            _require_int(count, f"{name} edge {key} count")
    return flat


def paths_of(profile) -> Optional[Dict[str, StoredFunctionPaths]]:
    """A live :class:`PathProfile` as the stored view the detector walks."""
    if profile is None:
        return None
    return {
        name: StoredFunctionPaths(
            fpp.num_potential_paths,
            dict(fpp.counts),
            {k: list(v) for k, v in fpp.metrics.items()},
        )
        for name, fpp in profile.functions.items()
    }


__all__ = [
    "StoredFunctionPaths",
    "counters_from_json",
    "counters_to_json",
    "edge_profile_from_json",
    "edge_profile_to_json",
    "path_profile_from_json",
    "path_profile_to_json",
    "paths_of",
]
