"""Code layout: assign an address to every instruction.

Addresses only feed the instruction cache and the branch predictor, but
that is exactly why they matter here: instrumentation grows the code,
changes line alignment, and can evict program code from the I-cache —
one of the perturbation channels Table 2 measures.  An IR instruction
occupies ``4 * icost`` bytes (pseudo-instructions expand to several
machine instructions).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.function import Program

CODE_BASE = 0x0040_0000
#: Functions start on a cache-line-friendly boundary.
FUNCTION_ALIGN = 32


class Layout:
    """Address map for one program's code."""

    def __init__(self) -> None:
        #: (function, block) -> per-instruction addresses.
        self.block_addrs: Dict[Tuple[str, str], List[int]] = {}
        self.function_base: Dict[str, int] = {}
        self.code_size = 0

    def address_of(self, function: str, block: str, index: int) -> int:
        return self.block_addrs[(function, block)][index]


def assign_layout(program: Program) -> Layout:
    """Lay out functions sequentially from :data:`CODE_BASE`."""
    layout = Layout()
    address = CODE_BASE
    for function in program.functions.values():
        remainder = address % FUNCTION_ALIGN
        if remainder:
            address += FUNCTION_ALIGN - remainder
        layout.function_base[function.name] = address
        for block in function.blocks:
            addrs: List[int] = []
            for instr in block.instrs:
                addrs.append(address)
                address += 4 * instr.icost
            layout.block_addrs[(function.name, block.name)] = addrs
    layout.code_size = address - CODE_BASE
    return layout
