"""Executable editing: the EEL substitute.

EEL lets a tool splice foreign code into binaries without worrying
about instruction sets or code layout.  This package provides the same
services for our IR: code layout (every instruction gets an address, so
the I-cache and branch predictor see instrumentation), insertion at
function entry / before terminators / on CFG edges (with edge
splitting), and path-register scavenging with spill fallback —
including the spill-induced extra loads and stores the paper calls out
as a perturbation source (§3.2).
"""

from repro.edit.layout import Layout, assign_layout
from repro.edit.editor import EditError, FunctionEditor

__all__ = ["EditError", "FunctionEditor", "Layout", "assign_layout"]
