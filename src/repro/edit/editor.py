"""Function editing: insertion points, edge splitting, register scavenging.

The instrumentation passes compute *plans* against a function's CFG;
this editor turns plans into spliced IR.  Insertion "on an edge"
follows the usual critical-edge discipline:

* the edge's source ends in an unconditional branch -> insert before
  the terminator of the source block;
* the destination has a single predecessor -> insert at the top of the
  destination;
* otherwise the edge is critical -> split it with a fresh block.

Register scavenging mirrors EEL: use a register the function never
touches if one exists; otherwise run in *spilled mode*, where the path
sum lives in a frame slot and every instrumentation sequence brackets
itself with saves/restores of a victim register — the extra loads and
stores the paper identifies as spill perturbation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cfg.graph import CFG, Edge
from repro.ir.function import Block, Function
from repro.ir.instructions import (
    Br,
    FrameLoad,
    FrameStore,
    Instruction,
    Kind,
    is_terminator,
)


class EditError(Exception):
    """Raised when a splice cannot be applied."""


#: Frame slot holding the spilled path sum (spilled mode).
PATH_SLOT = 0
#: Frame slot holding the victim register's program value.
VICTIM_SLOT = 1


class ScavengeResult:
    """Outcome of register scavenging for one function."""

    __slots__ = ("register", "spilled")

    def __init__(self, register: int, spilled: bool):
        self.register = register
        self.spilled = spilled


class FunctionEditor:
    """Accumulates edits against one function, then applies them at once.

    Edits are batched because positions are expressed in terms of the
    *original* blocks; applying eagerly would invalidate later edits.
    The CFG handed to instrumentation must be built before editing.
    """

    def __init__(self, function: Function, cfg: CFG):
        self.function = function
        self.cfg = cfg
        self._entry_prefix: List[Instruction] = []
        #: block -> instructions to place immediately before its terminator.
        self._before_term: Dict[str, List[Instruction]] = {}
        #: block -> instructions to place at its top.
        self._at_top: Dict[str, List[Instruction]] = {}
        #: (src, dst) -> instructions for that edge (maybe via splitting).
        self._on_edge: Dict[Tuple[str, str], List[Instruction]] = {}
        self._applied = False
        self._split_counter = 0

    # -- scavenging ----------------------------------------------------------

    def scavenge_register(self) -> ScavengeResult:
        """Find a register for the path sum, or pick a spill victim."""
        high = self.function.max_register_used()
        if high + 1 < self.function.num_regs:
            return ScavengeResult(high + 1, spilled=False)
        return ScavengeResult(self.function.num_regs - 1, spilled=True)

    def wrap_spilled(
        self, scavenge: ScavengeResult, instrs: List[Instruction]
    ) -> List[Instruction]:
        """In spilled mode, bracket an instrumentation sequence.

        Save the victim's program value, load the memory-resident path
        sum, run the sequence, store the path sum back, restore the
        victim.  In non-spilled mode the sequence is returned unchanged.
        """
        if not scavenge.spilled:
            return instrs
        reg = scavenge.register
        return [
            FrameStore(reg, VICTIM_SLOT),
            FrameLoad(reg, PATH_SLOT),
            *instrs,
            FrameStore(reg, PATH_SLOT),
            FrameLoad(reg, VICTIM_SLOT),
        ]

    # -- edit requests ---------------------------------------------------------

    def insert_at_entry(self, instrs: List[Instruction]) -> None:
        self._entry_prefix.extend(instrs)

    def insert_before_terminator(self, block: str, instrs: List[Instruction]) -> None:
        self._before_term.setdefault(block, []).extend(instrs)

    def insert_at_top(self, block: str, instrs: List[Instruction]) -> None:
        self._at_top.setdefault(block, []).extend(instrs)

    def insert_on_edge(self, edge: Edge, instrs: List[Instruction]) -> None:
        key = (edge.src, edge.dst)
        self._on_edge.setdefault(key, []).extend(instrs)

    # -- application ------------------------------------------------------------

    def apply(self) -> None:
        """Apply all batched edits to the function (once)."""
        if self._applied:
            raise EditError("editor already applied")
        self._applied = True
        function = self.function

        for (src, dst), instrs in self._on_edge.items():
            self._apply_edge(src, dst, instrs)

        for block_name, instrs in self._at_top.items():
            block = function.block(block_name)
            block.instrs[0:0] = instrs
            block.note_edit()

        for block_name, instrs in self._before_term.items():
            block = function.block(block_name)
            if not block.instrs or not is_terminator(block.instrs[-1]):
                raise EditError(f"{block_name!r} lacks a terminator")
            block.instrs[-1:-1] = instrs
            block.note_edit()

        if self._entry_prefix:
            entry = function.entry
            entry.instrs[0:0] = self._entry_prefix
            entry.note_edit()

        function.invalidate_index()
        function.assign_call_sites()

    def _apply_edge(self, src: str, dst: str, instrs: List[Instruction]) -> None:
        function = self.function
        src_block = function.block(src)
        term = src_block.instrs[-1]
        if term.kind == Kind.BR:
            # Sole successor: placing before the terminator is on-edge.
            src_block.instrs[-1:-1] = instrs
            src_block.note_edit()
            return
        if term.kind != Kind.CBR:
            raise EditError(
                f"cannot place edge code after terminator kind {term.kind!r} "
                f"in {src!r}"
            )
        preds = self.cfg.pred[dst]
        # The entry block has an implicit predecessor (function start),
        # so edge code may not be hoisted to its top.
        if len(preds) == 1 and dst != function.entry.name:
            # Merge with any at-top insertion order: edge code runs first.
            pending = self._at_top.setdefault(dst, [])
            pending[0:0] = instrs
            return
        # Critical edge: split with a fresh block.
        split_name = self._fresh_block_name(src, dst)
        split = Block(split_name, [*instrs, Br(dst)])
        function.add_block(split)
        if term.then == dst:
            term.then = split_name
        elif term.els == dst:
            term.els = split_name
        else:  # pragma: no cover - edge came from this terminator
            raise EditError(f"edge {src}->{dst} does not match terminator")
        # The retargeted terminator is an in-place instruction edit the
        # decode caches cannot see through the list object alone.
        src_block.note_edit()

    def _fresh_block_name(self, src: str, dst: str) -> str:
        while True:
            name = f"{src}.{dst}.split{self._split_counter}"
            self._split_counter += 1
            if not any(b.name == name for b in self.function.blocks):
                return name
