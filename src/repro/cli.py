"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``run FILE [ARGS...]`` — execute a program, print result and counters;
* ``profile FILE`` — the unified driver: any :data:`repro.session.MODES`
  configuration through the one ``ProfileSession`` pipeline, with
  ``--log`` appending structured phase events (clone/instrument/decode/
  run/collect, wall-time each) as JSONL;
* ``flow FILE`` — flow-sensitive profile: hot paths with HW metrics
  (``profile --mode flow``);
* ``context FILE`` — context-sensitive profile: the CCT with metrics
  (``profile --mode context``);
* ``combined FILE`` — flow+context; optionally save the CCT
  (``profile --mode combined``);
* ``coverage FILE`` — path coverage with untested paths;
* ``shard-run FILE`` — split an input set across forked workers and
  merge the per-shard profiles into one aggregate; checkpoints, a run
  manifest, and a JSONL run log land in ``--keep``, failed workers are
  retried (``--max-retries``/``--timeout``), and ``--resume MANIFEST``
  finishes an interrupted run;
* ``diff FILE --first/--second`` — path-spectrum diff of two inputs;
  ``diff BASE CAND --store DIR`` — regression diff of two *stored*
  profiles (counter drift, per-context deltas, hot-path churn), human
  or ``--json``, exit 1 on a degradation verdict;
* ``ci [REF] --store DIR`` — the regression gate: compare a stored run
  against the most recent earlier run of the same spec and workload,
  exit 1 on degradation (``profile --store DIR`` is what persists
  runs);
* ``table N`` — regenerate one of the paper's tables over the suite
  (Table 3 optionally through the sharded driver);
* ``bench [--instrumented]`` — engine throughput over the suite,
  writing/validating ``BENCH_vm_speed.json`` or
  ``BENCH_instrumented_speed.json``;
* ``cache [--stats|--clear]`` — inspect or empty the trace tier's
  persistent on-disk code cache.

``FILE`` ending in ``.asm`` is parsed as IR assembly; anything else is
compiled as mini-language source.  Program arguments are integers
passed to ``main``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.machine.counters import Event
from repro.reporting import format_table


def _load_program(path: str):
    from repro.ir.asm import parse_program
    from repro.lang import compile_source

    with open(path) as handle:
        text = handle.read()
    if path.endswith(".asm"):
        return parse_program(text)
    return compile_source(text)


def _int_args(values: List[str]) -> List[int]:
    return [int(v) for v in values]


def cmd_run(args) -> int:
    from repro.machine.vm import Machine

    program = _load_program(args.file)
    machine = Machine(program)
    result = machine.run(*_int_args(args.args))
    print(f"result: {result.return_value}")
    rows = [
        {"Event": event.name, "Count": result[event]}
        for event in Event
        if result[event]
    ]
    print(format_table(rows, title="hardware events"))
    return 0


#: CLI mode names -> :data:`repro.session.MODES` entries.
_PROFILE_MODES = {
    "baseline": "baseline",
    "flow": "flow_hw",
    "flow-freq": "flow_freq",
    "context": "context_hw",
    "combined": "context_flow",
    "edge": "edge",
    "kflow": "kflow",
}


def _make_session(args):
    """One ``ProfileSession`` per command; ``--log`` adds phase events.

    ``--icache-size`` / ``--icache-assoc`` (the optimize verb) shrink
    the modelled I-cache so layout effects are measurable on programs
    the default 16KB cache would swallow whole.
    """
    from repro.session import ProfileSession

    log = None
    if getattr(args, "log", None):
        from repro.tools.runlog import RunLog

        log = RunLog(args.log, command=args.command)
    config = None
    if getattr(args, "icache_size", None) or getattr(args, "icache_assoc", None):
        from dataclasses import replace as _replace

        from repro.machine.config import MachineConfig

        config = MachineConfig()
        if args.icache_size:
            config = _replace(config, icache_size=args.icache_size)
        if args.icache_assoc:
            config = _replace(config, icache_assoc=args.icache_assoc)
    return ProfileSession(config=config, log=log)


def _build_spec(mode, args):
    """A ``ProfileSpec`` from CLI flags (absent flags keep defaults)."""
    from repro.session import ProfileSpec

    pic0 = getattr(args, "pic0", None)
    pic1 = getattr(args, "pic1", None)
    extra = {}
    if mode == "kflow":
        extra["k"] = getattr(args, "k", None) or 1
    return ProfileSpec(
        mode=mode,
        pic0_event=pic0.upper() if isinstance(pic0, str) else Event.INSTRS,
        pic1_event=pic1.upper() if isinstance(pic1, str) else Event.DC_MISS,
        placement=getattr(args, "placement", None) or "spanning_tree",
        engine=getattr(args, "engine", None),
        by_site=not getattr(args, "merge_sites", False),
        read_at_backedges=getattr(args, "backedge_reads", False),
        **extra,
    )


def _report_baseline(run, args) -> int:
    print(f"result: {run.return_value}")
    rows = [
        {"Event": event.name, "Count": run.result[event]}
        for event in Event
        if run.result[event]
    ]
    print(format_table(rows, title="hardware events"))
    return 0


def _report_flow(base, run, args) -> int:
    from repro.profiles.hotpaths import classify_paths

    print(f"result: {run.return_value}  overhead: {run.overhead_vs(base):.2f}x\n")

    report = classify_paths(run.path_profile, args.threshold)
    rows = []
    for classified in sorted(
        report.classified, key=lambda c: -c.entry.misses
    )[: args.limit]:
        entry = classified.entry
        fpp = run.path_profile.functions[entry.function]
        rows.append(
            {
                "Function": entry.function,
                "Path": fpp.decode(entry.path_sum).describe()[:70],
                "Freq": entry.freq,
                "Instrs": entry.instructions,
                "Misses": entry.misses,
                "Class": classified.klass.value,
            }
        )
    print(format_table(rows, title="paths by L1D misses"))
    print(
        f"\n{report.hot.num} hot paths carry "
        f"{100 * report.hot.miss_share(report.total_misses):.1f}% of "
        f"{report.total_misses} misses"
    )
    return 0


def _report_flow_freq(run, args) -> int:
    print(f"result: {run.return_value}\n")
    rows = []
    for name, fpp in run.path_profile.functions.items():
        for path_sum, count in sorted(fpp.counts.items()):
            rows.append(
                {
                    "Function": name,
                    "Path": fpp.decode(path_sum).describe()[:70],
                    "Freq": count,
                }
            )
    rows.sort(key=lambda r: (-r["Freq"], r["Function"]))
    print(format_table(rows[: args.limit], title="path frequencies"))
    return 0


def _report_context(run, args) -> int:
    from repro.cct.stats import cct_statistics
    from repro.render import render_cct_ascii, render_cct_dot

    if getattr(args, "dot", False):
        print(render_cct_dot(run.cct.root, metric=1))
        return 0
    if getattr(args, "tree", False):
        print(render_cct_ascii(run.cct.root, metric=1))
        return 0
    rows = []
    for record in run.cct.records:
        if record is run.cct.root:
            continue
        rows.append(
            {
                "Context": " -> ".join(record.context()[1:]),
                "Calls": record.metrics[0],
                "PIC0": record.metrics[1],
                "PIC1": record.metrics[2],
            }
        )
    rows.sort(key=lambda r: -r["PIC0"])
    print(format_table(rows[: args.limit], title="calling context tree"))
    stats = cct_statistics(run.cct)
    print(
        f"\n{stats.nodes} records, height {stats.height_max}, "
        f"{stats.size_bytes} bytes, max replication {stats.max_replication}"
    )
    return 0


def _report_combined(run, args) -> int:
    from repro.cct.serialize import save_cct
    from repro.cct.stats import cct_statistics

    rows = []
    for record in run.cct.records:
        for fname, table in record.path_tables.items():
            numbering = run.flow.functions[fname].numbering
            for path_sum, count in sorted(table.counts.items()):
                rows.append(
                    {
                        "Context": " -> ".join(record.context()[1:]),
                        "Path": numbering.regenerate(path_sum).describe()[:48],
                        "Freq": count,
                    }
                )
    print(format_table(rows[: args.limit], title="per-context path profile"))
    stats = cct_statistics(run.cct, run.program, run.flow.functions)
    print(
        f"\none-path call sites: {stats.call_sites_one_path} of "
        f"{stats.call_sites_used} used"
    )
    if getattr(args, "save", None):
        save_cct(run.cct, args.save)
        print(f"CCT written to {args.save}")
    return 0


def _report_edges(run, args) -> int:
    print(f"result: {run.return_value}\n")
    rows = []
    for name, info in run.edges.functions.items():
        raw = info.table.nonzero()
        for index in sorted(raw):
            edge = info.cfg.edges[index]
            rows.append(
                {
                    "Function": name,
                    "Edge": f"{edge.src}->{edge.dst}",
                    "Count": raw[index],
                }
            )
    print(format_table(rows[: args.limit], title="edge counters"))
    return 0


def cmd_profile(args) -> int:
    """The unified driver: every per-mode verb funnels through here."""
    from dataclasses import replace

    mode = _PROFILE_MODES[args.mode]
    program = _load_program(args.file)
    session = _make_session(args)
    spec = _build_spec(mode, args)
    run_args = _int_args(args.args)
    store = None
    if getattr(args, "store", None):
        from repro.store import ProfileStore

        store = ProfileStore(args.store)
    workload = getattr(args, "workload", None)
    if mode in ("flow_hw", "kflow"):
        base = session.run(
            replace(spec, mode="baseline", k=None), program, run_args
        )
        run = session.run(
            spec, program, run_args, store=store, workload=workload
        )
        status = _report_flow(base, run, args)
    else:
        run = session.run(spec, program, run_args, store=store, workload=workload)
        report = {
            "baseline": _report_baseline,
            "flow_freq": _report_flow_freq,
            "context_hw": _report_context,
            "context_flow": _report_combined,
            "edge": _report_edges,
        }[mode]
        status = report(run, args)
    if run.stored_as is not None:
        print(f"\nstored as {run.stored_as[:12]} in {args.store}")
    return status


def cmd_flow(args) -> int:
    args.mode = "flow"
    return cmd_profile(args)


def cmd_context(args) -> int:
    args.mode = "context"
    return cmd_profile(args)


def cmd_combined(args) -> int:
    args.mode = "combined"
    return cmd_profile(args)


def cmd_coverage(args) -> int:
    from repro.profiles.spectra import path_coverage, untested_paths
    from repro.tools.pp import PP

    program = _load_program(args.file)
    run = PP().flow_freq(program, _int_args(args.args))
    report = path_coverage(run.path_profile)
    print(format_table(report.rows(), title="path coverage"))
    print(f"\noverall: {100 * report.fraction:.1f}%")
    for name, coverage in report.functions.items():
        if coverage.executed < coverage.potential:
            missing = untested_paths(run.path_profile, name, limit=args.limit)
            for path in missing:
                print(f"  untested: {name}: {path.describe()}")
    return 0


def _store_thresholds(args):
    from repro.store import Thresholds

    return Thresholds(
        ratio=args.ratio, min_count=args.min_count, top_k=args.top_k
    )


def _print_diff_report(report, as_json: bool) -> None:
    if as_json:
        import json

        print(json.dumps(report.to_json(), indent=2))
        return
    print(
        f"baseline {report.baseline[:12]}  candidate {report.candidate[:12]}  "
        f"spec {report.spec_digest[:12]}"
    )
    print(f"verdict: {report.verdict.value}")
    for detector in report.detectors:
        print(
            f"  {detector.name}: {detector.verdict.value} "
            f"({detector.checked} checked, {len(detector.findings)} finding(s))"
        )
    if report.findings:
        rows = [
            {
                "Detector": f.detector,
                "Subject": f.subject[:60],
                "Baseline": f.baseline,
                "Candidate": f.candidate,
                "Delta": f"{f.delta:+d}",
                "Verdict": f.verdict.value,
            }
            for f in report.findings
        ]
        print(format_table(rows, title="findings"))


def _cmd_store_diff(args) -> int:
    """Regression diff of two stored profiles: ``diff BASE CAND --store``."""
    from repro.store import DetectError, ProfileStore, StoreError, Verdict, diff_profiles

    if not args.store:
        print(
            "error: diff between stored refs requires --store DIR", file=sys.stderr
        )
        return 2
    try:
        store = ProfileStore(args.store)
        base = store.load(args.file)
        cand = store.load(args.candidate)
        report = diff_profiles(base, cand, _store_thresholds(args))
    except (StoreError, DetectError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_diff_report(report, args.json)
    return 1 if report.verdict is Verdict.DEGRADATION else 0


def cmd_diff(args) -> int:
    """Spectrum diff of two inputs, or regression diff of two stored refs."""
    if args.candidate is not None:
        return _cmd_store_diff(args)
    from repro.profiles.spectra import spectrum_diff
    from repro.tools.pp import PP

    program = _load_program(args.file)
    pp = PP()
    first = pp.flow_freq(program, _int_args(args.first.split(","))
                         if args.first else ())
    second = pp.flow_freq(program, _int_args(args.second.split(","))
                          if args.second else ())
    diff = spectrum_diff(first.path_profile, second.path_profile)
    if diff.is_empty():
        print("spectra identical: both inputs drive the same paths")
        return 0
    print("functions with differing path spectra:")
    for name in diff.distinguishing_functions():
        fpp_first = first.path_profile.functions[name]
        for path_sum in sorted(diff.only_first.get(name, ())):
            print(f"  {name}: only run A: {fpp_first.decode(path_sum).describe()}")
        fpp_second = second.path_profile.functions[name]
        for path_sum in sorted(diff.only_second.get(name, ())):
            print(f"  {name}: only run B: {fpp_second.decode(path_sum).describe()}")
    return 0


def cmd_ci(args) -> int:
    """The regression gate: a stored run against its stored baseline.

    The baseline is the most recent *earlier* run of the same spec
    digest and workload (code fingerprint deliberately ignored — the
    gate compares across code versions).  No baseline means the gate
    passes trivially; a ``degradation`` verdict is exit code 1.
    """
    from repro.store import DetectError, ProfileStore, StoreError, Verdict, diff_profiles

    if not args.store:
        print("error: ci requires --store DIR", file=sys.stderr)
        return 2
    try:
        store = ProfileStore(args.store)
        cand = store.load(args.ref)
        base = store.baseline_for(cand)
        if base is None:
            print(
                f"ci: {cand.run_id[:12]} has no earlier run of spec "
                f"{cand.spec_digest[:12]} on workload {cand.workload!r}; "
                f"gate passes trivially"
            )
            return 0
        report = diff_profiles(base, cand, _store_thresholds(args))
    except (StoreError, DetectError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_diff_report(report, args.json)
    if report.verdict is Verdict.DEGRADATION:
        if not args.json:
            print("ci: FAIL (degradation)")
        return 1
    if not args.json:
        print(f"ci: OK ({report.verdict.value})")
    return 0


def _optimize_plan(args):
    """An ``OptPlan`` from CLI flags (absent flags keep plan defaults)."""
    from repro.opt import OptPlan

    kwargs = {}
    if getattr(args, "passes", None):
        kwargs["passes"] = tuple(
            name.strip() for name in args.passes.split(",") if name.strip()
        )
    for flag, key in (
        ("min_freq", "min_freq"),
        ("min_calls", "min_calls"),
        ("max_callee_size", "max_callee_size"),
        ("growth_budget", "growth_budget"),
    ):
        value = getattr(args, flag, None)
        if value is not None:
            kwargs[key] = value
    return OptPlan(**kwargs)


def _print_pgo_report(report) -> None:
    """Human-readable PGO cycle summary."""
    from repro.machine.counters import Event

    for result in report.pipeline.passes:
        details = result.details
        if result.name == "inline":
            for entry in details.get("inlined", ()):
                print(
                    f"inlined {entry['callee']} into {entry['caller']} "
                    f"(site {entry['site']}, {entry['calls']} calls, "
                    f"+{entry['code_growth']} code)"
                )
        elif result.name == "superblock":
            for entry in details.get("superblocks", ()):
                print(
                    f"superblock in {entry['function']}: trace "
                    f"{entry['trace']} (freq {entry['freq']}), "
                    f"{entry['jumps_straightened']} jumps straightened, "
                    f"+{entry['code_growth']} code"
                )
        elif result.name == "layout" and result.changed:
            print(f"layout: reordered {len(details.get('reordered', ()))} functions")
        elif result.name == "cleanup" and result.changed:
            print(f"cleanup: {details.get('changes', 0)} changes")

    base = report.baseline_counters
    cand = report.optimized_counters
    judged = {f.subject: f.verdict.value for f in report.counters_report.findings}
    for event in Event:
        before, after = base.get(event, 0), cand.get(event, 0)
        if not before and not after:
            continue
        marker = judged.get(event.name, "")
        print(
            f"  {event.name:12} {before:>12} -> {after:>12}"
            + (f"  [{marker}]" if marker else "")
        )
    cycles_b = base.get(Event.CYCLES, 0)
    cycles_a = cand.get(Event.CYCLES, 0)
    speedup = cycles_b / cycles_a if cycles_a else 0.0
    print(
        f"cycles: {cycles_b} -> {cycles_a} ({speedup:.3f}x), "
        f"instructions: {base.get(Event.INSTRS, 0)} -> "
        f"{cand.get(Event.INSTRS, 0)}"
    )
    match = "ok" if report.architectural_match else "MISMATCH"
    print(f"architectural results: {match}")
    print(f"verdict: {report.verdict.value}")


def cmd_optimize(args) -> int:
    """The closed PGO loop: profile -> optimize -> re-measure -> verify.

    The driving profile is measured live (``--mode``, default
    ``combined``) or decoded from a stored run (``--store DIR --run
    REF``).  Exit codes mirror ``repro diff``: 0 for ok/optimization,
    1 for a degradation verdict (including an architectural mismatch),
    2 for usage or store errors.
    """
    from repro.opt import MeasuredProfileError, OptError
    from repro.session import PGOError, pgo_cycle
    from repro.store import StoreError, Verdict

    program = _load_program(args.file)
    run_args = _int_args(args.args)
    session = _make_session(args)

    try:
        plan = _optimize_plan(args)
    except OptError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    store = None
    if args.store:
        from repro.store import ProfileStore

        store = ProfileStore(args.store)
    if args.run and store is None:
        print("error: --run REF requires --store DIR", file=sys.stderr)
        return 2

    thresholds = _store_thresholds(args)
    try:
        if args.run:
            report = pgo_cycle(
                program,
                args=run_args or None,
                session=session,
                store=store,
                run_ref=args.run,
                plan=plan,
                thresholds=thresholds,
                workload=args.workload,
                save=store is not None,
            )
        else:
            spec = _build_spec(_PROFILE_MODES[args.mode], args)
            if run_args:
                spec = spec.with_inputs([run_args])
            report = pgo_cycle(
                program,
                spec,
                run_args or None,
                session=session,
                store=store,
                plan=plan,
                thresholds=thresholds,
                workload=args.workload,
                save=store is not None,
            )
    except (PGOError, MeasuredProfileError, OptError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report.to_json_str() + "\n")
    if args.json:
        print(report.to_json_str())
    else:
        _print_pgo_report(report)
    return 1 if report.verdict is Verdict.DEGRADATION else 0


_SHARD_MODES = {
    "combined": "context_flow",
    "context": "context_hw",
    "flow": "flow_hw",
    "kflow": "kflow",
}


def _parse_input_sets(raw: str) -> list:
    """``"1,2;3,4;5"`` -> ``[(1, 2), (3, 4), (5,)]`` (``;`` separates runs)."""
    inputs = []
    for chunk in raw.split(";"):
        chunk = chunk.strip()
        inputs.append(
            tuple(int(v) for v in chunk.replace(",", " ").split()) if chunk else ()
        )
    return inputs


def cmd_shard_run(args) -> int:
    from repro.cct.stats import cct_statistics
    from repro.profiles.hotpaths import classify_paths
    from repro.tools.shard_runner import ShardSpec, resume_run, shard_run

    if args.resume:
        outcome = resume_run(
            args.resume, max_retries=args.max_retries
        )
        mode_label = {v: k for k, v in _SHARD_MODES.items()}[outcome.spec.mode]
        print(
            f"resumed {len(outcome.spec.inputs)} inputs over {outcome.shards} "
            f"shards ({mode_label}); results: {outcome.return_values}"
        )
    else:
        if not args.file:
            raise SystemExit("shard-run: FILE required unless --resume is given")
        with open(args.file) as handle:
            text = handle.read()
        inputs = (
            _parse_input_sets(args.inputs)
            if args.inputs is not None
            else [tuple(_int_args(args.args))]
        )
        mode = _SHARD_MODES[args.mode]
        spec_kwargs = dict(
            source=None if args.file.endswith(".asm") else text,
            asm=text if args.file.endswith(".asm") else None,
            inputs=inputs,
            timeout=args.timeout,
            backoff=args.backoff,
        )
        if mode == "kflow":
            # ``k`` lives only on the embedded ProfileSpec; the legacy
            # mode= keyword has no way to carry it.
            from repro.session import ProfileSpec

            spec_kwargs["profile"] = ProfileSpec(
                mode="kflow", k=getattr(args, "k", None) or 1
            )
        else:
            spec_kwargs["mode"] = mode
        spec = ShardSpec(**spec_kwargs)
        outcome = shard_run(
            spec,
            args.shards,
            workdir=args.keep,
            max_retries=args.max_retries,
        )
        print(
            f"{len(inputs)} inputs over {args.shards} shards "
            f"({args.mode}); results: {outcome.return_values}"
        )
    rows = [
        {"Event": event.name, "Count": count}
        for event, count in outcome.counters.items()
        if count
    ]
    print(format_table(rows, title="merged hardware events"))
    if outcome.cct is not None:
        stats = cct_statistics(outcome.cct)
        print(
            f"\nmerged CCT: {stats.nodes} records, height {stats.height_max}, "
            f"{stats.size_bytes} bytes, max replication {stats.max_replication}"
        )
        contexts = [
            {
                "Context": " -> ".join(record.context()[1:]),
                "Calls": record.metrics[0],
                "PIC0": record.metrics[1],
                "PIC1": record.metrics[2],
            }
            for record in outcome.cct.records
            if record is not outcome.cct.root
        ]
        contexts.sort(key=lambda r: (-r["Calls"], r["Context"]))
        print(format_table(contexts[: args.limit], title="hottest contexts"))
    if outcome.path_profile is not None:
        report = classify_paths(outcome.path_profile)
        ranked = sorted(
            report.classified,
            key=lambda c: (-c.entry.misses, -c.entry.freq, c.entry.function),
        )
        rows = [
            {
                "Function": c.entry.function,
                "Path": c.entry.path_sum,
                "Freq": c.entry.freq,
                "Misses": c.entry.misses,
                "Class": c.klass.value,
            }
            for c in ranked[: args.limit]
        ]
        print(
            format_table(
                rows,
                title=f"merged paths ({report.hot.num} hot of {report.total_paths})",
            )
        )
    if outcome.manifest_path:
        print(
            f"shard checkpoints, run log, and manifest kept at "
            f"{outcome.manifest_path}"
        )
    return 0


def cmd_bench(args) -> int:
    """Engine throughput benchmark; writes and validates the JSON gate."""
    import json
    import os
    import pathlib

    from repro.tools.bench_runner import measure_instrumented_speed, measure_vm_speed

    names = args.workloads or None
    if args.instrumented:
        payload = measure_instrumented_speed(args.scale, names)
        default_out = "BENCH_instrumented_speed.json"
        min_default = os.environ.get("REPRO_INSTRUMENTED_SPEED_MIN", "2.0")
        speedup = payload["speedup_warm_flow"]
        rows = [
            {
                "Mode": mode,
                "Simple s": data["simple"]["seconds"],
                "Cold s": data["fast_cold"]["seconds"],
                "Warm s": data["fast_warm"]["seconds"],
                "Warm speedup": data["speedup_warm"],
                "Trace warm s": data["trace_warm"]["seconds"],
                "Trace speedup": data["speedup_trace_warm"],
            }
            for mode, data in payload["modes"].items()
        ]
        title = "instrumented suite throughput (gate: flow warm)"
    else:
        payload = measure_vm_speed(args.scale, names)
        default_out = "BENCH_vm_speed.json"
        min_default = os.environ.get("REPRO_VM_SPEED_MIN", "3.0")
        speedup = payload["speedup_warm"]
        rows = [
            {
                "Mode": "uninstrumented",
                "Simple s": payload["simple"]["seconds"],
                "Cold s": payload["fast_cold"]["seconds"],
                "Warm s": payload["fast_warm"]["seconds"],
                "Warm speedup": payload["speedup_warm"],
                "Trace warm s": payload["trace_warm"]["seconds"],
                "Trace speedup": payload["speedup_trace_warm"],
            }
        ]
        title = "uninstrumented suite throughput"

    minimum = args.min if args.min is not None else float(min_default)
    payload["min_required"] = minimum
    payload["check_only"] = args.check_only
    out = pathlib.Path(args.out or default_out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(format_table(rows, title=f"{title} (scale={args.scale})"))
    print(f"\nwritten to {out}")
    if args.check_only:
        ok, required = speedup > 1.0, ">1.0 (check-only)"
    else:
        ok, required = speedup >= minimum, f">={minimum}"
    if not ok:
        print(f"FAIL: warm speedup {speedup}, required {required}")
        return 1
    print(f"OK: warm speedup {speedup}, required {required}")
    return 0


def cmd_cache(args) -> int:
    """Inspect or clear the persistent trace code cache."""
    from repro.machine.codecache import CodeCache, default_cache_dir

    directory = args.dir or default_cache_dir()
    if directory is None:
        print("code cache disabled (REPRO_CODE_CACHE is off)")
        return 0
    cache = CodeCache(directory)
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached trace(s) from {directory}")
        return 0
    stats = cache.stats()
    rows = [
        {
            "Directory": stats["directory"],
            "Entries": f"{stats['entries']}/{stats['max_entries']}",
            "Bytes": f"{stats['bytes']}/{stats['max_bytes']}",
        }
    ]
    print(format_table(rows, title="trace code cache"))
    return 0


def cmd_table(args) -> int:
    from repro import experiments

    drivers = {
        "1": (experiments.overhead_experiment, "Table 1: overhead"),
        "2": (experiments.perturbation_experiment, "Table 2: perturbation"),
        "3": (experiments.cct_stats_experiment, "Table 3: CCT statistics"),
        "4": (experiments.hot_path_experiment, "Table 4: misses by path"),
        "5": (experiments.hot_procedure_experiment, "Table 5: misses by procedure"),
    }
    driver, title = drivers[args.number]
    names = args.workloads or None
    if args.number == "3" and (args.shards or args.runs > 1):
        rows = driver(
            names, args.scale, shards=max(args.shards, 1), runs=args.runs
        )
        title += f" (sharded x{max(args.shards, 1)}, runs={args.runs})"
    elif args.shards or args.runs > 1:
        raise SystemExit("--shards/--runs only apply to table 3")
    else:
        rows = driver(names, args.scale)
    print(format_table(rows, title=f"{title} (scale={args.scale})"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flow and context sensitive profiling (PLDI'97 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_program_command(name, fn, help_text):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("file", help="mini-language source or .asm file")
        p.add_argument("args", nargs="*", help="integer arguments to main")
        p.add_argument("--limit", type=int, default=25, help="max rows printed")
        p.set_defaults(fn=fn)
        return p

    add_program_command("run", cmd_run, "execute and show hardware events")
    profile = add_program_command(
        "profile", cmd_profile, "unified profiling driver (any mode)"
    )
    profile.add_argument(
        "--mode",
        choices=sorted(_PROFILE_MODES),
        default="flow",
        help="profiling configuration (one ProfileSpec mode)",
    )
    profile.add_argument(
        "--placement", choices=["simple", "spanning_tree"], default="spanning_tree"
    )
    profile.add_argument("--engine", help="execution engine override")
    profile.add_argument(
        "--k",
        type=int,
        default=1,
        help="kflow mode only: paths span up to k loop iterations",
    )
    profile.add_argument("--pic0", default="INSTRS", help="PIC0 event name")
    profile.add_argument("--pic1", default="DC_MISS", help="PIC1 event name")
    profile.add_argument("--threshold", type=float, default=0.01)
    profile.add_argument("--backedge-reads", action="store_true")
    profile.add_argument(
        "--merge-sites",
        action="store_true",
        help="site-insensitive CCT (smaller, less precise; §4.1)",
    )
    profile.add_argument("--tree", action="store_true", help="ASCII tree")
    profile.add_argument("--dot", action="store_true", help="Graphviz DOT")
    profile.add_argument("--save", help="write the CCT to this file")
    profile.add_argument(
        "--log",
        help="append structured JSONL phase events (wall-time per phase) here",
    )
    profile.add_argument(
        "--store",
        help="persist the finished run into this profile-store directory",
    )
    profile.add_argument(
        "--workload",
        help="workload id the stored run is keyed under "
        "(default: derived from the code fingerprint)",
    )
    flow = add_program_command("flow", cmd_flow, "hot paths with HW metrics")
    flow.add_argument("--threshold", type=float, default=0.01)
    flow.add_argument(
        "--placement", choices=["simple", "spanning_tree"], default="spanning_tree"
    )
    context = add_program_command("context", cmd_context, "calling context tree")
    context.add_argument("--backedge-reads", action="store_true")
    context.add_argument(
        "--merge-sites",
        action="store_true",
        help="site-insensitive CCT (smaller, less precise; §4.1)",
    )
    context.add_argument("--tree", action="store_true", help="ASCII tree")
    context.add_argument("--dot", action="store_true", help="Graphviz DOT")
    combined = add_program_command(
        "combined", cmd_combined, "paths per calling context"
    )
    combined.add_argument("--save", help="write the CCT to this file")
    add_program_command("coverage", cmd_coverage, "path coverage report")
    optimize = add_program_command(
        "optimize", cmd_optimize, "closed PGO loop: profile, optimize, re-measure"
    )
    optimize.add_argument(
        "--mode",
        choices=sorted(m for m in _PROFILE_MODES if m != "baseline"),
        default="combined",
        help="live profiling configuration driving the passes",
    )
    optimize.add_argument(
        "--k",
        type=int,
        default=1,
        help="kflow mode only: paths span up to k loop iterations",
    )
    optimize.add_argument("--engine", help="execution engine override")
    optimize.add_argument(
        "--run",
        help="drive the passes from this stored run ref instead of a "
        "live profile (requires --store)",
    )
    optimize.add_argument(
        "--passes",
        help="comma-separated pass list (default: inline,superblock,layout,cleanup)",
    )
    optimize.add_argument(
        "--min-freq",
        type=int,
        default=None,
        help="minimum measured frequency for a superblock trace",
    )
    optimize.add_argument(
        "--min-calls",
        type=int,
        default=None,
        help="minimum measured invocation count for an inlined edge",
    )
    optimize.add_argument(
        "--max-callee-size",
        type=int,
        default=None,
        help="largest callee the inliner will duplicate",
    )
    optimize.add_argument(
        "--growth-budget",
        type=float,
        default=None,
        help="fraction of original size each duplicating pass may add",
    )
    optimize.add_argument(
        "--report", help="write the repro-pgo-report-v1 JSON here"
    )
    optimize.add_argument(
        "--workload",
        help="workload id the verification runs are keyed under",
    )
    optimize.add_argument(
        "--log",
        help="append structured JSONL phase events here",
    )
    optimize.add_argument(
        "--icache-size",
        type=int,
        default=None,
        help="modelled I-cache size in bytes (default 16384); shrink it "
        "to make layout effects measurable on small programs",
    )
    optimize.add_argument(
        "--icache-assoc",
        type=int,
        default=None,
        help="modelled I-cache associativity (default 2)",
    )

    shard = sub.add_parser(
        "shard-run",
        help="split an input set across forked workers, merge the profiles",
    )
    shard.add_argument(
        "file", nargs="?", help="mini-language source or .asm file"
    )
    shard.add_argument("args", nargs="*", help="single input: args to main")
    shard.add_argument("--shards", type=int, default=2, help="worker count")
    shard.add_argument(
        "--inputs",
        help="input set: runs separated by ';', args by ',' (e.g. '1,2;3,4')",
    )
    shard.add_argument(
        "--mode",
        choices=sorted(_SHARD_MODES),
        default="combined",
        help="profiling configuration to run and merge",
    )
    shard.add_argument(
        "--k",
        type=int,
        default=1,
        help="kflow mode only: paths span up to k loop iterations",
    )
    shard.add_argument("--limit", type=int, default=25, help="max rows printed")
    shard.add_argument(
        "--keep",
        help="directory to keep shard checkpoints, manifest, and run log",
    )
    shard.add_argument(
        "--resume",
        metavar="MANIFEST",
        help="finish an interrupted run from its manifest.json "
        "(re-executes only missing/corrupt shards)",
    )
    shard.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="extra attempts per failed/hung/corrupt shard (default: 2)",
    )
    shard.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="seconds before a hung worker is killed and retried",
    )
    shard.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="base retry backoff in seconds (doubles per attempt)",
    )
    shard.set_defaults(fn=cmd_shard_run)

    def add_store_flags(p):
        p.add_argument("--store", help="profile-store directory")
        p.add_argument("--json", action="store_true", help="machine-readable report")
        p.add_argument(
            "--ratio",
            type=float,
            default=0.05,
            help="relative change above which a pair is a verdict",
        )
        p.add_argument(
            "--min-count",
            type=int,
            default=32,
            help="absolute count floor below which a pair is noise",
        )
        p.add_argument(
            "--top-k", type=int, default=10, help="hot-path set size for churn"
        )

    add_store_flags(optimize)

    diff = sub.add_parser(
        "diff",
        help="path-spectrum diff of two inputs, or regression diff of two "
        "stored profile refs (--store)",
    )
    diff.add_argument("file", metavar="file_or_base_ref")
    diff.add_argument(
        "candidate",
        nargs="?",
        default=None,
        metavar="candidate_ref",
        help="second stored ref: diff stored profiles instead of spectra",
    )
    diff.add_argument("--first", default="", help="comma-separated args, run A")
    diff.add_argument("--second", default="", help="comma-separated args, run B")
    add_store_flags(diff)
    diff.set_defaults(fn=cmd_diff)

    ci = sub.add_parser(
        "ci",
        help="regression gate: a stored run vs. the previous run of its "
        "spec+workload (exit 1 on degradation)",
    )
    ci.add_argument(
        "ref",
        nargs="?",
        default="latest",
        help="stored run to gate (default: latest)",
    )
    add_store_flags(ci)
    ci.set_defaults(fn=cmd_ci)

    bench = sub.add_parser(
        "bench", help="engine throughput benchmark (writes the JSON gate)"
    )
    bench.add_argument(
        "--instrumented",
        action="store_true",
        help="measure the instrumented suite (flow/context/combined modes)",
    )
    bench.add_argument("--scale", type=float, default=0.5)
    bench.add_argument("--workloads", nargs="*", help="subset of the suite")
    bench.add_argument(
        "--check-only",
        action="store_true",
        help="relax the speedup gate to >1x (noisy shared runners)",
    )
    bench.add_argument(
        "--min",
        type=float,
        default=None,
        help="required warm speedup (default: env override or 3.0/2.0)",
    )
    bench.add_argument("--out", help="output JSON path (default: gate filename)")
    bench.set_defaults(fn=cmd_bench)

    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent trace code cache"
    )
    cache.add_argument(
        "--dir", help="cache directory (default: resolved REPRO_CODE_CACHE/XDG path)"
    )
    cache.add_argument(
        "--clear", action="store_true", help="remove every cached trace"
    )
    cache.add_argument(
        "--stats",
        action="store_true",
        help="print entry/byte totals and caps (the default action)",
    )
    cache.set_defaults(fn=cmd_cache)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", choices=["1", "2", "3", "4", "5"])
    table.add_argument("--scale", type=float, default=0.5)
    table.add_argument("--workloads", nargs="*", help="subset of the suite")
    table.add_argument(
        "--shards",
        type=int,
        default=0,
        help="table 3 only: aggregate each workload through the sharded driver",
    )
    table.add_argument(
        "--runs",
        type=int,
        default=1,
        help="table 3 only: repetitions per workload in the sharded input set",
    )
    table.set_defaults(fn=cmd_table)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.cct.serialize import CCTLoadError
    from repro.session import ProfileSpecError
    from repro.tools.shard_runner import ShardCheckpointError, ShardRunError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (
        CCTLoadError,
        ProfileSpecError,
        ShardCheckpointError,
        ShardRunError,
    ) as exc:
        # Corrupt dumps, malformed specs, and exhausted shard retries
        # are expected operational conditions: one line naming the
        # offence, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
