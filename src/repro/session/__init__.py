"""The declarative profiling layer: one spec, one pipeline.

:class:`ProfileSpec` is a frozen, JSON-round-trippable description of
a profiling run (mode, PIC events, placement, engine, input set);
:class:`ProfileSession` owns the canonical clone → instrument →
attach-runtime → run → collect pipeline that turns a spec into a
:class:`ProfileRun`, emitting structured per-phase events through
:mod:`repro.tools.runlog`.  Every driver in the repo — the ``PP``
facade, the sharded runner, the benchmark harness, the experiments,
the CLI — builds on this package.
"""

from repro.session.pgo import PGOError, PGOReport, pgo_cycle
from repro.session.session import (
    PHASES,
    Instrumented,
    ProfileRun,
    ProfileSession,
    clone_program,
)
from repro.session.spec import (
    LABELS,
    MODES,
    PLACEMENTS,
    ProfileSpec,
    ProfileSpecError,
)

__all__ = [
    "Instrumented",
    "LABELS",
    "MODES",
    "PGOError",
    "PGOReport",
    "PHASES",
    "PLACEMENTS",
    "ProfileRun",
    "ProfileSession",
    "ProfileSpec",
    "ProfileSpecError",
    "clone_program",
    "pgo_cycle",
]
