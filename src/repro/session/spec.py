"""`ProfileSpec` — the declarative description of one profiling run.

The paper's PP tool is a single pipeline: instrument a program, attach
runtime state, run it, collect the profile.  Every driver in this repo
(the `PP` facade, the sharded runner, the benchmark harness, the table
experiments, the CLI) describes such a run with the same handful of
knobs, so those knobs live here as one frozen, JSON-round-trippable
value.  A spec is pure data: it names *what* to profile, never holds
programs, machines, or runtime tables — :class:`repro.session.session.
ProfileSession` turns a spec into a run.

Validation happens at construction: an unknown mode or placement is a
:class:`ProfileSpecError` the moment the spec is built, not a silent
fallback deep inside a worker process.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional, Sequence, Tuple

from repro.machine.counters import Event

#: The six profiling configurations of Table 1 (plus the qpt-style
#: edge-profiling comparator and the §6.1 frequency-only baseline),
#: and the multi-iteration path mode (``kflow``: paths crossing up to
#: ``k`` loop backedges, after D'Elia & Demetrescu).
MODES = (
    "baseline",
    "flow_hw",
    "flow_freq",
    "context_hw",
    "context_flow",
    "edge",
    "kflow",
)

#: Counter-increment placement strategies ([BL94] vs naive).
PLACEMENTS = ("simple", "spanning_tree")

#: Execution engine tiers (see :mod:`repro.machine`): the reference
#: interpreter, the predecoded block engine, and the superblock trace
#: tier layered above it.  ``ProfileSpec.engine`` is one of these or
#: ``None`` (defer to the Machine default / ``REPRO_ENGINE``).
ENGINES = ("simple", "fast", "trace")

#: Human-facing run labels (``ProfileRun.label``), per mode.
LABELS = {
    "baseline": "base",
    "flow_hw": "flow+hw",
    "flow_freq": "flow",
    "context_hw": "context+hw",
    "context_flow": "context+flow",
    "edge": "edge",
    "kflow": "kflow+hw",
}


class ProfileSpecError(ValueError):
    """A profiling spec is malformed (unknown mode, placement, event)."""


def _coerce_event(value, name: str) -> Event:
    if isinstance(value, Event):
        return value
    try:
        if isinstance(value, str):
            return Event[value]
        return Event(value)
    except (KeyError, ValueError):
        raise ProfileSpecError(
            f"unknown {name} {value!r}; options: {[e.name for e in Event]}"
        ) from None


@dataclass(frozen=True)
class ProfileSpec:
    """Everything that determines one profiling run, as pure data.

    * ``mode`` — one of :data:`MODES`;
    * ``pic0_event``/``pic1_event`` — what the two PIC registers count;
    * ``placement`` — counter placement (``spanning_tree`` or ``simple``);
    * ``engine`` — execution engine override, one of :data:`ENGINES`
      (``None`` defers to the Machine default / ``REPRO_ENGINE``);
    * ``by_site`` — site-sensitive CCT records (§4.1);
    * ``read_at_backedges`` — extra counter reads at loop backedges
      (context mode, §4.2);
    * ``functions`` — restrict instrumentation to these functions
      (``None`` instruments everything);
    * ``inputs`` — the input set: one integer-argument tuple per run
      of ``main``;
    * ``k`` — iteration span for ``kflow`` mode (paths cross up to
      ``k`` loop backedges; defaults to 1 there, must be ``None`` for
      every other mode).
    """

    mode: str = "baseline"
    pic0_event: Event = Event.INSTRS
    pic1_event: Event = Event.DC_MISS
    placement: str = "spanning_tree"
    engine: Optional[str] = None
    by_site: bool = True
    read_at_backedges: bool = False
    functions: Optional[Tuple[str, ...]] = None
    inputs: Tuple[Tuple[int, ...], ...] = ((),)
    k: Optional[int] = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise ProfileSpecError(
                f"unknown mode {self.mode!r}; options: {MODES}"
            )
        if self.placement not in PLACEMENTS:
            raise ProfileSpecError(
                f"unknown placement {self.placement!r}; options: {PLACEMENTS}"
            )
        if self.engine is not None and self.engine not in ENGINES:
            raise ProfileSpecError(
                f"unknown engine {self.engine!r}; options: {ENGINES}"
            )
        object.__setattr__(
            self, "pic0_event", _coerce_event(self.pic0_event, "pic0_event")
        )
        object.__setattr__(
            self, "pic1_event", _coerce_event(self.pic1_event, "pic1_event")
        )
        if self.functions is not None:
            object.__setattr__(self, "functions", tuple(self.functions))
        object.__setattr__(
            self, "inputs", tuple(tuple(args) for args in self.inputs)
        )
        if self.mode == "kflow":
            if self.k is None:
                object.__setattr__(self, "k", 1)
            if not isinstance(self.k, int) or isinstance(self.k, bool):
                raise ProfileSpecError(
                    f"k must be an integer >= 1 for kflow mode, got {self.k!r}"
                )
            if self.k < 1:
                raise ProfileSpecError(
                    f"k must be an integer >= 1 for kflow mode, got {self.k}"
                )
        elif self.k is not None:
            raise ProfileSpecError(
                f"k only applies to kflow mode, not {self.mode!r} (got k={self.k!r})"
            )

    # -- derived structure -----------------------------------------------------

    @property
    def label(self) -> str:
        return LABELS[self.mode]

    @property
    def needs_paths(self) -> bool:
        """Does this mode carry Ball–Larus path instrumentation?"""
        return self.mode in ("flow_hw", "flow_freq", "context_flow", "kflow")

    @property
    def needs_context(self) -> bool:
        """Does this mode carry CCT instrumentation?"""
        return self.mode in ("context_hw", "context_flow")

    @property
    def needs_edges(self) -> bool:
        return self.mode == "edge"

    @property
    def path_mode(self) -> str:
        """What the path probes record: HW metrics or frequency only."""
        return "hw" if self.mode in ("flow_hw", "kflow") else "freq"

    @property
    def per_context(self) -> bool:
        """Are path counters stored in the current CCT record?"""
        return self.mode == "context_flow"

    def with_inputs(self, inputs: Sequence[Sequence[int]]) -> "ProfileSpec":
        """The same configuration over a different input set."""
        return replace(self, inputs=tuple(tuple(args) for args in inputs))

    # -- serialization ---------------------------------------------------------

    def digest(self) -> str:
        """SHA-256 of the canonical JSON encoding of this spec.

        The profile store's compatibility key: two runs are diffable
        iff their spec digests agree, because the digest pins every
        knob that shapes the profile — mode, events, placement,
        instrumentation scope, and the input set.
        """
        import hashlib
        import json

        return hashlib.sha256(
            json.dumps(self.to_json(), sort_keys=True).encode()
        ).hexdigest()

    def to_json(self) -> dict:
        """A JSON-safe description; inverse of :meth:`from_json`.

        ``k`` is emitted only when set (kflow mode), so the digests and
        manifests of the pre-kflow modes are byte-for-byte unchanged.
        """
        raw = {
            "mode": self.mode,
            "pic0_event": self.pic0_event.name,
            "pic1_event": self.pic1_event.name,
            "placement": self.placement,
            "engine": self.engine,
            "by_site": self.by_site,
            "read_at_backedges": self.read_at_backedges,
            "functions": None if self.functions is None else list(self.functions),
            "inputs": [list(args) for args in self.inputs],
        }
        if self.k is not None:
            raw["k"] = self.k
        return raw

    @classmethod
    def from_json(cls, raw: dict) -> "ProfileSpec":
        """Rebuild a spec from :meth:`to_json` (unknown keys ignored)."""
        if not isinstance(raw, dict):
            raise ProfileSpecError(f"profile spec must be an object, got {raw!r}")
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in raw.items() if key in known}
        return cls(**kwargs)


__all__ = ["ENGINES", "LABELS", "MODES", "PLACEMENTS", "ProfileSpec", "ProfileSpecError"]
