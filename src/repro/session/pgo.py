"""The closed PGO loop: profile -> optimize -> re-measure -> verify.

The paper's summary says profiles exist so compilers can act on them;
this module is the acting.  :func:`pgo_cycle` takes a program and
either measures it live or decodes a run persisted in a
:class:`~repro.store.ProfileStore`, drives the
:mod:`repro.opt.pipeline` passes off that measured view, then
*re-measures* both the original and the optimized program on the same
machine and inputs and judges the counter deltas through the store's
verdict algebra (:func:`repro.store.detect.counter_findings`).  The
result is a ``repro-pgo-report-v1`` document that states, in measured
hardware-counter terms, whether the optimization was worth it — and
proves the transformation preserved behaviour by comparing
architectural results.

Both re-measure runs use ``mode="baseline"`` (no instrumentation):
the claim under test is about the *program*, so the probes that
collected the driving profile must not be in the picture.  When a
store is supplied with ``save=True`` the two verification runs are
persisted under the same workload; they differ only in code
fingerprint, which is exactly the lineage
:meth:`~repro.store.ProfileStore.baseline_for` separates with
``same_code=True``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence

from repro.ir.function import Program
from repro.machine.counters import Event
from repro.opt import MeasuredProfile, OptPlan, PipelineResult, run_pipeline
from repro.session.session import ProfileSession, clone_program
from repro.session.spec import ProfileSpec
from repro.store.detect import (
    DetectorReport,
    Thresholds,
    Verdict,
    counter_findings,
)
from repro.store.store import code_fingerprint


class PGOError(ValueError):
    """The cycle cannot run (no profile source, foreign stored run)."""


@dataclass
class PGOReport:
    """Everything one PGO cycle measured, decided, and proved."""

    workload: Optional[str]
    spec: ProfileSpec
    plan: OptPlan
    #: ``"live"`` or the store run id the driving profile came from.
    profile_source: str
    pipeline: PipelineResult
    thresholds: Thresholds
    baseline_counters: Dict[Event, int]
    optimized_counters: Dict[Event, int]
    baseline_return: object
    optimized_return: object
    architectural_match: bool
    counters_report: DetectorReport
    baseline_stored_as: Optional[str] = None
    optimized_stored_as: Optional[str] = None

    @property
    def verdict(self) -> Verdict:
        """Degradation on any behaviour change, else the counter verdict.

        An optimized program that returns a different answer is not a
        slower program — it is a wrong one; no counter win outweighs
        that.
        """
        if not self.architectural_match:
            return Verdict.DEGRADATION
        return self.counters_report.verdict

    def to_json(self) -> dict:
        return {
            "format": "repro-pgo-report-v1",
            "workload": self.workload,
            "spec": self.spec.to_json(),
            "spec_digest": self.spec.digest(),
            "profile_source": self.profile_source,
            "plan": self.plan.to_json(),
            "pipeline": self.pipeline.to_json(),
            "thresholds": self.thresholds.to_json(),
            "architectural_match": self.architectural_match,
            "return_values": {
                "baseline": self.baseline_return,
                "optimized": self.optimized_return,
            },
            "counters": {
                "baseline": {
                    e.name: v for e, v in sorted(self.baseline_counters.items())
                },
                "optimized": {
                    e.name: v
                    for e, v in sorted(self.optimized_counters.items())
                },
            },
            "detectors": [self.counters_report.to_json()],
            "verdict": self.verdict.value,
            "stored": {
                "baseline": self.baseline_stored_as,
                "optimized": self.optimized_stored_as,
            },
        }

    def to_json_str(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def pgo_cycle(
    program: Program,
    spec: Optional[ProfileSpec] = None,
    args: Optional[Sequence[int]] = None,
    *,
    session: Optional[ProfileSession] = None,
    store=None,
    run_ref: Optional[str] = None,
    plan: Optional[OptPlan] = None,
    thresholds: Optional[Thresholds] = None,
    workload: Optional[str] = None,
    save: bool = False,
) -> PGOReport:
    """One full profile -> optimize -> re-measure cycle over ``program``.

    The driving profile comes from one of two places:

    * ``run_ref`` set — resolve and load that run from ``store`` and
      decode it against ``program`` (whose code fingerprint must match
      the stored one: a profile of different code cannot drive
      transformations of this one);
    * otherwise — profile live under ``spec`` (which must carry a
      profile-producing mode; plain ``baseline`` measures nothing the
      optimizer can use).

    ``program`` itself is never mutated — the pipeline runs over a
    clone.  Both verification runs execute uninstrumented
    (``mode="baseline"``) with the same ``args`` on the session's
    machine configuration; with ``save=True`` and a ``store`` they are
    persisted under ``workload``.
    """
    session = session or ProfileSession()
    plan = plan or OptPlan()
    thresholds = thresholds or Thresholds()

    if run_ref is not None:
        if store is None:
            raise PGOError("a stored run reference needs a store")
        stored = store.load(store.resolve(run_ref))
        ours = code_fingerprint(program)
        if stored.code_fingerprint != ours:
            raise PGOError(
                f"stored run {stored.run_id[:12]} was measured against "
                f"code {stored.code_fingerprint[:12]}, but this program "
                f"fingerprints as {ours[:12]} — profiles only drive the "
                f"code they measured"
            )
        profile = MeasuredProfile.from_stored(stored, program)
        spec = stored.spec
        if workload is None:
            workload = stored.workload
        if args is None:
            args = spec.inputs[0] if spec.inputs else ()
    else:
        if spec is None:
            raise PGOError("either a live spec or a stored run reference")
        if spec.mode == "baseline":
            raise PGOError(
                "mode 'baseline' collects no profile to optimize from; "
                "use a flow/context/kflow mode"
            )
        if args is None:
            args = spec.inputs[0] if spec.inputs else ()
        live = session.run(spec, program, args, workload=workload)
        profile = MeasuredProfile.from_run(live, program, by_site=spec.by_site)

    optimized = clone_program(program)
    pipeline = run_pipeline(optimized, profile, plan)

    # Re-measure: both programs, uninstrumented, same machine and args.
    measure_spec = replace(spec, mode="baseline", k=None)
    save_to = store if (save and store is not None) else None
    base_run = session.run(
        measure_spec, program, args, store=save_to, workload=workload
    )
    opt_run = session.run(
        measure_spec, optimized, args, store=save_to, workload=workload
    )

    return PGOReport(
        workload=workload,
        spec=spec,
        plan=plan,
        profile_source=profile.source,
        pipeline=pipeline,
        thresholds=thresholds,
        baseline_counters=dict(base_run.result.counters),
        optimized_counters=dict(opt_run.result.counters),
        baseline_return=base_run.return_value,
        optimized_return=opt_run.return_value,
        architectural_match=base_run.return_value == opt_run.return_value,
        counters_report=counter_findings(
            base_run.result.counters, opt_run.result.counters, thresholds
        ),
        baseline_stored_as=base_run.stored_as,
        optimized_stored_as=opt_run.stored_as,
    )


__all__ = ["PGOError", "PGOReport", "pgo_cycle"]
