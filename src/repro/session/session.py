"""`ProfileSession` — the one pipeline every profiling driver runs.

A session owns the full clone → instrument → attach-runtime → run →
collect pipeline for any :class:`~repro.session.spec.ProfileSpec`.
The `PP` facade, the sharded runner, the benchmark harness, the table
experiments, and the CLI all delegate here, so this module is the
*only* place under ``src/repro`` (outside the instrument package
itself) that calls :func:`~repro.instrument.pathinstr.instrument_paths`
/ :func:`~repro.instrument.cctinstr.instrument_context` /
:func:`~repro.instrument.edgeinstr.instrument_edges` — the
single-pipeline invariant DESIGN.md documents.

Observability comes for free at this layer: every phase of the
pipeline (``clone``, ``instrument``, ``decode``, ``run``, ``collect``)
emits a structured ``phase`` event with its wall time — and, for the
run phase, the simulated instruction count — through the session's
:class:`~repro.tools.runlog.RunLog`.  A session built without a log
path swallows the events, keeping the pipeline unconditional.

The session allocates one :class:`~repro.machine.memory.MemoryMap`
and reuses its region bases for every run, instead of constructing a
fresh map at each call site the way the pre-session drivers did.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.cct.runtime import CCTRuntime
from repro.instrument.cctinstr import ContextInstrumentation, instrument_context
from repro.instrument.edgeinstr import EdgeInstrumentation, instrument_edges
from repro.instrument.kflowinstr import instrument_kpaths
from repro.instrument.pathinstr import FlowInstrumentation, instrument_paths
from repro.instrument.tables import ProfilingRuntime
from repro.ir.function import Program
from repro.machine.config import MachineConfig
from repro.machine.memory import MemoryMap
from repro.machine.vm import Machine, RunResult
from repro.profiles.pathprofile import PathProfile, collect_path_profile
from repro.session.spec import ProfileSpec

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle with repro.tools
    from repro.tools.runlog import RunLog

#: Pipeline phases, in execution order (the ``phase`` field of the
#: JSONL events a session emits).  A run given a ``store=`` sink emits
#: one additional ``store`` phase after ``collect``; a run on the trace
#: engine emits ``trace_compile`` (the machine's trace-tier statistics)
#: — plus ``cache_hit`` when the persistent code cache served at least
#: one compile — between ``run`` and ``collect``.
PHASES = ("clone", "instrument", "decode", "run", "collect")


def clone_program(program: Program) -> Program:
    """Deep-copy a program so instrumentation can edit it freely."""
    return copy.deepcopy(program)


@dataclass
class ProfileRun:
    """Everything one profiling run produced."""

    label: str
    program: Program
    machine: Machine
    result: RunResult
    flow: Optional[FlowInstrumentation] = None
    edges: Optional[EdgeInstrumentation] = None
    context: Optional[ContextInstrumentation] = None
    cct: Optional[CCTRuntime] = None
    path_profile: Optional[PathProfile] = None
    #: Run id in the :class:`~repro.store.ProfileStore` this run was
    #: persisted to, when the session was given a ``store=`` sink.
    stored_as: Optional[str] = None

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def return_value(self):
        return self.result.return_value

    def overhead_vs(self, baseline: "ProfileRun") -> float:
        """Run-time ratio against a baseline run (Table 1's "x base")."""
        return self.cycles / baseline.cycles if baseline.cycles else float("inf")


@dataclass
class Instrumented:
    """An instrumented clone plus everything needed to attach a run.

    ``program`` is shared by every run built from this bundle (so the
    fast engine's per-block compiled-source cache stays warm across
    passes); ``path_runtime`` is the *pristine* post-instrumentation
    profiling runtime.  :meth:`runtimes` materializes the per-run
    state: the pipeline's single run uses the pristine tables
    directly, repeated benchmark passes ask for ``fresh=True`` copies.
    """

    spec: ProfileSpec
    program: Program
    flow: Optional[FlowInstrumentation] = None
    context: Optional[ContextInstrumentation] = None
    edges: Optional[EdgeInstrumentation] = None
    path_runtime: Optional[ProfilingRuntime] = None
    cct_base: int = 0

    def runtimes(
        self, fresh: bool = False
    ) -> Tuple[Optional[ProfilingRuntime], Optional[CCTRuntime]]:
        """The ``(path_runtime, cct_runtime)`` pair for one run.

        ``fresh=True`` deep-copies the pristine profiling tables
        (empty counters, identical geometry and base addresses) so one
        instrumented program can back many independent runs.
        """
        path_runtime = self.path_runtime
        if fresh and path_runtime is not None:
            path_runtime = copy.deepcopy(path_runtime)
        cct = None
        if self.spec.needs_context:
            cct = CCTRuntime(
                self.cct_base,
                collect_hw=self.spec.mode == "context_hw",
                profiling=path_runtime if self.spec.per_context else None,
                by_site=self.spec.by_site,
            )
        return path_runtime, cct


class ProfileSession:
    """Runs :class:`ProfileSpec` values through the canonical pipeline."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        memory: Optional[MemoryMap] = None,
        log: Optional["RunLog"] = None,
    ):
        # Imported here, not at module top: repro.tools.__init__ pulls
        # in the PP facade, which itself imports this package.
        from repro.tools.runlog import RunLog

        self.config = config or MachineConfig()
        #: One memory map per session: every run reuses its region
        #: bases rather than allocating a fresh map per call site.
        self.memory = memory or MemoryMap()
        self.log = log or RunLog(None)

    # -- observability ---------------------------------------------------------

    def _phase(self, name: str, started: float, spec: ProfileSpec, **fields):
        self.log.emit(
            "phase",
            phase=name,
            mode=spec.mode,
            seconds=round(time.perf_counter() - started, 6),
            **fields,
        )

    # -- the pipeline ----------------------------------------------------------

    def instrument(self, spec: ProfileSpec, program: Program) -> Instrumented:
        """Phases 1–2: clone ``program`` and instrument it for ``spec``."""
        started = time.perf_counter()
        target = clone_program(program)
        self._phase("clone", started, spec)

        started = time.perf_counter()
        flow = context = edges = None
        path_runtime = None
        if spec.needs_paths:
            path_runtime = ProfilingRuntime(self.memory.profiling.base)
            if spec.mode == "kflow":
                # k=1 delegates to the flow_hw pass wholesale, which is
                # what makes k=1 kflow profiles byte-identical to it.
                flow = instrument_kpaths(
                    target,
                    k=spec.k,
                    placement=spec.placement,
                    runtime=path_runtime,
                    functions=spec.functions,
                )
            else:
                # Flow first so path commits precede CctExit (see cctinstr).
                flow = instrument_paths(
                    target,
                    mode=spec.path_mode,
                    placement=spec.placement,
                    runtime=path_runtime,
                    functions=spec.functions,
                    per_context=spec.per_context,
                )
        if spec.needs_context:
            context = instrument_context(
                target,
                functions=spec.functions,
                read_at_backedges=spec.read_at_backedges,
            )
        if spec.needs_edges:
            path_runtime = ProfilingRuntime(self.memory.profiling.base)
            edges = instrument_edges(
                target,
                placement=spec.placement,
                runtime=path_runtime,
                functions=spec.functions,
            )
        self._phase("instrument", started, spec)
        return Instrumented(
            spec=spec,
            program=target,
            flow=flow,
            context=context,
            edges=edges,
            path_runtime=path_runtime,
            cct_base=self.memory.cct.base,
        )

    def run(
        self,
        spec: ProfileSpec,
        program: Program,
        args: Optional[Sequence[int]] = None,
        *,
        store=None,
        workload: Optional[str] = None,
    ) -> ProfileRun:
        """The full pipeline: one profiling run of ``program``.

        ``args`` defaults to the spec's first input tuple, so a spec
        describing a single run is self-contained; the sharded runner
        passes each input of the set explicitly.

        ``store`` (a :class:`~repro.store.ProfileStore`) persists the
        finished run — keyed under ``workload``, defaulting to the
        code fingerprint — as a sixth ``store`` phase; the resulting
        run id lands in :attr:`ProfileRun.stored_as`.
        """
        if args is None:
            args = spec.inputs[0] if spec.inputs else ()
        inst = self.instrument(spec, program)

        started = time.perf_counter()
        machine = Machine(
            inst.program,
            copy.deepcopy(self.config),
            pic0_event=spec.pic0_event,
            pic1_event=spec.pic1_event,
            engine=spec.engine,
        )
        machine.path_runtime, machine.cct_runtime = inst.runtimes()
        self._phase("decode", started, spec, engine=machine.engine)

        started = time.perf_counter()
        result = machine.run(*args)
        self._phase(
            "run",
            started,
            spec,
            instructions=result.instructions,
            cycles=result.cycles,
        )
        if machine.engine == "trace":
            self._phase("trace_compile", started, spec, **machine.trace_stats)
            if machine.trace_stats.get("disk_cache_hits", 0) > 0:
                self._phase(
                    "cache_hit",
                    started,
                    spec,
                    disk_cache_hits=machine.trace_stats["disk_cache_hits"],
                )

        started = time.perf_counter()
        profile = None
        if inst.flow is not None:
            profile = collect_path_profile(
                inst.flow,
                cct_runtime=machine.cct_runtime if spec.per_context else None,
            )
        self._phase("collect", started, spec)
        profile_run = ProfileRun(
            spec.label,
            inst.program,
            machine,
            result,
            flow=inst.flow,
            edges=inst.edges,
            context=inst.context,
            cct=machine.cct_runtime,
            path_profile=profile,
        )
        if store is not None:
            from repro.store.store import code_fingerprint

            started = time.perf_counter()
            if workload is None:
                workload = f"inline:{code_fingerprint(program)[:12]}"
            profile_run.stored_as = store.save_run(
                spec, profile_run, workload=workload, program=program
            )
            self._phase(
                "store", started, spec, run_id=profile_run.stored_as, workload=workload
            )
        return profile_run


__all__ = [
    "Instrumented",
    "PHASES",
    "ProfileRun",
    "ProfileSession",
    "clone_program",
]
