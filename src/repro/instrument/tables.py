"""Counter tables and the profiling runtime.

A :class:`CounterTable` is the run-time storage for one function's path
(or edge) counters.  The actual counts live in Python dictionaries, but
every update issues the load/store traffic a real table would at
deterministic simulated addresses inside the profiling memory region —
so big tables fight the program for D-cache lines, which is the
perturbation channel the paper discusses in §3.2.

Array tables store ``slot_words`` 8-byte words per index at
``base + index*slot_words*8``.  Hash tables (used when a function has
too many potential paths to array-index, §2) store a key word plus the
slots per bucket and pay an extra key-compare load per update.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.machine.memory import WORD


class TableKind(Enum):
    ARRAY = "array"
    HASH = "hash"


#: Functions with more potential paths than this get a hash table.
ARRAY_PATH_LIMIT = 4096
#: Bucket count for hash tables (power of two).
HASH_BUCKETS = 1 << 14

_KNUTH = 2654435761


class CounterTable:
    """Counters for one function: frequency plus optional metric slots."""

    __slots__ = (
        "name",
        "table_id",
        "base",
        "capacity",
        "metric_slots",
        "kind",
        "buckets",
        "counts",
        "metrics",
        "out_of_range",
    )

    def __init__(
        self,
        name: str,
        table_id: int,
        base: int,
        capacity: int,
        metric_slots: int,
        kind: TableKind,
        buckets: int = HASH_BUCKETS,
    ):
        if buckets & (buckets - 1):
            raise ValueError("hash bucket count must be a power of two")
        self.name = name
        self.table_id = table_id
        self.base = base
        self.capacity = capacity
        self.metric_slots = metric_slots
        self.kind = kind
        self.buckets = buckets
        self.counts: Dict[int, int] = {}
        self.metrics: Dict[int, List[int]] = {}
        #: Commits whose index fell outside [0, capacity): only possible
        #: when a longjmp interrupts a path mid-flight, leaving a sum
        #: that corresponds to no real path.  A real array would be
        #: corrupted; we count and quarantine instead.
        self.out_of_range = 0

    # -- geometry ------------------------------------------------------------

    @property
    def slot_words(self) -> int:
        return 1 + self.metric_slots

    def size_bytes(self) -> int:
        if self.kind is TableKind.ARRAY:
            return self.capacity * self.slot_words * WORD
        return self.buckets * (1 + self.slot_words) * WORD

    def _slot_addr(self, index: int) -> int:
        if self.kind is TableKind.ARRAY:
            return self.base + index * self.slot_words * WORD
        bucket = ((index * _KNUTH) & 0xFFFFFFFF) & (self.buckets - 1)
        return self.base + bucket * (1 + self.slot_words) * WORD

    # -- updates (with simulated memory traffic) --------------------------------

    def bump(self, machine, index: int) -> None:
        """``count[index] += 1`` with its read-modify-write traffic."""
        if not 0 <= index < self.capacity:
            self.out_of_range += 1
            return
        addr = self._slot_addr(index)
        if self.kind is TableKind.HASH:
            machine.charge(3)  # hash multiply, mask, key compare
            machine.probe_read(addr)  # key compare
            addr += WORD
        machine.probe_read(addr)
        machine.probe_write(addr, self.counts.get(index, 0) + 1)
        self.counts[index] = self.counts.get(index, 0) + 1

    def accumulate(self, machine, index: int, values: Tuple[int, ...]) -> None:
        """Bump frequency and add each metric value (Figure 3's sequence)."""
        if not 0 <= index < self.capacity:
            self.out_of_range += 1
            return
        addr = self._slot_addr(index)
        if self.kind is TableKind.HASH:
            machine.charge(3)
            machine.probe_read(addr)
            addr += WORD
        machine.probe_read(addr)
        machine.probe_write(addr, self.counts.get(index, 0) + 1)
        self.counts[index] = self.counts.get(index, 0) + 1
        slots = self.metrics.get(index)
        if slots is None:
            slots = [0] * self.metric_slots
            self.metrics[index] = slots
        for offset, value in enumerate(values[: self.metric_slots]):
            slot_addr = addr + (1 + offset) * WORD
            machine.probe_read(slot_addr)
            slots[offset] += value
            machine.probe_write(slot_addr, slots[offset])

    # -- results ------------------------------------------------------------------

    def nonzero(self) -> Dict[int, int]:
        return dict(self.counts)

    def metric_totals(self) -> List[int]:
        totals = [0] * self.metric_slots
        for slots in self.metrics.values():
            for offset, value in enumerate(slots):
                totals[offset] += value
        return totals


class ProfilingRuntime:
    """Owns all counter tables and serves the VM's instrumentation ops.

    The sentinel table id ``-1`` means "the current calling context's
    table": the lookup is delegated to the CCT runtime, which is how
    combined flow+context profiling stores per-context path counters in
    call records (§4.3).
    """

    #: Table id used by PathCommit/HwcAccum in combined mode.
    CONTEXT_TABLE = -1

    def __init__(self, profiling_base: int):
        self.tables: List[CounterTable] = []
        self._cursor = profiling_base
        #: Function name -> table spec, for per-context table creation.
        self.specs: Dict[str, Tuple[int, int, TableKind]] = {}

    # -- allocation ---------------------------------------------------------------

    def new_table(
        self,
        name: str,
        capacity: int,
        metric_slots: int = 0,
        kind: Optional[TableKind] = None,
    ) -> CounterTable:
        if kind is None:
            kind = TableKind.ARRAY if capacity <= ARRAY_PATH_LIMIT else TableKind.HASH
        table = CounterTable(
            name, len(self.tables), self._cursor, capacity, metric_slots, kind
        )
        self._cursor += table.size_bytes()
        self.tables.append(table)
        self.specs[name] = (capacity, metric_slots, kind)
        return table

    def table_for(self, machine, frame, table_id: int) -> CounterTable:
        if table_id == self.CONTEXT_TABLE:
            if machine.cct_runtime is None:
                raise RuntimeError(
                    "combined flow+context instrumentation needs a CCT runtime"
                )
            return machine.cct_runtime.path_table(machine, frame.function.name)
        return self.tables[table_id]

    # -- VM callbacks ---------------------------------------------------------------

    def commit(self, machine, frame, instr) -> None:
        index = frame.regs[instr.reg] + instr.end
        self.table_for(machine, frame, instr.table).bump(machine, index)
        if instr.reset_to is not None:
            frame.regs[instr.reg] = instr.reset_to

    def accumulate(self, machine, frame, instr) -> None:
        pic0, pic1 = machine.pic.read()
        index = frame.regs[instr.reg] + instr.end
        self.table_for(machine, frame, instr.table).accumulate(
            machine, index, (pic0, pic1)
        )
        if instr.rezero:
            machine.pic.write_zero()
            machine.pic.read()
        if instr.reset_to is not None:
            frame.regs[instr.reg] = instr.reset_to

    def k_cycle(self, machine, frame, instr) -> None:
        """Backedge probe for k-iteration paths (KHwcCycle).

        The register packs ``path_sum * k + layer``.  Below the last
        layer the backedge merely continues the path (pre-scaled cross
        increment folds in the layer bump); at layer ``k-1`` it runs the
        Figure 3 commit with rezero and restarts at the packed START.
        The operation order mirrors :meth:`accumulate` exactly — the
        fast/trace tiers generate this same sequence inline.
        """
        reg = frame.regs[instr.reg]
        layer = reg % instr.k
        if layer != instr.k - 1:
            frame.regs[instr.reg] = reg + instr.cross[layer]
            return
        pic0, pic1 = machine.pic.read()
        index = (reg - layer) // instr.k + instr.end
        self.table_for(machine, frame, instr.table).accumulate(
            machine, index, (pic0, pic1)
        )
        machine.pic.write_zero()
        machine.pic.read()
        frame.regs[instr.reg] = instr.start

    def k_exit(self, machine, frame, instr) -> None:
        """Exit commit for k-iteration paths (KHwcExit): layer-indexed end value."""
        pic0, pic1 = machine.pic.read()
        reg = frame.regs[instr.reg]
        layer = reg % instr.k
        index = (reg - layer) // instr.k + instr.values[layer]
        self.table_for(machine, frame, instr.table).accumulate(
            machine, index, (pic0, pic1)
        )

    def edge_count(self, machine, instr) -> None:
        self.tables[instr.table].bump(machine, instr.edge)
