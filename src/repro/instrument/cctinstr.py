"""Context-sensitive instrumentation (paper §4.2's insertion points).

Per instrumented procedure:

* *procedure entry*: ``CctEnter`` — find/build the call record;
* *procedure call*: ``CctCall`` immediately before every call
  instruction — point the gCSP at this site's callee slot;
* *procedure exit*: ``CctExit`` immediately before every ``ret`` —
  restore the caller's gCSP;
* optionally, *loop backedges*: ``CctProbe`` — read the counters
  mid-procedure (§4.3's wrap/non-local-return mitigation).

Functions left out of ``functions`` stay uninstrumented, which
exercises the gCSP save/restore property: callees of an uninstrumented
intermediary attach to the nearest instrumented ancestor's record.

Ordering: when combining with flow instrumentation, run the flow pass
first so path commits land before ``CctExit`` (a per-context path
commit must observe this procedure's record as current).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.cfg.analysis import backedges
from repro.cfg.graph import build_cfg
from repro.edit.editor import FunctionEditor
from repro.ir.function import Function, Program
from repro.ir.instructions import CctCall, CctEnter, CctExit, CctProbe, Kind


@dataclass
class ContextInstrumentation:
    program: Program
    instrumented: List[str] = field(default_factory=list)
    read_at_backedges: bool = False
    #: function -> number of call sites (the CctEnter slot counts).
    call_sites: Dict[str, int] = field(default_factory=dict)


def instrument_context(
    program: Program,
    functions: Optional[Iterable[str]] = None,
    read_at_backedges: bool = False,
) -> ContextInstrumentation:
    """Insert CCT hooks into ``program`` in place."""
    result = ContextInstrumentation(program, read_at_backedges=read_at_backedges)
    selected = set(functions) if functions is not None else None
    for function in program.functions.values():
        if selected is not None and function.name not in selected:
            continue
        result.call_sites[function.name] = _instrument_function(
            function, read_at_backedges
        )
        result.instrumented.append(function.name)
    return result


def _instrument_function(function: Function, read_at_backedges: bool) -> int:
    nsites = function.assign_call_sites()

    # gCSP setup immediately before each call instruction.  This is a
    # mid-block insertion, done directly (the editor handles block
    # boundaries; calls never terminate blocks in this IR).
    for block in function.blocks:
        rewritten = []
        for instr in block.instrs:
            if instr.kind in (Kind.CALL, Kind.ICALL):
                rewritten.append(CctCall(instr.site))
            rewritten.append(instr)
        block.instrs = rewritten
        block.note_edit()

    cfg = build_cfg(function)
    editor = FunctionEditor(function, cfg)
    editor.insert_at_entry([CctEnter(function.name, nsites)])
    for block in function.blocks:
        if block.terminator.kind == Kind.RET:
            editor.insert_before_terminator(block.name, [CctExit()])
    if read_at_backedges:
        for edge in backedges(cfg):
            editor.insert_on_edge(edge, [CctProbe()])
    editor.apply()
    return nsites
