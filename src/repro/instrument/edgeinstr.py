"""Edge profiling: the qpt baseline the paper compares against [BL94].

Two placements:

* ``simple`` — every CFG edge carries a counter increment;
* ``spanning_tree`` — only the chords of a maximum-weight spanning tree
  (with a virtual EXIT->ENTRY closing edge) are instrumented;
  :func:`reconstruct_edge_counts` recovers the tree edges' counts after
  the run by flow conservation (Knuth's classic result, which [BL94]
  builds on).

The paper reports intraprocedural path profiling costs roughly twice
this technique; the overhead-components benchmark reproduces that
comparison on our machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cfg.graph import CFG, Edge, build_cfg
from repro.edit.editor import FunctionEditor
from repro.instrument.tables import CounterTable, ProfilingRuntime, TableKind
from repro.ir.function import Function, Program
from repro.ir.instructions import EdgeCount
from repro.pathprof.estimate import estimate_edge_frequencies


@dataclass
class EdgeFunctionInfo:
    function: str
    cfg: CFG
    table: CounterTable
    #: Edge indices that actually carry an increment.
    instrumented: List[int]
    #: Edge indices in the spanning tree (empty for simple placement).
    tree_edges: List[int]
    closing_in_tree: bool


class EdgeInstrumentation:
    def __init__(self, program: Program, runtime: ProfilingRuntime, placement: str):
        self.program = program
        self.runtime = runtime
        self.placement = placement
        self.functions: Dict[str, EdgeFunctionInfo] = {}

    def edge_counts(self, function: str, entries: Optional[int] = None) -> Dict[int, int]:
        """Full per-edge counts; reconstructs tree edges when optimized.

        ``entries`` is how many times the function was invoked, needed
        to seed reconstruction when the closing edge is a tree edge; it
        can be measured by any counter (e.g. the callee's entry edge of
        a caller profile) — tests pass it explicitly.
        """
        info = self.functions[function]
        raw = info.table.nonzero()
        if self.placement == "simple":
            return {e.index: raw.get(e.index, 0) for e in info.cfg.edges}
        if entries is None:
            raise ValueError("optimized edge profiles need the entry count")
        return reconstruct_edge_counts(info.cfg, info.tree_edges, raw, entries)


def instrument_edges(
    program: Program,
    placement: str = "simple",
    runtime: Optional[ProfilingRuntime] = None,
    functions: Optional[Iterable[str]] = None,
) -> EdgeInstrumentation:
    """Instrument ``program`` in place for edge profiling."""
    if placement not in ("simple", "spanning_tree"):
        raise ValueError(f"unknown placement {placement!r}")
    if runtime is None:
        from repro.machine.memory import MemoryMap

        runtime = ProfilingRuntime(MemoryMap().profiling.base)
    result = EdgeInstrumentation(program, runtime, placement)
    selected = set(functions) if functions is not None else None
    for function in program.functions.values():
        if selected is not None and function.name not in selected:
            continue
        result.functions[function.name] = _instrument_function(
            function, placement, runtime
        )
    return result


def _instrument_function(
    function: Function, placement: str, runtime: ProfilingRuntime
) -> EdgeFunctionInfo:
    cfg = build_cfg(function)
    table = runtime.new_table(
        f"edges:{function.name}", len(cfg.edges), metric_slots=0, kind=TableKind.ARRAY
    )
    editor = FunctionEditor(function, cfg)
    if placement == "simple":
        chords = list(cfg.edges)
        tree: List[int] = []
        closing_in_tree = False
    else:
        tree_edges, closing_in_tree = _max_spanning_tree(cfg)
        tree = [e.index for e in tree_edges]
        tree_set = set(tree)
        chords = [e for e in cfg.edges if e.index not in tree_set]
    for edge in chords:
        count = EdgeCount(edge.index, table.table_id)
        if edge.kind == "entry":
            editor.insert_at_entry([count])
        elif edge.dst == cfg.exit:
            editor.insert_before_terminator(edge.src, [count])
        else:
            editor.insert_on_edge(edge, [count])
    editor.apply()
    return EdgeFunctionInfo(
        function.name, cfg, table, [e.index for e in chords], tree, closing_in_tree
    )


def _max_spanning_tree(cfg: CFG) -> Tuple[List[Edge], bool]:
    """Kruskal on the undirected CFG plus the forced closing edge."""
    from repro.pathprof.placement import _UnionFind

    weights = estimate_edge_frequencies(cfg)
    uf = _UnionFind(cfg.vertices)
    closing_in_tree = uf.union(cfg.exit, cfg.entry)
    ordered = sorted(cfg.edges, key=lambda e: (-weights[e.index], e.index))
    tree: List[Edge] = []
    for edge in ordered:
        if uf.union(edge.src, edge.dst):
            tree.append(edge)
    return tree, closing_in_tree


def reconstruct_edge_counts(
    cfg: CFG,
    tree_edges: List[int],
    chord_counts: Dict[int, int],
    entries: int,
) -> Dict[int, int]:
    """Recover tree-edge counts from chord counts by flow conservation.

    Every vertex's inflow equals its outflow once ENTRY is credited
    with ``entries`` incoming executions and EXIT with the same
    outgoing (the virtual closing edge).  The tree edges form no cycle,
    so peeling vertices with a single unknown incident edge solves the
    system completely.
    """
    counts: Dict[int, int] = {}
    unknown: Set[int] = set(tree_edges)
    for edge in cfg.edges:
        if edge.index not in unknown:
            counts[edge.index] = chord_counts.get(edge.index, 0)

    # Net known flow per vertex; ENTRY/EXIT carry the closing edge.
    balance: Dict[str, int] = {v: 0 for v in cfg.vertices}
    balance[cfg.entry] += entries
    balance[cfg.exit] -= entries
    incident: Dict[str, List[Edge]] = {v: [] for v in cfg.vertices}
    for edge in cfg.edges:
        if edge.index in unknown:
            incident[edge.src].append(edge)
            incident[edge.dst].append(edge)
        else:
            balance[edge.dst] += counts[edge.index]
            balance[edge.src] -= counts[edge.index]

    # Peel: a vertex with one unknown incident edge determines it.
    pending = [v for v in cfg.vertices if len(incident[v]) == 1]
    while pending:
        vertex = pending.pop()
        edges = [e for e in incident[vertex] if e.index in unknown]
        if len(edges) != 1:
            continue
        edge = edges[0]
        # inflow(vertex) - outflow(vertex) = 0, so the unknown edge
        # carries whatever balances the vertex.
        if edge.dst == vertex:
            value = -balance[vertex]
        else:
            value = balance[vertex]
        counts[edge.index] = value
        unknown.remove(edge.index)
        balance[edge.dst] += value
        balance[edge.src] -= value
        for endpoint in (edge.src, edge.dst):
            incident[endpoint] = [e for e in incident[endpoint] if e.index in unknown]
            if len(incident[endpoint]) == 1:
                pending.append(endpoint)
    if unknown:
        raise ValueError(f"could not reconstruct edges {sorted(unknown)}")
    return counts
