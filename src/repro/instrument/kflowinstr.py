"""k-iteration flow instrumentation (multi-iteration Ball–Larus paths).

Lowers a :class:`~repro.pathprof.placement.KInstrumentationPlan` onto a
function.  The single scavenged path register packs
``path_sum * k + layer`` where ``layer`` counts backedge crossings since
the last commit:

* function entry: ``[HwcSave, HwcZero]`` then ``r = 0`` (packed
  ``(path 0, layer 0)``) — :class:`~repro.ir.PathReset` is reused as is;
* plan increments: layer-uniform values lower to a plain
  ``r += v * k`` (:class:`~repro.ir.PathAdd`; the scaling preserves the
  packed layer), layer-dependent ones to
  :class:`~repro.ir.KPathAdd` with a pre-scaled per-layer table;
* backedges: :class:`~repro.ir.KHwcCycle` — cross into the next layer
  (``r += raw*k + 1``) or, at layer ``k-1``, the Figure 3 commit
  sequence with rezero and packed restart;
* returning blocks: :class:`~repro.ir.KHwcExit` (layer-dependent end
  value, no rezero) followed by the counter restore.

``k = 1`` delegates wholesale to
:func:`~repro.instrument.pathinstr.instrument_paths` in hw mode: the
layered graph degenerates to the base transform with identical edge
indices, so delegation makes k=1 kflow profiles *byte-identical* to
``flow_hw`` — the anchor of the k=1 reconstruction law.

kflow is hardware-metrics-only (the mode exists to attribute counter
events across iterations; a frequency-only variant would just be the
projection of the hw run).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.cfg.graph import build_cfg
from repro.edit.editor import FunctionEditor
from repro.instrument.pathinstr import (
    MODE_HW,
    FlowInstrumentation,
    FunctionPathInfo,
    instrument_paths,
)
from repro.instrument.tables import ProfilingRuntime
from repro.ir.function import Function, Program
from repro.ir.instructions import (
    HwcRestore,
    HwcSave,
    HwcZero,
    Instruction,
    KHwcCycle,
    KHwcExit,
    KPathAdd,
    PathAdd,
    PathReset,
)
from repro.pathprof.kiter import number_kpaths
from repro.pathprof.placement import plan_kflow


def instrument_kpaths(
    program: Program,
    k: int = 1,
    placement: str = "spanning_tree",
    runtime: Optional[ProfilingRuntime] = None,
    functions: Optional[Iterable[str]] = None,
) -> FlowInstrumentation:
    """Instrument ``program`` in place for k-iteration path profiling.

    ``placement`` only affects the ``k = 1`` delegation; for ``k > 1``
    the per-edge layered scheme is the placement (chord optimization
    over the product graph is future work).
    """
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ValueError(f"k must be an int >= 1, got {k!r}")
    if k == 1:
        return instrument_paths(
            program,
            mode=MODE_HW,
            placement=placement,
            runtime=runtime,
            functions=functions,
        )
    if runtime is None:
        from repro.machine.memory import MemoryMap

        runtime = ProfilingRuntime(MemoryMap().profiling.base)
    result = FlowInstrumentation(program, runtime, MODE_HW)
    selected = set(functions) if functions is not None else None
    for function in program.functions.values():
        if selected is not None and function.name not in selected:
            continue
        result.functions[function.name] = _instrument_function(function, k, runtime)
    return result


def _instrument_function(
    function: Function, k: int, runtime: ProfilingRuntime
) -> FunctionPathInfo:
    cfg = build_cfg(function)
    numbering = number_kpaths(cfg, k)
    plan = plan_kflow(numbering)

    editor = FunctionEditor(function, cfg)
    scavenge = editor.scavenge_register()
    register = scavenge.register

    table = runtime.new_table(function.name, numbering.num_paths, metric_slots=2)
    table_id = table.table_id

    def wrap(instrs: List[Instruction]) -> List[Instruction]:
        return editor.wrap_spilled(scavenge, instrs)

    entry_seq: List[Instruction] = [HwcSave(), HwcZero()]
    entry_seq.extend(wrap([PathReset(register)]))
    editor.insert_at_entry(entry_seq)

    for inc in plan.increments:
        if inc.edge.kind == "entry":
            # The synthetic ENTRY->first edge executes exactly at
            # function entry, after the reset — always at layer 0.
            editor.insert_at_entry(wrap([PathAdd(register, inc.values[0] * k)]))
        elif all(v == inc.values[0] for v in inc.values):
            editor.insert_on_edge(inc.edge, wrap([PathAdd(register, inc.values[0] * k)]))
        else:
            scaled = tuple(v * k for v in inc.values)
            editor.insert_on_edge(inc.edge, wrap([KPathAdd(register, k, scaled)]))

    for bi in plan.backedge_instrs:
        cross = tuple(v * k + 1 for v in bi.cross)
        editor.insert_on_edge(
            bi.edge,
            wrap([KHwcCycle(register, k, cross, bi.end_val, bi.start_val * k, table_id)]),
        )

    for ec in plan.exit_commits:
        seq = wrap([KHwcExit(register, k, tuple(ec.values), table_id)])
        seq.append(HwcRestore())
        editor.insert_before_terminator(ec.block, seq)

    editor.apply()
    return FunctionPathInfo(
        function.name, numbering, plan, table, register, scavenge.spilled
    )
