"""Instrumentation passes and the profiling runtime.

* :mod:`repro.instrument.tables` — counter tables (array or hash, as in
  §2: "directly index an array of counters or be used as a key into a
  hash table") living in the profiling memory region, plus the runtime
  the machine calls back into.
* :mod:`repro.instrument.pathinstr` — flow-sensitive profiling: path
  frequency (Figure 1) or hardware metrics along paths (Figure 3).
* :mod:`repro.instrument.edgeinstr` — the qpt-style edge-profiling
  baseline [BL94], simple or spanning-tree optimized with count
  reconstruction.
* :mod:`repro.instrument.cctinstr` — context-sensitive profiling hooks
  (procedure entry/exit/call-site, §4.2).
"""

from repro.instrument.tables import CounterTable, ProfilingRuntime, TableKind
from repro.instrument.pathinstr import (
    FlowInstrumentation,
    FunctionPathInfo,
    instrument_paths,
)
from repro.instrument.kflowinstr import instrument_kpaths
from repro.instrument.edgeinstr import (
    EdgeInstrumentation,
    instrument_edges,
    reconstruct_edge_counts,
)
from repro.instrument.cctinstr import ContextInstrumentation, instrument_context

__all__ = [
    "ContextInstrumentation",
    "CounterTable",
    "EdgeInstrumentation",
    "FlowInstrumentation",
    "FunctionPathInfo",
    "ProfilingRuntime",
    "TableKind",
    "instrument_context",
    "instrument_edges",
    "instrument_kpaths",
    "instrument_paths",
    "reconstruct_edge_counts",
]
