"""Flow-sensitive instrumentation: path frequency or HW metrics per path.

Lowers an :class:`~repro.pathprof.placement.InstrumentationPlan` onto a
function via the editor:

* function entry: ``[HwcSave, HwcZero]`` (hw mode) then ``r = 0``;
* plan increments: ``r += v`` on the edge (split if critical);
* backedges: ``count[r+END]++ ; r = START`` — in hw mode the combined
  read/accumulate/rezero sequence of Figure 3;
* returning blocks: the commit with the exit edge's value folded in,
  followed in hw mode by the counter restore (the paper's save-on-entry
  / restore-before-exit choice, §3.1).

In spilled mode every sequence that touches the path register is
bracketed with the victim save/restore frame traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.cfg.graph import build_cfg
from repro.edit.editor import FunctionEditor
from repro.instrument.tables import CounterTable, ProfilingRuntime, TableKind
from repro.ir.function import Function, Program
from repro.ir.instructions import (
    HwcAccum,
    HwcRestore,
    HwcSave,
    HwcZero,
    Instruction,
    PathAdd,
    PathCommit,
    PathReset,
)
from repro.pathprof.estimate import estimate_edge_frequencies
from repro.pathprof.numbering import PathNumbering, number_paths
from repro.pathprof.placement import (
    InstrumentationPlan,
    plan_simple,
    plan_spanning_tree,
)

#: Record hardware metrics per path (Flow and HW in Table 1).
MODE_HW = "hw"
#: Record only execution frequency per path.
MODE_FREQ = "freq"


@dataclass
class FunctionPathInfo:
    """Everything needed to interpret one function's path counters."""

    function: str
    numbering: PathNumbering
    plan: InstrumentationPlan
    table: Optional[CounterTable]
    register: int
    spilled: bool

    @property
    def num_paths(self) -> int:
        return self.numbering.num_paths


class FlowInstrumentation:
    """Result of instrumenting a program for flow-sensitive profiling."""

    def __init__(self, program: Program, runtime: ProfilingRuntime, mode: str):
        self.program = program
        self.runtime = runtime
        self.mode = mode
        self.functions: Dict[str, FunctionPathInfo] = {}

    def path_counts(self, function: str) -> Dict[int, int]:
        """Observed path frequencies (path sum -> count)."""
        info = self.functions[function]
        if info.table is None:
            raise ValueError(
                f"{function} uses per-context tables; read them from the CCT"
            )
        return info.table.nonzero()

    def path_metrics(self, function: str) -> Dict[int, List[int]]:
        """Observed per-path metric sums (path sum -> [pic0, pic1])."""
        info = self.functions[function]
        if info.table is None:
            raise ValueError(
                f"{function} uses per-context tables; read them from the CCT"
            )
        return dict(info.table.metrics)


def instrument_paths(
    program: Program,
    mode: str = MODE_HW,
    placement: str = "spanning_tree",
    runtime: Optional[ProfilingRuntime] = None,
    functions: Optional[Iterable[str]] = None,
    per_context: bool = False,
) -> FlowInstrumentation:
    """Instrument ``program`` in place for flow-sensitive profiling.

    ``per_context`` stores counters in the current CCT call record
    instead of a global table (combined flow+context profiling); it
    requires the program to also carry CCT instrumentation and the run
    to attach a CCT runtime.

    Returns the :class:`FlowInstrumentation` whose ``runtime`` must be
    attached to the machine as ``path_runtime`` before running.
    """
    if mode not in (MODE_HW, MODE_FREQ):
        raise ValueError(f"unknown mode {mode!r}")
    if placement not in ("simple", "spanning_tree"):
        raise ValueError(f"unknown placement {placement!r}")
    if runtime is None:
        from repro.machine.memory import MemoryMap

        runtime = ProfilingRuntime(MemoryMap().profiling.base)
    result = FlowInstrumentation(program, runtime, mode)
    selected = set(functions) if functions is not None else None

    metric_slots = 2 if mode == MODE_HW else 0
    for function in program.functions.values():
        if selected is not None and function.name not in selected:
            continue
        info = _instrument_function(
            function, mode, placement, runtime, metric_slots, per_context
        )
        result.functions[function.name] = info
    return result


def _instrument_function(
    function: Function,
    mode: str,
    placement: str,
    runtime: ProfilingRuntime,
    metric_slots: int,
    per_context: bool,
) -> FunctionPathInfo:
    cfg = build_cfg(function)
    numbering = number_paths(cfg)
    if placement == "simple":
        plan = plan_simple(numbering)
    else:
        plan = plan_spanning_tree(numbering, estimate_edge_frequencies(cfg))

    editor = FunctionEditor(function, cfg)
    scavenge = editor.scavenge_register()
    register = scavenge.register

    if per_context:
        table = None
        table_id = ProfilingRuntime.CONTEXT_TABLE
        # Record the spec so the CCT runtime can size per-record tables.
        capacity = numbering.num_paths
        kind = TableKind.ARRAY if capacity <= 4096 else TableKind.HASH
        runtime.specs[function.name] = (capacity, metric_slots, kind)
    else:
        table = runtime.new_table(
            function.name, numbering.num_paths, metric_slots=metric_slots
        )
        table_id = table.table_id

    def wrap(instrs: List[Instruction]) -> List[Instruction]:
        return editor.wrap_spilled(scavenge, instrs)

    entry_seq: List[Instruction] = []
    if mode == MODE_HW:
        entry_seq.append(HwcSave())
        entry_seq.append(HwcZero())
    entry_seq.extend(wrap([PathReset(register)]))
    editor.insert_at_entry(entry_seq)

    for inc in plan.increments:
        if inc.edge.kind == "entry":
            # The synthetic ENTRY->first edge executes exactly at
            # function entry, after the reset.
            editor.insert_at_entry(wrap([PathAdd(register, inc.value)]))
        else:
            editor.insert_on_edge(inc.edge, wrap([PathAdd(register, inc.value)]))

    for bi in plan.backedge_instrs:
        if mode == MODE_HW:
            seq: List[Instruction] = [
                HwcAccum(register, bi.end_val, table_id, rezero=True, reset_to=bi.start_val)
            ]
        else:
            seq = [PathCommit(register, bi.end_val, table_id, reset_to=bi.start_val)]
        editor.insert_on_edge(bi.edge, wrap(seq))

    for ec in plan.exit_commits:
        if mode == MODE_HW:
            seq = wrap([HwcAccum(register, ec.value, table_id, rezero=False)])
            seq.append(HwcRestore())
        else:
            seq = wrap([PathCommit(register, ec.value, table_id)])
        editor.insert_before_terminator(ec.block, seq)

    editor.apply()
    return FunctionPathInfo(
        function.name, numbering, plan, table, register, scavenge.spilled
    )
