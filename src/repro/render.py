"""Renderers: ASCII trees and Graphviz DOT for CFGs and CCTs.

The paper's companion work [JSB97] is about *visualizing* interactions
in program executions; this module provides the minimal equivalents a
user of this library needs: a readable CCT dump for terminals and DOT
exports (CFG with Ball–Larus edge values, CCT with metrics) for
rendering with standard tooling.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cct.records import CalleeList, CallRecord
from repro.cfg.graph import CFG
from repro.pathprof.numbering import PathNumbering


def render_cct_ascii(
    root: CallRecord,
    metric: Optional[int] = 0,
    max_depth: int = 32,
) -> str:
    """An indented tree, one call record per line, backedges annotated."""
    lines: List[str] = []

    def visit(record: CallRecord, prefix: str, is_last: bool, depth: int) -> None:
        connector = "`- " if is_last else "|- "
        label = record.id
        if metric is not None and record.metrics:
            label += f" [{record.metrics[metric]}]"
        lines.append(prefix + connector + label)
        if depth >= max_depth:
            return
        child_prefix = prefix + ("   " if is_last else "|  ")
        children: List[tuple] = []
        for site, slot in enumerate(record.slots):
            if slot is None:
                continue
            if isinstance(slot, CalleeList):
                for child in slot.records():
                    children.append((site, child))
            else:
                children.append((site, slot))
        for position, (site, child) in enumerate(children):
            last = position == len(children) - 1
            if child.parent is not record:
                # A recursion backedge: annotate, do not descend.
                marker = "`- " if last else "|- "
                lines.append(
                    child_prefix + marker + f"{child.id} (recursion ^)"
                )
            else:
                visit(child, child_prefix, last, depth + 1)

    lines.append(root.id)
    children = list(root.children())
    for position, child in enumerate(children):
        visit(child, "", position == len(children) - 1, 1)
    return "\n".join(lines)


def render_cfg_dot(
    cfg: CFG, numbering: Optional[PathNumbering] = None, name: Optional[str] = None
) -> str:
    """Graphviz DOT for a CFG; edges carry Val labels when numbered."""
    title = name or cfg.name
    lines = [f'digraph "{title}" {{', "  node [shape=box fontname=monospace];"]
    for vertex in cfg.vertices:
        shape = ' shape=doublecircle' if vertex in (cfg.entry, cfg.exit) else ""
        lines.append(f'  "{vertex}"[label="{vertex}"{shape}];')
    values: Dict[int, int] = {}
    backedge_ids = set()
    if numbering is not None:
        graph = numbering.graph
        backedge_ids = {e.index for e in graph.backedges}
        for tedge in graph.edges:
            if tedge.role == "real" and tedge.index in numbering.val:
                values[tedge.origin.index] = numbering.val[tedge.index]
    for edge in cfg.edges:
        attributes = []
        if edge.index in values and values[edge.index]:
            attributes.append(f'label="+{values[edge.index]}"')
        if edge.index in backedge_ids:
            attributes.append("style=dashed color=red")
        attribute_text = f" [{' '.join(attributes)}]" if attributes else ""
        lines.append(f'  "{edge.src}" -> "{edge.dst}"{attribute_text};')
    lines.append("}")
    return "\n".join(lines)


def render_cct_dot(root: CallRecord, metric: int = 0) -> str:
    """Graphviz DOT for a CCT; red dashed edges are recursion backedges."""
    lines = ["digraph CCT {", "  node [shape=box fontname=monospace];"]
    index_of: Dict[int, int] = {}
    order: List[CallRecord] = []

    def number(record: CallRecord) -> int:
        key = id(record)
        if key not in index_of:
            index_of[key] = len(order)
            order.append(record)
        return index_of[key]

    stack = [root]
    seen = set()
    while stack:
        record = stack.pop()
        if id(record) in seen:
            continue
        seen.add(id(record))
        number(record)
        for child in record.children():
            stack.append(child)

    for record in order:
        value = record.metrics[metric] if record.metrics else 0
        lines.append(
            f'  n{index_of[id(record)]} [label="{record.id}\\n{value}"];'
        )
    emitted = set()
    for record in order:
        for site, slot in enumerate(record.slots):
            if slot is None:
                continue
            targets = slot.records() if isinstance(slot, CalleeList) else [slot]
            for child in targets:
                key = (id(record), site, id(child))
                if key in emitted:
                    continue
                emitted.add(key)
                style = (
                    " [style=dashed color=red]"
                    if child.parent is not record
                    else f' [label="s{site}"]'
                )
                lines.append(
                    f"  n{index_of[id(record)]} -> n{index_of[id(child)]}{style};"
                )
    lines.append("}")
    return "\n".join(lines)
