"""Hot-path analysis: Table 4 and §6.4 of the paper.

Definitions (§6.4.1):

* a **hot path** incurs at least ``threshold`` (default 1%) of the
  program's total L1 D-cache misses; the threshold is explicitly "a
  parameter to control the number of paths";
* a **cold path** is any other executed path;
* a **dense path** is a hot path whose miss ratio (misses per
  instruction) exceeds the program's average miss ratio — poor
  locality;
* a **sparse path** is a hot path below the average — hot only because
  it executes heavily.

The module also computes §6.4.3's statistic: the basic blocks on hot
paths execute, on average, along how many different paths — the number
that argues statement-level miss reporting cannot isolate behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Set, Tuple

from repro.profiles.pathprofile import PathEntry, PathProfile


class PathClass(Enum):
    DENSE = "dense"
    SPARSE = "sparse"
    COLD = "cold"


@dataclass
class ClassifiedPath:
    entry: PathEntry
    klass: PathClass

    @property
    def is_hot(self) -> bool:
        return self.klass is not PathClass.COLD


@dataclass
class Bucket:
    """One Table 4 cell group: path count, instruction and miss shares."""

    num: int = 0
    instructions: int = 0
    misses: int = 0

    def add(self, entry: PathEntry) -> None:
        self.num += 1
        self.instructions += entry.instructions
        self.misses += entry.misses

    def inst_share(self, total: int) -> float:
        return self.instructions / total if total else 0.0

    def miss_share(self, total: int) -> float:
        return self.misses / total if total else 0.0


@dataclass
class HotPathReport:
    """The Table 4 row for one program."""

    threshold: float
    total_paths: int
    total_instructions: int
    total_misses: int
    hot: Bucket
    dense: Bucket
    sparse: Bucket
    cold: Bucket
    classified: List[ClassifiedPath] = field(repr=False, default_factory=list)

    @property
    def average_miss_ratio(self) -> float:
        if not self.total_instructions:
            return 0.0
        return self.total_misses / self.total_instructions

    def hot_paths(self) -> List[ClassifiedPath]:
        return [c for c in self.classified if c.is_hot]

    def row(self) -> Dict[str, object]:
        ti, tm = self.total_instructions, self.total_misses
        return {
            "All Num": self.total_paths,
            "All Inst": ti,
            "All Miss": tm,
            "Hot Num": self.hot.num,
            "Hot Inst%": round(100 * self.hot.inst_share(ti), 1),
            "Hot Miss%": round(100 * self.hot.miss_share(tm), 1),
            "Dense Num": self.dense.num,
            "Dense Inst%": round(100 * self.dense.inst_share(ti), 1),
            "Dense Miss%": round(100 * self.dense.miss_share(tm), 1),
            "Sparse Num": self.sparse.num,
            "Sparse Inst%": round(100 * self.sparse.inst_share(ti), 1),
            "Sparse Miss%": round(100 * self.sparse.miss_share(tm), 1),
            "Cold Num": self.cold.num,
            "Cold Inst%": round(100 * self.cold.inst_share(ti), 1),
            "Cold Miss%": round(100 * self.cold.miss_share(tm), 1),
        }


def classify_paths(profile: PathProfile, threshold: float = 0.01) -> HotPathReport:
    """Classify every executed path per the paper's definitions."""
    entries = [e for e in profile.entries() if e.freq > 0]
    total_instructions = sum(e.instructions for e in entries)
    total_misses = sum(e.misses for e in entries)
    average_ratio = total_misses / total_instructions if total_instructions else 0.0
    miss_floor = threshold * total_misses

    report = HotPathReport(
        threshold=threshold,
        total_paths=len(entries),
        total_instructions=total_instructions,
        total_misses=total_misses,
        hot=Bucket(),
        dense=Bucket(),
        sparse=Bucket(),
        cold=Bucket(),
    )
    for entry in entries:
        if total_misses > 0 and entry.misses >= miss_floor and entry.misses > 0:
            ratio = entry.misses / entry.instructions if entry.instructions else 0.0
            klass = PathClass.DENSE if ratio > average_ratio else PathClass.SPARSE
            report.hot.add(entry)
            (report.dense if klass is PathClass.DENSE else report.sparse).add(entry)
        else:
            klass = PathClass.COLD
            report.cold.add(entry)
        report.classified.append(ClassifiedPath(entry, klass))
    return report


def threshold_sweep(
    profile: PathProfile, thresholds: Tuple[float, ...] = (0.01, 0.001)
) -> Dict[float, HotPathReport]:
    """Reports at several thresholds (the paper drops go/gcc to 0.1%)."""
    return {t: classify_paths(profile, t) for t in thresholds}


def paths_per_hot_block(
    profile: PathProfile, report: HotPathReport
) -> Tuple[float, Dict[Tuple[str, str], int]]:
    """§6.4.3: how many executed paths run through each hot-path block.

    Returns the average over blocks that lie on at least one hot path,
    plus the per-block counts keyed by (function, block).
    """
    hot_blocks: Set[Tuple[str, str]] = set()
    for classified in report.hot_paths():
        entry = classified.entry
        function_profile = profile.functions[entry.function]
        for block in function_profile.decode(entry.path_sum).blocks:
            hot_blocks.add((entry.function, block))

    per_block: Dict[Tuple[str, str], int] = {key: 0 for key in hot_blocks}
    for name, function_profile in profile.functions.items():
        relevant = {b for (f, b) in hot_blocks if f == name}
        if not relevant:
            continue
        for path_sum, count in function_profile.counts.items():
            if count <= 0:
                continue
            for block in function_profile.decode(path_sum).blocks:
                if block in relevant:
                    per_block[(name, block)] += 1
    if not per_block:
        return 0.0, {}
    average = sum(per_block.values()) / len(per_block)
    return average, per_block
