"""Profile data models and the paper's analyses.

* :mod:`repro.profiles.pathprofile` — collected per-path counts and
  metrics, with decoding back to block sequences.
* :mod:`repro.profiles.hotpaths` — Table 4: hot/cold and dense/sparse
  path classification by L1 D-cache misses, threshold sweeps, and the
  paths-per-block statistic of §6.4.3.
* :mod:`repro.profiles.hotprocs` — Table 5: the same apportioned by
  procedure, with paths-per-procedure.
* :mod:`repro.profiles.perturbation` — Table 2: instrumented vs.
  uninstrumented metric ratios, plus the frequency-based correction the
  paper sketches for predictable metrics.
* :mod:`repro.profiles.merge` — pointwise merging of flat path/edge
  profiles from independent runs or shards.
* :mod:`repro.profiles.oracle` — a tracing ground-truth profiler: path
  frequencies derived from the block trace, independent of the
  instrumentation, used to validate it.
"""

from repro.profiles.pathprofile import (
    FunctionPathProfile,
    PathEntry,
    PathProfile,
    collect_path_profile,
)
from repro.profiles.hotpaths import (
    HotPathReport,
    PathClass,
    classify_paths,
    paths_per_hot_block,
)
from repro.profiles.hotprocs import HotProcReport, ProcEntry, classify_procedures
from repro.profiles.perturbation import (
    PERTURBATION_EVENTS,
    estimate_instrumentation_instructions,
    perturbation_ratios,
)
from repro.profiles.merge import (
    ProfileMergeError,
    merge_counts,
    merge_edge_profiles,
    merge_metric_maps,
    merge_path_profiles,
)
from repro.profiles.oracle import PathOracle
from repro.profiles.sampling import StackSampler
from repro.profiles.spectra import (
    CoverageReport,
    SpectrumDiff,
    path_coverage,
    spectrum_diff,
    untested_paths,
)
from repro.profiles.interproc import StitchedPath, stitch_hot_path

__all__ = [
    "CoverageReport",
    "SpectrumDiff",
    "StackSampler",
    "StitchedPath",
    "path_coverage",
    "spectrum_diff",
    "stitch_hot_path",
    "untested_paths",
    "FunctionPathProfile",
    "HotPathReport",
    "HotProcReport",
    "PERTURBATION_EVENTS",
    "PathClass",
    "PathEntry",
    "PathOracle",
    "PathProfile",
    "ProcEntry",
    "ProfileMergeError",
    "classify_paths",
    "classify_procedures",
    "collect_path_profile",
    "estimate_instrumentation_instructions",
    "merge_counts",
    "merge_edge_profiles",
    "merge_metric_maps",
    "merge_path_profiles",
    "paths_per_hot_block",
    "perturbation_ratios",
]
