"""A tracing ground-truth profiler for validating path instrumentation.

Attached as a machine tracer to an *uninstrumented* program, the oracle
derives Ball–Larus path frequencies directly from the executed block
sequence: a path ends at procedure exit or when a backedge is taken,
and its sum is the Val total along the corresponding transformed-graph
edges (pseudo start/end edges included).  Tests then assert the
instrumented program's counter tables equal the oracle's counts exactly
— the central correctness property of §2.

Non-local exits: frames killed by a longjmp have in-flight paths that
never commit (mirroring the instrumented program, which only commits at
rets and backedges); a resumed frame's interrupted path is *tainted*
and dropped until the next backedge starts a fresh path, because the
block-trace has no edge connecting the suspension point to the resume
point.  Instrumented code in that situation accumulates a sum that may
correspond to no real path; see the CounterTable out-of-range handling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cfg.graph import CFG
from repro.pathprof.numbering import PathNumbering
from repro.pathprof.transform import TEdge


class _Active:
    """Per-activation path state."""

    __slots__ = ("function", "vertex", "path_sum", "tainted")

    def __init__(self, function: str):
        self.function = function
        self.vertex: Optional[str] = None
        self.path_sum = 0
        self.tainted = False


class PathOracle:
    """Machine tracer computing ground-truth path frequencies."""

    def __init__(self, numberings: Dict[str, PathNumbering]):
        self.numberings = numberings
        self.counts: Dict[str, Dict[int, int]] = {
            name: {} for name in numberings
        }
        self.dropped_paths = 0
        self._stack: List[_Active] = []
        # Per function: (src, dst) -> real TEdge, and backedge maps.
        self._real: Dict[str, Dict[Tuple[str, str], TEdge]] = {}
        self._back: Dict[str, Dict[Tuple[str, str], Tuple[TEdge, TEdge]]] = {}
        for name, numbering in numberings.items():
            graph = numbering.graph
            real: Dict[Tuple[str, str], TEdge] = {}
            for tedge in graph.edges:
                if tedge.role == "real":
                    real[(tedge.src, tedge.dst)] = tedge
            back: Dict[Tuple[str, str], Tuple[TEdge, TEdge]] = {}
            for backedge in graph.backedges:
                back[(backedge.src, backedge.dst)] = graph.pseudo_for_backedge[
                    backedge.index
                ]
            self._real[name] = real
            self._back[name] = back

    # -- tracer protocol --------------------------------------------------------

    def on_enter(self, function: str, site: int) -> None:
        self._stack.append(_Active(function))

    def on_exit(self, function: str, value) -> None:
        active = self._stack.pop()
        if active.function not in self.numberings:
            return
        if active.tainted or active.vertex is None:
            self.dropped_paths += 1
            return
        numbering = self.numberings[active.function]
        exit_edge = self._real[active.function].get(
            (active.vertex, numbering.graph.exit)
        )
        if exit_edge is None:
            # Killed by longjmp mid-block: the in-flight path never
            # reaches a commit point.
            self.dropped_paths += 1
            return
        self._record(active, active.path_sum + numbering.val[exit_edge.index])

    def on_block(self, function: str, block: str) -> None:
        if not self._stack:
            return
        active = self._stack[-1]
        if active.function != function or function not in self.numberings:
            return
        numbering = self.numberings[function]
        if active.vertex is None:
            # First block of the activation.  When the CFG has a
            # synthetic ENTRY (first block had predecessors), the
            # ENTRY->first edge carries a Val of its own.
            active.path_sum = 0
            graph_entry = numbering.graph.entry
            if graph_entry != block:
                entry_edge = self._real[function].get((graph_entry, block))
                if entry_edge is not None:
                    active.path_sum = numbering.val[entry_edge.index]
            active.vertex = block
            return
        key = (active.vertex, block)
        back = self._back[function].get(key)
        if back is not None:
            start_edge, end_edge = back
            if not active.tainted:
                self._record(active, active.path_sum + numbering.val[end_edge.index])
            else:
                self.dropped_paths += 1
            active.tainted = False
            active.path_sum = numbering.val[start_edge.index]
            active.vertex = block
            return
        real = self._real[function].get(key)
        if real is None:
            # No such edge: a longjmp resumed this frame mid-function.
            active.tainted = True
            active.vertex = block
            return
        if not active.tainted:
            active.path_sum += numbering.val[real.index]
        active.vertex = block

    # -- internals ------------------------------------------------------------------

    def _record(self, active: _Active, path_sum: int) -> None:
        table = self.counts[active.function]
        table[path_sum] = table.get(path_sum, 0) + 1

    # -- results ---------------------------------------------------------------------

    def function_counts(self, function: str) -> Dict[int, int]:
        return dict(self.counts.get(function, {}))
