"""Perturbation measurement: Table 2 of the paper.

The baseline is the uninstrumented program's free-running counters (the
paper samples the hardware counters of the unmodified binary; our
simulated bank is observable directly).  Each ratio is the instrumented
run's metric over the baseline's.  Ratios near 1.0 mean the
instrumentation barely disturbed that metric; large ratios mean the
instrumentation's own loads/stores/branches drowned the signal —
e.g. store-buffer stalls and FP stalls show wild ratios in the paper
because their absolute counts are tiny.

For *predictable* metrics the paper notes a tool can correct the
measurement by subtracting the instrumentation's known contribution
computed from path frequencies; :func:`estimate_instrumentation_instructions`
implements that correction for the instruction count.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.instrument.pathinstr import FlowInstrumentation
from repro.machine.counters import Event

#: The Table 2 metric columns.
PERTURBATION_EVENTS = (
    Event.CYCLES,
    Event.INSTRS,
    Event.DC_READ_MISS,
    Event.DC_WRITE_MISS,
    Event.IC_MISS,
    Event.BR_MISPRED,
    Event.SB_STALL,
    Event.FP_STALL,
)


def perturbation_ratios(
    instrumented: Dict[Event, int],
    baseline: Dict[Event, int],
    events=PERTURBATION_EVENTS,
) -> Dict[Event, Optional[float]]:
    """Instrumented/baseline ratio per event; None when baseline is 0.

    A zero baseline with nonzero instrumented count is the degenerate
    case behind the paper's wildest entries (e.g. gcc's FP stalls at
    1442x): the program itself barely exercises the unit, so any
    instrumentation activity dominates.
    """
    ratios: Dict[Event, Optional[float]] = {}
    for event in events:
        base = baseline[event]
        ratios[event] = instrumented[event] / base if base else None
    return ratios


def inject_counter_perturbation(
    counters: Dict[Event, int], event: Event, factor: float
) -> Dict[Event, int]:
    """A counter bank with one event's count scaled by ``factor``.

    The inverse experiment to :func:`perturbation_ratios`: instead of
    measuring how instrumentation disturbed the counters, *synthesize*
    a disturbance — ``factor`` > 1 models a regression in that metric,
    ``factor`` < 1 an improvement.  The input bank is not modified.
    Used by the regression-gate tests to prove the store's detectors
    flip from ``ok`` to a verdict when a known perturbation is applied.
    """
    if factor < 0:
        raise ValueError("perturbation factor must be >= 0")
    perturbed = dict(counters)
    if event in perturbed:
        perturbed[event] = int(round(perturbed[event] * factor))
    return perturbed


def estimate_instrumentation_instructions(flow: FlowInstrumentation) -> int:
    """Instructions attributable to path instrumentation, from frequencies.

    For every executed path the statically-known instrumentation along
    it is: the entry sequence (once per invocation, i.e. once per path
    starting at ENTRY), each chord increment the path crosses, and its
    commit.  Multiplying by observed frequencies reconstructs the
    instrumentation's instruction count without a second run — the
    correction §3.2 describes for predictable metrics.

    Frame save/restore traffic in spilled mode and hash-table probe
    overhead are included via the same static costs.
    """
    from repro.ir.instructions import (
        HwcAccum,
        HwcRestore,
        HwcSave,
        HwcZero,
        PathAdd,
        PathCommit,
        PathReset,
    )

    total = 0
    for info in flow.functions.values():
        plan = info.plan
        numbering = info.numbering
        counts = info.table.counts if info.table is not None else {}
        if not counts:
            continue
        entry_cost = PathReset(0).icost
        if flow.mode == "hw":
            entry_cost += HwcSave().icost + HwcZero().icost
        commit_cost = (
            HwcAccum(0, 0, 0).icost + HwcRestore().icost
            if flow.mode == "hw"
            else PathCommit(0, 0, 0).icost
        )
        backedge_cost = (
            HwcAccum(0, 0, 0).icost if flow.mode == "hw" else PathCommit(0, 0, 0).icost
        )
        spill_cost = 4 if info.spilled else 0

        inc_by_edge = {inc.edge.index: inc.value for inc in plan.increments}
        for path_sum, freq in counts.items():
            if freq <= 0:
                continue
            path = numbering.regenerate(path_sum)
            cost = 0
            if path.entry_backedge is None:
                cost += entry_cost + spill_cost
            for tedge in path.tedges:
                if (
                    tedge.role == "real"
                    and tedge.dst != numbering.graph.exit
                    and tedge.origin.index in inc_by_edge
                ):
                    cost += PathAdd(0, 0).icost + spill_cost
            if path.exit_backedge is None:
                cost += commit_cost + spill_cost
            else:
                cost += backedge_cost + spill_cost
            total += cost * freq
    return total


def corrected_instruction_count(
    instrumented_instructions: int, flow: FlowInstrumentation
) -> int:
    """Instruction count with the instrumentation's share subtracted."""
    return instrumented_instructions - estimate_instrumentation_instructions(flow)
