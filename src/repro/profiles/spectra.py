"""Path spectra: coverage and cross-run comparison.

The paper motivates profiles as "the basis for program coverage testing
and other software engineering tasks [WHH80, RBDL97]".  Its citation
[RBDL97] (Reps, Ball, Das, Larus) uses *path spectra* — the set of
executed paths per procedure — to find input-dependent behaviour by
diffing two runs' spectra.  This module provides both:

* :func:`path_coverage` — executed vs. potential paths per function,
  with regeneration of the untested paths (so a test harness can see
  exactly which block sequences were never driven);
* :func:`spectrum_diff` — the [RBDL97] comparison: paths exercised in
  one run but not the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.profiles.pathprofile import PathProfile
from repro.pathprof.numbering import ReconstructedPath


@dataclass
class FunctionCoverage:
    function: str
    executed: int
    potential: int

    @property
    def fraction(self) -> float:
        return self.executed / self.potential if self.potential else 0.0


@dataclass
class CoverageReport:
    functions: Dict[str, FunctionCoverage] = field(default_factory=dict)

    @property
    def total_executed(self) -> int:
        return sum(c.executed for c in self.functions.values())

    @property
    def total_potential(self) -> int:
        return sum(c.potential for c in self.functions.values())

    @property
    def fraction(self) -> float:
        total = self.total_potential
        return self.total_executed / total if total else 0.0

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "Function": c.function,
                "Executed": c.executed,
                "Potential": c.potential,
                "Coverage %": round(100 * c.fraction, 1),
            }
            for c in sorted(self.functions.values(), key=lambda c: c.fraction)
        ]


def path_coverage(profile: PathProfile) -> CoverageReport:
    """Executed/potential path counts per function."""
    report = CoverageReport()
    for name, function_profile in profile.functions.items():
        executed = sum(1 for c in function_profile.counts.values() if c > 0)
        report.functions[name] = FunctionCoverage(
            name, executed, function_profile.num_potential_paths
        )
    return report


def untested_paths(
    profile: PathProfile, function: str, limit: int = 20
) -> List[ReconstructedPath]:
    """Regenerate up to ``limit`` paths the run never exercised.

    Regeneration makes coverage *actionable*: each untested path is a
    concrete block sequence a test input would have to drive.
    """
    function_profile = profile.functions[function]
    executed: Set[int] = {
        s for s, c in function_profile.counts.items() if c > 0
    }
    missing: List[ReconstructedPath] = []
    for path_sum in range(function_profile.num_potential_paths):
        if len(missing) >= limit:
            break
        if path_sum not in executed:
            missing.append(function_profile.decode(path_sum))
    return missing


@dataclass
class SpectrumDiff:
    """Paths distinguishing two runs of the same program ([RBDL97])."""

    #: function -> path sums executed only in the first run.
    only_first: Dict[str, Set[int]] = field(default_factory=dict)
    #: function -> path sums executed only in the second run.
    only_second: Dict[str, Set[int]] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not any(self.only_first.values()) and not any(
            self.only_second.values()
        )

    def distinguishing_functions(self) -> List[str]:
        names = {
            n for n, s in self.only_first.items() if s
        } | {n for n, s in self.only_second.items() if s}
        return sorted(names)


def spectrum_diff(first: PathProfile, second: PathProfile) -> SpectrumDiff:
    """Compare two runs' path spectra.

    Both profiles must come from (copies of) the same program, so path
    sums are comparable.  Differing spectra localize input-dependent
    behaviour to specific functions and paths — the [RBDL97] technique
    for hunting, e.g., date-dependent code.
    """
    diff = SpectrumDiff()
    names = set(first.functions) | set(second.functions)
    for name in names:
        first_set = {
            s
            for s, c in first.functions[name].counts.items()
            if c > 0
        } if name in first.functions else set()
        second_set = {
            s
            for s, c in second.functions[name].counts.items()
            if c > 0
        } if name in second.functions else set()
        diff.only_first[name] = first_set - second_set
        diff.only_second[name] = second_set - first_set
    return diff
