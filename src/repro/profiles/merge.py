"""Merging flat (context-insensitive) profiles across runs.

Counterpart of :mod:`repro.cct.merge` for the flow-sensitive side:
path profiles and edge profiles from independent runs of the same
program sum pointwise.  Path sums are only comparable between runs of
the *same* instrumented program — the numbering assigns them — so the
merge refuses operands whose potential-path counts disagree.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.profiles.pathprofile import FunctionPathProfile, PathProfile


class ProfileMergeError(ValueError):
    """The operands come from differently-numbered programs."""


def _clone_function_profile(fpp: FunctionPathProfile) -> FunctionPathProfile:
    clone = FunctionPathProfile.__new__(FunctionPathProfile)
    clone.function = fpp.function
    clone.numbering = fpp.numbering
    clone.num_potential_paths = fpp.num_potential_paths
    clone.counts = dict(fpp.counts)
    clone.metrics = {key: list(values) for key, values in fpp.metrics.items()}
    return clone


def merge_counts(maps: Sequence[Dict[int, int]]) -> Dict[int, int]:
    """Pointwise sum of sparse counter maps (path or edge counts)."""
    merged: Dict[int, int] = {}
    for counts in maps:
        for key, count in counts.items():
            merged[key] = merged.get(key, 0) + count
    return merged


def merge_metric_maps(maps: Sequence[Dict[int, List[int]]]) -> Dict[int, List[int]]:
    """Pointwise elementwise sum of sparse metric-vector maps."""
    merged: Dict[int, List[int]] = {}
    for metrics in maps:
        for key, values in metrics.items():
            slots = merged.setdefault(key, [0] * len(values))
            if len(slots) < len(values):
                slots.extend([0] * (len(values) - len(slots)))
            for offset, value in enumerate(values):
                slots[offset] += value
    return merged


def merge_path_profiles(profiles: Sequence[PathProfile]) -> PathProfile:
    """Sum path frequencies and metrics function by function.

    Functions missing from some operands contribute nothing (a shard
    whose inputs never reached them); functions present in several
    must agree on their potential-path count, the witness that the
    same numbering produced the path sums.
    """
    merged = PathProfile()
    for profile in profiles:
        for name, fpp in profile.functions.items():
            existing = merged.functions.get(name)
            if existing is None:
                merged.functions[name] = _clone_function_profile(fpp)
                continue
            if existing.num_potential_paths != fpp.num_potential_paths:
                raise ProfileMergeError(
                    f"{name}: path numberings disagree "
                    f"({existing.num_potential_paths} vs {fpp.num_potential_paths} "
                    f"potential paths)"
                )
            existing.counts = merge_counts([existing.counts, fpp.counts])
            existing.metrics = merge_metric_maps([existing.metrics, fpp.metrics])
    return merged


# -- JSON round-trips for shard checkpoints ----------------------------------
#
# Shard workers checkpoint their flat flow data (per-function sparse
# count and metric maps) as JSON; JSON object keys are strings, so the
# integer path sums need an explicit round trip.  Kept here, next to
# the merge they feed, so the checkpoint format and the merge shape
# can't drift apart.


def counts_to_json(per_function: Dict[str, Dict[int, int]]) -> Dict[str, Dict[str, int]]:
    """``{fn: {path_sum: count}}`` with JSON-safe (string) keys."""
    return {
        name: {str(key): count for key, count in counts.items()}
        for name, counts in per_function.items()
    }


def counts_from_json(raw: Dict[str, Dict[str, int]]) -> Dict[str, Dict[int, int]]:
    """Inverse of :func:`counts_to_json` (keys back to ``int``)."""
    return {
        name: {int(key): count for key, count in counts.items()}
        for name, counts in raw.items()
    }


def metric_maps_to_json(
    per_function: Dict[str, Dict[int, List[int]]],
) -> Dict[str, Dict[str, List[int]]]:
    """``{fn: {path_sum: [metrics...]}}`` with JSON-safe keys."""
    return {
        name: {str(key): list(values) for key, values in metrics.items()}
        for name, metrics in per_function.items()
    }


def metric_maps_from_json(
    raw: Dict[str, Dict[str, List[int]]],
) -> Dict[str, Dict[int, List[int]]]:
    """Inverse of :func:`metric_maps_to_json`."""
    return {
        name: {int(key): list(values) for key, values in metrics.items()}
        for name, metrics in raw.items()
    }


def merge_edge_profiles(
    per_run: Sequence[Dict[str, Dict[int, int]]],
) -> Dict[str, Dict[int, int]]:
    """Sum per-function edge counts (``EdgeInstrumentation.edge_counts``
    shape: function name -> edge index -> count) across runs."""
    merged: Dict[str, Dict[int, int]] = {}
    for run in per_run:
        for name, counts in run.items():
            merged[name] = merge_counts([merged.get(name, {}), counts])
    return merged


__all__ = [
    "ProfileMergeError",
    "counts_from_json",
    "counts_to_json",
    "merge_counts",
    "merge_edge_profiles",
    "merge_metric_maps",
    "merge_path_profiles",
    "metric_maps_from_json",
    "metric_maps_to_json",
]
