"""Approximate interprocedural hot-path extraction (§6.3's implication).

Table 3's "One Path" column identifies the call sites where combined
flow+context profiling is *as precise as complete interprocedural path
profiling*: within one calling context, exactly one intraprocedural
path reaches the site, so the interprocedural continuation through it
is unambiguous.

This module exploits that: starting from a calling context, it takes
the context's hottest intraprocedural path, and whenever the path runs
through a call site it descends into the callee's per-context path
table and continues — flagging each hop as *exact* (one-path site) or
*ambiguous* (several paths reach the site; the hottest is chosen).
The result is a stitched cross-procedure trace with a precision label,
something neither a flow-only nor a context-only profile can produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cct.records import CalleeList, CallRecord
from repro.ir.function import Program
from repro.ir.instructions import Kind


@dataclass
class StitchStep:
    """One procedure's segment of the stitched path."""

    context: Tuple[str, ...]
    function: str
    path_sum: int
    freq: int
    blocks: List[str]
    #: True when every executed path in this context reaching the call
    #: site used to descend is this one (the §6.3 precision case).
    exact: bool


@dataclass
class StitchedPath:
    steps: List[StitchStep] = field(default_factory=list)

    @property
    def is_exact(self) -> bool:
        return all(step.exact for step in self.steps)

    def describe(self) -> str:
        lines = []
        for step in self.steps:
            marker = "=" if step.exact else "~"
            lines.append(
                f"{marker} {step.function} x{step.freq}: "
                f"{' -> '.join(step.blocks)}"
            )
        return "\n".join(lines)


def _call_sites_by_block(program: Program, function: str) -> Dict[str, List[Tuple[int, object]]]:
    sites: Dict[str, List[Tuple[int, object]]] = {}
    for block in program.functions[function].blocks:
        for instr in block.instrs:
            if instr.kind in (Kind.CALL, Kind.ICALL):
                sites.setdefault(block.name, []).append((instr.site, instr))
    return sites


def stitch_hot_path(
    run,
    max_depth: int = 16,
) -> StitchedPath:
    """Stitch the hottest interprocedural path from a context_flow run.

    ``run`` is a :class:`~repro.tools.pp.ProfileRun` from
    :meth:`PP.context_flow`.  Starting at the entry function's record,
    repeatedly: take the context's hottest executed path; find the
    first call site along it; descend into the callee record reached
    through that site.
    """
    if run.cct is None or run.flow is None:
        raise ValueError("stitching needs a combined flow+context run")
    program = run.program
    record: Optional[CallRecord] = None
    for candidate in run.cct.records:
        if candidate.parent is run.cct.root:
            record = candidate
            break
    result = StitchedPath()
    while record is not None and len(result.steps) < max_depth:
        function = record.id
        info = run.flow.functions.get(function)
        table = record.path_tables.get(function)
        if info is None or table is None or not table.counts:
            break
        # Hottest executed path in this context.
        path_sum, freq = max(table.counts.items(), key=lambda item: item[1])
        decoded = info.numbering.regenerate(path_sum)
        sites_by_block = _call_sites_by_block(program, function)
        chosen_site: Optional[int] = None
        for block in decoded.blocks:
            if block in sites_by_block:
                chosen_site = sites_by_block[block][0][0]
                break
        exact = True
        if chosen_site is not None:
            # How many executed paths reach the chosen site?
            reaching = 0
            for other_sum, count in table.counts.items():
                if count <= 0:
                    continue
                other = info.numbering.regenerate(other_sum)
                if any(
                    chosen_site in [s for s, _ in sites_by_block.get(b, ())]
                    for b in other.blocks
                ):
                    reaching += 1
            exact = reaching == 1
        result.steps.append(
            StitchStep(
                context=tuple(record.context()[1:]),
                function=function,
                path_sum=path_sum,
                freq=freq,
                blocks=decoded.blocks,
                exact=exact,
            )
        )
        if chosen_site is None:
            break
        record = _descend(record, chosen_site)
    return result


def _descend(record: CallRecord, site: int) -> Optional[CallRecord]:
    if site >= len(record.slots):
        site = 0 if record.slots else -1
    if site < 0:
        return None
    slot = record.slots[site]
    if slot is None:
        return None
    if isinstance(slot, CalleeList):
        records = slot.records()
        return records[0] if records else None
    return slot
