"""Call-stack sampling: the Goldberg–Hall baseline (paper §7.2).

Their profiler interrupts the process periodically and walks the call
stack, recording the full chain per sample.  The paper's two criticisms,
both reproduced here:

* accuracy is limited by sampling (estimates carry statistical error
  the CCT's exact counts do not);
* "the size of their data structure is unbounded, since each sample is
  recorded along with its call stack" — storage grows linearly with run
  time, while the CCT is bounded by the program's context count.

Implemented as a machine tracer: it maintains the call stack from
enter/exit events and takes a sample every ``period`` block events
(the simulator's stand-in for a timer interrupt).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class StackSampler:
    """Periodic call-stack sampler; attach as ``machine.tracer``."""

    def __init__(self, period: int = 64):
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.period = period
        #: Every sample, verbatim: one tuple of procedure names per
        #: interrupt.  This is the unbounded structure.
        self.samples: List[Tuple[str, ...]] = []
        self._stack: List[str] = []
        self._events = 0

    # -- tracer protocol ----------------------------------------------------

    def on_enter(self, proc: str, site: int) -> None:
        self._stack.append(proc)

    def on_exit(self, proc: str, value) -> None:
        if self._stack:
            self._stack.pop()

    def on_block(self, proc: str, block: str) -> None:
        self._events += 1
        if self._events % self.period == 0:
            self.samples.append(tuple(self._stack))

    # -- analysis -------------------------------------------------------------

    def storage_cells(self) -> int:
        """Total stack cells recorded: grows without bound (§7.2)."""
        return sum(len(sample) for sample in self.samples)

    def context_shares(self) -> Dict[Tuple[str, ...], float]:
        """Fraction of samples whose stack is exactly each context."""
        if not self.samples:
            return {}
        counts: Dict[Tuple[str, ...], int] = {}
        for sample in self.samples:
            counts[sample] = counts.get(sample, 0) + 1
        total = len(self.samples)
        return {context: count / total for context, count in counts.items()}

    def estimate(self, total_metric: int) -> Dict[Tuple[str, ...], float]:
        """Attribute ``total_metric`` to contexts by sample shares.

        This is the *exclusive* (self-time) attribution samplers
        naturally produce: a sample taken while ``main -> f`` runs
        charges f-called-from-main, not main.
        """
        return {
            context: share * total_metric
            for context, share in self.context_shares().items()
        }

    def inclusive_estimate(self, total_metric: int) -> Dict[Tuple[str, ...], float]:
        """Attribute inclusively: a sample charges every stack prefix."""
        if not self.samples:
            return {}
        counts: Dict[Tuple[str, ...], int] = {}
        for sample in self.samples:
            for depth in range(1, len(sample) + 1):
                prefix = sample[:depth]
                counts[prefix] = counts.get(prefix, 0) + 1
        total = len(self.samples)
        return {
            context: (count / total) * total_metric
            for context, count in counts.items()
        }
