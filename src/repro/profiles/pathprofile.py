"""Collected path profiles.

A :class:`PathProfile` is the post-run view over the counter tables:
for every function, the executed paths (by path sum) with their
frequency and accumulated hardware metrics, decodable back into block
sequences through the function's numbering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.instrument.pathinstr import FlowInstrumentation, FunctionPathInfo
from repro.pathprof.numbering import PathNumbering, ReconstructedPath


@dataclass
class PathEntry:
    """One executed path of one function."""

    function: str
    path_sum: int
    freq: int
    #: Accumulated PIC values; with the default mapping, ``metrics[0]``
    #: is instructions and ``metrics[1]`` is L1 D-cache misses.
    metrics: List[int]

    @property
    def instructions(self) -> int:
        return self.metrics[0] if self.metrics else 0

    @property
    def misses(self) -> int:
        return self.metrics[1] if len(self.metrics) > 1 else 0


class FunctionPathProfile:
    """All executed paths of one function."""

    def __init__(self, info: FunctionPathInfo, counts: Dict[int, int],
                 metrics: Dict[int, List[int]]):
        self.function = info.function
        self.numbering: PathNumbering = info.numbering
        self.num_potential_paths = info.num_paths
        self.counts = counts
        self.metrics = metrics

    def entries(self) -> Iterator[PathEntry]:
        for path_sum, freq in sorted(self.counts.items()):
            yield PathEntry(
                self.function,
                path_sum,
                freq,
                list(self.metrics.get(path_sum, ())),
            )

    def executed_paths(self) -> int:
        return sum(1 for c in self.counts.values() if c > 0)

    def decode(self, path_sum: int) -> ReconstructedPath:
        return self.numbering.regenerate(path_sum)

    def total_freq(self) -> int:
        return sum(self.counts.values())


class PathProfile:
    """Per-function path profiles for a whole program run."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionPathProfile] = {}

    def entries(self) -> Iterator[PathEntry]:
        for profile in self.functions.values():
            yield from profile.entries()

    def executed_paths(self) -> int:
        return sum(p.executed_paths() for p in self.functions.values())

    def total(self, metric: int) -> int:
        return sum(e.metrics[metric] for e in self.entries() if len(e.metrics) > metric)

    def total_instructions(self) -> int:
        return self.total(0)

    def total_misses(self) -> int:
        return self.total(1)


def collect_path_profile(
    flow: FlowInstrumentation,
    cct_runtime=None,
) -> PathProfile:
    """Assemble the profile after a run.

    For globally-tabled functions the counts come straight from the
    flow tables.  For per-context functions (combined mode) the counts
    are summed over every call record's table — and the per-context
    breakdown stays available on the CCT itself.
    """
    profile = PathProfile()
    for name, info in flow.functions.items():
        if info.table is not None:
            counts = dict(info.table.counts)
            metrics = {k: list(v) for k, v in info.table.metrics.items()}
        else:
            if cct_runtime is None:
                raise ValueError(
                    f"{name} uses per-context tables; pass the CCT runtime"
                )
            counts = {}
            metrics = {}
            for record in cct_runtime.records:
                table = record.path_tables.get(name)
                if table is None:
                    continue
                for path_sum, count in table.counts.items():
                    counts[path_sum] = counts.get(path_sum, 0) + count
                for path_sum, values in table.metrics.items():
                    slot = metrics.setdefault(path_sum, [0] * len(values))
                    for offset, value in enumerate(values):
                        slot[offset] += value
        profile.functions[name] = FunctionPathProfile(info, counts, metrics)
    return profile
