"""Hot-procedure analysis: Table 5 of the paper.

The same miss apportionment as Table 4, but by procedure:

* a **hot procedure** incurs at least ``threshold`` of the misses;
* **dense** / **sparse** split hot procedures by miss ratio vs. the
  program average;
* ``Path/Proc`` is the average number of *executed* paths in
  procedures of each category — the number that shows procedure-level
  reporting cannot isolate behaviour (hot procedures execute tens of
  paths, §6.4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.profiles.hotpaths import PathClass
from repro.profiles.pathprofile import PathProfile


@dataclass
class ProcEntry:
    function: str
    executed_paths: int
    instructions: int
    misses: int
    klass: PathClass = PathClass.COLD

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.instructions if self.instructions else 0.0


@dataclass
class ProcBucket:
    num: int = 0
    paths: int = 0
    misses: int = 0

    def add(self, entry: ProcEntry) -> None:
        self.num += 1
        self.paths += entry.executed_paths
        self.misses += entry.misses

    def paths_per_proc(self) -> float:
        return self.paths / self.num if self.num else 0.0

    def miss_share(self, total: int) -> float:
        return self.misses / total if total else 0.0


@dataclass
class HotProcReport:
    threshold: float
    total_misses: int
    entries: List[ProcEntry] = field(default_factory=list)
    hot: ProcBucket = field(default_factory=ProcBucket)
    dense: ProcBucket = field(default_factory=ProcBucket)
    sparse: ProcBucket = field(default_factory=ProcBucket)
    cold: ProcBucket = field(default_factory=ProcBucket)

    def hot_procedures(self) -> List[ProcEntry]:
        return [e for e in self.entries if e.klass is not PathClass.COLD]

    def row(self) -> Dict[str, object]:
        tm = self.total_misses
        return {
            "Hot Num": self.hot.num,
            "Hot Path/Proc": round(self.hot.paths_per_proc(), 1),
            "Hot Misses%": round(100 * self.hot.miss_share(tm), 1),
            "Dense Num": self.dense.num,
            "Dense Path/Proc": round(self.dense.paths_per_proc(), 1),
            "Dense Misses%": round(100 * self.dense.miss_share(tm), 1),
            "Sparse Num": self.sparse.num,
            "Sparse Path/Proc": round(self.sparse.paths_per_proc(), 1),
            "Sparse Misses%": round(100 * self.sparse.miss_share(tm), 1),
            "Cold Num": self.cold.num,
            "Cold Path/Proc": round(self.cold.paths_per_proc(), 1),
            "Cold Misses%": round(100 * self.cold.miss_share(tm), 1),
        }


def classify_procedures(profile: PathProfile, threshold: float = 0.01) -> HotProcReport:
    """Aggregate paths by procedure and classify per Table 5."""
    entries: List[ProcEntry] = []
    for name, function_profile in profile.functions.items():
        executed = 0
        instructions = 0
        misses = 0
        for entry in function_profile.entries():
            if entry.freq <= 0:
                continue
            executed += 1
            instructions += entry.instructions
            misses += entry.misses
        if executed:
            entries.append(ProcEntry(name, executed, instructions, misses))

    total_instructions = sum(e.instructions for e in entries)
    total_misses = sum(e.misses for e in entries)
    average_ratio = total_misses / total_instructions if total_instructions else 0.0
    floor = threshold * total_misses

    report = HotProcReport(threshold=threshold, total_misses=total_misses)
    report.entries = entries
    for entry in entries:
        if total_misses > 0 and entry.misses >= floor and entry.misses > 0:
            entry.klass = (
                PathClass.DENSE if entry.miss_ratio > average_ratio else PathClass.SPARSE
            )
            report.hot.add(entry)
            (report.dense if entry.klass is PathClass.DENSE else report.sparse).add(entry)
        else:
            entry.klass = PathClass.COLD
            report.cold.add(entry)
    return report
