"""Table 5: L1 D-cache misses by procedure.

The same Flow-and-HW profile as Table 4, aggregated per procedure.
Published shape: a handful of hot procedures (avg 11.7) cover most
misses (avg 91%), and hot procedures execute tens of paths each
(dense avg 34, sparse avg 63) — the argument that procedure-level
reporting cannot isolate the behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.profiles.hotprocs import classify_procedures
from repro.tools.bench_runner import run_tasks
from repro.tools.pp import PP
from repro.workloads.suite import SPEC95, build_workload


def _workload_row(task) -> Dict[str, object]:
    pp, name, scale, threshold = task
    program = build_workload(name, scale)
    run = pp.run(pp.spec("flow_hw"), program)
    report = classify_procedures(run.path_profile, threshold)
    row: Dict[str, object] = {"Benchmark": name}
    row.update(report.row())
    return row


def hot_procedure_experiment(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    pp: Optional[PP] = None,
    threshold: float = 0.01,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    pp = pp or PP()
    names = list(names) if names is not None else list(SPEC95)
    tasks = [(pp, name, scale, threshold) for name in names]
    return run_tasks(_workload_row, tasks, jobs=jobs)
