"""Experiment drivers: one module per table/figure of the paper.

Each driver runs the workload suite through PP and returns row dicts
that :mod:`repro.reporting` renders in the paper's table shapes.  The
benchmark harness (``benchmarks/``) wraps these; ``EXPERIMENTS.md``
records a full run.
"""

from repro.experiments.table1 import overhead_experiment
from repro.experiments.table2 import perturbation_experiment
from repro.experiments.table3 import cct_stats_experiment
from repro.experiments.table4 import hot_path_experiment
from repro.experiments.table5 import hot_procedure_experiment
from repro.experiments.pgo import pgo_loop_experiment
from repro.experiments.figures import figure1_report, figure4_report
from repro.experiments.components import overhead_components_experiment

__all__ = [
    "cct_stats_experiment",
    "figure1_report",
    "figure4_report",
    "hot_path_experiment",
    "hot_procedure_experiment",
    "overhead_components_experiment",
    "overhead_experiment",
    "perturbation_experiment",
    "pgo_loop_experiment",
]
