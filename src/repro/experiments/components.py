"""Ablation: where the overhead comes from (§6.1 and DESIGN.md §5).

Compares, per workload:

* edge profiling, simple placement (every edge counts);
* edge profiling, spanning-tree placement (chords only; [BL94]);
* path profiling, frequency only, simple placement (Figure 1(c));
* path profiling, frequency only, spanning-tree placement (Fig 1(d));
* path profiling with hardware counters (the full Flow and HW).

The published relationship to reproduce: optimized path profiling
costs roughly twice optimized edge profiling (~32% vs ~16% on SPEC95),
and adding hardware-counter reads raises the average to ~80%.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.tools.bench_runner import run_tasks
from repro.tools.pp import PP
from repro.workloads.suite import SPEC95, build_workload


def _workload_row(task) -> Dict[str, object]:
    pp, name, scale = task
    program = build_workload(name, scale)
    base = pp.run(pp.spec("baseline"), program)
    edge_simple = pp.run(pp.spec("edge", placement="simple"), program)
    edge_opt = pp.run(pp.spec("edge", placement="spanning_tree"), program)
    path_simple = pp.run(pp.spec("flow_freq", placement="simple"), program)
    path_opt = pp.run(pp.spec("flow_freq", placement="spanning_tree"), program)
    flow_hw = pp.run(pp.spec("flow_hw"), program)
    return {
        "Benchmark": name,
        "Edge simple x": round(edge_simple.overhead_vs(base), 3),
        "Edge opt x": round(edge_opt.overhead_vs(base), 3),
        "Path simple x": round(path_simple.overhead_vs(base), 3),
        "Path opt x": round(path_opt.overhead_vs(base), 3),
        "Flow+HW x": round(flow_hw.overhead_vs(base), 3),
    }


def overhead_components_experiment(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    pp: Optional[PP] = None,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    pp = pp or PP()
    names = list(names) if names is not None else list(SPEC95)
    return run_tasks(_workload_row, [(pp, name, scale) for name in names], jobs=jobs)
