"""Table 1: run-time overhead of the three profiling configurations.

For every workload: the uninstrumented run time (simulated cycles
standing in for seconds), then each instrumented configuration's time
and its ratio to base.  The paper reports averages of 2.7/2.4/2.7x for
CINT95 and 1.3/1.2/1.2x for CFP95; the shape to reproduce is
*moderate, workload-dependent overhead*, branchy integer codes paying
much more than loop-dominated FP codes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.reporting import arithmetic_mean
from repro.tools.bench_runner import run_tasks
from repro.tools.pp import PP
from repro.workloads.suite import SPEC95, build_workload


def _workload_row(task) -> Dict[str, object]:
    """One workload's Table 1 row (module-level: pickles for fan-out)."""
    pp, name, scale = task
    program = build_workload(name, scale)
    base = pp.run(pp.spec("baseline"), program)
    flow_hw = pp.run(pp.spec("flow_hw"), program)
    context_hw = pp.run(pp.spec("context_hw"), program)
    context_flow = pp.run(pp.spec("context_flow"), program)
    for run in (flow_hw, context_hw, context_flow):
        if run.return_value != base.return_value:
            raise AssertionError(
                f"{name}: {run.label} changed the program result "
                f"({run.return_value!r} != {base.return_value!r})"
            )
    return {
        "Benchmark": name,
        "Base Time": base.cycles,
        "Flow+HW Time": flow_hw.cycles,
        "Flow+HW x": round(flow_hw.overhead_vs(base), 2),
        "Context+HW Time": context_hw.cycles,
        "Context+HW x": round(context_hw.overhead_vs(base), 2),
        "Context+Flow Time": context_flow.cycles,
        "Context+Flow x": round(context_flow.overhead_vs(base), 2),
    }


def overhead_experiment(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    pp: Optional[PP] = None,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Rows of Table 1, plus suite-average rows.

    Workloads simulate independently; ``jobs`` (default: the
    ``REPRO_BENCH_JOBS`` environment variable) fans them out across
    processes.
    """
    pp = pp or PP()
    names = list(names) if names is not None else list(SPEC95)
    rows = run_tasks(_workload_row, [(pp, name, scale) for name in names], jobs=jobs)
    rows.extend(_averages(rows, names))
    return rows


def _averages(rows: List[Dict[str, object]], names: Sequence[str]) -> List[Dict[str, object]]:
    groups = {
        "CINT95 Avg": [n for n in names if SPEC95[n].suite == "CINT95"],
        "CFP95 Avg": [n for n in names if SPEC95[n].suite == "CFP95"],
        "SPEC95 Avg": list(names),
    }
    by_name = {row["Benchmark"]: row for row in rows}
    averages = []
    for label, members in groups.items():
        member_rows = [by_name[n] for n in members if n in by_name]
        if not member_rows:
            continue
        averages.append(
            {
                "Benchmark": label,
                "Base Time": round(arithmetic_mean(r["Base Time"] for r in member_rows)),
                "Flow+HW Time": round(
                    arithmetic_mean(r["Flow+HW Time"] for r in member_rows)
                ),
                "Flow+HW x": round(
                    arithmetic_mean(r["Flow+HW x"] for r in member_rows), 2
                ),
                "Context+HW Time": round(
                    arithmetic_mean(r["Context+HW Time"] for r in member_rows)
                ),
                "Context+HW x": round(
                    arithmetic_mean(r["Context+HW x"] for r in member_rows), 2
                ),
                "Context+Flow Time": round(
                    arithmetic_mean(r["Context+Flow Time"] for r in member_rows)
                ),
                "Context+Flow x": round(
                    arithmetic_mean(r["Context+Flow x"] for r in member_rows), 2
                ),
            }
        )
    return averages
