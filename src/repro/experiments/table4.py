"""Table 4: L1 D-cache misses by path (the hot-path phenomenon).

One Flow-and-HW run per workload with PIC0 = instructions and PIC1 =
L1 D-cache misses; paths are then classified hot/cold and dense/sparse
at the 1% threshold.  The go/gcc-like workloads are also classified at
0.1% (the paper's adjustment: they execute an order of magnitude more
paths, so no individual path clears 1%).

Also computes §6.4.3's statistic — blocks on hot paths execute along
~16 different paths on average — as ``Paths/Block``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.profiles.hotpaths import classify_paths, paths_per_hot_block
from repro.tools.bench_runner import run_tasks
from repro.tools.pp import PP
from repro.workloads.suite import SPEC95, build_workload

#: Workloads needing the lowered threshold (paper §6.4.1).
MANY_PATH_WORKLOADS = ("099.go", "126.gcc")


def _workload_rows(task) -> List[Dict[str, object]]:
    pp, name, scale, threshold, low_threshold = task
    program = build_workload(name, scale)
    run = pp.run(pp.spec("flow_hw"), program)
    report = classify_paths(run.path_profile, threshold)
    row: Dict[str, object] = {"Benchmark": name, "Threshold": threshold}
    row.update(report.row())
    paths_per_block, _ = paths_per_hot_block(run.path_profile, report)
    row["Paths/Block"] = round(paths_per_block, 1)
    rows = [row]
    if name in MANY_PATH_WORKLOADS:
        low = classify_paths(run.path_profile, low_threshold)
        low_row: Dict[str, object] = {
            "Benchmark": f"{name} @0.1%",
            "Threshold": low_threshold,
        }
        low_row.update(low.row())
        ppb, _ = paths_per_hot_block(run.path_profile, low)
        low_row["Paths/Block"] = round(ppb, 1)
        rows.append(low_row)
    return rows


def hot_path_experiment(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    pp: Optional[PP] = None,
    threshold: float = 0.01,
    low_threshold: float = 0.001,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    pp = pp or PP()
    names = list(names) if names is not None else list(SPEC95)
    tasks = [(pp, name, scale, threshold, low_threshold) for name in names]
    per_workload = run_tasks(_workload_rows, tasks, jobs=jobs)
    return [row for rows in per_workload for row in rows]
