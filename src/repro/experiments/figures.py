"""Figure reconstructions.

* Figure 1/2: the six-path example graph, its NP/Val labelling, the
  simple per-edge instrumentation and the optimized (spanning-tree)
  placement.
* Figure 4/5: a program whose DCT, DCG, and CCT match the paper's
  shapes — procedure C retains two distinct contexts in the CCT that
  the DCG conflates, and recursion introduces a CCT backedge.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cct.dct import DynamicCallGraph, DynamicCallRecorder, project_cct
from repro.cfg.graph import build_cfg
from repro.ir.asm import parse_program
from repro.machine.vm import Machine
from repro.pathprof.estimate import estimate_edge_frequencies
from repro.pathprof.numbering import number_paths
from repro.pathprof.placement import plan_simple, plan_spanning_tree

#: The CFG of Figure 1: A{B,C} B{C,D} C{D} D{E,F} E{F} F=exit.
FIGURE1_ASM = """
program entry=main
func main(1) regs=8 {
A:
    cbr r0, B, C
B:
    cbr r0, C, D
C:
    br D
D:
    cbr r0, E, F
E:
    br F
F:
    ret r0
}
"""


def figure1_report() -> Dict[str, object]:
    """Reconstruct Figure 1: path table, edge values, both placements."""
    program = parse_program(FIGURE1_ASM)
    cfg = build_cfg(program.functions["main"])
    numbering = number_paths(cfg)
    paths = [
        {"Path Sum": p.path_sum, "Path": "".join(p.blocks)}
        for p in numbering.enumerate_paths()
    ]
    edge_values = {
        f"{t.src}->{t.dst}": numbering.val[t.index]
        for t in numbering.graph.edges
    }
    simple = plan_simple(numbering)
    simple.check_path_sums()
    optimized = plan_spanning_tree(numbering, estimate_edge_frequencies(cfg))
    optimized.check_path_sums()
    return {
        "num_paths": numbering.num_paths,
        "paths": paths,
        "edge_values": edge_values,
        "simple_increments": simple.increment_count(),
        "optimized_increments": optimized.increment_count(),
    }


#: Figure 4's calling behaviour: M calls A, B(!), D; A and D both call
#: C, so C has two calling contexts; Figure 5 adds recursion on A.
FIGURE4_ASM = """
program entry=M
func M(0) regs=8 {
entry:
    call r0, A(1)
    call r1, B(1)
    call r2, D(1)
    add r0, r0, r1
    add r0, r0, r2
    ret r0
}
func A(1) regs=8 {
entry:
    gt r1, r0, 0
    cbr r1, rec, flat
rec:
    sub r2, r0, 1
    call r3, A(r2)
    add r3, r3, 1
    ret r3
flat:
    call r4, B(0)
    call r5, C(0)
    add r4, r4, r5
    ret r4
}
func B(1) regs=8 {
entry:
    add r1, r0, 10
    ret r1
}
func C(1) regs=8 {
entry:
    add r1, r0, 100
    ret r1
}
func D(1) regs=8 {
entry:
    call r1, C(1)
    ret r1
}
"""


def figure4_report() -> Dict[str, object]:
    """Reconstruct Figure 4/5: DCT size, DCG edges, CCT contexts for C."""
    program = parse_program(FIGURE4_ASM)
    machine = Machine(program)
    recorder = DynamicCallRecorder()
    machine.tracer = recorder
    machine.run()
    dct = recorder.tree
    dcg = DynamicCallGraph.from_dct(dct)
    cct = project_cct(dct)

    contexts_of_c: List[str] = []

    def walk(node, trail):
        if node.proc == "C":
            contexts_of_c.append(" -> ".join(trail + [node.proc]))
        for child in node.children.values():
            if child.parent is node:  # skip backedges
                walk(child, trail + [node.proc])

    for child in cct.children.values():
        walk(child, [])

    return {
        "dct_size": dct.size(),
        "dcg_edges": sorted(f"{e.caller}->{e.callee}" for e in dcg.edges),
        "cct_contexts_of_C": sorted(contexts_of_c),
        "dcg_infeasible_path_exists": ("M->D" in {f"{e.caller}->{e.callee}" for e in dcg.edges})
        and ("D->C" in {f"{e.caller}->{e.callee}" for e in dcg.edges}),
    }
