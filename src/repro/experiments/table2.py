"""Table 2: perturbation of hardware metrics by instrumentation.

For every workload and metric: the ratio of the metric under flow
sensitive (F) and context sensitive (C) instrumentation to the
uninstrumented run.  The published shape: most ratios modestly above
1.0, occasional large outliers on metrics whose baseline is tiny
(store-buffer stalls, FP stalls), and F and C "typically obtaining
similar results".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.machine.counters import Event
from repro.profiles.perturbation import (
    PERTURBATION_EVENTS,
    estimate_instrumentation_instructions,
    perturbation_ratios,
)
from repro.tools.bench_runner import run_tasks
from repro.tools.pp import PP
from repro.workloads.suite import SPEC95, build_workload

_LABELS = {
    Event.CYCLES: "Cycles",
    Event.INSTRS: "Insts",
    Event.DC_READ_MISS: "DC Rd Miss",
    Event.DC_WRITE_MISS: "DC Wr Miss",
    Event.IC_MISS: "IC Miss",
    Event.BR_MISPRED: "Mispredict",
    Event.SB_STALL: "SB Stall",
    Event.FP_STALL: "FP Stall",
}


def _workload_row(task) -> Dict[str, object]:
    pp, name, scale = task
    program = build_workload(name, scale)
    base = pp.run(pp.spec("baseline"), program)
    flow = pp.run(pp.spec("flow_hw"), program)
    context = pp.run(pp.spec("context_hw"), program)
    f_ratios = perturbation_ratios(flow.result.counters, base.result.counters)
    c_ratios = perturbation_ratios(context.result.counters, base.result.counters)
    row: Dict[str, object] = {"Benchmark": name}
    for event in PERTURBATION_EVENTS:
        label = _LABELS[event]
        row[f"{label} F"] = _round(f_ratios[event])
        row[f"{label} C"] = _round(c_ratios[event])
    # The §3.2 correction: subtract the frequency-predicted
    # instrumentation instructions from the flow run's count.  This
    # is the adjustment behind the paper's near-1.0 Insts column.
    estimate = estimate_instrumentation_instructions(flow.flow)
    corrected = flow.result[Event.INSTRS] - estimate
    base_instrs = base.result[Event.INSTRS]
    row["Insts F corr"] = _round(corrected / base_instrs if base_instrs else None)
    return row


def perturbation_experiment(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    pp: Optional[PP] = None,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Rows: one per benchmark with F and C ratio columns per metric."""
    pp = pp or PP()
    names = list(names) if names is not None else list(SPEC95)
    return run_tasks(_workload_row, [(pp, name, scale) for name in names], jobs=jobs)


def _round(value) -> object:
    if value is None:
        return None
    return round(value, 2)


def average_abs_deviation(rows: List[Dict[str, object]], suffix: str) -> float:
    """Mean |ratio - 1| over all finite ratios with the given suffix.

    A summary number for tests: small means instrumentation barely
    disturbed the metrics on average.
    """
    deviations = []
    for row in rows:
        for key, value in row.items():
            if key.endswith(suffix) and isinstance(value, (int, float)):
                deviations.append(abs(value - 1.0))
    return sum(deviations) / len(deviations) if deviations else 0.0
