"""Table 3: calling context tree statistics.

One combined (Context and Flow) run per workload; the CCT is then
measured: heap size, node count, average node size, average interior
out-degree, height (average and max), maximum per-procedure
replication, and call-site usage including the one-path column (call
sites reached by exactly one intraprocedural path in their context —
where flow+context equals full interprocedural path profiling, §6.3).

Published shape: CCTs are *bushy, not tall* (height far below node
count), total size modest for most programs, and vortex-like call-layer
programs produce by far the largest trees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cct.stats import cct_statistics
from repro.tools.bench_runner import run_tasks
from repro.tools.pp import PP
from repro.workloads.suite import SPEC95, build_workload


def _workload_row(task) -> Dict[str, object]:
    pp, name, scale = task
    program = build_workload(name, scale)
    run = pp.context_flow(program)
    statistics = cct_statistics(
        run.cct,
        program=run.program,
        flow_functions=run.flow.functions,
    )
    row: Dict[str, object] = {"Benchmark": name}
    row.update(statistics.row())
    return row


def cct_stats_experiment(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    pp: Optional[PP] = None,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    pp = pp or PP()
    names = list(names) if names is not None else list(SPEC95)
    return run_tasks(_workload_row, [(pp, name, scale) for name in names], jobs=jobs)
