"""Table 3: calling context tree statistics.

One combined (Context and Flow) run per workload; the CCT is then
measured: heap size, node count, average node size, average interior
out-degree, height (average and max), maximum per-procedure
replication, and call-site usage including the one-path column (call
sites reached by exactly one intraprocedural path in their context —
where flow+context equals full interprocedural path profiling, §6.3).

Published shape: CCTs are *bushy, not tall* (height far below node
count), total size modest for most programs, and vortex-like call-layer
programs produce by far the largest trees.

With ``shards > 0`` each workload's statistics come from the sharded
driver instead of one monolithic run: an input set of ``runs``
repetitions is split across forked workers, the per-shard CCT dumps
are merged, and the table is computed on the aggregate — exercising
the :mod:`repro.cct.merge` layer end to end.  Structure columns (node
count, height, replication, sites) match the single-run table for
deterministic workloads; metric-bearing aggregates scale with
``runs``, and ``Size`` reports the canonical aggregate layout.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cct.stats import cct_statistics
from repro.tools.bench_runner import run_tasks
from repro.tools.pp import PP
from repro.workloads.suite import SPEC95, build_workload


def _workload_row(task) -> Dict[str, object]:
    pp, name, scale = task
    program = build_workload(name, scale)
    run = pp.run(pp.spec("context_flow"), program)
    statistics = cct_statistics(
        run.cct,
        program=run.program,
        flow_functions=run.flow.functions,
    )
    row: Dict[str, object] = {"Benchmark": name}
    row.update(statistics.row())
    return row


def _sharded_workload_row(
    name: str, scale: float, shards: int, runs: int
) -> Dict[str, object]:
    from repro.tools.shard_runner import flow_template, shard_run, spec_for_workload

    spec = spec_for_workload(name, scale, runs=runs, mode="context_flow")
    outcome = shard_run(spec, shards)
    template = flow_template(spec)
    statistics = cct_statistics(
        outcome.cct,
        program=template.program,
        flow_functions=template.functions,
    )
    row: Dict[str, object] = {"Benchmark": name}
    row.update(statistics.row())
    return row


def cct_stats_experiment(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    pp: Optional[PP] = None,
    jobs: Optional[int] = None,
    shards: int = 0,
    runs: int = 1,
) -> List[Dict[str, object]]:
    names = list(names) if names is not None else list(SPEC95)
    if shards:
        # The fan-out happens inside each workload's shard_run; the
        # workload loop stays serial so the two pools don't nest.
        return [
            _sharded_workload_row(name, scale, shards, runs) for name in names
        ]
    pp = pp or PP()
    return run_tasks(_workload_row, [(pp, name, scale) for name in names], jobs=jobs)
