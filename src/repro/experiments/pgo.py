"""Closing the loop: measured-profile-driven optimization, verified.

The paper's closing argument is that flow- and context-sensitive
profiles exist so a compiler can act on them.  This experiment acts:
each workload is profiled (``context_flow`` — path tables *and* a
CCT, so every pipeline pass has data), optimized by the
:mod:`repro.opt.pipeline` passes, and re-measured uninstrumented
against the unmodified program on the same machine
(:func:`repro.session.pgo.pgo_cycle`).

The row reports the measured counter deltas and the verdict the
store's threshold algebra assigns them.  The machine is configured
with a small direct-mapped I-cache: the pipeline's wins are locality
wins (inlining makes hot call chains contiguous; layout packs hot
paths), and a 16KB cache swallows a synthetic workload whole — the
same reason the paper evaluates on real SPEC95 binaries rather than
toys.  Architectural results are compared on every run; a mismatch
is a red ``degradation`` row regardless of the counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.machine.config import MachineConfig
from repro.machine.counters import Event
from repro.opt import OptPlan
from repro.session import ProfileSession, ProfileSpec
from repro.session.pgo import pgo_cycle
from repro.tools.bench_runner import run_tasks
from repro.workloads.suite import SPEC95, build_workload

#: The loop-heavy subset where hot-path locality dominates; the
#: default workload set for the closing-the-loop writeup.
LOOP_WORKLOADS = ("132.ijpeg", "101.tomcatv", "102.swim", "103.su2cor")


def constrained_config() -> MachineConfig:
    """The I-cache-pressured machine the experiment measures on."""
    return MachineConfig(icache_size=512, icache_assoc=1)


def _delta(base: int, cand: int) -> str:
    if not base:
        return "n/a"
    return f"{(cand - base) / base * 100:+.1f}%"


def _workload_row(task) -> Dict[str, object]:
    name, scale, plan, config = task
    program = build_workload(name, scale)
    session = ProfileSession(config=config)
    spec = ProfileSpec(mode="context_flow")
    report = pgo_cycle(
        program, spec, session=session, plan=plan, workload=name
    )
    base = report.baseline_counters
    cand = report.optimized_counters
    row: Dict[str, object] = {
        "Benchmark": name,
        "Verdict": report.verdict.value,
        "Match": "yes" if report.architectural_match else "NO",
    }
    for event, label in (
        (Event.INSTRS, "Instrs"),
        (Event.CYCLES, "Cycles"),
        (Event.IC_MISS, "IC miss"),
        (Event.BR_MISPRED, "Mispred"),
    ):
        row[label] = _delta(base.get(event, 0), cand.get(event, 0))
    row["Passes"] = ",".join(
        p.name for p in report.pipeline.passes if p.changed
    )
    return row


def pgo_loop_experiment(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    plan: Optional[OptPlan] = None,
    config: Optional[MachineConfig] = None,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """One PGO cycle per workload; returns report rows.

    ``names`` defaults to :data:`LOOP_WORKLOADS`; pass ``list(SPEC95)``
    for the whole suite.  ``config`` defaults to
    :func:`constrained_config`.
    """
    plan = plan or OptPlan()
    config = config or constrained_config()
    names = list(names) if names is not None else list(LOOP_WORKLOADS)
    tasks = [(name, scale, plan, config) for name in names]
    return run_tasks(_workload_row, tasks, jobs=jobs)


__all__ = [
    "LOOP_WORKLOADS",
    "constrained_config",
    "pgo_loop_experiment",
]
