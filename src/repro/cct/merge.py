"""Structural CCT merging: aggregate profiles from many runs.

The paper builds one CCT per process and dumps it at exit; aggregating
hardware-counter profiles across processes (the PGO problem of
combining per-run counter files) needs a *merge* over those dumps.
Two CCTs of the same program are merged by walking their records in
lockstep from the roots:

* records are matched by calling context — same procedure reached
  through the same callee slot of matched parents;
* a slot pairs by index; its callees unify by procedure identifier
  (within one slot all callees have distinct identifiers, because the
  runtime's lookup is by procedure);
* recursion *backedges* unify with backedges: a backedge's target is
  the matched ancestor, which both operands necessarily agree on
  because the context path above the record is identical.  A slot
  where one operand recursed and the other allocated a fresh child
  would describe two different programs and raises :class:`MergeError`;
* metric vectors sum elementwise; per-record path tables
  (:class:`~repro.instrument.tables.CounterTable`) sum their
  counts/metrics key by key, preserving hash-bucket semantics — the
  capacity, kind, and bucket count must agree or the path sums are not
  comparable (:class:`MergeError` again);
* the merged tree is re-laid-out in the simulated CCT heap in a
  canonical preorder, so ``heap_bytes`` reports what the aggregate
  structure would occupy.

The result is *canonical*: callee lists are ordered by procedure
identifier rather than by move-to-front recency (transient state with
no post-mortem meaning), and addresses are reassigned
deterministically.  On canonical operands merge is commutative and
associative, and the empty CCT is its identity — properties the
sharded-run driver relies on to make ``N``-shard aggregation
bit-identical to a serial run (and that
``tests/test_merge_properties.py`` checks on generated trees).

Known limitation: signal-handler root slots are matched by index like
every other slot, so merging runs whose handlers fired in different
orders conflates their contexts.  Deterministic workloads (the
sharding use case) deliver signals identically in every shard.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cct.records import ROOT_ID, CalleeList, CallRecord, ListNode
from repro.instrument.tables import CounterTable
from repro.machine.memory import WORD, MemoryMap


class MergeError(ValueError):
    """The operands do not describe the same program structure."""


class MergedCCT:
    """An aggregated CCT: protocol-compatible with :class:`CCTRuntime`
    and :class:`~repro.cct.serialize.LoadedCCT` (``root``, ``records``,
    ``heap_bytes()``), so statistics, rendering, profile collection,
    and :func:`~repro.cct.serialize.save_cct` all apply unchanged."""

    def __init__(self, root: CallRecord, records: List[CallRecord], heap_bytes: int):
        self.root = root
        self.records = records
        self._heap_bytes = heap_bytes

    def heap_bytes(self) -> int:
        return self._heap_bytes


def empty_cct(metric_slots: int = 3) -> MergedCCT:
    """The merge identity: a bare root with one uninitialized slot."""
    root = CallRecord(ROOT_ID, None, 1, metric_slots, MemoryMap().cct.base)
    return MergedCCT(root, [root], root.record_bytes())


def merge_ccts(ccts: Sequence) -> MergedCCT:
    """Merge any number of CCTs (runtimes, loaded dumps, prior merges).

    ``ccts`` may be empty (yields the empty CCT) or mix
    :class:`~repro.cct.runtime.CCTRuntime`,
    :class:`~repro.cct.serialize.LoadedCCT`, and :class:`MergedCCT`
    operands; each just needs ``root``.  The inputs are not modified.
    """
    roots = [cct.root for cct in ccts if cct is not None]
    if not roots:
        return empty_cct()
    ids = {root.id for root in roots}
    if len(ids) != 1:
        raise MergeError(f"root identifiers differ: {sorted(ids)}")
    records: List[CallRecord] = []
    merged_of: Dict[int, CallRecord] = {}
    root = _merge_group(roots, None, merged_of, records)
    heap_bytes = _relayout(root, records)
    return MergedCCT(root, records, heap_bytes)


# -- the lockstep walk -------------------------------------------------------


def _slot_callees(record: CallRecord, index: int) -> Tuple[bool, List[CallRecord]]:
    """(was a callee list, callee records) for one slot of one operand."""
    if index >= len(record.slots):
        return False, []
    slot = record.slots[index]
    if slot is None:
        return False, []
    if isinstance(slot, CalleeList):
        return True, slot.records()
    return False, [slot]


def _merge_group(
    sources: List[CallRecord],
    parent: Optional[CallRecord],
    merged_of: Dict[int, CallRecord],
    records: List[CallRecord],
) -> CallRecord:
    """Merge records that matched on calling context into one record."""
    nslots = max(src.nslots for src in sources)
    metric_slots = max(len(src.metrics) for src in sources)
    merged = CallRecord(sources[0].id, parent, nslots, metric_slots, 0)
    records.append(merged)
    for src in sources:
        merged_of[id(src)] = merged
        for offset, value in enumerate(src.metrics):
            merged.metrics[offset] += value
        for name, table in src.path_tables.items():
            _merge_table(merged.path_tables, name, table)

    for index in range(nslots):
        listy = False
        children: Dict[str, List[CallRecord]] = {}
        backedges: Dict[str, List[CallRecord]] = {}
        for src in sources:
            src_listy, callees = _slot_callees(src, index)
            listy = listy or src_listy
            for callee in callees:
                if callee.parent is src:
                    children.setdefault(callee.id, []).append(callee)
                else:
                    backedges.setdefault(callee.id, []).append(callee)
        entries: List[CallRecord] = []
        for proc in sorted(set(children) | set(backedges)):
            if proc in children and proc in backedges:
                raise MergeError(
                    f"slot {index} of {merged.id!r}: {proc!r} is a fresh child "
                    f"in one operand but a recursion backedge in another"
                )
            if proc in backedges:
                targets = {id(merged_of[id(t)]) for t in backedges[proc]}
                if len(targets) != 1:
                    raise MergeError(
                        f"slot {index} of {merged.id!r}: backedge targets for "
                        f"{proc!r} unify to different ancestors"
                    )
                entries.append(merged_of[id(backedges[proc][0])])
            else:
                entries.append(_merge_group(children[proc], merged, merged_of, records))
        if not entries:
            continue
        if len(entries) == 1 and not listy:
            merged.slots[index] = entries[0]
        else:
            callee_list = CalleeList()
            callee_list.nodes = [ListNode(entry, 0) for entry in entries]
            merged.slots[index] = callee_list
    return merged


def _merge_table(tables: Dict[str, object], name: str, table: CounterTable) -> None:
    existing = tables.get(name)
    if existing is None:
        copy = CounterTable(
            table.name,
            table.table_id,
            0,
            table.capacity,
            table.metric_slots,
            table.kind,
            buckets=table.buckets,
        )
        copy.counts = dict(table.counts)
        copy.metrics = {key: list(values) for key, values in table.metrics.items()}
        copy.out_of_range = table.out_of_range
        tables[name] = copy
        return
    if (
        existing.capacity != table.capacity
        or existing.metric_slots != table.metric_slots
        or existing.kind is not table.kind
        or existing.buckets != table.buckets
    ):
        raise MergeError(
            f"path table {name!r}: incompatible geometry "
            f"({existing.capacity}/{existing.kind.value}/{existing.buckets} vs "
            f"{table.capacity}/{table.kind.value}/{table.buckets})"
        )
    for key, count in table.counts.items():
        existing.counts[key] = existing.counts.get(key, 0) + count
    for key, values in table.metrics.items():
        slots = existing.metrics.setdefault(key, [0] * existing.metric_slots)
        for offset, value in enumerate(values):
            slots[offset] += value
    existing.out_of_range += table.out_of_range


def walk_lockstep(left, right) -> Iterable[tuple]:
    """Walk two CCTs in lockstep, yielding every calling context either
    operand reached.

    Yields ``(context, left_record, right_record)`` triples where
    ``context`` is a tuple of ``(slot_index, procedure)`` pairs from the
    root down (the root itself is the empty context) and a record is
    ``None`` for a context only the other operand reached.  Matching is
    exactly the merge unification — slots pair by index, callees by
    procedure identifier — and recursion backedges are skipped (their
    counts live at the matched ancestor, which would otherwise be
    visited twice).  The regression detector diffs per-context metrics
    over this walk, so a context one run never entered is compared
    against an implicit zero rather than silently dropped.

    ``left``/``right`` are anything with a ``root`` (runtime, loaded
    dump, merge result).  :class:`MergeError` if the roots' identifiers
    differ — such operands describe different programs.
    """
    lroot = getattr(left, "root", left)
    rroot = getattr(right, "root", right)
    if lroot.id != rroot.id:
        raise MergeError(f"root identifiers differ: {sorted({lroot.id, rroot.id})}")

    def visit(context, lrec, rrec):
        yield context, lrec, rrec
        nslots = max(
            lrec.nslots if lrec is not None else 0,
            rrec.nslots if rrec is not None else 0,
        )
        for index in range(nslots):
            lkids: Dict[str, CallRecord] = {}
            rkids: Dict[str, CallRecord] = {}
            for record, kids in ((lrec, lkids), (rrec, rkids)):
                if record is None:
                    continue
                _, callees = _slot_callees(record, index)
                for callee in callees:
                    if callee.parent is record:
                        kids[callee.id] = callee
            for proc in sorted(set(lkids) | set(rkids)):
                yield from visit(
                    context + ((index, proc),), lkids.get(proc), rkids.get(proc)
                )

    yield from visit((), lroot, rroot)


# -- canonical heap layout ---------------------------------------------------


def _relayout(root: CallRecord, records: List[CallRecord]) -> int:
    """Assign canonical preorder heap addresses; returns heap bytes.

    The live runtime interleaves record, list-cell, and table
    allocations with execution; the canonical aggregate lays out each
    record followed by its list cells and path tables, in preorder, so
    the layout depends only on the merged structure.
    """
    base = MemoryMap().cct.base
    cursor = base
    ordered: List[CallRecord] = []
    stack = [root]
    while stack:
        record = stack.pop()
        ordered.append(record)
        record.addr = cursor
        cursor += record.record_bytes()
        tree_children: List[CallRecord] = []
        for index in range(record.nslots):
            slot = record.slots[index]
            if slot is None:
                continue
            if isinstance(slot, CalleeList):
                for node in slot.nodes:
                    node.addr = cursor
                    cursor += 2 * WORD
                    if node.record.parent is record:
                        tree_children.append(node.record)
            elif slot.parent is record:
                tree_children.append(slot)
        for name in sorted(record.path_tables):
            table = record.path_tables[name]
            table.base = cursor
            table.name = f"{name}@{record.addr:#x}"
            cursor += table.size_bytes()
        stack.extend(reversed(tree_children))
    records[:] = ordered
    return cursor - base


# -- equality ----------------------------------------------------------------


def _preorder_index(root: CallRecord) -> Dict[int, int]:
    index: Dict[int, int] = {}
    stack = [root]
    while stack:
        record = stack.pop()
        index[id(record)] = len(index)
        children: List[CallRecord] = []
        for slot_index in range(record.nslots):
            _, callees = _slot_callees(record, slot_index)
            for callee in sorted(callees, key=lambda r: r.id):
                if callee.parent is record:
                    children.append(callee)
        stack.extend(reversed(children))
    return index


def _table_form(table: CounterTable) -> tuple:
    return (
        table.capacity,
        table.metric_slots,
        table.kind.value,
        table.buckets,
        tuple(sorted((k, v) for k, v in table.counts.items() if v)),
        tuple(
            sorted(
                (k, tuple(v)) for k, v in table.metrics.items() if any(v)
            )
        ),
        table.out_of_range,
    )


def canonical_form(cct) -> tuple:
    """A hashable description of a CCT modulo transient state.

    Two CCTs with equal canonical forms hold the same aggregate
    profile: addresses, record enumeration order, and callee-list
    order (move-to-front recency) are ignored; everything the analyses
    read — context structure, backedge targets, metric vectors, path
    tables — is included.  ``cct`` is anything with a ``root``
    (runtime, loaded dump, merge result) or a bare root record.
    """
    root = getattr(cct, "root", cct)
    index = _preorder_index(root)

    def describe(record: CallRecord) -> tuple:
        slots = []
        for slot_index in range(record.nslots):
            listy, callees = _slot_callees(record, slot_index)
            entries = []
            for callee in sorted(callees, key=lambda r: r.id):
                if callee.parent is record:
                    entries.append(("child", describe(callee)))
                else:
                    entries.append(("back", callee.id, index[id(callee)]))
            slots.append((listy, tuple(entries)))
        tables = tuple(
            (name, _table_form(record.path_tables[name]))
            for name in sorted(record.path_tables)
        )
        return (record.id, tuple(record.metrics), tuple(slots), tables)

    return describe(root)


def cct_equivalent(first, second) -> bool:
    """Merge-algebra equality: equal :func:`canonical_form`."""
    return canonical_form(first) == canonical_form(second)


def cct_digest(cct) -> str:
    """SHA-256 over the :func:`strict_form` of a CCT.

    A content digest of the *logical* tree (records, slots, addresses,
    tables, heap bytes) rather than of any particular file encoding:
    two dumps of the same aggregate digest identically even if the
    JSON bytes differ.  The shard runner's manifests and run logs use
    this as the merge-determinism witness.
    """
    return hashlib.sha256(repr(strict_form(cct)).encode()).hexdigest()


def strict_form(cct) -> tuple:
    """An exact description, including every serialized byte of state.

    Unlike :func:`canonical_form` this keeps record order, addresses,
    callee-list order, list-cell addresses, table bases/names, and the
    heap-bytes bookkeeping — it is the round-trip fidelity check for
    :func:`~repro.cct.serialize.save_cct`/``load_cct``.
    """
    records: List[CallRecord] = list(cct.records)
    index = {id(record): i for i, record in enumerate(records)}

    def slot_form(slot) -> object:
        if slot is None:
            return None
        if isinstance(slot, CalleeList):
            return tuple((index[id(node.record)], node.addr) for node in slot.nodes)
        return index[id(slot)]

    described = []
    for record in records:
        tables = tuple(
            (
                name,
                record.path_tables[name].name,
                record.path_tables[name].base,
                _table_form(record.path_tables[name]),
            )
            for name in sorted(record.path_tables)
        )
        described.append(
            (
                record.id,
                None if record.parent is None else index[id(record.parent)],
                record.addr,
                tuple(record.metrics),
                tuple(slot_form(slot) for slot in record.slots),
                tables,
            )
        )
    return (index[id(cct.root)], cct.heap_bytes(), tuple(described))


__all__ = [
    "MergeError",
    "MergedCCT",
    "canonical_form",
    "cct_digest",
    "cct_equivalent",
    "empty_cct",
    "merge_ccts",
    "strict_form",
    "walk_lockstep",
]
