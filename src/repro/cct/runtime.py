"""On-line CCT construction (paper §4.2).

The protocol, translated from the paper's SPARC implementation:

* a *global callee-slot pointer* (gCSP) is set by the caller just
  before each call to point at the slot, in the caller's call record,
  reserved for that call site;
* on *procedure entry* the callee loads the slot the gCSP points at.
  Tag 0 (a record pointer for this procedure): done — the common case.
  Tag 1 (uninitialized offset): search the caller's ancestors for a
  record of this procedure — found means recursion, reuse it (a CCT
  backedge); otherwise allocate and initialize a fresh record.  Tag 2
  (a callee list): scan with move-to-front, falling back to the
  ancestor search on a miss.  Either way, the old gCSP is saved to the
  stack and the found record becomes the local current-record (lCRP);
* on *procedure exit* the gCSP is restored from the stack, so calls
  made by *uninstrumented* intermediaries still attach their callees to
  the right instrumented ancestor;
* non-local exits (longjmp) unwind the shadow state without
  accumulating the interrupted intervals — the measurement limitation
  §4.3 concedes, mitigated by the optional backedge probes.

Every step issues the memory traffic the real structure would (slot
loads/stores, record initialization, pointer chasing, list relinking)
against the simulated CCT heap, and charges the dynamic instruction
counts of the slow paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cct.records import ROOT_ID, CCTStats, CalleeList, CallRecord, ListNode
from repro.instrument.tables import CounterTable, ProfilingRuntime
from repro.machine.memory import WORD

_WRAP = 1 << 32

#: Frame slot where a procedure saves the caller's gCSP.
GCSP_SLOT = 2

#: Buckets for per-record hash path tables (much smaller than the
#: global tables: one exists per calling context).
CONTEXT_HASH_BUCKETS = 512

#: Metric layout in each record: [frequency, pic0 total, pic1 total].
METRIC_SLOTS = 3


@dataclass
class _ShadowEntry:
    depth: int
    record: CallRecord
    saved_gcsp: Tuple[CallRecord, int]
    pic0: int = 0
    pic1: int = 0


class CCTRuntime:
    """Builds the CCT during execution; attach as ``machine.cct_runtime``.

    ``collect_hw`` selects Context-and-HW mode: PIC snapshots at entry
    (and probes), deltas accumulated at exit.  ``profiling`` links the
    combined mode: per-record path tables are created from the specs
    the flow pass registered.

    ``by_site`` selects the space/precision trade-off of §4.1: with
    ``True`` (the paper's implementation) each call site owns a callee
    slot; with ``False`` every call in a procedure shares one slot, so
    two sites calling the same procedure share a child record.  The
    paper reports site discrimination costs a 2-3x size factor; the
    ablation benchmark measures ours.
    """

    def __init__(
        self,
        cct_base: int,
        collect_hw: bool = True,
        profiling: Optional[ProfilingRuntime] = None,
        by_site: bool = True,
    ):
        self.collect_hw = collect_hw
        self.profiling = profiling
        self.by_site = by_site
        self.stats = CCTStats()
        self._cursor = cct_base
        self.records: List[CallRecord] = []
        self.root = self._allocate_record(ROOT_ID, None, nslots=1)
        self.gcsp: Tuple[CallRecord, int] = (self.root, 0)
        self.shadow: List[_ShadowEntry] = []
        #: Signal handlers are additional entry points (§4.2): each gets
        #: its own root slot, so handler contexts never pollute the
        #: interrupted code's contexts.
        self._signal_slots: dict = {}
        self._interrupted_gcsp: List[Tuple[CallRecord, int]] = []

    # -- allocation ---------------------------------------------------------------

    def _alloc_bytes(self, size: int) -> int:
        addr = self._cursor
        self._cursor += size
        return addr

    def heap_bytes(self) -> int:
        """Total CCT heap consumption (Table 3's Size column)."""
        return self._cursor - self.root.addr

    def _allocate_record(
        self, proc: str, parent: Optional[CallRecord], nslots: int
    ) -> CallRecord:
        if not self.by_site:
            nslots = min(nslots, 1)
        size = (2 + METRIC_SLOTS + nslots) * WORD
        record = CallRecord(proc, parent, nslots, METRIC_SLOTS, self._alloc_bytes(size))
        self.records.append(record)
        self.stats.allocations += 1
        return record

    # -- current state -----------------------------------------------------------------

    @property
    def current_record(self) -> CallRecord:
        return self.shadow[-1].record if self.shadow else self.root

    # -- VM callbacks --------------------------------------------------------------------

    def enter(self, machine, frame, instr) -> None:
        self.stats.enters += 1
        parent, slot_index = self.gcsp
        slot_addr = parent.slot_addr(slot_index)
        machine.probe_read(slot_addr)
        slot = parent.slots[slot_index]
        proc = instr.proc

        # Tag 0 with a matching procedure: the common case.  The fast
        # engine compiles exactly this test into generated segment code
        # (class identity, not isinstance, so both engines take the same
        # branch), falling back to :meth:`_enter_slow` otherwise.
        if slot.__class__ is CallRecord and slot.id == proc:
            child = slot
            self.stats.fast_hits += 1
        else:
            child = self._enter_slow(
                machine, parent, slot_index, slot_addr, slot, proc, instr.nslots
            )

        # Save the caller's gCSP to the stack; the record becomes lCRP.
        machine.probe_write(frame.base_addr + GCSP_SLOT * WORD, 0)
        entry = _ShadowEntry(machine.depth, child, self.gcsp)
        if self.collect_hw:
            entry.pic0, entry.pic1 = machine.pic.read()
            machine.charge(3)
        self.shadow.append(entry)

        # Frequency metric (paper §4.3: "simply increments a counter").
        machine.probe_read(child.metrics_addr())
        child.metrics[0] += 1
        machine.probe_write(child.metrics_addr(), child.metrics[0])

    def before_call(self, machine, frame, instr) -> None:
        slot = instr.slot if self.by_site else 0
        self.gcsp = (self.current_record, slot)

    def exit(self, machine, frame, instr) -> None:
        if not self.shadow:
            raise RuntimeError("CCT exit with empty shadow stack")
        entry = self.shadow.pop()
        if entry.depth != machine.depth:
            raise RuntimeError(
                f"CCT exit at depth {machine.depth}, expected {entry.depth}; "
                f"enter/exit hooks are unbalanced"
            )
        machine.probe_read(frame.base_addr + GCSP_SLOT * WORD)
        self.gcsp = entry.saved_gcsp
        if self.collect_hw:
            self._accumulate_interval(machine, entry)

    def probe(self, machine, frame, instr) -> None:
        """Backedge counter read (§4.3): accumulate and restart interval."""
        if not self.shadow:
            raise RuntimeError("CCT probe with empty shadow stack")
        entry = self.shadow[-1]
        if self.collect_hw:
            self._accumulate_interval(machine, entry)
            entry.pic0, entry.pic1 = machine.pic.read()
            machine.charge(2)

    def unwind_to(self, machine, depth: int) -> None:
        """Non-local exit: drop shadow entries for unwound frames.

        The interrupted intervals are *not* accumulated (the paper's
        acknowledged limitation for longjmp); backedge probes bound the
        loss when enabled.
        """
        restored: Optional[Tuple[CallRecord, int]] = None
        while self.shadow and self.shadow[-1].depth > depth:
            restored = self.shadow[-1].saved_gcsp
            self.shadow.pop()
        if restored is not None:
            self.gcsp = restored

    # -- signals (multiple roots, §4.2) ----------------------------------------------------

    def on_signal_delivery(self, machine, handler: str) -> None:
        """Route the handler's CctEnter to its dedicated root slot."""
        slot = self._signal_slots.get(handler)
        if slot is None:
            slot = len(self.root.slots)
            self.root.slots.append(None)
            self._signal_slots[handler] = slot
            # Growing the root record claims another heap word.
            self._alloc_bytes(WORD)
        self._interrupted_gcsp.append(self.gcsp)
        self.gcsp = (self.root, slot)

    def on_signal_return(self, machine) -> None:
        """Resume the interrupted code's slot pointer."""
        if self._interrupted_gcsp:
            self.gcsp = self._interrupted_gcsp.pop()

    # -- slow paths ----------------------------------------------------------------------

    def _enter_slow(
        self,
        machine,
        parent: CallRecord,
        slot_index: int,
        slot_addr: int,
        slot,
        proc: str,
        nslots: int,
    ) -> CallRecord:
        """Entry protocol for every slot state but a tag-0 hit.

        The caller has already counted the enter, read the slot, and
        ruled out a matching record pointer; this resolves tag 1
        (uninitialized), tag-0 mismatches (slot upgrade), and tag 2
        (callee lists).  Shared verbatim by both engines: the fast
        engine's fused entry sequence calls it through a per-site
        closure.
        """
        if slot is None:
            child = self._find_or_allocate(machine, parent, proc, nslots)
            parent.slots[slot_index] = child
            machine.probe_write(slot_addr, child.addr)
            return child
        if slot.__class__ is CallRecord:
            # A direct site observed a second callee: calls routed
            # through an uninstrumented intermediary.  Upgrade the
            # slot to a callee list, as for indirect sites.
            self.stats.slot_upgrades += 1
            upgraded = CalleeList()
            upgraded.nodes.append(ListNode(slot, self._alloc_bytes(2 * WORD)))
            machine.probe_write(upgraded.nodes[0].addr, slot.addr)
            machine.charge(3)
            parent.slots[slot_index] = upgraded
            machine.probe_write(slot_addr, upgraded.nodes[0].addr)
            return self._list_lookup(
                machine, parent, upgraded, slot_addr, proc, nslots
            )
        return self._list_lookup(machine, parent, slot, slot_addr, proc, nslots)

    def _list_lookup(
        self,
        machine,
        parent: CallRecord,
        callee_list: CalleeList,
        slot_addr: int,
        proc: str,
        nslots: int,
    ) -> CallRecord:
        nodes = callee_list.nodes
        for position, node in enumerate(nodes):
            machine.probe_read(node.addr)
            machine.charge(2)
            self.stats.list_scans += 1
            if node.record.id == proc:
                self.stats.list_hits += 1
                if position > 0:
                    # Move to front: relink the predecessor and the head.
                    nodes.insert(0, nodes.pop(position))
                    machine.probe_write(nodes[1].addr, 0)
                    machine.probe_write(slot_addr, node.addr)
                    machine.charge(3)
                return node.record
        child = self._find_or_allocate(machine, parent, proc, nslots)
        node = ListNode(child, self._alloc_bytes(2 * WORD))
        nodes.insert(0, node)
        machine.probe_write(node.addr, child.addr)
        machine.probe_write(slot_addr, node.addr)
        machine.charge(4)
        return child

    def _find_or_allocate(
        self, machine, parent: CallRecord, proc: str, nslots: int
    ) -> CallRecord:
        """Ancestor search; reuse on recursion, else allocate (paper §4.2)."""
        node: Optional[CallRecord] = parent
        while node is not None:
            machine.probe_read(node.addr)
            machine.charge(3)
            self.stats.ancestor_steps += 1
            if node.id == proc:
                self.stats.backedges_created += 1
                return node
            node = node.parent
        child = self._allocate_record(proc, parent, nslots)
        machine.probe_write(child.addr, 0)          # ID
        machine.probe_write(child.addr + WORD, parent.addr)  # parent
        for slot in range(nslots):                  # tagged offsets
            machine.probe_write(child.slot_addr(slot), 0)
        machine.charge(4 + nslots)
        return child

    def _accumulate_interval(self, machine, entry: _ShadowEntry) -> None:
        pic0, pic1 = machine.pic.read()
        delta0 = (pic0 - entry.pic0) % _WRAP
        delta1 = (pic1 - entry.pic1) % _WRAP
        record = entry.record
        base = record.metrics_addr()
        machine.probe_read(base + WORD)
        record.metrics[1] += delta0
        machine.probe_write(base + WORD, record.metrics[1])
        machine.probe_read(base + 2 * WORD)
        record.metrics[2] += delta1
        machine.probe_write(base + 2 * WORD, record.metrics[2])
        machine.charge(8)

    # -- combined flow+context -----------------------------------------------------------

    def path_table(self, machine, function_name: str) -> CounterTable:
        """The current record's path table for ``function_name`` (§4.3)."""
        record = self.current_record
        table = record.path_tables.get(function_name)
        if table is None:
            if self.profiling is None or function_name not in self.profiling.specs:
                raise RuntimeError(
                    f"no path table spec for {function_name!r}; run the flow "
                    f"pass with per_context=True first"
                )
            capacity, metric_slots, kind = self.profiling.specs[function_name]
            table = CounterTable(
                f"{function_name}@{record.addr:#x}",
                ProfilingRuntime.CONTEXT_TABLE,
                0,
                capacity,
                metric_slots,
                kind,
                buckets=CONTEXT_HASH_BUCKETS,
            )
            table.base = self._alloc_bytes(table.size_bytes())
            record.path_tables[function_name] = table
        return table
