"""CCT statistics: the columns of Table 3.

Size (bytes of the CCT heap), Nodes, Avg Node Size, Avg Out Degree of
interior nodes, Height (average over leaves and maximum), Max
Replication (most call records for any one procedure), and Call Sites
(total slots / used / reached by exactly one intraprocedural path).

The one-path column needs combined flow+context data: per record, a
call site counts as one-path when exactly one executed path through the
procedure reaches it — the case where flow+context profiling is as
precise as full interprocedural path profiling (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.cct.records import CalleeList, CallRecord
from repro.cct.runtime import CCTRuntime
from repro.ir.function import Program
from repro.ir.instructions import Kind


@dataclass
class CCTStatistics:
    size_bytes: int
    nodes: int
    avg_node_size: float
    avg_out_degree: float
    height_avg: float
    height_max: int
    max_replication: int
    call_sites: int
    call_sites_used: int
    call_sites_one_path: Optional[int]

    def row(self) -> Dict[str, object]:
        return {
            "Size": self.size_bytes,
            "Nodes": self.nodes,
            "Avg Node Size": round(self.avg_node_size, 1),
            "Avg Out Degree": round(self.avg_out_degree, 1),
            "Height Avg": round(self.height_avg, 1),
            "Height Max": self.height_max,
            "Max Replication": self.max_replication,
            "Call Sites": self.call_sites,
            "Used": self.call_sites_used,
            "One Path": self.call_sites_one_path,
        }


def cct_statistics(
    runtime: CCTRuntime,
    program: Optional[Program] = None,
    flow_functions: Optional[Dict[str, object]] = None,
    regenerate_limit: int = 100_000,
) -> CCTStatistics:
    """Compute Table 3's statistics for a built CCT.

    ``flow_functions`` maps function name ->
    :class:`repro.instrument.pathinstr.FunctionPathInfo` (from the
    combined run) and enables the One Path column; ``program`` is
    needed with it to locate call sites within paths.
    """
    records = [r for r in runtime.records if r is not runtime.root]
    if not records:
        return CCTStatistics(runtime.heap_bytes(), 0, 0.0, 0.0, 0.0, 0, 0, 0, 0, None)

    total_record_bytes = 0
    replication: Dict[str, int] = {}
    out_degrees: List[int] = []
    for record in records:
        size = record.record_bytes()
        for slot in record.slots:
            if isinstance(slot, CalleeList):
                size += slot.size_bytes()
        total_record_bytes += size
        replication[record.id] = replication.get(record.id, 0) + 1
        degree = sum(1 for _ in record.children())
        if degree:
            out_degrees.append(degree)

    heights = _leaf_depths(runtime.root)
    call_sites = sum(record.nslots for record in records)
    call_sites_used = sum(
        sum(1 for slot in record.slots if slot is not None) for record in records
    )

    one_path: Optional[int] = None
    if flow_functions is not None and program is not None:
        one_path = _one_path_sites(records, program, flow_functions, regenerate_limit)

    return CCTStatistics(
        size_bytes=runtime.heap_bytes(),
        nodes=len(records),
        avg_node_size=total_record_bytes / len(records),
        avg_out_degree=(sum(out_degrees) / len(out_degrees)) if out_degrees else 0.0,
        height_avg=(sum(heights) / len(heights)) if heights else 0.0,
        height_max=max(heights, default=0),
        max_replication=max(replication.values(), default=0),
        call_sites=call_sites,
        call_sites_used=call_sites_used,
        call_sites_one_path=one_path,
    )


def _leaf_depths(root: CallRecord) -> List[int]:
    """Depths of all leaves, walking tree edges only (backedges skipped)."""
    depths: List[int] = []
    stack: List[Tuple[CallRecord, int]] = [(root, 0)]
    while stack:
        record, depth = stack.pop()
        children = list(record.tree_children())
        if not children:
            if record.parent is not None:  # the root alone doesn't count
                depths.append(depth)
            continue
        for child in children:
            stack.append((child, depth + 1))
    return depths


def _call_sites_per_block(program: Program, function: str) -> Dict[str, List[int]]:
    """block name -> call-site indices the block contains."""
    sites: Dict[str, List[int]] = {}
    for block in program.functions[function].blocks:
        for instr in block.instrs:
            if instr.kind in (Kind.CALL, Kind.ICALL):
                sites.setdefault(block.name, []).append(instr.site)
    return sites


def _one_path_sites(
    records: List[CallRecord],
    program: Program,
    flow_functions: Dict[str, object],
    regenerate_limit: int,
) -> int:
    """Count used call sites reached by exactly one executed path.

    Only paths that actually executed (nonzero count in the record's
    path table) are regenerated, so the cost is proportional to the
    profile, not to the potential path count.
    """
    site_blocks_cache: Dict[str, Dict[str, List[int]]] = {}
    path_sites_cache: Dict[Tuple[str, int], Tuple[int, ...]] = {}
    one_path_total = 0
    for record in records:
        info = flow_functions.get(record.id)
        table = record.path_tables.get(record.id)
        if info is None or table is None:
            continue
        if record.id not in site_blocks_cache:
            site_blocks_cache[record.id] = _call_sites_per_block(program, record.id)
        by_block = site_blocks_cache[record.id]
        paths_reaching: Dict[int, int] = {}
        executed = [p for p, c in table.counts.items() if c > 0]
        if len(executed) > regenerate_limit:
            continue
        for path_sum in executed:
            key = (record.id, path_sum)
            sites = path_sites_cache.get(key)
            if sites is None:
                path = info.numbering.regenerate(path_sum)
                found: Set[int] = set()
                for block in path.blocks:
                    found.update(by_block.get(block, ()))
                sites = tuple(sorted(found))
                path_sites_cache[key] = sites
            for site in sites:
                paths_reaching[site] = paths_reaching.get(site, 0) + 1
        one_path_total += sum(1 for n in paths_reaching.values() if n == 1)
    return one_path_total
