"""Call records: the CCT vertex structure of Figure 6/7.

A record has an ID (the procedure), a parent pointer, a metrics array,
and one callee slot per call site.  A slot holds one of three tagged
values (paper Figure 6):

* *offset* (tag 1) — uninitialized; masking the tag yields the offset
  back to the start of this record, which is how a callee finds its
  caller's record to begin the ancestor search.  Modeled as ``None``.
* *record pointer* (tag 0) — the one callee seen at this direct call
  site.  Modeled as a :class:`CallRecord` reference.
* *list pointer* (tag 2) — a move-to-front list of callees (indirect
  call sites, or direct sites that observed several callees through
  uninstrumented intermediaries).  Modeled as a :class:`CalleeList`.

Byte-level layout mirrors Figure 7 with 8-byte cells: ``ID``,
``parent``, ``metrics[n]``, ``children[nslots]``; list elements are
two-word (callee pointer, next) cells.  Addresses come from the
simulated CCT heap so record maintenance generates real cache traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Union

from repro.machine.memory import WORD

#: The distinguished root identifier (paper: "labeled with the special
#: identifier T, which corresponds to no procedure").
ROOT_ID = "<root>"


class ListNode:
    """One two-word cell of a callee list."""

    __slots__ = ("record", "addr")

    def __init__(self, record: "CallRecord", addr: int):
        self.record = record
        self.addr = addr

    def size_bytes(self) -> int:
        return 2 * WORD


class CalleeList:
    """Move-to-front list of callees for one slot."""

    __slots__ = ("nodes",)

    def __init__(self) -> None:
        self.nodes: List[ListNode] = []

    def records(self) -> List["CallRecord"]:
        return [node.record for node in self.nodes]

    def size_bytes(self) -> int:
        return sum(node.size_bytes() for node in self.nodes)


Slot = Union[None, "CallRecord", CalleeList]


class CallRecord:
    """One CCT vertex (possibly shared by many activations)."""

    __slots__ = ("id", "parent", "metrics", "slots", "addr", "path_tables")

    def __init__(self, proc: str, parent: Optional["CallRecord"], nslots: int,
                 metric_slots: int, addr: int):
        self.id = proc
        self.parent = parent
        self.metrics: List[int] = [0] * metric_slots
        self.slots: List[Slot] = [None] * nslots
        self.addr = addr
        #: function name -> CounterTable, for combined flow+context
        #: profiling (§4.3: "keep a procedure's array of counters or
        #: hash table in a CallRecord").
        self.path_tables: Dict[str, object] = {}

    # -- geometry (Figure 7) ----------------------------------------------------

    @property
    def nslots(self) -> int:
        return len(self.slots)

    def record_bytes(self) -> int:
        """Size of the record proper: ID + parent + metrics + slots."""
        return (2 + len(self.metrics) + len(self.slots)) * WORD

    def metrics_addr(self) -> int:
        return self.addr + 2 * WORD

    def slot_addr(self, slot: int) -> int:
        return self.addr + (2 + len(self.metrics) + slot) * WORD

    # -- structure ------------------------------------------------------------------

    def children(self) -> Iterator["CallRecord"]:
        """Distinct callee records over all slots (tree + backedge targets)."""
        seen = set()
        for slot in self.slots:
            if slot is None:
                continue
            if isinstance(slot, CalleeList):
                for record in slot.records():
                    if id(record) not in seen:
                        seen.add(id(record))
                        yield record
            else:
                if id(slot) not in seen:
                    seen.add(id(slot))
                    yield slot

    def tree_children(self) -> Iterator["CallRecord"]:
        """Children reached by tree edges only (backedges excluded).

        A slot entry is a backedge when it points at this record or one
        of its ancestors (the recursion rule of §4.1); such entries are
        skipped so traversals terminate.
        """
        for child in self.children():
            if child.parent is self:
                yield child

    def is_ancestor_or_self(self, other: "CallRecord") -> bool:
        node: Optional[CallRecord] = self
        while node is not None:
            if node is other:
                return True
            node = node.parent
        return False

    def context(self) -> List[str]:
        """The calling context: procedure names from the root down."""
        names: List[str] = []
        node: Optional[CallRecord] = self
        while node is not None:
            names.append(node.id)
            node = node.parent
        names.reverse()
        return names

    def __repr__(self) -> str:
        return f"CallRecord({' -> '.join(self.context())})"


@dataclass
class CCTStats:
    """On-line construction statistics (used by tests and ablations)."""

    enters: int = 0
    fast_hits: int = 0
    list_hits: int = 0
    list_scans: int = 0
    ancestor_steps: int = 0
    allocations: int = 0
    backedges_created: int = 0
    slot_upgrades: int = 0
