"""Context-attribution baselines: gprof and Ponder–Fateman pairs.

gprof apportions a procedure's total metric to its callers *in
proportion to call counts* — the approximation the paper (after
[PF88]) shows can be arbitrarily wrong: a cheap call from A and an
expensive call from B are averaged together.  Ponder and Fateman's
remedy measures (caller, callee) pairs directly, i.e., one level of
context; the CCT generalizes this to complete contexts (§7.1).

Both baselines are computed here from ground truth so tests and
examples can quantify the information each one loses relative to the
CCT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cct.records import ROOT_ID
from repro.cct.runtime import CCTRuntime


@dataclass
class GprofProfile:
    """Per-(caller, callee) metric estimates, the gprof way."""

    #: (caller, callee) -> attributed metric
    attributed: Dict[Tuple[str, str], float]
    #: callee -> total metric (what gprof splits up)
    totals: Dict[str, int]
    #: (caller, callee) -> call count
    calls: Dict[Tuple[str, str], int]


@dataclass
class PairProfile:
    """Per-(caller, callee) metrics measured directly (one context level)."""

    measured: Dict[Tuple[str, str], int]


def _walk_records(runtime: CCTRuntime):
    for record in runtime.records:
        if record is runtime.root:
            continue
        yield record


def cct_truth(runtime: CCTRuntime, metric: int = 1) -> Dict[Tuple[str, ...], int]:
    """Ground truth: full context -> metric, straight from the CCT."""
    truth: Dict[Tuple[str, ...], int] = {}
    for record in _walk_records(runtime):
        context = tuple(record.context()[1:])  # drop the root
        truth[context] = truth.get(context, 0) + record.metrics[metric]
    return truth


def gprof_attribution(runtime: CCTRuntime, metric: int = 1) -> GprofProfile:
    """What gprof would report, reconstructed from the CCT's aggregates.

    ``metric`` indexes the record metric array (1 = pic0, 2 = pic1;
    0 is frequency).
    """
    totals: Dict[str, int] = {}
    calls: Dict[Tuple[str, str], int] = {}
    for record in _walk_records(runtime):
        totals[record.id] = totals.get(record.id, 0) + record.metrics[metric]
        caller = record.parent.id if record.parent is not None else ROOT_ID
        key = (caller, record.id)
        calls[key] = calls.get(key, 0) + record.metrics[0]

    attributed: Dict[Tuple[str, str], float] = {}
    calls_to: Dict[str, int] = {}
    for (caller, callee), count in calls.items():
        calls_to[callee] = calls_to.get(callee, 0) + count
    for (caller, callee), count in calls.items():
        total_calls = calls_to[callee]
        share = count / total_calls if total_calls else 0.0
        attributed[(caller, callee)] = totals.get(callee, 0) * share
    return GprofProfile(attributed, totals, calls)


def pair_attribution(runtime: CCTRuntime, metric: int = 1) -> PairProfile:
    """Ponder–Fateman: measure each (caller, callee) pair directly."""
    measured: Dict[Tuple[str, str], int] = {}
    for record in _walk_records(runtime):
        caller = record.parent.id if record.parent is not None else ROOT_ID
        key = (caller, record.id)
        measured[key] = measured.get(key, 0) + record.metrics[metric]
    return PairProfile(measured)


def gprof_error(runtime: CCTRuntime, metric: int = 1) -> Dict[Tuple[str, str], float]:
    """Absolute error of gprof's estimate per (caller, callee) pair.

    Zero everywhere iff every callee costs the same from all its
    callers — the assumption gprof bakes in.
    """
    estimate = gprof_attribution(runtime, metric).attributed
    truth = pair_attribution(runtime, metric).measured
    keys = set(estimate) | set(truth)
    return {
        key: abs(estimate.get(key, 0.0) - truth.get(key, 0)) for key in keys
    }
