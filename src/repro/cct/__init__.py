"""The calling context tree (paper §4) and its baselines.

* :mod:`repro.cct.records` — the CallRecord structure of Figure 6/7:
  tagged callee slots (uninitialized offset / record pointer / callee
  list) with byte-accurate sizing in the simulated CCT heap.
* :mod:`repro.cct.runtime` — on-line CCT construction (§4.2): the
  gCSP/lCRP protocol, ancestor search for recursion backedges,
  move-to-front callee lists for indirect calls, per-record metric and
  per-record path-counter storage (§4.3), and non-local-exit handling.
* :mod:`repro.cct.dct` — the dynamic call tree and dynamic call graph
  of Figure 4, plus the DCT->CCT projection that *defines* the CCT (the
  vertex equivalence relation, including the recursion refinement of
  Figure 5); tests check the on-line construction against it.
* :mod:`repro.cct.merge` — structural merging of CCTs from
  independent runs or shards: lockstep record walk, backedge and
  callee-list unification, metric and path-table summing, canonical
  re-layout, plus the merge-algebra equality helpers.
* :mod:`repro.cct.stats` — the Table 3 statistics.
* :mod:`repro.cct.gprof` — the gprof-style attribution the paper
  criticizes, and Ponder–Fateman caller/callee pairs (§7.1), used to
  demonstrate the "gprof problem" the CCT solves.
"""

from repro.cct.records import CallRecord, CCTStats
from repro.cct.runtime import CCTRuntime
from repro.cct.dct import (
    DCGEdge,
    DCTNode,
    DynamicCallGraph,
    DynamicCallRecorder,
    DynamicCallTree,
    project_cct,
)
from repro.cct.stats import cct_statistics, CCTStatistics
from repro.cct.gprof import GprofProfile, PairProfile, gprof_attribution, pair_attribution
from repro.cct.serialize import CCTLoadError, file_digest, load_cct, save_cct
from repro.cct.dag import CompactedDag, compact_dag, dag_statistics
from repro.cct.merge import (
    MergedCCT,
    MergeError,
    canonical_form,
    cct_digest,
    cct_equivalent,
    empty_cct,
    merge_ccts,
    strict_form,
)

__all__ = [
    "CCTLoadError",
    "CCTRuntime",
    "MergeError",
    "MergedCCT",
    "canonical_form",
    "cct_digest",
    "cct_equivalent",
    "empty_cct",
    "merge_ccts",
    "strict_form",
    "CompactedDag",
    "compact_dag",
    "dag_statistics",
    "CCTStatistics",
    "CCTStats",
    "CallRecord",
    "DCGEdge",
    "DCTNode",
    "DynamicCallGraph",
    "DynamicCallRecorder",
    "DynamicCallTree",
    "GprofProfile",
    "PairProfile",
    "cct_statistics",
    "file_digest",
    "gprof_attribution",
    "load_cct",
    "pair_attribution",
    "project_cct",
    "save_cct",
]
